//! Umbrella crate for the pulsed-UWB direct-conversion transceiver
//! reproduction (Blázquez et al., *Direct Conversion Pulsed UWB Transceiver
//! Architecture*, DATE 2005).
//!
//! This crate re-exports the individual workspace crates under short module
//! names so that examples and downstream users can write `uwb::phy::...`
//! instead of depending on each crate separately.
//!
//! # Quickstart
//!
//! ```
//! use uwb::phy::{Gen2Config, Gen2Transmitter, Gen2Receiver};
//! use uwb::sim::ChannelModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = Gen2Config::default();
//! let tx = Gen2Transmitter::new(cfg.clone())?;
//! let payload = vec![0xA5u8; 32];
//! let burst = tx.transmit_packet(&payload)?;
//! assert!(!burst.samples.is_empty());
//! # Ok(())
//! # }
//! ```

/// DSP substrate: FFT, filters, windows, correlation, resampling, PSD.
pub mod dsp {
    pub use uwb_dsp::*;
}

/// Environment models: AWGN, Saleh–Valenzuela channel, interference, antenna.
pub mod sim {
    pub use uwb_sim::*;
}

/// Behavioral RF front-end models.
pub mod rf {
    pub use uwb_rf::*;
}

/// ADC models: flash, SAR, interleaving, jitter.
pub mod adc {
    pub use uwb_adc::*;
}

/// The pulsed-UWB PHY: the paper's primary contribution.
pub mod phy {
    pub use uwb_phy::*;
}

/// First-generation baseband transceiver (paper Fig. 1).
pub mod gen1 {
    pub use uwb_gen1::*;
}

/// Discrete prototype platform substitute: link harness and metrology.
pub mod platform {
    pub use uwb_platform::*;
}

/// Deterministic multi-user piconet simulation across the 14-channel band
/// plan.
pub mod net {
    pub use uwb_net::*;
}

/// Deterministic discrete-event MAC layer: traffic sources, CSMA carrier
/// sense over the interference graph, stop-and-wait ARQ.
pub mod mac {
    pub use uwb_mac::*;
}

/// Observability: telemetry snapshots, span timelines, the worst-trial
/// flight recorder, and percentile digests.
pub mod obs {
    pub use uwb_obs::*;
}
