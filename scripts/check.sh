#!/usr/bin/env bash
# Tier-1 gate and fast sanity checks.
#
# Usage:
#   scripts/check.sh          release build + the root test suite (tier-1)
#   scripts/check.sh smoke    build + run the end-to-end engine/link smoke bin
#   scripts/check.sh bench    build + run dspbench against the committed
#                             BENCH_dsp.json baseline; fails if any DSP
#                             kernel regresses by more than BENCH_TOL
#                             percent (default 15; throughput is reported
#                             but informational — see EXPERIMENTS.md)
#   scripts/check.sh obs      observability gate: builds the workspace with
#                             AND without the obs feature, clippy with
#                             -D warnings, the allocation-regression tests
#                             with telemetry enabled AND with span timelines
#                             on (`obs-trace`; the warm path must stay at
#                             zero heap allocations in both), trace/recorder
#                             thread-determinism in both feature configs,
#                             the 1k-user city trace acceptance run, and a
#                             trace-export smoke (`smoke --trace`)
#   scripts/check.sh stream   streaming gate: chunk-size-invariance /
#                             batch-parity / bounded-memory tests, the
#                             allocation gate (covers the streamed trial),
#                             then stream_link vs BENCH_stream.json — the
#                             streamed path must stay within
#                             STREAM_MAX_OVERHEAD percent (default 5) of
#                             batch throughput and its counters must match
#                             bit-for-bit
#   scripts/check.sh net      network gate: builds uwb-net, runs its unit +
#                             acceptance tests (isolation bit-parity,
#                             co-channel contention, thread determinism),
#                             the allocation gate (covers the warm 2-link
#                             network round), then netbench against the
#                             committed BENCH_net.json baseline; fails if
#                             any gated metric regresses by more than
#                             BENCH_TOL percent (default 15)
#   scripts/check.sh mac      MAC gate: uwb-mac unit + acceptance tests
#                             (conservation, light-load latency, saturation
#                             knee, hidden-terminal ARQ recovery, thread
#                             determinism), the allocation gate (covers the
#                             warm MAC discrete-event trial), the slow
#                             8-user thread-parity sweep, then macbench
#                             against the committed BENCH_mac.json
#                             baseline; fails if any gated metric regresses
#                             by more than BENCH_TOL percent (default 15;
#                             delivered fraction and mean latency are
#                             bit-deterministic pins, so any drift there
#                             means MAC/PHY behavior changed)
#   scripts/check.sh batch    batched-runtime gate: batch-width invariance
#                             (B in {1,2,4,8} x threads in {1,2,4,8} must be
#                             bit-identical — counters, stop reason,
#                             telemetry fingerprint, flight-recorder
#                             report), the platform batched-parity unit
#                             tests, the allocation gate (covers the warm
#                             batched trial), and the smoke binary under
#                             UWB_BATCH=1 and UWB_BATCH=8
#   scripts/check.sh all      tier-1, then the whole workspace's tests, then
#                             smoke, then obs, then stream, then net, then
#                             mac, then batch
set -eu
cd "$(dirname "$0")/.."

mode="${1:-tier1}"

tier1() {
    echo "== tier-1: cargo build --release =="
    cargo build --release
    echo "== tier-1: cargo test -q =="
    cargo test -q
}

smoke() {
    echo "== smoke: engine + link sanity =="
    cargo build --release -p uwb-bench --bin smoke
    ./target/release/smoke
}

bench() {
    local tol="${BENCH_TOL:-15}"
    echo "== bench: dspbench vs committed BENCH_dsp.json (tol ${tol}%) =="
    cargo build --release -p uwb-bench --bin dspbench
    UWB_THREADS=1 ./target/release/dspbench --check BENCH_dsp.json --tol "$tol"
}

obs() {
    echo "== obs: workspace builds with telemetry compiled out =="
    cargo build -q --workspace --no-default-features
    echo "== obs: workspace builds with telemetry on =="
    cargo build -q --workspace
    echo "== obs: clippy -D warnings (both configurations) =="
    cargo clippy -q --workspace -- -D warnings
    cargo clippy -q --workspace --no-default-features -- -D warnings
    echo "== obs: zero-allocation warm path with telemetry enabled =="
    cargo test -q --test alloc_regression
    echo "== obs: zero-allocation warm path with span timelines on =="
    cargo test -q --test alloc_regression --features obs-trace
    echo "== obs: telemetry determinism + schema =="
    cargo test -q --test montecarlo_determinism
    cargo test -q --test telemetry_schema
    echo "== obs: trace + flight-recorder determinism (obs, then obs-trace) =="
    cargo test -q --test trace_determinism
    cargo test -q --test trace_determinism --features obs-trace
    cargo test -q -p uwb-obs --features obs-trace
    echo "== obs: 1,000-user city round trace, 1/2/4/8-thread bit-parity =="
    cargo test -q --release --test trace_determinism --features obs-trace -- --ignored
    echo "== obs: span-timeline export (smoke --trace) =="
    cargo build --release -p uwb-bench --features obs-trace --bin smoke
    ./target/release/smoke --trace target/trace.json
    test -s target/trace.json
    echo "== obs: feature matrix (precise Gaussian stream, f64 acquisition) =="
    cargo test -q -p uwb-sim --features precise
    cargo test -q -p uwb-phy --no-default-features
}

stream() {
    local tol="${BENCH_TOL:-15}"
    local max_overhead="${STREAM_MAX_OVERHEAD:-5}"
    echo "== stream: chunk-size invariance + batch parity + bounded memory =="
    cargo test -q --release --test stream_parity
    echo "== stream: zero-allocation warm streamed trial =="
    cargo test -q --release --test alloc_regression
    echo "== stream: stream_link vs committed BENCH_stream.json (overhead gate ${max_overhead}%) =="
    cargo build --release -p uwb-bench --bin stream_link
    UWB_THREADS=1 ./target/release/stream_link \
        --check BENCH_stream.json --tol "$tol" --max-overhead "$max_overhead"
}

net() {
    local tol="${BENCH_TOL:-15}"
    echo "== net: uwb-net unit + acceptance tests =="
    cargo build -q -p uwb-net
    cargo test -q -p uwb-net
    echo "== net: zero-allocation warm network round =="
    cargo test -q --release --test alloc_regression
    echo "== net: 1,000-user sparse round, 1/2/4/8-thread fingerprint =="
    cargo test -q --release -p uwb-net --test net_acceptance -- --ignored
    echo "== net: netbench vs committed BENCH_net.json (tol ${tol}%) =="
    cargo build --release -p uwb-bench --bin netbench
    UWB_THREADS=1 ./target/release/netbench --check BENCH_net.json --tol "$tol"
}

mac() {
    local tol="${BENCH_TOL:-15}"
    echo "== mac: uwb-mac unit + acceptance tests =="
    cargo build -q -p uwb-mac
    cargo test -q -p uwb-mac
    echo "== mac: zero-allocation warm MAC trial =="
    cargo test -q --release --test alloc_regression
    echo "== mac: 8-user contended run, 1/2/4/8-thread fingerprint =="
    cargo test -q --release -p uwb-mac --test mac_acceptance -- --ignored
    echo "== mac: macbench vs committed BENCH_mac.json (tol ${tol}%) =="
    cargo build --release -p uwb-bench --bin macbench
    UWB_THREADS=1 ./target/release/macbench --check BENCH_mac.json --tol "$tol"
}

batch() {
    echo "== batch: batch-width x thread-count invariance =="
    cargo test -q --release --test batch_parity
    echo "== batch: platform batched stage-sweep parity units =="
    cargo test -q --release -p uwb-platform batched
    echo "== batch: zero-allocation warm batched trial =="
    cargo test -q --release --test alloc_regression
    echo "== batch: smoke at UWB_BATCH=1 and UWB_BATCH=8 =="
    cargo build --release -p uwb-bench --bin smoke
    UWB_BATCH=1 ./target/release/smoke
    UWB_BATCH=8 ./target/release/smoke
}

case "$mode" in
tier1)
    tier1
    ;;
smoke)
    smoke
    ;;
bench)
    bench
    ;;
obs)
    obs
    ;;
stream)
    stream
    ;;
net)
    net
    ;;
mac)
    mac
    ;;
batch)
    batch
    ;;
all)
    tier1
    echo "== workspace: cargo test -q --workspace =="
    cargo test -q --workspace
    smoke
    obs
    stream
    net
    mac
    batch
    ;;
*)
    echo "usage: scripts/check.sh [tier1|smoke|bench|obs|stream|net|mac|batch|all]" >&2
    exit 2
    ;;
esac
echo "check.sh: OK ($mode)"
