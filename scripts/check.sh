#!/usr/bin/env bash
# Tier-1 gate and fast sanity checks.
#
# Usage:
#   scripts/check.sh          release build + the root test suite (tier-1)
#   scripts/check.sh smoke    build + run the end-to-end engine/link smoke bin
#   scripts/check.sh bench    build + run dspbench against the committed
#                             BENCH_dsp.json baseline; fails if any DSP
#                             kernel regresses by more than BENCH_TOL
#                             percent (default 15; throughput is reported
#                             but informational — see EXPERIMENTS.md)
#   scripts/check.sh all      tier-1, then the whole workspace's tests, then smoke
set -eu
cd "$(dirname "$0")/.."

mode="${1:-tier1}"

tier1() {
    echo "== tier-1: cargo build --release =="
    cargo build --release
    echo "== tier-1: cargo test -q =="
    cargo test -q
}

smoke() {
    echo "== smoke: engine + link sanity =="
    cargo build --release -p uwb-bench --bin smoke
    ./target/release/smoke
}

bench() {
    local tol="${BENCH_TOL:-15}"
    echo "== bench: dspbench vs committed BENCH_dsp.json (tol ${tol}%) =="
    cargo build --release -p uwb-bench --bin dspbench
    UWB_THREADS=1 ./target/release/dspbench --check BENCH_dsp.json --tol "$tol"
}

case "$mode" in
tier1)
    tier1
    ;;
smoke)
    smoke
    ;;
bench)
    bench
    ;;
all)
    tier1
    echo "== workspace: cargo test -q --workspace =="
    cargo test -q --workspace
    smoke
    ;;
*)
    echo "usage: scripts/check.sh [tier1|smoke|bench|all]" >&2
    exit 2
    ;;
esac
echo "check.sh: OK ($mode)"
