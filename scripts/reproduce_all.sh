#!/usr/bin/env bash
# Regenerates every experiment of EXPERIMENTS.md in sequence.
# Usage: scripts/reproduce_all.sh [output-dir]
set -u
out="${1:-results}"
mkdir -p "$out"
bins="fig4_pulse fcc_mask gen1_link gen1_sync adc_resolution gen2_link \
      chanest_bits acquisition_time interferer_notch bandplan \
      power_breakdown modulation_compare adaptation ranging \
      rake_fingers tracking_loops channel_profiles interleave_mismatch \
      acquisition_roc frame_efficiency"
fail=0
for b in $bins; do
    echo "=== $b ==="
    if cargo run -p uwb-bench --release --bin "$b" > "$out/$b.txt" 2>&1; then
        tail -3 "$out/$b.txt"
    else
        echo "FAILED: $b (see $out/$b.txt)"
        fail=1
    fi
done
echo
echo "outputs in $out/"
exit $fail
