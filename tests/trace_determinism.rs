//! Determinism contracts of the span timeline and the worst-trial flight
//! recorder, across worker thread counts.
//!
//! Span wall-clock fields (`start_ns`, `dur_ns`, `thread`) are explicitly
//! excluded; what must be bit-identical for any thread count is the span
//! **(name, trial) sequence** (pinned by `Telemetry::trace_fingerprint`),
//! the drop counter, and the flight recorder's rendered worst-K report
//! (which contains no wall-clock fields at all). Thread counts are pinned
//! through the engine's explicit override so these tests never race others
//! on the `UWB_THREADS` environment variable.

use uwb_phy::Gen2Config;
use uwb_platform::link::{LinkScenario, LinkWorker};
use uwb_platform::ErrorCounter;
use uwb_sim::MonteCarlo;

const SEED: u64 = 20050307;

fn scenario() -> LinkScenario {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    LinkScenario::awgn(config, 6.0, SEED)
}

/// A small engine-backed link run with an explicit worker count.
fn link_run(threads: usize) -> uwb_sim::montecarlo::RunOutcome<ErrorCounter> {
    let sc = scenario();
    MonteCarlo::new(SEED, 48).threads(threads).chunk_size(8).run(
        || LinkWorker::new(&sc),
        |w, _trial, rng, acc: &mut ErrorCounter| w.trial_ber(&sc, 24, rng, acc),
        |_| false,
    )
}

#[test]
fn link_trace_and_recorder_are_thread_invariant() {
    let reference = link_run(1);
    let ref_report = uwb_obs::recorder::render_report(&reference.stats.telemetry.worst);
    for threads in [2, 4, 8] {
        let got = link_run(threads);
        assert_eq!(got.value, reference.value, "{threads} threads changed the counter");
        assert_eq!(
            got.stats.telemetry.trace_fingerprint(),
            reference.stats.telemetry.trace_fingerprint(),
            "{threads} threads changed the span (name, trial) sequence"
        );
        assert_eq!(
            got.stats.telemetry.spans.len(),
            reference.stats.telemetry.spans.len(),
            "{threads} threads changed the span count"
        );
        assert_eq!(
            got.stats.telemetry.spans_dropped, reference.stats.telemetry.spans_dropped,
            "{threads} threads changed the span drop count"
        );
        assert_eq!(
            uwb_obs::recorder::render_report(&got.stats.telemetry.worst),
            ref_report,
            "{threads} threads changed the flight-recorder report"
        );
    }

    if uwb_obs::trace::enabled() {
        // Timelines are on: every trial leaves spans, and the export is
        // valid Chrome Trace Event JSON.
        let telem = &reference.stats.telemetry;
        assert!(!telem.spans.is_empty(), "obs-trace build recorded no spans");
        let doc = uwb_obs::trace::export_chrome(&telem.spans);
        let v = uwb_obs::json::parse(&doc).expect("chrome trace export must be valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), telem.spans.len());
    } else {
        assert!(reference.stats.telemetry.spans.is_empty());
    }

    if uwb_obs::enabled() {
        // The recorder kept real trials, worst first, with replayable seeds.
        let worst = &reference.stats.telemetry.worst;
        assert!(!worst.is_empty(), "instrumented run recorded no worst trials");
        for w in worst.windows(2) {
            assert!(w[0].sort_key() <= w[1].sort_key(), "report not worst-first");
        }
        assert_eq!(worst[0].seed, uwb_sim::derive_trial_seed(SEED, worst[0].trial));
    }
}

#[test]
fn net_trace_and_recorder_are_thread_invariant() {
    let mut sc = uwb_net::NetScenario::ring(6, 7.0, SEED ^ 0x51);
    sc.rounds = 6;
    let plan = uwb_net::plan_network(&sc);
    let serial = uwb_net::run_plan_threads(plan.clone(), 1);
    let threaded = uwb_net::run_plan_threads(plan, 4);

    assert_eq!(
        serial.stats.telemetry.trace_fingerprint(),
        threaded.stats.telemetry.trace_fingerprint(),
        "network span sequence depends on thread count"
    );
    assert_eq!(
        uwb_obs::recorder::render_report(&serial.stats.telemetry.worst),
        uwb_obs::recorder::render_report(&threaded.stats.telemetry.worst),
        "network flight-recorder report depends on thread count"
    );
    if uwb_obs::enabled() {
        // One observation per round: the recorder scores whole rounds.
        assert!(!serial.stats.telemetry.worst.is_empty());
        assert!(serial.stats.telemetry.worst.len() as u64 <= serial.stats.trials);
    }
}

/// The ISSUE's acceptance run: a 1,000-user clustered city round whose
/// exported trace and flight-recorder report are bit-identical for
/// `UWB_THREADS` ∈ {1, 2, 4, 8}. Minutes of work — run explicitly via
/// `scripts/check.sh obs` or `cargo test --test trace_determinism -- --ignored`.
#[test]
#[ignore]
fn city_1k_round_trace_is_thread_invariant() {
    let mut sc = uwb_net::NetScenario::clustered_city(100, 10, 8.0, 0x2005_0314);
    sc.rounds = 1;
    let plan = uwb_net::plan_network(&sc);

    let reference = uwb_net::run_plan_threads(plan.clone(), 1);
    let ref_fp = reference.stats.telemetry.trace_fingerprint();
    let ref_report = uwb_obs::recorder::render_report(&reference.stats.telemetry.worst);
    for threads in [2, 4, 8] {
        let got = uwb_net::run_plan_threads(plan.clone(), threads);
        assert_eq!(
            got.stats.telemetry.trace_fingerprint(),
            ref_fp,
            "{threads} threads changed the city trace"
        );
        assert_eq!(
            got.stats.telemetry.spans.len(),
            reference.stats.telemetry.spans.len()
        );
        assert_eq!(
            uwb_obs::recorder::render_report(&got.stats.telemetry.worst),
            ref_report,
            "{threads} threads changed the city flight-recorder report"
        );
    }

    if uwb_obs::trace::enabled() {
        // 3 spans per victim per round (schedule, mix, rx) plus decode spans:
        // the 1k-user round must fit the ring (no deterministic drops) and
        // export as valid Chrome Trace JSON.
        let telem = &reference.stats.telemetry;
        assert!(telem.spans.len() >= 3 * sc.len(), "city round under-recorded");
        let doc = uwb_obs::trace::export_chrome(&telem.spans);
        uwb_obs::json::parse(&doc).expect("city trace export must be valid JSON");
    }
}
