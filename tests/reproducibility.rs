//! Integration: every stochastic pipeline is bit-reproducible from its seed
//! (the workspace's core experimental-hygiene invariant).

use uwb::gen1::{Gen1Config, Gen1Receiver, Gen1Transmitter};
use uwb::adc::InterleaveMismatch;
use uwb::phy::Gen2Config;
use uwb::platform::link::{run_ber_fast, LinkScenario};
use uwb::sim::{ChannelModel, ChannelRealization, Interferer, Rand};

#[test]
fn channel_realizations_reproduce() {
    for model in [ChannelModel::Cm1, ChannelModel::Cm2, ChannelModel::Cm3, ChannelModel::Cm4] {
        let a = ChannelRealization::generate(model, &mut Rand::new(99));
        let b = ChannelRealization::generate(model, &mut Rand::new(99));
        assert_eq!(a, b, "{model}");
    }
}

#[test]
fn ber_runs_reproduce() {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let scenario = LinkScenario {
        channel: ChannelModel::Cm1,
        interferer: Some(Interferer::cw(120e6, 0.5)),
        ..LinkScenario::awgn(config, 6.0, 1234)
    };
    let a = run_ber_fast(&scenario, 24, 30, 30_000);
    let b = run_ber_fast(&scenario, 24, 30, 30_000);
    assert_eq!(a.errors, b.errors);
    assert_eq!(a.total, b.total);
}

#[test]
fn different_seeds_differ() {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let a = run_ber_fast(
        &LinkScenario::awgn(config.clone(), 4.0, 1),
        24,
        50,
        50_000,
    );
    let b = run_ber_fast(&LinkScenario::awgn(config, 4.0, 2), 24, 50, 50_000);
    // Same statistics, different sample paths: totals may match but the
    // exact error counts at equal totals almost surely differ.
    assert!(
        a.errors != b.errors || a.total != b.total,
        "independent seeds produced identical runs"
    );
}

#[test]
fn gen1_link_reproduces() {
    let cfg = Gen1Config {
        pulses_per_bit: 8,
        ..Gen1Config::demonstrated_193kbps()
    };
    let tx = Gen1Transmitter::new(cfg.clone());
    let bits = vec![true, false, false, true];
    let b1 = tx.transmit(&bits);
    let b2 = tx.transmit(&bits);
    assert_eq!(b1, b2);
    let rx1 = Gen1Receiver::new(cfg.clone(), InterleaveMismatch::typical(), 5);
    let rx2 = Gen1Receiver::new(cfg, InterleaveMismatch::typical(), 5);
    let d1 = rx1.digitize(&b1.samples);
    let d2 = rx2.digitize(&b2.samples);
    assert_eq!(d1, d2, "ADC mismatch realizations must derive from the seed");
}
