//! Determinism contract of the parallel Monte-Carlo engine, end to end.
//!
//! The engine promises bit-identical results for any worker thread count:
//! trial `t` always derives its RNG from `derive_trial_seed(master, t)`,
//! chunk results merge in strict chunk order, and early stop is evaluated
//! at chunk boundaries on the merged prefix only. These tests pin that
//! contract at the root-crate level, on both a synthetic floating-point
//! reduction (where merge-order sensitivity would show instantly) and the
//! real gen2 link runners.

use uwb_phy::Gen2Config;
use uwb_platform::link::{run_ber_budgeted, run_ber_fast_budgeted, TrialBudget};
use uwb_platform::{ErrorCounter, LinkScenario, LinkStopReason};
use uwb_sim::montecarlo::resolve_threads;
use uwb_sim::{derive_trial_seed, MonteCarlo, Rand};

const SEED: u64 = 20050307;

fn scenario() -> LinkScenario {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    LinkScenario::awgn(config, 6.0, SEED)
}

/// A deliberately order-sensitive reduction: floating-point sums only come
/// out bit-identical when the merge order is fixed.
fn float_reduction(threads: usize) -> (u64, ErrorCounter) {
    let out = MonteCarlo::new(SEED, 500)
        .threads(threads)
        .chunk_size(7)
        .run(
            || (),
            |_, trial, rng, acc: &mut (f64, ErrorCounter)| {
                // Non-associative float work plus integer counting.
                let x = rng.gaussian() * (trial as f64 + 1.0).ln();
                acc.0 += x / (1.0 + x.abs());
                acc.1.add_raw(1, rng.bit() as u64);
            },
            |_| false,
        );
    (out.value.0.to_bits(), out.value.1)
}

#[test]
fn engine_results_identical_across_thread_counts() {
    let reference = float_reduction(1);
    for threads in [2, 3, 4, 8] {
        let got = float_reduction(threads);
        assert_eq!(
            got, reference,
            "thread count {threads} changed the reduction result"
        );
    }
}

#[test]
fn early_stop_identical_across_thread_counts() {
    let run = |threads: usize| {
        MonteCarlo::new(SEED ^ 0xE5, 10_000)
            .threads(threads)
            .chunk_size(5)
            .run(
                || (),
                |_, _, rng, hits: &mut u64| {
                    if rng.chance(0.03) {
                        *hits += 1;
                    }
                },
                |hits| *hits >= 25,
            )
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.value, b.value, "early-stop value depends on threads");
    assert_eq!(
        a.stats.trials, b.stats.trials,
        "early-stop trial count depends on threads"
    );
    assert_eq!(a.stats.stop_reason, b.stats.stop_reason);
    assert!(a.stats.trials < 10_000, "stop predicate never fired");
}

#[test]
fn derive_trial_seed_gives_distinct_decorrelated_streams() {
    // Distinct seeds for distinct trials (the old `seed ^ trial * const`
    // scheme produced correlated streams for adjacent trials).
    let mut seeds: Vec<u64> = (0..256).map(|t| derive_trial_seed(SEED, t)).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 256, "trial seeds collide");

    // Changing the master changes every trial seed.
    for t in 0..64 {
        assert_ne!(derive_trial_seed(SEED, t), derive_trial_seed(SEED + 1, t));
    }

    // Adjacent trials produce uncorrelated bit streams: the first draws
    // should differ in roughly half their bits, not one or two.
    let a = Rand::for_trial(SEED, 41).next_u64();
    let b = Rand::for_trial(SEED, 42).next_u64();
    let hamming = (a ^ b).count_ones();
    assert!(
        (16..=48).contains(&hamming),
        "adjacent trial streams look correlated (hamming {hamming})"
    );
}

#[test]
fn link_runners_agree_and_are_thread_invariant() {
    let sc = scenario();
    let budget = TrialBudget { max_trials: 500 };

    // Fast (BER-only) and full (BER + acquisition) runners must count the
    // same bit errors: same trials, same per-trial seeds, same BER path.
    let fast = run_ber_fast_budgeted(&sc, 24, 12, 100_000, budget);
    let full = run_ber_budgeted(&sc, 24, 12, 100_000, budget);
    assert_eq!(*fast, full.ber, "fast/full BER counters diverge");
    assert!(!fast.stop.truncated());

    // Thread invariance on the real link, driven through the public env
    // knob (safe even if another test races: determinism means the result
    // cannot depend on the resolved count).
    std::env::set_var("UWB_THREADS", "4");
    let threaded = run_ber_fast_budgeted(&sc, 24, 12, 100_000, budget);
    std::env::set_var("UWB_THREADS", "1");
    let serial = run_ber_fast_budgeted(&sc, 24, 12, 100_000, budget);
    std::env::remove_var("UWB_THREADS");
    assert_eq!(*threaded, *serial, "link BER depends on thread count");
    assert_eq!(threaded.stop, serial.stop);
    assert_eq!(threaded.stats.trials, serial.stats.trials);
}

#[test]
fn truncation_is_reported_not_silent() {
    // Impossible error target + tiny budget: the old runner stopped at a
    // hard-coded 10 000 trials and returned an ordinary-looking outcome.
    // Now the stop reason says so.
    let run = run_ber_fast_budgeted(&scenario(), 24, u64::MAX, u64::MAX, TrialBudget {
        max_trials: 3,
    });
    assert_eq!(run.stop, LinkStopReason::Truncated);
    assert!(run.stop.truncated());
    assert_eq!(run.stats.trials, 3);
}

#[test]
fn thread_resolution_precedence() {
    assert_eq!(resolve_threads(Some(5)), 5);
    assert!(resolve_threads(None) >= 1);
}

#[test]
fn telemetry_is_thread_invariant_on_the_real_link() {
    // The determinism contract extends to the telemetry snapshot: stage
    // call counts, event counts, and histogram bins come from per-chunk
    // thread-local deltas merged in chunk order, so the deterministic view
    // must be bit-identical for any worker count. (Stage nanoseconds are
    // wall-clock and deliberately excluded from both the fingerprint and
    // `to_json_deterministic`.)
    let sc = scenario();
    let budget = TrialBudget { max_trials: 300 };

    std::env::set_var("UWB_THREADS", "1");
    let serial = run_ber_fast_budgeted(&sc, 24, 12, 80_000, budget);
    std::env::set_var("UWB_THREADS", "4");
    let threaded = run_ber_fast_budgeted(&sc, 24, 12, 80_000, budget);
    std::env::remove_var("UWB_THREADS");

    assert_eq!(*serial, *threaded, "BER counters diverged");
    assert_eq!(
        serial.stats.telemetry.to_json_deterministic(),
        threaded.stats.telemetry.to_json_deterministic(),
        "deterministic telemetry view depends on thread count"
    );
    assert_eq!(
        serial.stats.telemetry.fingerprint(),
        threaded.stats.telemetry.fingerprint(),
        "telemetry fingerprint depends on thread count"
    );

    // When the obs feature is on, the fast path must have produced per-stage
    // stats covering every merged trial.
    if uwb_obs::enabled() {
        let telem = &serial.stats.telemetry;
        assert!(!telem.is_empty(), "instrumented run yielded no telemetry");
        for stage in ["tx", "awgn", "rx_chanest", "rx_rake"] {
            let st = telem
                .stage(stage)
                .unwrap_or_else(|| panic!("stage {stage:?} missing from telemetry"));
            assert_eq!(
                st.calls, serial.stats.trials,
                "stage {stage:?} call count != merged trials"
            );
        }
    } else {
        assert!(serial.stats.telemetry.is_empty(), "no-op build produced telemetry");
    }
}

#[test]
fn network_run_is_thread_invariant_including_telemetry() {
    // The whole-network determinism contract: an 8-user piconet (round-robin
    // across the band plan, so adjacent-channel coupling is active) produces
    // bit-identical per-link error counters AND telemetry fingerprints for
    // 1 vs 8 worker threads. Thread counts are pinned through the engine's
    // explicit override so this test cannot race other tests on the
    // `UWB_THREADS` environment variable.
    let mut sc = uwb_net::NetScenario::ring(8, 7.0, SEED ^ 0xA3);
    sc.rounds = 12;
    let plan = uwb_net::plan_network(&sc);

    let serial = uwb_net::run_plan_threads(plan.clone(), 1);
    let threaded = uwb_net::run_plan_threads(plan, 8);

    for l in 0..sc.len() {
        assert_eq!(
            serial.links[l].counter, threaded.links[l].counter,
            "link {l}'s error counter depends on thread count"
        );
        assert_eq!(serial.links[l].packets, threaded.links[l].packets);
        assert_eq!(serial.links[l].packets_bad, threaded.links[l].packets_bad);
    }
    assert_eq!(
        serial.aggregate_throughput_bps.to_bits(),
        threaded.aggregate_throughput_bps.to_bits(),
        "aggregate throughput depends on thread count"
    );
    assert_eq!(
        serial.stats.telemetry.to_json_deterministic(),
        threaded.stats.telemetry.to_json_deterministic(),
        "deterministic telemetry view depends on thread count"
    );
    assert_eq!(
        serial.stats.telemetry.fingerprint(),
        threaded.stats.telemetry.fingerprint(),
        "network telemetry fingerprint depends on thread count"
    );

    if uwb_obs::enabled() {
        let telem = &serial.stats.telemetry;
        assert!(!telem.is_empty(), "instrumented network run yielded no telemetry");
        // One scheduling span per lazy record synthesis (every link
        // transmits once per round); one mix + one reception per link per
        // round.
        let rounds = serial.stats.trials;
        let n = sc.len() as u64;
        for (stage, expect) in [
            ("net_schedule", rounds * n),
            ("net_mix", rounds * n),
            ("net_rx", rounds * n),
        ] {
            let st = telem
                .stage(stage)
                .unwrap_or_else(|| panic!("stage {stage:?} missing from network telemetry"));
            assert_eq!(st.calls, expect, "stage {stage:?} call count");
        }
    }
}

#[test]
fn truncated_run_telemetry_is_thread_invariant() {
    // Truncation emits a deterministic `run_truncated` event on the
    // coordinating thread; overrun chunks beyond the stop boundary are
    // discarded together with their telemetry.
    let sc = scenario();
    let budget = TrialBudget { max_trials: 9 };
    std::env::set_var("UWB_THREADS", "1");
    let a = run_ber_fast_budgeted(&sc, 24, u64::MAX, u64::MAX, budget);
    std::env::set_var("UWB_THREADS", "3");
    let b = run_ber_fast_budgeted(&sc, 24, u64::MAX, u64::MAX, budget);
    std::env::remove_var("UWB_THREADS");

    assert_eq!(a.stop, LinkStopReason::Truncated);
    assert_eq!(b.stop, LinkStopReason::Truncated);
    assert_eq!(
        a.stats.telemetry.fingerprint(),
        b.stats.telemetry.fingerprint(),
        "truncated-run telemetry depends on thread count"
    );
    if uwb_obs::enabled() {
        assert_eq!(a.stats.telemetry.event_count("run_truncated"), 1);
        assert_eq!(b.stats.telemetry.event_count("run_truncated"), 1);
    }
}
