//! Integration: failure injection. The receiver must degrade loudly and
//! safely — wrong results must surface as errors, never as silently wrong
//! payloads — under clipping, saturation, truncation, and hostile inputs.

use uwb::phy::{Gen2Config, Gen2Receiver, Gen2Transmitter, PhyError};
use uwb::sim::{Interferer, Rand};
use uwb_dsp::Complex;

fn cfg() -> Gen2Config {
    Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    }
}

fn check_no_silent_corruption(
    rx: &Gen2Receiver,
    samples: &[Complex],
    expected: &[u8],
) -> &'static str {
    match rx.receive_packet(samples) {
        Ok(p) if p.payload == expected => "ok",
        Ok(p) => panic!(
            "SILENT CORRUPTION: decoded {} bytes != expected {} bytes",
            p.payload.len(),
            expected.len()
        ),
        Err(PhyError::SyncFailed) => "sync_failed",
        Err(PhyError::CrcMismatch) => "crc",
        Err(PhyError::HeaderInvalid) => "header",
        Err(PhyError::TruncatedInput) => "truncated",
        Err(e) => panic!("unexpected error class: {e}"),
    }
}

#[test]
fn hard_clipping_survivable_or_loud() {
    let config = cfg();
    let tx = Gen2Transmitter::new(config.clone()).unwrap();
    let rx = Gen2Receiver::new(config).unwrap();
    let payload = vec![0x5Au8; 32];
    let burst = tx.transmit_packet(&payload).unwrap();
    // Clip at 30% of peak: heavy nonlinearity, but BPSK pulses survive
    // clipping well (sign-preserving).
    let peak = burst.samples.iter().fold(0.0f64, |m, z| m.max(z.norm()));
    let limit = 0.3 * peak;
    let clipped: Vec<Complex> = burst
        .samples
        .iter()
        .map(|z| {
            if z.norm() > limit {
                *z * (limit / z.norm())
            } else {
                *z
            }
        })
        .collect();
    let outcome = check_no_silent_corruption(&rx, &clipped, &payload);
    assert_eq!(outcome, "ok", "clipping should be survivable for BPSK");
}

#[test]
fn record_truncated_mid_payload() {
    let config = cfg();
    let tx = Gen2Transmitter::new(config.clone()).unwrap();
    let rx = Gen2Receiver::new(config).unwrap();
    let payload = vec![0x77u8; 128];
    let burst = tx.transmit_packet(&payload).unwrap();
    // Keep the preamble + header but cut half the payload.
    let cut = burst.samples.len() * 2 / 3;
    let outcome = check_no_silent_corruption(&rx, &burst.samples[..cut], &payload);
    assert_ne!(outcome, "ok", "truncated packet cannot decode");
}

#[test]
fn zero_and_constant_inputs() {
    let config = cfg();
    let rx = Gen2Receiver::new(config).unwrap();
    let zeros = vec![Complex::ZERO; 20_000];
    assert!(matches!(
        rx.receive_packet(&zeros),
        Err(PhyError::SyncFailed)
    ));
    let dc = vec![Complex::new(0.7, -0.7); 20_000];
    assert!(matches!(rx.receive_packet(&dc), Err(PhyError::SyncFailed)));
}

#[test]
fn interferer_only_does_not_sync() {
    let config = cfg();
    let rx = Gen2Receiver::new(config.clone()).unwrap();
    let mut rng = Rand::new(9);
    let tone = Interferer::cw(120e6, 1.0).generate(30_000, config.sample_rate.as_hz(), &mut rng);
    assert!(matches!(
        rx.receive_packet(&tone),
        Err(PhyError::SyncFailed)
    ));
}

#[test]
fn wrong_config_cross_decode_fails_loudly() {
    // TX with FEC, RX without: header announces FEC, lengths disagree —
    // must error, never return garbage as Ok.
    let mut tx_cfg = cfg();
    tx_cfg.fec = Some(uwb::phy::ConvCode::k3());
    let rx_cfg = cfg();
    let tx = Gen2Transmitter::new(tx_cfg).unwrap();
    let rx = Gen2Receiver::new(rx_cfg).unwrap();
    let payload = vec![0xABu8; 24];
    let burst = tx.transmit_packet(&payload).unwrap();
    // A loud failure is the expected outcome; Ok must carry the exact bytes.
    if let Ok(p) = rx.receive_packet(&burst.samples) {
        assert_eq!(p.payload, payload, "silent corruption");
    }
}

#[test]
fn preamble_only_no_data() {
    // A signal that contains the preamble but stops right after it: sync
    // succeeds, decode must fail loudly.
    let config = cfg();
    let tx = Gen2Transmitter::new(config.clone()).unwrap();
    let rx = Gen2Receiver::new(config.clone()).unwrap();
    let burst = tx.transmit_packet(&[0u8; 64]).unwrap();
    let preamble_samples = config.preamble_length()
        * config.preamble_repeats
        * config.samples_per_slot()
        + burst.slot0_center;
    let outcome =
        check_no_silent_corruption(&rx, &burst.samples[..preamble_samples], &[0u8; 64]);
    assert_ne!(outcome, "ok");
}

#[test]
fn enormous_amplitude_input() {
    // 1e9x scale: AGC must normalize, nothing overflows.
    let config = cfg();
    let tx = Gen2Transmitter::new(config.clone()).unwrap();
    let rx = Gen2Receiver::new(config).unwrap();
    let payload = vec![0x42u8; 16];
    let burst = tx.transmit_packet(&payload).unwrap();
    let huge: Vec<Complex> = burst.samples.iter().map(|&z| z * 1e9).collect();
    let packet = rx.receive_packet(&huge).expect("AGC should normalize");
    assert_eq!(packet.payload, payload);
    let tiny: Vec<Complex> = burst.samples.iter().map(|&z| z * 1e-9).collect();
    let packet = rx.receive_packet(&tiny).expect("AGC should normalize");
    assert_eq!(packet.payload, payload);
}
