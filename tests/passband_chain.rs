//! Integration: the full direct-conversion signal path at RF passband —
//! baseband pulses → quadrature upconversion to a 14-plan channel → planar
//! antenna model → LNA → zero-IF I/Q downconversion → decimation back to
//! the back-end rate → packet decode. This exercises the architecture of
//! paper Fig. 3 end to end (spans uwb-phy, uwb-rf, uwb-sim, uwb-dsp).

use uwb::dsp::resample::{decimate, upsample};
use uwb::phy::{Gen2Config, Gen2Receiver, Gen2Transmitter};
use uwb::rf::{IqImpairments, LocalOscillator, RxChain, TxChain};
use uwb::sim::time::SampleRate;
use uwb::sim::{Antenna, Rand};

const PASSBAND_FS: f64 = 32e9;
const RATIO: usize = 32;

fn passband_round_trip(impairments: IqImpairments, cfo_ppm: f64, seed: u64) -> Vec<u8> {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let tx_phy = Gen2Transmitter::new(config.clone()).expect("tx");
    let rx_phy = Gen2Receiver::new(config.clone()).expect("rx");
    let payload = b"zero-IF passband chain".to_vec();
    let burst = tx_phy.transmit_packet(&payload).expect("frame");

    // Interpolate the 1 GS/s baseband to the passband simulation rate.
    let bb_32g = upsample(&burst.samples, RATIO, 8);

    // Upconvert to the channel carrier and radiate through the antenna.
    let fs_pass = SampleRate::new(PASSBAND_FS);
    let carrier = config.channel.center();
    let tx_rf = TxChain::new(carrier, 0.01); // -20 dBm: linear for the LNA
    let passband = tx_rf.transmit(&bb_32g, fs_pass);
    let antenna = Antenna::uwb_elliptical();
    let radiated = antenna.apply(&passband, fs_pass);

    // Receive: LNA -> impaired zero-IF downconversion -> AGC.
    let mut rng = Rand::new(seed);
    let lo = LocalOscillator::with_impairments(carrier, cfo_ppm, 0.0);
    let mut rx_rf = RxChain::new(carrier)
        .with_lo(lo)
        .with_impairments(impairments);
    let bb_rx_32g = rx_rf.receive(&radiated, fs_pass, &mut rng);

    // Decimate back to the digital back end's rate and decode.
    let bb_rx = decimate(&bb_rx_32g, RATIO);
    assert!((bb_rx.len() as f64 / burst.samples.len() as f64 - 1.0).abs() < 0.01);
    let packet = rx_phy.receive_packet(&bb_rx).expect("packet");
    packet.payload
}

#[test]
fn ideal_front_end() {
    let payload = passband_round_trip(IqImpairments::ideal(), 0.0, 1);
    assert_eq!(payload, b"zero-IF passband chain");
}

#[test]
fn typical_iq_impairments() {
    // 0.5 dB gain imbalance, 3 deg phase error, DC offsets: the DC-offset
    // and image terms must be absorbed by the back end.
    let payload = passband_round_trip(IqImpairments::typical(), 0.0, 2);
    assert_eq!(payload, b"zero-IF passband chain");
}

#[test]
fn small_cfo_survives_short_packet() {
    // 1 ppm at ~5 GHz = 5 kHz; over a ~13 µs packet that is ~0.4 rad of
    // rotation — within what the RAKE's per-packet channel estimate absorbs.
    let payload = passband_round_trip(IqImpairments::ideal(), 1.0, 3);
    assert_eq!(payload, b"zero-IF passband chain");
}

#[test]
fn antenna_bandpass_preserves_in_band_pulse() {
    // Direct check that the antenna model passes channel-3 energy.
    let fs = SampleRate::new(PASSBAND_FS);
    let antenna = Antenna::uwb_elliptical();
    let config = Gen2Config::nominal_100mbps();
    let shape = uwb::phy::PulseShape::gen2_default();
    let bb: Vec<uwb_dsp::Complex> = shape.generate_complex(SampleRate::new(PASSBAND_FS));
    let pass = TxChain::new(config.channel.center(), 0.01).transmit(&bb, fs);
    let out = antenna.apply(&pass, fs);
    let e_in: f64 = pass.iter().map(|x| x * x).sum();
    let e_out: f64 = out.iter().map(|x| x * x).sum();
    assert!(e_out / e_in > 0.5, "antenna ate the pulse: {}", e_out / e_in);
}
