//! Integration: complete gen2 packets across configurations, channels and
//! impairments (spans uwb-phy, uwb-sim, uwb-adc, uwb-platform).

use uwb::phy::{ConvCode, Gen2Config, Gen2Receiver, Gen2Transmitter, Modulation, PhyError};
use uwb::sim::awgn::add_awgn_complex;
use uwb::sim::{ChannelModel, ChannelRealization, Rand};

fn round_trip(config: &Gen2Config, payload: &[u8], channel: ChannelModel, noise_rel: f64, seed: u64) {
    let tx = Gen2Transmitter::new(config.clone()).expect("tx");
    let rx = Gen2Receiver::new(config.clone()).expect("rx");
    let burst = tx.transmit_packet(payload).expect("frame");
    let mut rng = Rand::new(seed);
    let ch = ChannelRealization::generate(channel, &mut rng);
    let through = ch.apply(&burst.samples, config.sample_rate);
    let p = uwb_dsp::complex::mean_power(&through);
    let noisy = if noise_rel > 0.0 {
        add_awgn_complex(&through, p * noise_rel, &mut rng)
    } else {
        through
    };
    let packet = rx.receive_packet(&noisy).expect("receive");
    assert_eq!(packet.payload, payload, "payload mismatch");
}

#[test]
fn all_modulations_over_awgn() {
    for modulation in Modulation::all() {
        let config = Gen2Config {
            modulation,
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        };
        round_trip(&config, b"modulation integration", ChannelModel::Awgn, 0.05, 1);
    }
}

#[test]
fn fec_and_spreading_over_cm1() {
    let config = Gen2Config {
        fec: Some(ConvCode::k3()),
        pulses_per_bit: 2,
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    round_trip(&config, &[0x5A; 48], ChannelModel::Cm1, 0.1, 2);
}

#[test]
fn k7_fec_over_cm2() {
    let config = Gen2Config {
        fec: Some(ConvCode::k7()),
        preamble_repeats: 3,
        ..Gen2Config::nominal_100mbps()
    };
    round_trip(&config, &[0x77; 32], ChannelModel::Cm2, 0.15, 3);
}

#[test]
fn severe_multipath_cm3_with_more_fingers() {
    let config = Gen2Config {
        rake_fingers: 16,
        preamble_repeats: 3,
        ..Gen2Config::nominal_100mbps()
    };
    round_trip(&config, &[0x12; 40], ChannelModel::Cm3, 0.05, 5);
}

#[test]
fn various_payload_sizes() {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    for (i, len) in [0usize, 1, 13, 255, 1000].into_iter().enumerate() {
        let payload: Vec<u8> = (0..len).map(|k| (k * 31 + i) as u8).collect();
        round_trip(&config, &payload, ChannelModel::Awgn, 0.02, 10 + i as u64);
    }
}

#[test]
fn low_resolution_adc_still_decodes() {
    for bits in [1u32, 2, 4] {
        let config = Gen2Config {
            adc_bits: bits,
            preamble_repeats: 3,
            ..Gen2Config::nominal_100mbps()
        };
        round_trip(&config, &[0xAB; 24], ChannelModel::Awgn, 0.25, 20 + bits as u64);
    }
}

#[test]
fn alternate_channels_and_prf() {
    // Different sub-band and a 50 MHz PRF (20 samples/slot).
    let config = Gen2Config {
        channel: uwb::phy::Channel::new(10).expect("channel"),
        prf: uwb::sim::Hertz::from_mhz(50.0),
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    assert_eq!(config.samples_per_slot(), 20);
    round_trip(&config, &[0xF0; 20], ChannelModel::Cm1, 0.1, 30);
}

#[test]
fn corrupted_payload_is_rejected_not_miscredited() {
    // At hopeless SNR the receiver must fail loudly (sync or CRC), never
    // return a wrong payload as Ok.
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let tx = Gen2Transmitter::new(config.clone()).expect("tx");
    let rx = Gen2Receiver::new(config.clone()).expect("rx");
    let payload = vec![0xEEu8; 64];
    let burst = tx.transmit_packet(&payload).expect("frame");
    let mut rng = Rand::new(40);
    let p = uwb_dsp::complex::mean_power(&burst.samples);
    let hopeless = add_awgn_complex(&burst.samples, p * 300.0, &mut rng);
    match rx.receive_packet(&hopeless) {
        Ok(packet) => assert_eq!(packet.payload, payload, "silent corruption"),
        Err(PhyError::SyncFailed)
        | Err(PhyError::CrcMismatch)
        | Err(PhyError::HeaderInvalid)
        | Err(PhyError::TruncatedInput) => {}
        Err(e) => panic!("unexpected error {e}"),
    }
}
