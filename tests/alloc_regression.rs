//! Allocation-regression gate for the zero-allocation DSP kernel layer.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after one
//! warm-up trial has populated every pooled buffer (worker scratch, FFT
//! plans, packet frame storage), subsequent gen2 fast-path trials must
//! perform **zero** heap allocations. This pins the PR's core contract: the
//! steady-state Monte-Carlo inner loop never touches the allocator.
//!
//! This integration-test binary deliberately contains a single `#[test]` so
//! no concurrently running test can pollute the allocation counter. The
//! matching 1-vs-N-thread determinism gate lives in
//! `tests/montecarlo_determinism.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use uwb_phy::Gen2Config;
use uwb_platform::link::{LinkScenario, LinkWorker};
use uwb_platform::ErrorCounter;
use uwb_sim::Rand;

/// System allocator wrapper that counts every allocation entry point.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that grows is a fresh allocation as far as the
        // zero-alloc contract is concerned.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Steady-state gen2 fast-path trials allocate nothing: warm one trial,
/// then run many more and require the global allocation counter to stand
/// still. Uses the same smoke scenario as the Monte-Carlo engine and
/// `dspbench` (AWGN, `preamble_repeats = 2`, 24-byte payload).
#[test]
fn gen2_fast_path_steady_state_is_allocation_free() {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let scenario = LinkScenario::awgn(config, 6.0, 20050307);
    let mut worker = LinkWorker::new(&scenario);
    let mut counter = ErrorCounter::default();

    // Warm-up: builds FFT plans (cached per thread), sizes every pooled
    // buffer in the worker, and settles the payload/frame storage.
    for t in 0..3 {
        let mut rng = Rand::for_trial(scenario.seed, t);
        worker.trial_ber(&scenario, 24, &mut rng, &mut counter);
    }

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    for t in 0..200 {
        let mut rng = Rand::for_trial(scenario.seed, t);
        worker.trial_ber(&scenario, 24, &mut rng, &mut counter);
    }
    let after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state fast-path trials must not allocate ({} allocations \
         across 200 trials)",
        after - before
    );
    // Sanity: the loop actually demodulated bits.
    assert!(counter.total > 0, "trials produced no bits");
}
