//! Allocation-regression gate for the zero-allocation DSP kernel layer.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after one
//! warm-up trial has populated every pooled buffer (worker scratch, FFT
//! plans, packet frame storage), subsequent gen2 fast-path trials must
//! perform **zero** heap allocations. This pins the PR's core contract: the
//! steady-state Monte-Carlo inner loop never touches the allocator.
//!
//! This integration-test binary deliberately contains a single `#[test]` so
//! no concurrently running test can pollute the allocation counter. The
//! matching 1-vs-N-thread determinism gate lives in
//! `tests/montecarlo_determinism.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use uwb_net::{plan_network, NetAccumulator, NetScenario, NetWorker};
use uwb_phy::Gen2Config;
use uwb_platform::link::{BatchScratch, LinkScenario, LinkWorker};
use uwb_platform::ErrorCounter;
use uwb_sim::Rand;

/// System allocator wrapper that counts every allocation entry point.
///
/// Counts are kept **per thread** (const-init TLS cell, itself
/// allocation-free) in addition to the global total: the libtest harness's
/// main thread lazily initializes its mpmc receive context *while the test
/// thread runs*, so a process-global count intermittently blames the gate
/// for two harness-owned allocations. The contract under test is "the trial
/// loop on *this* thread allocates nothing", which is exactly what the
/// thread-local count measures.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    static THREAD_ALLOC_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Counts one allocator entry on this thread. `try_with` because the
/// allocator can be entered during TLS teardown, when the cell is gone.
fn count() {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let _ = THREAD_ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
}

/// This thread's allocation count so far.
fn thread_allocs() -> u64 {
    THREAD_ALLOC_CALLS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that grows is a fresh allocation as far as the
        // zero-alloc contract is concerned.
        count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Steady-state gen2 fast-path trials allocate nothing: warm one trial,
/// then run many more and require the global allocation counter to stand
/// still. Uses the same smoke scenario as the Monte-Carlo engine and
/// `dspbench` (AWGN, `preamble_repeats = 2`, 24-byte payload).
///
/// The same gate covers the *streamed* synthesis path
/// (`trial_ber_streamed`): after warm-up, block-based trials must also add
/// zero allocations — the streaming operators draw all per-block workspace
/// from the worker's scratch pool and carry their state in reused storage.
/// (Both sections live in this one `#[test]` so no concurrent test can
/// pollute the counter.)
#[test]
fn gen2_fast_path_steady_state_is_allocation_free() {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let scenario = LinkScenario::awgn(config, 6.0, 20050307);
    let mut worker = LinkWorker::new(&scenario);
    let mut counter = ErrorCounter::default();

    // Warm-up: builds FFT plans (cached per thread), sizes every pooled
    // buffer in the worker, and settles the payload/frame storage.
    for t in 0..3 {
        let mut rng = Rand::for_trial(scenario.seed, t);
        worker.trial_ber(&scenario, 24, &mut rng, &mut counter);
    }

    let before = thread_allocs();
    for t in 0..200 {
        let mut rng = Rand::for_trial(scenario.seed, t);
        worker.trial_ber(&scenario, 24, &mut rng, &mut counter);
    }
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "steady-state fast-path trials must not allocate ({} allocations \
         across 200 trials)",
        after - before
    );
    // Sanity: the loop actually demodulated bits.
    assert!(counter.total > 0, "trials produced no bits");

    // --- Streamed synthesis path: same contract at a finite block size. ---
    const BLOCK: usize = 4096;
    // Warm the streamed path's own storage (streaming channel taps/history).
    for t in 0..3 {
        let mut rng = Rand::for_trial(scenario.seed, t);
        worker.trial_ber_streamed(&scenario, 24, BLOCK, &mut rng, &mut counter);
    }

    let before = thread_allocs();
    for t in 0..200 {
        let mut rng = Rand::for_trial(scenario.seed, t);
        worker.trial_ber_streamed(&scenario, 24, BLOCK, &mut rng, &mut counter);
    }
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "steady-state streamed trials must not allocate ({} allocations \
         across 200 trials at block {})",
        after - before,
        BLOCK
    );

    // --- Batched stage-sweep path: same contract, 8 trials per batch. ---
    // The batch arenas, payload snapshots, and synthesis-metadata vectors
    // all ratchet to their high-water capacity during warm-up; warm batches
    // must add zero allocations.
    const BATCH: u64 = 8;
    let mut scratch = BatchScratch::new();
    for b in 0..3 {
        worker.trial_batch_ber_streamed(
            &scenario,
            24,
            BLOCK,
            b * BATCH..(b + 1) * BATCH,
            &mut scratch,
            &mut counter,
        );
    }

    let before = thread_allocs();
    for b in 0..25 {
        worker.trial_batch_ber_streamed(
            &scenario,
            24,
            BLOCK,
            b * BATCH..(b + 1) * BATCH,
            &mut scratch,
            &mut counter,
        );
    }
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "steady-state batched trials must not allocate ({} allocations \
         across 25 batches of {})",
        after - before,
        BATCH
    );

    // --- Network warm path: a 2-link co-channel piconet round must also
    //     be allocation-free. Each round runs two full clean syntheses,
    //     two superposition mixes (own + coupled foreign + AWGN), and two
    //     receptions — all out of `NetWorker`'s reused storage. ---
    let mut net_scenario = NetScenario::ring(2, 6.0, 20050314);
    net_scenario.policy = uwb_net::ChannelPolicy::Static(vec![
        uwb_phy::bandplan::Channel::new(3).unwrap(),
    ]);
    let plan = plan_network(&net_scenario);
    assert!(
        plan.coupling.iter().all(|row| !row.is_empty()),
        "the 2-link gate must exercise real co-channel mixing"
    );
    let mut net_worker = NetWorker::new(&plan);
    let mut acc = NetAccumulator::default();
    // Warm-up: sizes the per-link workers, the clean-synthesis table, and
    // the mix buffer.
    for r in 0..3 {
        net_worker.round(&plan, r, &mut acc);
    }

    let before = thread_allocs();
    for r in 0..100 {
        net_worker.round(&plan, r, &mut acc);
    }
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "steady-state network rounds must not allocate ({} allocations \
         across 100 two-link rounds)",
        after - before
    );
    assert!(
        acc.links.iter().all(|l| l.ber.total > 0),
        "network rounds produced no bits"
    );

    // --- 64-user sparse round: the arena-scheduled, event-driven network
    //     path must also be allocation-free once warm — lazy record
    //     synthesis into recycled arena slots, config-pooled workers,
    //     payload snapshots, and per-victim mixing all out of `NetWorker`'s
    //     preallocated storage. The finite coupling floor makes the graph
    //     sparse, so slots really are recycled mid-round. ---
    let mut city = NetScenario::ring(64, 6.0, 20050315);
    city.probe_spectral = false;
    city.coupling.floor_db = -60.0;
    let plan = plan_network(&city);
    let edges: usize = plan.coupling.iter().map(|r| r.len()).sum();
    assert!(edges > 0, "the 64-user gate must exercise real mixing");
    let mut net_worker = NetWorker::new(&plan);
    let mut acc = NetAccumulator::default();
    for r in 0..2 {
        net_worker.round(&plan, r, &mut acc);
    }

    let before = thread_allocs();
    for r in 2..6 {
        net_worker.round(&plan, r, &mut acc);
    }
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "steady-state 64-user rounds must not allocate ({} allocations \
         across 4 rounds)",
        after - before
    );
    assert!(
        acc.links.iter().all(|l| l.ber.total > 0),
        "64-user rounds produced no bits"
    );

    // --- MAC discrete-event trials: the warm steady-state loop (event
    //     heap, queue rings, record pool, mix buffer, telemetry names)
    //     must also be allocation-free. A saturated co-channel pair
    //     exercises every path: arrivals, queueing, carrier-sense defer,
    //     waveform synthesis into pooled records, overlap mixing, decode
    //     failures, ARQ retries, and record recycling. ---
    let mut mac_sc = uwb_mac::MacScenario::ring(2, 6.0, 1.5, 20050316);
    mac_sc.net.policy = uwb_net::ChannelPolicy::Static(vec![
        uwb_phy::bandplan::Channel::new(3).unwrap(),
    ]);
    mac_sc.horizon_slots = 200;
    let mac_plan = uwb_mac::plan_mac(&mac_sc);
    assert!(
        mac_plan.net.coupling.iter().all(|row| !row.is_empty()),
        "the MAC gate must exercise real co-channel mixing"
    );
    let mut mac_worker = uwb_mac::MacWorker::new(&mac_plan);
    let mut mac_acc = uwb_mac::MacAccumulator::default();
    // Warm-up: ratchets the event heap, pooled record buffers, and the
    // telemetry name registry to their high-water marks.
    for rep in 0..3 {
        mac_worker.trial(&mac_plan, rep, &mut mac_acc);
    }

    let before = thread_allocs();
    for rep in 3..8 {
        mac_worker.trial(&mac_plan, rep, &mut mac_acc);
    }
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "steady-state MAC trials must not allocate ({} allocations \
         across 5 saturated two-link trials)",
        after - before
    );
    assert!(
        mac_acc.links.iter().all(|l| l.delivered > 0),
        "MAC trials delivered no packets"
    );
}
