//! Repo-level gates for the streaming signal chain (`scripts/check.sh
//! stream`): the chunk-size invariance contract, end-to-end batch parity,
//! and bounded receiver memory.
//!
//! The property under test is the one that makes block streaming *safe to
//! adopt everywhere*: the partition of a record into blocks is
//! unobservable. Any random split of the impairment chain's input, and any
//! random split of the receiver's input, must produce bit-identical
//! records / identical decoded packets.

use proptest::prelude::*;
use std::sync::OnceLock;
use uwb::dsp::stream::BlockProcessor;
use uwb::dsp::{Complex, DspScratch};
use uwb::phy::{Gen2Config, Gen2Transmitter, ReceivedPacket, StreamRx};
use uwb::platform::link::{LinkScenario, LinkWorker};
use uwb::platform::ErrorCounter;
use uwb::sim::stream::{StreamingAwgn, StreamingChannel, StreamingInterferer};
use uwb::sim::sv_channel::{ChannelModel, ChannelRealization};
use uwb::sim::time::SampleRate;
use uwb::sim::{Interferer, Rand};

fn small_config() -> Gen2Config {
    Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    }
}

/// Deterministic pseudo-signal (not RNG-driven so the RNG draw order stays
/// reserved for the operators under test).
fn test_signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((0.137 * i as f64).sin(), (0.071 * i as f64).cos()))
        .collect()
}

/// Applies channel → CW interferer → AWGN to `input` split at the given
/// block lengths (cycled until the record is consumed), returning the full
/// impaired record including the flushed multipath tail.
fn impair_with_blocks(input: &[Complex], seed: u64, blocks: &[usize]) -> Vec<Complex> {
    let fs = SampleRate::from_gsps(1.0);
    let mut rng = Rand::new(seed);
    let ch = ChannelRealization::generate(ChannelModel::Cm2, &mut rng);
    let mut channel = StreamingChannel::from_realization(&ch, fs);
    let intf = Interferer::cw(150e6, 2.0);
    let mut interferer = StreamingInterferer::new(&intf, fs.as_hz(), &mut rng);
    let mut awgn = StreamingAwgn::new(0.3, rng.clone());
    let mut scratch = DspScratch::new();

    let mut out = Vec::with_capacity(input.len() + channel.tail_len());
    let mut start = 0;
    let mut bi = 0;
    while start < input.len() {
        let bl = blocks[bi % blocks.len()].max(1);
        bi += 1;
        let end = (start + bl).min(input.len());
        out.extend_from_slice(&input[start..end]);
        let block = &mut out[start..end];
        channel.process_block(block, &mut scratch);
        interferer.process_block(block, &mut scratch);
        awgn.process_block(block, &mut scratch);
        start = end;
    }
    let n = out.len();
    channel.flush_into(&mut out, &mut scratch);
    if out.len() > n {
        let tail = &mut out[n..];
        interferer.process_block(tail, &mut scratch);
        awgn.process_block(tail, &mut scratch);
    }
    out
}

/// Shared noisy three-packet capture for the receiver-side properties
/// (built once; proptest cases only re-chunk it).
fn capture() -> &'static (Gen2Config, Vec<Complex>, Vec<Vec<u8>>) {
    static CAPTURE: OnceLock<(Gen2Config, Vec<Complex>, Vec<Vec<u8>>)> = OnceLock::new();
    CAPTURE.get_or_init(|| {
        let config = small_config();
        let tx = Gen2Transmitter::new(config.clone()).expect("tx config");
        let mut rng = Rand::new(20050307);
        let payloads: Vec<Vec<u8>> = vec![
            b"stream parity 0".to_vec(),
            b"stream parity 1".to_vec(),
            b"p2".to_vec(),
        ];
        let mut record = vec![Complex::ZERO; 2500];
        for p in &payloads {
            let burst = tx.transmit_packet(p).expect("payload size");
            let ch = ChannelRealization::generate(ChannelModel::Cm1, &mut rng);
            record.extend(ch.apply(&burst.samples, config.sample_rate));
            record.extend(std::iter::repeat_n(Complex::ZERO, 2200));
        }
        let p = uwb_dsp::complex::mean_power(&record);
        let noisy = uwb::sim::awgn::add_awgn_complex(&record, p / 10.0, &mut rng);
        (config, noisy, payloads)
    })
}

/// Decodes the shared capture through a `StreamRx`, feeding it in blocks of
/// the given lengths (cycled).
fn decode_with_blocks(blocks: &[usize]) -> Vec<(usize, ReceivedPacket)> {
    let (config, capture, _) = capture();
    let mut rx = StreamRx::new(config.clone(), 64).expect("rx config");
    let mut start = 0;
    let mut bi = 0;
    while start < capture.len() {
        let bl = blocks[bi % blocks.len()].max(1);
        bi += 1;
        let end = (start + bl).min(capture.len());
        rx.push_block(&capture[start..end]);
        start = end;
    }
    rx.finish();
    rx.drain_packets().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Impairment chain (multipath + CW interferer + AWGN): any random
    /// block partition produces a bit-identical record, tail included.
    #[test]
    fn impairment_chain_is_partition_invariant(
        seed in 0u64..1000,
        blocks in prop::collection::vec(1usize..striding_max(), 1..8),
    ) {
        let input = test_signal(700);
        let whole = impair_with_blocks(&input, seed, &[input.len()]);
        let split = impair_with_blocks(&input, seed, &blocks);
        prop_assert_eq!(split.len(), whole.len());
        for (i, (s, w)) in split.iter().zip(&whole).enumerate() {
            prop_assert!(
                s.re.to_bits() == w.re.to_bits() && s.im.to_bits() == w.im.to_bits(),
                "sample {} differs: {:?} vs {:?} (blocks {:?})", i, s, w, &blocks
            );
        }
    }

    /// The streamed link trial is bit-identical to the batch trial on the
    /// AWGN scenario for any block length, seed, and payload size.
    #[test]
    fn streamed_link_trial_matches_batch(
        seed in 0u64..500,
        block_len in 1usize..20_000,
        payload_len in 8usize..64,
    ) {
        let sc = LinkScenario::awgn(small_config(), 5.0, seed);
        let mut worker = LinkWorker::new(&sc);
        let mut batch = ErrorCounter::default();
        let mut rng = Rand::for_trial(sc.seed, 0);
        worker.trial_ber(&sc, payload_len, &mut rng, &mut batch);
        let mut streamed = ErrorCounter::default();
        let mut rng = Rand::for_trial(sc.seed, 0);
        worker.trial_ber_streamed(&sc, payload_len, block_len, &mut rng, &mut streamed);
        prop_assert_eq!(batch, streamed);
    }

    /// `StreamRx` decodes the same packets (offsets and payloads) no matter
    /// how the capture is chunked.
    #[test]
    fn stream_rx_is_chunk_invariant(
        blocks in prop::collection::vec(1usize..4096, 1..6),
    ) {
        let whole = decode_with_blocks(&[usize::MAX / 2]);
        let (_, _, payloads) = capture();
        prop_assert_eq!(whole.len(), payloads.len(), "reference decode incomplete");
        let split = decode_with_blocks(&blocks);
        prop_assert_eq!(split.len(), whole.len());
        for ((off_s, pkt_s), (off_w, pkt_w)) in split.iter().zip(&whole) {
            prop_assert_eq!(off_s, off_w);
            prop_assert_eq!(&pkt_s.payload, &pkt_w.payload);
            prop_assert_eq!(pkt_s.header, pkt_w.header);
        }
    }
}

/// Largest random block length for the impairment-chain property — spans
/// sub-tail-length blocks up to whole-record blocks.
fn striding_max() -> usize {
    900
}

/// Receiver memory is bounded by the frame budget, not the stream length:
/// pushing a long noise-only stream (with a decodable frame embedded to
/// prove the scan is alive) never grows the buffer past a fixed budget.
#[test]
fn stream_rx_memory_is_bounded_by_frame_not_stream() {
    let (config, _, _) = capture();
    let tx = Gen2Transmitter::new(config.clone()).expect("tx config");
    let burst = tx.transmit_packet(b"bounded").expect("payload size");
    let mut rng = Rand::new(99);

    let mut rx = StreamRx::new(config.clone(), 64).expect("rx config");
    let mut pushed = 0usize;
    let mut capacity_after_warmup = 0usize;
    let mut noise_block = vec![Complex::ZERO; 2048];
    for round in 0..60 {
        // Mostly noise; every 10th round carries a frame.
        if round % 10 == 5 {
            rx.push_block(&burst.samples);
            pushed += burst.samples.len();
        }
        for z in noise_block.iter_mut() {
            *z = Complex::new(0.05 * rng.gaussian(), 0.05 * rng.gaussian());
        }
        rx.push_block(&noise_block);
        pushed += noise_block.len();
        if round == 20 {
            capacity_after_warmup = rx.buffer_capacity();
        }
    }
    rx.finish();

    assert!(pushed > 120_000, "stream too short to be meaningful");
    assert!(rx.packets().len() >= 5, "scan found {} packets", rx.packets().len());
    assert!(
        rx.buffer_capacity() <= capacity_after_warmup,
        "buffer kept growing after warm-up: {} -> {}",
        capacity_after_warmup,
        rx.buffer_capacity()
    );
    assert!(
        rx.buffer_capacity() < pushed / 8,
        "buffer capacity {} not bounded vs {} pushed",
        rx.buffer_capacity(),
        pushed
    );
}
