//! Integration: the paper's headline quantitative claims, as assertions.
//! These are the fast versions of the experiment binaries in `uwb-bench`.

use uwb::gen1::{Gen1Config, Gen1PowerModel};
use uwb::phy::power::PowerModel;
use uwb::phy::pulse::{measure_bandwidth, PulseShape};
use uwb::phy::{Channel, Gen2Config};
use uwb::platform::link::{run_ber_fast, LinkScenario};
use uwb::sim::time::SampleRate;
use uwb::sim::ChannelModel;

/// §3: "The system is designed to transmit 100 Mbps."
#[test]
fn gen2_rate_is_100mbps() {
    assert_eq!(Gen2Config::nominal_100mbps().bit_rate(), 100e6);
}

/// §2: "A wireless link of 193 kbps was demonstrated."
#[test]
fn gen1_rate_is_193kbps() {
    let r = Gen1Config::demonstrated_193kbps().bit_rate();
    assert!((r - 193e3).abs() / 193e3 < 0.01, "{r}");
}

/// §2: "packet synchronization is obtained in less than 70 µs".
#[test]
fn gen1_sync_under_70us() {
    assert!(Gen1Config::demonstrated_193kbps().sync_time_us() < 70.0);
}

/// §1: preamble duration "comparable with current wireless systems (~20 µs)".
#[test]
fn gen2_preamble_near_20us() {
    let mut cfg = Gen2Config::nominal_100mbps();
    cfg.preamble_repeats = 4;
    let d = cfg.preamble_duration_us();
    assert!(d < 20.0, "preamble {d} µs");
}

/// §3: "upconverted to one of 14 channels (sub-bands) in the 3.1-10.6 GHz
/// band".
#[test]
fn fourteen_channels_in_band() {
    assert_eq!(Channel::all().count(), 14);
    for ch in Channel::all() {
        assert!(ch.center().as_ghz() > 3.1 && ch.center().as_ghz() < 10.6);
    }
}

/// §3 / Fig. 4: 500 MHz bandwidth pulses.
#[test]
fn pulse_bandwidth_500mhz() {
    let fs = SampleRate::from_gsps(4.0);
    let p = PulseShape::gen2_default().generate(fs);
    let bw = measure_bandwidth(&p, fs, 10.0);
    assert!((bw.as_mhz() - 500.0).abs() < 75.0, "{}", bw.as_mhz());
}

/// §1: "more than half of the system power being dissipated in the digital
/// back end and the ADC" — both generations.
#[test]
fn power_fraction_over_half() {
    let g2 = PowerModel::cmos180().breakdown(&Gen2Config::nominal_100mbps());
    assert!(g2.digital_and_adc_fraction() > 0.5);
    let g1 = Gen1PowerModel::cmos180().breakdown(&Gen1Config::demonstrated_193kbps());
    assert!(g1.digital_and_adc_fraction() > 0.5);
}

/// §1: robust communication under severe multipath (~20 ns rms): the CM3
/// link still closes at a moderate Eb/N0.
#[test]
fn cm3_link_closes() {
    let config = Gen2Config {
        rake_fingers: 16,
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let c = run_ber_fast(
        &LinkScenario {
            channel: ChannelModel::Cm3,
            ..LinkScenario::awgn(config, 14.0, 7)
        },
        32,
        30,
        60_000,
    );
    assert!(c.rate() < 0.03, "CM3 at 14 dB: {}", c.rate());
}

/// §1: FCC limit constants.
#[test]
fn fcc_constants() {
    assert_eq!(uwb::sim::pathloss::FCC_LIMIT_DBM_PER_MHZ, -41.3);
    let p500 = uwb::sim::pathloss::max_tx_power_dbm(uwb::sim::Hertz::from_mhz(500.0));
    assert!((p500 + 14.31).abs() < 0.05);
}
