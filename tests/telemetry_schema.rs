//! Schema gate for `uwb-telemetry-v2`: the hand-rolled `RunStats::to_json`
//! output must stay machine-parseable.
//!
//! The run report is rendered without serde (the repo vendors no JSON
//! library), which means nothing at compile time stops a stray `NaN`, a
//! missing comma, or a renamed key from landing in `BENCH_*.json` consumers.
//! This test closes the loop with the strict in-repo parser
//! ([`uwb_obs::json::parse`]): it parses a real engine run's report and pins
//! the key set, the value types, and the finiteness of every number (the
//! parser rejects `NaN`/`Infinity` tokens outright — they are not JSON).

use uwb_obs::json::{parse, Json};
use uwb_phy::Gen2Config;
use uwb_platform::link::{run_ber_fast_budgeted, LinkScenario, TrialBudget};

const SEED: u64 = 20050311;

/// A real (small) engine run whose report we validate.
fn run_report() -> String {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let scenario = LinkScenario::awgn(config, 6.0, SEED);
    let run = run_ber_fast_budgeted(&scenario, 24, 10, 50_000, TrialBudget { max_trials: 64 });
    run.stats.to_json()
}

fn obj(v: &Json) -> &[(String, Json)] {
    v.as_obj().expect("expected a JSON object")
}

fn field<'a>(o: &'a [(String, Json)], key: &str) -> &'a Json {
    &o.iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing key {key:?}"))
        .1
}

#[test]
fn run_stats_json_parses_and_matches_schema() {
    let json = run_report();
    let root = parse(&json).expect("RunStats::to_json must be valid JSON");
    let o = obj(&root);

    // Exact top-level key set, in order (consumers key on the schema tag).
    let keys: Vec<&str> = o.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "schema",
            "trials",
            "trials_executed",
            "wall_ms",
            "threads",
            "trials_per_sec",
            "stop_reason",
            "truncated",
            "telemetry",
        ],
        "top-level key set drifted"
    );

    assert_eq!(field(o, "schema").as_str(), Some("uwb-telemetry-v2"));
    let trials = field(o, "trials").as_num().expect("trials must be a number");
    assert!(trials >= 1.0 && trials.fract() == 0.0, "trials must be a whole count");
    let executed = field(o, "trials_executed").as_num().expect("number");
    assert!(executed >= trials, "executed ({executed}) < merged ({trials})");
    let wall_ms = field(o, "wall_ms").as_num().expect("wall_ms must be a number");
    assert!(wall_ms.is_finite() && wall_ms >= 0.0);
    let threads = field(o, "threads").as_num().expect("number");
    assert!(threads >= 1.0 && threads.fract() == 0.0);
    // trials_per_sec is a finite number or an explicit null (untimed run) —
    // never NaN (the parser would already have rejected that).
    match field(o, "trials_per_sec") {
        Json::Null => {}
        v => assert!(v.as_num().expect("number or null").is_finite()),
    }
    assert!(field(o, "stop_reason").as_str().is_some());
    assert!(field(o, "truncated").as_bool().is_some());

    // The embedded telemetry object is the deterministic form: stages carry
    // name + calls only (no wall-clock ns), events name + count, hists
    // name/count/sum/bins, and (new in v2) quantiles
    // name/count/p50/p95/p99/max.
    let telem = obj(field(o, "telemetry"));
    let tkeys: Vec<&str> = telem.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(tkeys, ["stages", "events", "hists", "quantiles"]);

    let stages = field(telem, "stages").as_arr().expect("stages array");
    if uwb_obs::enabled() {
        assert!(!stages.is_empty(), "instrumented run produced no stage stats");
    }
    for st in stages {
        let st = obj(st);
        let keys: Vec<&str> = st.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["name", "calls"], "stage entry drifted (ns must stay out)");
        assert!(field(st, "name").as_str().is_some());
        assert!(field(st, "calls").as_num().expect("number") >= 1.0);
    }
    for ev in field(telem, "events").as_arr().expect("events array") {
        let ev = obj(ev);
        let keys: Vec<&str> = ev.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["name", "count"]);
        assert!(field(ev, "count").as_num().expect("number") >= 1.0);
    }
    for h in field(telem, "hists").as_arr().expect("hists array") {
        let h = obj(h);
        let keys: Vec<&str> = h.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["name", "count", "sum", "bins"]);
        let count = field(h, "count").as_num().expect("number");
        let mut bin_total = 0.0;
        for pair in field(h, "bins").as_arr().expect("bins array") {
            let pair = pair.as_arr().expect("bin pair");
            assert_eq!(pair.len(), 2, "bins are [bin, count] pairs");
            let bin = pair[0].as_num().expect("bin index");
            assert!((0.0..=63.0).contains(&bin), "log2 bin out of range: {bin}");
            bin_total += pair[1].as_num().expect("bin count");
        }
        assert_eq!(bin_total, count, "histogram bins must sum to its count");
    }

    // v2 quantile digests: every entry carries finite, ordered percentiles.
    let quantiles = field(telem, "quantiles").as_arr().expect("quantiles array");
    let mut saw_trial_bit_errors = false;
    for q in quantiles {
        let q = obj(q);
        let keys: Vec<&str> = q.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["name", "count", "p50", "p95", "p99", "max"]);
        let name = field(q, "name").as_str().expect("digest name");
        saw_trial_bit_errors |= name == "trial_bit_errors";
        assert!(field(q, "count").as_num().expect("number") >= 1.0);
        let p50 = field(q, "p50").as_num().expect("p50 number");
        let p95 = field(q, "p95").as_num().expect("p95 number");
        let p99 = field(q, "p99").as_num().expect("p99 number");
        let max = field(q, "max").as_num().expect("max number");
        for v in [p50, p95, p99, max] {
            assert!(v.is_finite() && v >= 0.0, "{name}: non-finite percentile");
        }
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max, "{name}: unordered percentiles");
    }
    if uwb_obs::enabled() {
        assert!(
            saw_trial_bit_errors,
            "instrumented link run must report a trial_bit_errors digest"
        );
    }
}

#[test]
fn run_stats_json_has_no_non_finite_numbers() {
    // The strict parser rejects NaN / Infinity / -Infinity tokens, so a
    // successful parse already proves finiteness. Belt and braces: the raw
    // text must not smuggle them in as strings either.
    let json = run_report();
    parse(&json).expect("valid JSON");
    for needle in ["NaN", "nan", "Infinity", "inf"] {
        assert!(
            !json.contains(needle),
            "report text contains non-finite token {needle:?}: {json}"
        );
    }
}

#[test]
fn telemetry_json_roundtrips_through_the_parser() {
    // Both telemetry forms (timed and deterministic) parse; the timed form
    // adds exactly one key ("ns") per stage entry.
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let scenario = LinkScenario::awgn(config, 6.0, SEED);
    let run = run_ber_fast_budgeted(&scenario, 24, 5, 20_000, TrialBudget { max_trials: 16 });
    let timed = parse(&run.stats.telemetry.to_json()).expect("timed form parses");
    let det = parse(&run.stats.telemetry.to_json_deterministic()).expect("det form parses");
    let timed_stages = field(obj(&timed), "stages").as_arr().unwrap();
    let det_stages = field(obj(&det), "stages").as_arr().unwrap();
    assert_eq!(timed_stages.len(), det_stages.len());
    for (t, d) in timed_stages.iter().zip(det_stages) {
        assert_eq!(obj(t).len(), obj(d).len() + 1, "timed adds exactly `ns`");
        assert!(field(obj(t), "ns").as_num().expect("ns number") >= 0.0);
    }
}
