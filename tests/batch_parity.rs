//! Batch-width invariance gate for the structure-of-arrays trial runtime
//! (`scripts/check.sh batch`).
//!
//! The batched stage-sweep path (`LinkWorker::trial_batch_ber_streamed`
//! under `MonteCarlo::run_batched`) promises that the batch width `B` and
//! the worker-thread count are pure performance knobs: for any
//! `B ∈ {1, 2, 4, 8}` and any thread count, a run is **bit-identical** to
//! the `B = 1`, single-thread reference — BER counters, stop reason, trial
//! count, the order-independent telemetry fingerprint, the deterministic
//! telemetry JSON, and the rendered worst-trial flight-recorder report.
//!
//! The property holds because every trial re-derives its RNG from
//! `derive_trial_seed(master, t)` at each sweep boundary and the engine
//! merges chunk results in trial order, so neither the sweep interleaving
//! nor the scheduling can leak into any observable output.

use proptest::prelude::*;
use std::sync::OnceLock;
use uwb_phy::Gen2Config;
use uwb_platform::link::{
    run_ber_fast_streamed_tuned, BerRun, LinkScenario, TrialBudget, DEFAULT_STREAM_BLOCK,
};

/// Small-but-real operating point: 6 dB AWGN reaches the error target well
/// inside the trial budget, so the stop reason exercises the early-stop
/// path (not budget truncation) in every run.
fn scenario() -> LinkScenario {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    LinkScenario::awgn(config, 6.0, 20050307)
}

const PAYLOAD_LEN: usize = 24;
const TARGET_ERRORS: u64 = 12;
const MAX_BITS: u64 = 80_000;
const BUDGET: TrialBudget = TrialBudget { max_trials: 400 };

/// One run at the given batch width and thread count.
fn run_with(batch: u64, threads: usize) -> BerRun {
    run_ber_fast_streamed_tuned(
        &scenario(),
        PAYLOAD_LEN,
        DEFAULT_STREAM_BLOCK,
        TARGET_ERRORS,
        MAX_BITS,
        BUDGET,
        Some(batch),
        Some(threads),
    )
}

/// The `B = 1`, single-thread reference run (computed once; every property
/// case compares against this one).
fn reference() -> &'static BerRun {
    static REF: OnceLock<BerRun> = OnceLock::new();
    REF.get_or_init(|| run_with(1, 1))
}

/// Asserts the full observable surface of `run` matches the reference.
fn assert_matches_reference(run: &BerRun, batch: u64, threads: usize) {
    let reference = reference();
    let tag = format!("(B={batch}, threads={threads})");
    assert_eq!(run.counter, reference.counter, "BER counter differs {tag}");
    assert_eq!(run.stop, reference.stop, "stop reason differs {tag}");
    assert_eq!(run.stats.trials, reference.stats.trials, "trial count differs {tag}");
    assert_eq!(
        run.stats.telemetry.fingerprint(),
        reference.stats.telemetry.fingerprint(),
        "telemetry fingerprint differs {tag}"
    );
    assert_eq!(
        run.stats.telemetry.to_json_deterministic(),
        reference.stats.telemetry.to_json_deterministic(),
        "deterministic telemetry JSON differs {tag}"
    );
    assert_eq!(
        uwb_obs::recorder::render_report(&run.stats.telemetry.worst),
        uwb_obs::recorder::render_report(&reference.stats.telemetry.worst),
        "flight-recorder report differs {tag}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random (batch, threads) points from the gate grid all reproduce the
    /// reference bit-for-bit.
    #[test]
    fn batched_run_is_batch_and_thread_invariant(
        batch in prop_oneof![Just(1u64), Just(2u64), Just(4u64), Just(8u64)],
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let run = run_with(batch, threads);
        assert_matches_reference(&run, batch, threads);
    }
}

/// Exhaustive sweep of the acceptance grid `B ∈ {1, 2, 4, 8} ×
/// threads ∈ {1, 2, 4, 8}` — the proptest above samples this space, this
/// test guarantees every cell is covered in one `check.sh batch` run.
#[test]
fn batch_grid_is_exhaustively_invariant() {
    let reference = reference();
    assert!(
        !reference.stop.truncated(),
        "reference run truncated by the trial budget — the gate scenario \
         must reach its error target"
    );
    assert!(reference.counter.errors >= TARGET_ERRORS, "reference run found no errors");
    for batch in [1u64, 2, 4, 8] {
        for threads in [1usize, 2, 4, 8] {
            let run = run_with(batch, threads);
            assert_matches_reference(&run, batch, threads);
        }
    }
}

/// `UWB_BATCH` drives the default-path runners the same way the explicit
/// argument does: a run with the env var set equals the tuned run with the
/// same width. (Kept in this single-threaded-harness file because env vars
/// are process-global.)
#[test]
fn env_batch_override_matches_explicit_batch() {
    // Serialize against other tests in this binary touching the env.
    std::env::set_var("UWB_BATCH", "4");
    std::env::set_var("UWB_THREADS", "1");
    let via_env = uwb_platform::link::run_ber_fast_streamed_budgeted(
        &scenario(),
        PAYLOAD_LEN,
        DEFAULT_STREAM_BLOCK,
        TARGET_ERRORS,
        MAX_BITS,
        BUDGET,
    );
    std::env::remove_var("UWB_BATCH");
    std::env::remove_var("UWB_THREADS");
    let explicit = run_with(4, 1);
    assert_eq!(via_env.counter, explicit.counter);
    assert_eq!(via_env.stop, explicit.stop);
    assert_eq!(
        via_env.stats.telemetry.fingerprint(),
        explicit.stats.telemetry.fingerprint()
    );
    assert_matches_reference(&via_env, 4, 1);
}
