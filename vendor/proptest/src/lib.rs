//! Std-only stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x surface used by this
//! workspace's property tests: the [`proptest!`] macro, range / tuple /
//! `any` / [`Just`] / `prop_oneof!` / `prop::collection::vec` strategies,
//! [`Strategy::prop_map`], and the `prop_assert*` macros.
//!
//! Sampling is random (deterministic per test name + case index) and there
//! is **no shrinking**: a failing case panics immediately with the sampled
//! arguments included in the panic message via `prop_dump_args`.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Small deterministic generator (splitmix64) used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng {
            state: h.finish() ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Widening-multiply rejection sampling (Lemire).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n || low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A source of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Wraps a non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.uniform() * (self.end - self.start);
        v.min(self.end - f64::EPSILON * self.end.abs().max(1.0))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.uniform() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.uniform() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, wide-dynamic-range values (no NaN/inf — the real proptest
        // default also avoids them unless asked).
        let mag = 10f64.powf(rng.uniform() * 12.0 - 6.0);
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive size bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `elem`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with element strategy `elem` and the given size
    /// bounds (a `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Runner configuration (`cases` = number of sampled cases per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };

    /// Mirror of proptest's `prop` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test (no shrinking: plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(Box::new($s) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..(__config.cases as u64) {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_honour_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..10_000 {
            let x = Strategy::sample(&(3u32..13), &mut rng);
            assert!((3..13).contains(&x));
            let y = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&y));
            let z = Strategy::sample(&(5usize..=5), &mut rng);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..1_000 {
            let v = Strategy::sample(&prop::collection::vec(any::<u8>(), 1..40), &mut rng);
            assert!((1..40).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)].prop_map(|x: u8| x * 10);
        let mut rng = TestRng::for_case("oneof", 2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(Strategy::sample(&s, &mut rng));
        }
        assert_eq!(seen, [10u8, 20, 30].into_iter().collect());
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("det", 7);
        let mut b = TestRng::for_case("det", 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(x in 0u32..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flip;
        }
    }
}
