//! Std-only stand-in for the `criterion` crate.
//!
//! Implements the subset used by `crates/bench/benches/*`: groups, ids,
//! throughput annotation, and `Bencher::iter`. Each benchmark runs
//! `sample_size` timed iterations (after one warm-up) and reports
//! min / median / mean wall time per iteration, plus element throughput
//! when annotated. Passing `--test` (as `cargo test --benches` does) or
//! setting `CRITERION_QUICK=1` runs a single iteration per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        self.timings.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.timings.push(t0.elapsed());
        }
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion {
            sample_size: 30,
            quick,
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name.to_string(), None, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        label: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let samples = if self.quick { 1 } else { self.sample_size };
        let mut b = Bencher {
            samples,
            timings: Vec::new(),
        };
        f(&mut b);
        if b.timings.is_empty() {
            println!("{label:<48} (no measurement)");
            return;
        }
        b.timings.sort_unstable();
        let min = b.timings[0];
        let median = b.timings[b.timings.len() / 2];
        let mean = b.timings.iter().sum::<Duration>() / b.timings.len() as u32;
        let tput = match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / median.as_secs_f64().max(1e-12);
                format!("  {:.3} Melem/s", per_sec / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / median.as_secs_f64().max(1e-12);
                format!("  {:.3} MiB/s", per_sec / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{label:<48} min {} / median {} / mean {}{tput}",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        let t = self.throughput;
        self.c.run_one(label, t, f);
        self
    }

    /// Runs a benchmark with an explicit input reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        let t = self.throughput;
        self.c.run_one(label, t, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 1);
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", 1), &5u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).id, "f/42");
        assert_eq!(BenchmarkId::from_parameter("CM1").id, "CM1");
    }
}
