//! Quickstart: send one 100 Mbps pulsed-UWB packet over a noisy channel and
//! decode it.
//!
//! Run with: `cargo run --release --example quickstart`

use uwb::phy::{Gen2Config, Gen2Receiver, Gen2Transmitter};
use uwb::sim::awgn::add_noise_snr;
use uwb::sim::Rand;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's nominal operating point: channel 3 (~5 GHz), 100 MHz PRF,
    // BPSK at one pulse per bit = 100 Mbps, 5-bit ADCs, 4-bit channel
    // estimate, 8 RAKE fingers.
    let config = Gen2Config::nominal_100mbps();
    println!(
        "link: {} | {:.0} Mbps | {} pulse(s)/bit | {}-bit ADC",
        config.channel,
        config.bit_rate() / 1e6,
        config.pulses_per_bit,
        config.adc_bits
    );

    let tx = Gen2Transmitter::new(config.clone())?;
    let rx = Gen2Receiver::new(config)?;

    // Transmit a payload.
    let payload = b"Direct Conversion Pulsed UWB Transceiver (DATE 2005)".to_vec();
    let burst = tx.transmit_packet(&payload)?;
    println!(
        "burst: {} samples at {} ({:.2} µs on air)",
        burst.samples.len(),
        burst.sample_rate,
        burst.duration_us()
    );

    // Impair it: 10 dB per-sample SNR AWGN.
    let mut rng = Rand::new(2005);
    let (noisy, noise_power) = add_noise_snr(&burst.samples, 10.0, &mut rng);
    println!("channel: AWGN, noise power {noise_power:.4} (10 dB SNR)");

    // Receive: acquisition -> channel estimation -> RAKE -> decode.
    let packet = rx.receive_packet(&noisy)?;
    println!(
        "acquisition: offset {} samples, metric {:.2}, modeled search {:.1} µs",
        packet.acquisition.offset, packet.acquisition.metric, packet.acquisition.search_time_us
    );
    println!(
        "decoded {} bytes: {:?}",
        packet.payload.len(),
        String::from_utf8_lossy(&packet.payload)
    );
    assert_eq!(packet.payload, payload);
    println!("payload verified (CRC-32 ok)");
    Ok(())
}
