//! Multi-user piconet scaling demo: how aggregate goodput grows (and
//! per-link quality degrades) as 2 → 32 simultaneously operating piconets
//! share the 14-channel band plan.
//!
//! Three channel-allocation policies are compared at each network size:
//!
//! * **packed**  — everyone on channel 3 (the co-channel worst case)
//! * **spread**  — round-robin over all 14 channels (the band plan doing
//!   its job; beyond 14 users channels start to be reused)
//! * **aware**   — greedy measured-interference assignment: each link
//!   probes the candidates against the already-placed transmitters' real
//!   waveforms and takes the quietest channel
//!
//! Run with: `cargo run --release --example piconet`

use uwb::net::{run_network, ChannelPolicy, NetScenario};
use uwb::phy::bandplan::Channel;
use uwb::platform::Table;

fn main() {
    let seed = 0x2005_0314;
    let ebn0_db = 8.0;
    let rounds = 8;

    let mut table = Table::new(vec![
        "users",
        "policy",
        "channels",
        "worst BER",
        "mean PER",
        "aggregate Mbit/s",
    ]);

    for n in [2usize, 4, 8, 16, 32] {
        let policies: [(&str, ChannelPolicy); 3] = [
            ("packed", ChannelPolicy::Static(vec![Channel::new(3).unwrap()])),
            ("spread", ChannelPolicy::round_robin_all()),
            (
                "aware",
                ChannelPolicy::InterferenceAware(Channel::all().collect()),
            ),
        ];
        for (name, policy) in policies {
            let mut sc = NetScenario::ring(n, ebn0_db, seed ^ n as u64);
            sc.rounds = rounds;
            sc.policy = policy;
            let report = run_network(&sc);

            let mut used: Vec<usize> =
                report.links.iter().map(|l| l.channel.index()).collect();
            used.sort_unstable();
            used.dedup();
            let worst_ber = report
                .links
                .iter()
                .map(|l| l.ber())
                .fold(0.0f64, f64::max);
            let mean_per = report.links.iter().map(|l| l.per()).sum::<f64>() / n as f64;

            table.row(vec![
                n.to_string(),
                name.to_string(),
                used.len().to_string(),
                format!("{worst_ber:.2e}"),
                format!("{mean_per:.3}"),
                format!("{:.0}", report.aggregate_throughput_bps / 1e6),
            ]);
        }
    }

    println!("piconet scaling, Eb/N0 = {ebn0_db} dB, {rounds} rounds per point\n");
    print!("{table}");
    println!(
        "\npacked shares one 528 MHz channel; spread uses the full band plan;\n\
         aware probes real waveforms and dodges the loudest interferers."
    );
}
