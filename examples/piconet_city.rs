//! City-scale piconet demo: 10,000 simultaneously operating links on a
//! clustered floor plan, one full network round, end to end.
//!
//! This is the scaling showcase for the sparse interference graph and the
//! shared-waveform arena:
//!
//! * **Plan** — per-channel spatial grids enumerate ~O(N·k) candidate
//!   couplings instead of all N² pairs; anything below the −40 dB
//!   total-coupling floor is never even visited.
//! * **Measure** — each transmitter's clean waveform is synthesized once
//!   per round into a recycled arena slot and shared read-only by every
//!   coupled receiver, so peak waveform memory is the graph's overlap
//!   width (a few dozen records), not 10,000 records.
//!
//! Run with: `cargo run --release --example piconet_city`
//!
//! Options:
//!
//! * `--users N` — total link count (default 10,000; rounded down to a
//!   multiple of 10 links per cluster);
//! * `--trace out.json` — export the round's span timeline as Chrome Trace
//!   Event JSON (needs `--features obs-trace`; try `--users 1000` for a
//!   timeline Perfetto loads comfortably).

use std::time::Instant;
use uwb::net::{plan_network, run_plan_threads, NetScenario, RecordSchedule};

/// Extracts the value following `flag`, if present.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // 1,000 clusters × 10 links on a ~620 m square grid: 20 m cluster
    // pitch, 3 m cluster radius, 1 m links, round-robin over all 14
    // channels, spectral probing off (planning diagnostic only).
    let per_cluster = 10;
    let users: usize = arg_value(&args, "--users")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let clusters = (users / per_cluster).max(1);
    let trace_path = arg_value(&args, "--trace");
    let ebn0_db = 8.0;
    let mut sc = NetScenario::clustered_city(clusters, per_cluster, ebn0_db, 0x2005_0314);
    sc.rounds = 1;
    let n = sc.len();

    println!(
        "piconet city: {n} links ({clusters} clusters x {per_cluster}), \
         Eb/N0 = {ebn0_db} dB, coupling floor {} dB\n",
        sc.coupling.floor_db
    );

    // --- Plan: sparse graph + per-link probe measurement. ---
    let t0 = Instant::now();
    let plan = plan_network(&sc);
    let plan_s = t0.elapsed().as_secs_f64();

    let edges: usize = plan.coupling.iter().map(|r| r.len()).sum();
    let max_row = plan.coupling.iter().map(|r| r.len()).max().unwrap_or(0);
    let isolated = plan.coupling.iter().filter(|r| r.is_empty()).count();
    let schedule = RecordSchedule::build(n, &plan.coupling);
    println!("plan phase            {plan_s:>10.2} s");
    println!("directed edges        {edges:>10}   ({:.2} per node, dense would be {})",
        edges as f64 / n as f64, n - 1);
    println!("largest coupling row  {max_row:>10}");
    println!("isolated links        {isolated:>10}");
    println!(
        "arena size            {:>10}   live records max (vs {n} without sharing)",
        schedule.max_live()
    );

    // --- Measure: one event-driven round over the whole city. ---
    let t0 = Instant::now();
    let report = run_plan_threads(plan, 1);
    let round_s = t0.elapsed().as_secs_f64();
    let nodes_per_s = n as f64 / round_s;

    let errors: u64 = report.links.iter().map(|l| l.counter.errors).sum();
    let bad: u64 = report.links.iter().map(|l| l.packets_bad).sum();
    let worst_ber = report.links.iter().map(|l| l.ber()).fold(0.0f64, f64::max);
    println!("\nmeasurement round     {round_s:>10.2} s   ({nodes_per_s:.0} nodes/s, 1 thread)");
    println!("packets               {:>10}   ({bad} with errors)", n);
    println!("bit errors            {errors:>10}   (worst link BER {worst_ber:.2e})");
    println!(
        "aggregate goodput     {:>10.0} Mbit/s",
        report.aggregate_throughput_bps / 1e6
    );
    // Percentile digests over the round (per-link SINR and goodput, plus
    // per-decode bit errors) — the `uwb-telemetry-v2` quantile view.
    for d in &report.stats.telemetry.digests {
        println!(
            "digest {:<22} n={:<6} p50={:<8} p95={:<8} p99={:<8} max={}",
            d.name,
            d.count,
            d.quantile(0.50),
            d.quantile(0.95),
            d.quantile(0.99),
            d.max
        );
    }
    if !report.stats.telemetry.worst.is_empty() {
        print!("\n{}", uwb::obs::recorder::render_report(&report.stats.telemetry.worst));
    }
    if let Some(path) = &trace_path {
        if !uwb::obs::trace::enabled() {
            eprintln!(
                "warning: --trace {path}: this build records no spans; \
                 rebuild with `--features obs-trace`"
            );
        } else {
            let doc = uwb::obs::trace::export_chrome(&report.stats.telemetry.spans);
            std::fs::write(path, doc).expect("write trace");
            println!(
                "\ntrace: {} span(s) ({} dropped) -> {path}",
                report.stats.telemetry.spans.len(),
                report.stats.telemetry.spans_dropped
            );
        }
    }
    println!(
        "\nper-channel spatial grids keep plan enumeration near O(N.k); the\n\
         shared-waveform arena keeps round memory at the graph's overlap\n\
         width. Doubling the city doubles the work, not the memory."
    );
}
