//! Link adaptation walkthrough: the receiver measures the channel and
//! reconfigures itself (paper §3: trading power, complexity, QoS and rate) —
//! and every chosen operating point is then *verified* by measuring its BER
//! on the streamed fast path (`run_ber_fast_streamed`), block by block, the
//! way the real-time platform would.
//!
//! Run with: `cargo run --release --example adaptive_link`

use uwb::phy::power::PowerModel;
use uwb::phy::{ChannelConditions, Gen2Config, LinkAdapter};
use uwb::platform::link::{run_ber_fast_streamed, LinkScenario};
use uwb::sim::{ChannelModel, ChannelRealization, Rand};

fn main() {
    let adapter = LinkAdapter::new(
        Gen2Config {
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        },
        PowerModel::cmos180(),
    );
    let mut rng = Rand::new(77);

    // Walk through progressively worse environments; the delay spread comes
    // from actual Saleh-Valenzuela realizations.
    let environments = [
        ("desktop, line of sight", ChannelModel::Cm1, 22.0),
        ("office, NLOS", ChannelModel::Cm2, 15.0),
        ("across the room, NLOS", ChannelModel::Cm3, 9.0),
        ("extreme NLOS", ChannelModel::Cm4, 4.0),
    ];

    // Reused across environments: `trade_curve_into` keeps the sweep
    // allocation-free once warm.
    let mut curve = Vec::new();

    for (name, model, snr_db) in environments {
        let ch = ChannelRealization::generate(model, &mut rng);
        let conditions = ChannelConditions {
            snr_db,
            delay_spread_ns: ch.rms_delay_spread_ns(),
            interferer_present: false,
        };
        let op = adapter.adapt(&conditions);
        println!(
            "{name} ({model}, {snr_db:.0} dB SNR, {:.1} ns rms):",
            ch.rms_delay_spread_ns()
        );
        println!(
            "  -> {:.1} Mbps | FEC {} | {} pulses/bit | {} fingers | MLSE {} | {:.1} mW",
            op.bit_rate / 1e6,
            op.config
                .fec
                .map(|c| format!("K={}", c.constraint_length))
                .unwrap_or_else(|| "off".into()),
            op.config.pulses_per_bit,
            op.config.rake_fingers,
            if op.config.mlse_taps > 0 {
                format!("{} taps", op.config.mlse_taps)
            } else {
                "off".into()
            },
            op.power.total_mw()
        );
        println!("  policy: {}", op.rationale);

        // How the choice moves around the operating point: the rate/power
        // trade curve ±4 dB about the measured SNR.
        adapter.trade_curve_into(
            &[snr_db - 4.0, snr_db, snr_db + 4.0],
            conditions.delay_spread_ns,
            &mut curve,
        );
        let knee: Vec<String> = curve
            .iter()
            .zip([snr_db - 4.0, snr_db, snr_db + 4.0])
            .map(|(p, s)| {
                format!("{s:.0} dB→{:.0} Mbps/{:.0} mW", p.bit_rate / 1e6, p.power.total_mw())
            })
            .collect();
        println!("  trade curve: {}", knee.join(", "));

        // Verify the adapted configuration on the streamed fast path: the
        // same block-by-block synthesis the real-time platform runs.
        let scenario = LinkScenario {
            config: op.config.clone(),
            channel: model,
            ebn0_db: snr_db,
            interferer: None,
            notch_enabled: false,
            seed: 0xADA9 ^ snr_db.to_bits(),
        };
        let measured = run_ber_fast_streamed(&scenario, 32, 50, 40_000);
        println!(
            "  measured (streamed): BER {:.2e} over {} bits [{}]\n",
            measured.rate(),
            measured.total,
            measured.stop
        );
    }

    // An interferer appears: the ADC floor rises to 4 bits and the notch
    // engages.
    let op = adapter.adapt(&ChannelConditions {
        snr_db: 15.0,
        delay_spread_ns: 8.0,
        interferer_present: true,
    });
    println!(
        "with interferer: ADC >= {} bits, policy: {}",
        op.config.adc_bits, op.rationale
    );
}
