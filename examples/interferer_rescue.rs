//! Interferer rescue: the spectral monitor detects a narrowband jammer,
//! estimates its frequency, and steers the front-end notch (paper §3).
//!
//! Run with: `cargo run --release --example interferer_rescue`

use uwb::phy::{Gen2Config, Gen2Receiver, Gen2Transmitter, SpectralMonitor};
use uwb::rf::TunableNotch;
use uwb::sim::awgn::add_awgn_complex;
use uwb::sim::{Interferer, Rand};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Gen2Config::nominal_100mbps();
    let fs = config.sample_rate;
    let tx = Gen2Transmitter::new(config.clone())?;
    let rx = Gen2Receiver::new(config.clone())?;
    let mut rng = Rand::new(8);

    let payload = b"spectral monitoring saves the day".to_vec();
    let burst = tx.transmit_packet(&payload)?;
    let p_sig = uwb_dsp::complex::mean_power(&burst.samples);
    let noisy = add_awgn_complex(&burst.samples, p_sig / 10.0, &mut rng);

    // A narrowband service 17 dB above our (FCC-power-limited) signal,
    // 180 MHz above the channel center.
    let jammer = Interferer::cw(180e6, p_sig * 50.0);
    let jammed = jammer.add_to(&noisy, fs.as_hz(), &mut rng);

    // Without defense, the packet is usually lost.
    match rx.receive_packet(&jammed) {
        Ok(p) if p.payload == payload => println!("without notch: packet survived (lucky)"),
        Ok(_) => println!("without notch: packet corrupted"),
        Err(e) => println!("without notch: {e}"),
    }

    // The digital back end monitors the spectrum...
    let monitor = SpectralMonitor::new();
    let report = monitor.analyze(&jammed, fs.as_hz());
    println!(
        "spectral monitor: detected = {}, estimate = {:+.2} MHz \
         (true +180.00 MHz), peak/floor = {:.1} dB",
        report.detected,
        report.frequency.as_mhz(),
        report.peak_to_floor_db
    );
    assert!(report.detected);

    // ...and steers the notch filter at the estimated frequency.
    let mut notch = TunableNotch::new(fs, 30.0);
    notch.tune(report.frequency);
    let cleaned = notch.process(&jammed);

    let packet = rx.receive_packet(&cleaned)?;
    assert_eq!(packet.payload, payload);
    println!(
        "with notch at {:+.2} MHz: \"{}\" decoded, CRC ok",
        report.frequency.as_mhz(),
        String::from_utf8_lossy(&packet.payload)
    );
    Ok(())
}
