//! Offered-vs-delivered load sweep: the MAC knee curve.
//!
//! Part 1 sweeps offered load on an 8-user ring piconet (round-robin over
//! 4 channels so pairs of links genuinely contend) and prints the classic
//! knee: delivered traffic tracks offered traffic until the channel
//! saturates, then plateaus while latency and drops climb.
//!
//! Part 2 runs one heavily loaded point on a 1000-user clustered "city"
//! floor plan — the sparse-interference-graph scale — to show the same
//! accounting at large N.
//!
//! Run with: `cargo run --release --example traffic_load`

use uwb::mac::{run_mac, MacScenario};
use uwb::net::ChannelPolicy;
use uwb::phy::bandplan::Channel;
use uwb::platform::Table;

fn main() {
    let seed = 0x2005_0807;
    let ebn0_db = 9.0;

    // --- Part 1: 8-user knee curve -------------------------------------
    let mut table = Table::new(vec![
        "load/link",
        "offered",
        "delivered",
        "dropped",
        "dlvd%",
        "retx",
        "p50 lat",
        "p95 lat",
        "agg kbit/s",
    ]);
    for load in [0.2, 0.5, 0.8, 1.2, 1.8, 2.5] {
        let mut sc = MacScenario::ring(8, ebn0_db, load, seed);
        // Four channels for eight links: every link has exactly one
        // co-channel partner to contend with.
        sc.net.policy =
            ChannelPolicy::RoundRobin((3..7).map(|i| Channel::new(i).unwrap()).collect());
        sc.horizon_slots = 1_000;
        sc.replications = 2;
        let r = run_mac(&sc);
        let retx: u64 = r.links.iter().map(|l| l.stats.retries).sum();
        let fmt_q = |q: Option<u64>| match q {
            Some(v) => v.to_string(),
            None => "-".to_string(),
        };
        table.row(vec![
            format!("{load:.1}"),
            r.offered_total.to_string(),
            r.delivered_total.to_string(),
            r.dropped_total.to_string(),
            format!("{:.1}", 100.0 * r.delivered_fraction()),
            retx.to_string(),
            fmt_q(r.digest_quantile("mac_latency_slots", 0.50)),
            fmt_q(r.digest_quantile("mac_latency_slots", 0.95)),
            format!("{:.0}", r.aggregate_goodput_bps / 1e3),
        ]);
    }
    println!(
        "offered-vs-delivered knee: 8-user ring, Eb/N0 = {ebn0_db} dB,\n\
         4 channels (one co-channel partner per link), CSMA + stop-and-wait ARQ\n"
    );
    print!("{table}");
    println!(
        "\nload is Erlangs per link (1.0 = one packet per airtime+ACK cycle);\n\
         latency percentiles are in sense slots, from the telemetry digests.\n"
    );

    // --- Part 2: 1000-user clustered city, one saturated point ---------
    let mut city = MacScenario::clustered_city(125, 8, ebn0_db, 1.5, seed);
    city.horizon_slots = 120;
    let r = run_mac(&city);
    let defers: u64 = r.links.iter().map(|l| l.stats.defers).sum();
    let failures: u64 = r.links.iter().map(|l| l.stats.decode_failures).sum();
    println!(
        "1000-user clustered city at 1.5 Erlang/link, horizon {} slots:",
        city.horizon_slots
    );
    println!(
        "  offered {}  delivered {}  dropped {}  ({:.1}% delivered)",
        r.offered_total,
        r.delivered_total,
        r.dropped_total,
        100.0 * r.delivered_fraction()
    );
    println!(
        "  csma defers {}  decode failures {}  aggregate goodput {:.1} Mbit/s",
        defers,
        failures,
        r.aggregate_goodput_bps / 1e6
    );
}
