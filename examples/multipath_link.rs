//! Severe-multipath link: a gen2 packet through a CM3 channel (the paper's
//! "rms delay spread of the channel on the order of 20 ns" regime), showing
//! the 4-bit channel estimate and the RAKE fingers it selects.
//!
//! Run with: `cargo run --release --example multipath_link`

use uwb::phy::{Gen2Config, Gen2Receiver, Gen2Transmitter, RakeReceiver};
use uwb::sim::awgn::add_awgn_complex;
use uwb::sim::{ChannelModel, ChannelRealization, Rand};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Gen2Config::nominal_100mbps();
    let tx = Gen2Transmitter::new(config.clone())?;
    let rx = Gen2Receiver::new(config.clone())?;
    let mut rng = Rand::new(3);

    // Draw a CM3 (NLOS, 4-10 m) channel realization.
    let channel = ChannelRealization::generate(ChannelModel::Cm3, &mut rng);
    println!(
        "channel: CM3, {} paths, rms delay spread {:.1} ns, max excess {:.1} ns",
        channel.len(),
        channel.rms_delay_spread_ns(),
        channel.max_excess_delay_ns()
    );
    println!(
        "energy captured by the 8 strongest paths: {:.0} %",
        100.0 * channel.energy_capture(8)
    );

    // Send a packet through multipath + noise.
    let payload = vec![0xC3u8; 64];
    let burst = tx.transmit_packet(&payload)?;
    let through = channel.apply(&burst.samples, config.sample_rate);
    let p = uwb_dsp::complex::mean_power(&through);
    let noisy = add_awgn_complex(&through, p / 4.0, &mut rng); // ~6 dB/sample

    let packet = rx.receive_packet(&noisy)?;
    assert_eq!(packet.payload, payload);
    println!(
        "\nacquisition locked at offset {} (metric {:.2})",
        packet.acquisition.offset, packet.acquisition.metric
    );

    // Inspect the quantized channel estimate the RAKE used.
    let est = &packet.estimate;
    println!(
        "channel estimate: {} taps, energy {:.3} (4-bit quantized)",
        est.len(),
        est.energy()
    );
    let rake = RakeReceiver::from_estimate(est, config.rake_fingers);
    println!("RAKE fingers (delay in ns, |gain|):");
    for (delay, gain) in rake.fingers() {
        println!(
            "  tap @ {:>5.1} ns  |h| = {:.3}",
            *delay as f64 / config.sample_rate.as_hz() * 1e9,
            gain.norm()
        );
    }
    println!(
        "fingers capture {:.0} % of the estimated channel energy",
        100.0 * rake.energy_capture(est)
    );
    println!("\npayload decoded and CRC-verified through ~14 ns rms multipath");
    Ok(())
}
