//! The paper's two transceivers side by side: the gen1 baseband chip
//! (193 kbps, carrierless monocycles, 2 GSps interleaved flash) and the
//! gen2 direct-conversion system (100 Mbps, 14 channels, 5-bit SAR).
//!
//! Run with: `cargo run --release --example two_generations`

use uwb::adc::InterleaveMismatch;
use uwb::gen1::{Gen1Config, Gen1PowerModel, Gen1Receiver, Gen1Transmitter};
use uwb::phy::power::PowerModel;
use uwb::phy::{Gen2Config, Gen2Receiver, Gen2Transmitter};
use uwb::sim::awgn::{add_awgn_complex, add_awgn_real};
use uwb::sim::Rand;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rand::new(12);

    // --- Generation 1 (paper §2, Fig. 1) ---
    println!("=== gen1: single-chip baseband pulsed UWB (0.18 µm) ===");
    let g1 = Gen1Config::demonstrated_193kbps();
    println!(
        "  rate {:.1} kbps | PRF {:.2} MHz | {} pulses/bit | 4-way {}-bit flash @ {:.0} GSps",
        g1.bit_rate() / 1e3,
        g1.prf().as_mhz(),
        g1.pulses_per_bit,
        g1.adc_bits,
        g1.sample_rate.as_gsps()
    );
    println!(
        "  sync: {} phases, {}-way parallel -> {:.1} µs (< 70 µs)",
        g1.preamble_period_samples(),
        g1.sync_parallelism,
        g1.sync_time_us()
    );
    let tx1 = Gen1Transmitter::new(g1.clone());
    let rx1 = Gen1Receiver::new(g1.clone(), InterleaveMismatch::typical(), 1);
    let bits: Vec<bool> = (0..8).map(|_| rng.bit()).collect();
    let burst1 = tx1.transmit(&bits);
    let p1 = uwb_dsp::complex::mean_power_real(&burst1.samples);
    let noisy1 = add_awgn_real(&burst1.samples, 2.0 * p1, &mut rng);
    let decoded = rx1.receive(&noisy1, bits.len()).ok_or("gen1 sync failed")?;
    assert_eq!(decoded.bits, bits);
    println!(
        "  link: {} bits decoded error-free at -3 dB per-sample SNR (162x despreading)",
        bits.len()
    );
    let bd1 = Gen1PowerModel::cmos180().breakdown(&g1);
    println!(
        "  power: {:.1} mW total, {:.0} % in back end + ADC",
        bd1.total_mw(),
        100.0 * bd1.digital_and_adc_fraction()
    );

    // --- Generation 2 (paper §3, Fig. 3) ---
    println!("\n=== gen2: 3.1-10.6 GHz direct-conversion transceiver ===");
    let g2 = Gen2Config::nominal_100mbps();
    println!(
        "  rate {:.0} Mbps | {} | 5-bit SAR I/Q | 4-bit channel estimate | {} RAKE fingers",
        g2.bit_rate() / 1e6,
        g2.channel,
        g2.rake_fingers
    );
    let tx2 = Gen2Transmitter::new(g2.clone())?;
    let rx2 = Gen2Receiver::new(g2.clone())?;
    let payload = vec![0x42u8; 125];
    let burst2 = tx2.transmit_packet(&payload)?;
    let p2 = uwb_dsp::complex::mean_power(&burst2.samples);
    let noisy2 = add_awgn_complex(&burst2.samples, p2 / 4.0, &mut rng);
    let packet = rx2.receive_packet(&noisy2)?;
    assert_eq!(packet.payload, payload);
    println!(
        "  link: {}-byte packet in {:.1} µs on air, acquisition metric {:.2}",
        payload.len(),
        burst2.duration_us(),
        packet.acquisition.metric
    );
    let bd2 = PowerModel::cmos180().breakdown(&g2);
    println!(
        "  power: {:.1} mW total, {:.0} % in back end + ADC",
        bd2.total_mw(),
        100.0 * bd2.digital_and_adc_fraction()
    );

    println!(
        "\nspeedup gen2/gen1: {:.0}x in bit rate",
        g2.bit_rate() / g1.bit_rate()
    );
    Ok(())
}
