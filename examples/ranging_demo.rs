//! Ranging demo: measure the distance between two UWB nodes with a two-way
//! exchange (the "precise locationing" of the paper's abstract).
//!
//! Run with: `cargo run --release --example ranging_demo`

use uwb::dsp::resample::fractional_delay;
use uwb::dsp::Complex;
use uwb::phy::pulse::PulseShape;
use uwb::phy::ranging::{distance_to_delay_ns, solve_two_way, ToaEstimator};
use uwb::sim::awgn::add_awgn_complex;
use uwb::sim::{ChannelModel, ChannelRealization, Rand, SampleRate};

fn main() {
    let fs = SampleRate::from_gsps(1.0);
    let mut rng = Rand::new(5);

    // A short ranging preamble: 31 BPSK pulses.
    let pulse = PulseShape::gen2_default().generate_complex(fs);
    let chips = uwb::phy::pn::msequence_chips(5);
    let sps = 10;
    let mut template = vec![Complex::ZERO; (chips.len() - 1) * sps + pulse.len()];
    for (k, &c) in chips.iter().enumerate() {
        for (j, &p) in pulse.iter().enumerate() {
            template[k * sps + j] += p * c;
        }
    }

    let true_distance_m = 3.7;
    println!("true distance: {true_distance_m} m");

    // Node A transmits; the signal crosses a CM1 room and arrives delayed by
    // the time of flight.
    let delay_samples = distance_to_delay_ns(true_distance_m) * fs.as_hz() / 1e9;
    let channel = ChannelRealization::generate(ChannelModel::Cm1, &mut rng);
    let mut sig = vec![Complex::ZERO; 50];
    sig.extend_from_slice(&template);
    sig.extend(vec![Complex::ZERO; 100]);
    let through = channel.apply(&sig, fs);
    let arrived = fractional_delay(&through, delay_samples, 8);
    let p = uwb_dsp::complex::mean_power(&arrived);
    let noisy = add_awgn_complex(&arrived, p / 50.0, &mut rng);

    // Node B timestamps the leading edge. A slightly lower edge threshold
    // than the default catches weak-but-real first paths.
    let est = ToaEstimator {
        edge_fraction: 0.15,
        ..ToaEstimator::new()
    };
    let toa = est.estimate(&noisy, &template, fs).expect("no signal");
    println!(
        "leading-edge TOA: {:.2} ns (edge {:.0} % of strongest path)",
        toa.ns,
        100.0 * toa.edge_magnitude / toa.peak_magnitude
    );

    // Two-way solve: B replies after a fixed 1 µs turnaround; A measures the
    // same one-way delay on the return (symmetric channel assumed).
    let oneway_ns = toa.ns - 50.0; // template was inserted at sample 50
    let result = solve_two_way(0.0, 2.0 * oneway_ns + 1000.0, 1000.0);
    println!(
        "estimated distance: {:.2} m (error {:.0} cm)",
        result.distance_m,
        (result.distance_m - true_distance_m).abs() * 100.0
    );
}
