//! Packet-stream capture: scan one long, noisy record containing several
//! packets separated by silence — the way a logging receiver actually runs.
//!
//! Since the streaming port this uses [`uwb::phy::StreamRx`]: the capture is
//! fed in fixed-size blocks (here 2048 samples, as if draining a DMA ring)
//! and packets pop out incrementally, with receiver memory bounded by one
//! frame regardless of how long the capture runs.
//!
//! Run with: `cargo run --release --example packet_stream`

use uwb::dsp::Complex;
use uwb::phy::{Gen2Config, Gen2Transmitter, StreamRx};
use uwb::sim::awgn::add_awgn_complex;
use uwb::sim::{ChannelModel, ChannelRealization, Rand};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let tx = Gen2Transmitter::new(config.clone())?;
    let mut rng = Rand::new(44);

    // Build a capture: three packets, idle gaps, CM1 multipath, noise.
    let messages: [&[u8]; 3] = [b"telemetry frame 001", b"telemetry frame 002", b"ack"];
    let mut record: Vec<Complex> = vec![Complex::ZERO; 4000];
    for msg in &messages {
        let burst = tx.transmit_packet(msg)?;
        let ch = ChannelRealization::generate(ChannelModel::Cm1, &mut rng);
        record.extend(ch.apply(&burst.samples, config.sample_rate));
        record.extend(vec![Complex::ZERO; 3000]);
    }
    let p = uwb_dsp::complex::mean_power(&record);
    let capture = add_awgn_complex(&record, p / 8.0, &mut rng);
    println!(
        "capture: {} samples ({:.1} µs) containing {} packets + noise",
        capture.len(),
        capture.len() as f64 / config.sample_rate.as_hz() * 1e6,
        messages.len()
    );

    // Feed the capture block-by-block through the incremental receiver.
    const BLOCK: usize = 2048;
    let mut rx = StreamRx::new(config.clone(), 64)?;
    for block in capture.chunks(BLOCK) {
        rx.push_block(block);
    }
    rx.finish(); // drain the truncated tail

    let packets: Vec<_> = rx.drain_packets().collect();
    println!(
        "decoded {} packets (block size {BLOCK}, peak buffer {} samples):",
        packets.len(),
        rx.buffer_capacity()
    );
    for (offset, packet) in &packets {
        println!(
            "  @ {:>6} samples ({:>6.2} µs): {:?}  (sync metric {:.2})",
            offset,
            *offset as f64 / config.sample_rate.as_hz() * 1e6,
            String::from_utf8_lossy(&packet.payload),
            packet.acquisition.metric,
        );
    }
    assert_eq!(packets.len(), messages.len());
    for ((_, p), m) in packets.iter().zip(&messages) {
        assert_eq!(&p.payload[..], *m);
    }
    assert!(
        rx.buffer_capacity() < capture.len() / 2,
        "streaming receiver should never buffer anything close to the capture"
    );
    println!("all payloads CRC-verified");
    Ok(())
}
