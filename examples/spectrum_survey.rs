//! Spectrum survey: the 14-channel band plan, the FCC mask, and a Fig. 4
//! style pulse on the 5 GHz channel.
//!
//! Run with: `cargo run --release --example spectrum_survey`

use uwb::phy::bandplan::Channel;
use uwb::phy::pulse::{measure_bandwidth, PulseShape};
use uwb::platform::mask::{fcc_indoor_mask, mask_limit_at};
use uwb::platform::report::oscillogram;
use uwb::rf::TxChain;
use uwb::sim::pathloss::max_tx_power_dbm;
use uwb::sim::time::{Hertz, SampleRate};

fn main() {
    // --- The band plan (paper §3: 14 channels in 3.1-10.6 GHz) ---
    println!("14-channel band plan (528 MHz grid, 500 MHz occupied):");
    for ch in Channel::all() {
        println!(
            "  ch{:>2}: {:.3} GHz  [{:.3} .. {:.3}]  mask here: {:.1} dBm/MHz",
            ch.index(),
            ch.center().as_ghz(),
            ch.low_edge().as_ghz(),
            ch.high_edge().as_ghz(),
            mask_limit_at(&fcc_indoor_mask(), ch.center().as_hz())
        );
    }
    println!(
        "\nFCC power ceiling for a 500 MHz channel: {:.1} dBm total",
        max_tx_power_dbm(Hertz::from_mhz(500.0))
    );

    // --- The Fig. 4 pulse on the channel nearest 5 GHz ---
    let fs = SampleRate::new(32e9);
    let ch = Channel::near_5ghz();
    println!("\nFig. 4 pulse on {ch}:");
    let shape = PulseShape::gen2_default();
    let baseband = shape.generate_complex(fs);
    let passband = TxChain::new(ch.center(), 1.0).transmit(&baseband, fs);
    let bw = measure_bandwidth(&shape.generate(fs), fs, 10.0);
    println!("  -10 dB bandwidth: {:.0} MHz (paper: 500 MHz)", bw.as_mhz());
    // Central 3 ns window of the burst.
    let half = (1.5e-9 * fs.as_hz()) as usize;
    let c = passband.len() / 2;
    println!("{}", oscillogram(&passband[c - half..c + half], 15, 76));
}
