//! [`Telemetry`] — a mergeable snapshot of stage timers, event counts, and
//! log2 histograms.
//!
//! Snapshots are drained per Monte-Carlo chunk by
//! [`crate::take_thread_telemetry`] and merged in deterministic chunk order
//! (the same ordered-prefix reduction the engine applies to trial results).
//! Entries are kept **sorted by name** as a struct invariant so merge is a
//! linear merge-join and rendered output never depends on registration
//! order (which can race across threads).

/// Number of log2 bins per histogram: bin 0 holds zero values, bin `k`
/// (1 ≤ k ≤ 63) holds values with `k` significant bits, i.e.
/// `2^(k-1) ≤ v < 2^k`; values with ≥ 63 bits saturate into bin 63.
pub const HIST_BINS: usize = 64;

/// Returns the log2 bin index for a sample.
#[inline]
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn log2_bin(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BINS - 1)
    }
}

/// Accumulated time and call count for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStat {
    /// Stage name (a registered static string).
    pub name: &'static str,
    /// Number of completed spans.
    pub calls: u64,
    /// Total nanoseconds across those spans (wall-clock: **excluded** from
    /// the determinism contract).
    pub ns: u64,
}

/// Count of one event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventStat {
    /// Event name (a registered static string).
    pub name: &'static str,
    /// Occurrences.
    pub count: u64,
}

/// A sparse fixed-bin log2 histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStat {
    /// Histogram name (a registered static string).
    pub name: &'static str,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Non-empty `(bin, count)` pairs, sorted by bin index.
    pub bins: Vec<(u8, u64)>,
}

/// A mergeable telemetry snapshot: per-stage time/calls, event counts, and
/// histograms — the "where did the time go / why did it fail" record that
/// rides on `uwb_sim::montecarlo::RunStats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Stage statistics, sorted by name.
    pub stages: Vec<StageStat>,
    /// Event counts, sorted by name.
    pub events: Vec<EventStat>,
    /// Histograms, sorted by name.
    pub hists: Vec<HistStat>,
}

/// Merge-joins two name-sorted vectors with `combine` on name collisions.
fn merge_by_name<T: Clone>(
    dst: &mut Vec<T>,
    src: &[T],
    name: impl Fn(&T) -> &'static str,
    combine: impl Fn(&mut T, &T),
) {
    if src.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(dst.len() + src.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < dst.len() && j < src.len() {
        match name(&dst[i]).cmp(name(&src[j])) {
            std::cmp::Ordering::Less => {
                out.push(dst[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(src[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let mut merged = dst[i].clone();
                combine(&mut merged, &src[j]);
                out.push(merged);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&dst[i..]);
    out.extend_from_slice(&src[j..]);
    *dst = out;
}

impl Telemetry {
    /// `true` when nothing was recorded (always true with `obs` off).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty() && self.events.is_empty() && self.hists.is_empty()
    }

    /// Folds `other` into `self` (adds calls/ns/counts/bins by name).
    /// Associative; the Monte-Carlo engine only applies it in ascending
    /// chunk order, matching the trial-result merge contract.
    pub fn merge(&mut self, other: &Telemetry) {
        merge_by_name(
            &mut self.stages,
            &other.stages,
            |s| s.name,
            |a, b| {
                a.calls += b.calls;
                a.ns += b.ns;
            },
        );
        merge_by_name(
            &mut self.events,
            &other.events,
            |e| e.name,
            |a, b| a.count += b.count,
        );
        merge_by_name(
            &mut self.hists,
            &other.hists,
            |h| h.name,
            |a, b| {
                a.count += b.count;
                a.sum = a.sum.wrapping_add(b.sum);
                // Merge-join the sparse bin lists.
                let mut bins = Vec::with_capacity(a.bins.len() + b.bins.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.bins.len() && j < b.bins.len() {
                    match a.bins[i].0.cmp(&b.bins[j].0) {
                        std::cmp::Ordering::Less => {
                            bins.push(a.bins[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            bins.push(b.bins[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            bins.push((a.bins[i].0, a.bins[i].1 + b.bins[j].1));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                bins.extend_from_slice(&a.bins[i..]);
                bins.extend_from_slice(&b.bins[j..]);
                a.bins = bins;
            },
        );
    }

    /// Total nanoseconds across all stages.
    pub fn total_stage_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.ns).sum()
    }

    /// Count for a named event (0 when never recorded).
    pub fn event_count(&self, name: &str) -> u64 {
        self.events
            .iter()
            .find(|e| e.name == name)
            .map_or(0, |e| e.count)
    }

    /// Stage statistics for a named stage, if recorded.
    pub fn stage(&self, name: &str) -> Option<&StageStat> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Renders the snapshot as hand-rolled JSON (no serde), **including**
    /// the wall-clock `ns` fields. Shape:
    ///
    /// ```json
    /// {"stages":[{"name":"tx","calls":8,"ns":12345}],
    ///  "events":[{"name":"crc_fail","count":2}],
    ///  "hists":[{"name":"trial_bit_errors","count":8,"sum":3,
    ///            "bins":[[0,5],[1,3]]}]}
    /// ```
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// [`Telemetry::to_json`] with every wall-clock field omitted: the
    /// result is **bit-identical across thread counts** for a deterministic
    /// Monte-Carlo run (the determinism-gate form).
    pub fn to_json_deterministic(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, with_timing: bool) -> String {
        let mut s = String::from("{\"stages\":[");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            if with_timing {
                s.push_str(&format!(
                    "{{\"name\":{},\"calls\":{},\"ns\":{}}}",
                    crate::json::escape(st.name),
                    st.calls,
                    st.ns
                ));
            } else {
                s.push_str(&format!(
                    "{{\"name\":{},\"calls\":{}}}",
                    crate::json::escape(st.name),
                    st.calls
                ));
            }
        }
        s.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"count\":{}}}",
                crate::json::escape(e.name),
                e.count
            ));
        }
        s.push_str("],\"hists\":[");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"count\":{},\"sum\":{},\"bins\":[",
                crate::json::escape(h.name),
                h.count,
                h.sum
            ));
            for (j, (bin, n)) in h.bins.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{bin},{n}]"));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// FNV-1a hash over the deterministic content (names, call counts,
    /// event counts, histogram bins — **not** nanoseconds): two runs with
    /// the same contributing trials produce the same fingerprint regardless
    /// of thread count.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for s in &self.stages {
            eat(s.name.as_bytes());
            eat(&s.calls.to_le_bytes());
        }
        for e in &self.events {
            eat(e.name.as_bytes());
            eat(&e.count.to_le_bytes());
        }
        for hh in &self.hists {
            eat(hh.name.as_bytes());
            eat(&hh.count.to_le_bytes());
            eat(&hh.sum.to_le_bytes());
            for (bin, n) in &hh.bins {
                eat(&[*bin]);
                eat(&n.to_le_bytes());
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Telemetry {
        Telemetry {
            stages: vec![
                StageStat {
                    name: "acq",
                    calls: 2,
                    ns: 100,
                },
                StageStat {
                    name: "tx",
                    calls: 4,
                    ns: 50,
                },
            ],
            events: vec![EventStat {
                name: "crc_fail",
                count: 1,
            }],
            hists: vec![HistStat {
                name: "errs",
                count: 3,
                sum: 5,
                bins: vec![(0, 1), (2, 2)],
            }],
        }
    }

    #[test]
    fn log2_binning() {
        assert_eq!(log2_bin(0), 0);
        assert_eq!(log2_bin(1), 1);
        assert_eq!(log2_bin(2), 2);
        assert_eq!(log2_bin(3), 2);
        assert_eq!(log2_bin(4), 3);
        assert_eq!(log2_bin(1023), 10);
        assert_eq!(log2_bin(1024), 11);
        assert_eq!(log2_bin(u64::MAX), 63);
    }

    #[test]
    fn merge_adds_and_interleaves() {
        let mut a = sample();
        let b = Telemetry {
            stages: vec![
                StageStat {
                    name: "rake",
                    calls: 1,
                    ns: 7,
                },
                StageStat {
                    name: "tx",
                    calls: 1,
                    ns: 3,
                },
            ],
            events: vec![
                EventStat {
                    name: "acq_miss",
                    count: 2,
                },
                EventStat {
                    name: "crc_fail",
                    count: 4,
                },
            ],
            hists: vec![HistStat {
                name: "errs",
                count: 1,
                sum: 9,
                bins: vec![(2, 1), (4, 1)],
            }],
        };
        a.merge(&b);
        let names: Vec<_> = a.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["acq", "rake", "tx"]);
        assert_eq!(a.stage("tx").unwrap().calls, 5);
        assert_eq!(a.stage("tx").unwrap().ns, 53);
        assert_eq!(a.event_count("crc_fail"), 5);
        assert_eq!(a.event_count("acq_miss"), 2);
        assert_eq!(a.event_count("nonexistent"), 0);
        assert_eq!(a.hists[0].count, 4);
        assert_eq!(a.hists[0].sum, 14);
        assert_eq!(a.hists[0].bins, vec![(0, 1), (2, 3), (4, 1)]);
    }

    #[test]
    fn merge_is_associative_on_counts() {
        let (a, b, c) = (sample(), sample(), sample());
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn json_shapes() {
        let t = sample();
        let full = t.to_json();
        assert!(full.contains("\"ns\":100"), "{full}");
        assert!(full.contains("\"bins\":[[0,1],[2,2]]"), "{full}");
        let det = t.to_json_deterministic();
        assert!(!det.contains("\"ns\""), "{det}");
        // Both parse with the in-repo checker.
        crate::json::parse(&full).unwrap();
        crate::json::parse(&det).unwrap();
        // Empty snapshot still renders valid JSON.
        crate::json::parse(&Telemetry::default().to_json()).unwrap();
    }

    #[test]
    fn fingerprint_ignores_timing_only() {
        let a = sample();
        let mut b = sample();
        b.stages[0].ns = 999_999;
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample();
        c.events[0].count += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
