//! [`Telemetry`] — a mergeable snapshot of stage timers, event counts, and
//! log2 histograms.
//!
//! Snapshots are drained per Monte-Carlo chunk by
//! [`crate::take_thread_telemetry`] and merged in deterministic chunk order
//! (the same ordered-prefix reduction the engine applies to trial results).
//! Entries are kept **sorted by name** as a struct invariant so merge is a
//! linear merge-join and rendered output never depends on registration
//! order (which can race across threads).

/// Number of log2 bins per histogram: bin 0 holds zero values, bin `k`
/// (1 ≤ k ≤ 63) holds values with `k` significant bits, i.e.
/// `2^(k-1) ≤ v < 2^k`; values with ≥ 63 bits saturate into bin 63.
pub const HIST_BINS: usize = 64;

/// Returns the log2 bin index for a sample.
#[inline]
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn log2_bin(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BINS - 1)
    }
}

/// Sub-bucket precision bits of the log-linear digest binning: each power-of
/// -two decade above 2^4 splits into `2^DIGEST_SUB_BITS` linear sub-buckets,
/// bounding the relative quantile error at `2^-DIGEST_SUB_BITS` (6.25%).
pub const DIGEST_SUB_BITS: u32 = 4;

/// Number of bins per percentile digest: values `0..16` get exact bins,
/// then each of the 60 power-of-two decades `2^4..=2^63` gets 16 linear
/// sub-buckets (HDR-histogram style), covering the full `u64` range.
pub const DIGEST_BINS: usize = 16 + (64 - DIGEST_SUB_BITS as usize) * 16;

/// Returns the log-linear digest bin index for a sample. Exact below 16;
/// above, bin = decade base + linear sub-bucket within the decade.
#[inline]
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn digest_bin(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // 4..=63
    let sub = ((v >> (e - DIGEST_SUB_BITS)) & 15) as usize;
    16 + ((e - DIGEST_SUB_BITS) as usize) * 16 + sub
}

/// The largest value that lands in digest bin `bin` (inclusive upper edge;
/// saturates at `u64::MAX` for the top bins). Quantile extraction reports
/// this edge, so reported quantiles never *under*-state the true value by
/// more than the bin width (≤ 6.25% relative).
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn digest_bin_high(bin: usize) -> u64 {
    if bin < 16 {
        return bin as u64;
    }
    let e = (bin - 16) as u32 / 16 + DIGEST_SUB_BITS; // 4..=63
    let sub = ((bin - 16) % 16) as u64;
    let low = (1u64 << e) + (sub << (e - DIGEST_SUB_BITS));
    low.saturating_add((1u64 << (e - DIGEST_SUB_BITS)) - 1)
}

/// Accumulated time and call count for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStat {
    /// Stage name (a registered static string).
    pub name: &'static str,
    /// Number of completed spans.
    pub calls: u64,
    /// Total nanoseconds across those spans (wall-clock: **excluded** from
    /// the determinism contract).
    pub ns: u64,
}

/// Count of one event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventStat {
    /// Event name (a registered static string).
    pub name: &'static str,
    /// Occurrences.
    pub count: u64,
}

/// A sparse fixed-bin log2 histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStat {
    /// Histogram name (a registered static string).
    pub name: &'static str,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Non-empty `(bin, count)` pairs, sorted by bin index.
    pub bins: Vec<(u8, u64)>,
}

/// A sparse log-linear (HDR-style) percentile digest: like [`HistStat`] but
/// with enough bin resolution (≤ 6.25% relative error) to extract
/// deterministic p50/p95/p99, plus the exact maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestStat {
    /// Digest name (a registered static string).
    pub name: &'static str,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Non-empty `(bin, count)` pairs, sorted by bin index
    /// (see [`DIGEST_BINS`]).
    pub bins: Vec<(u16, u64)>,
}

impl DigestStat {
    /// The deterministic `q`-quantile (0 < q ≤ 1): the inclusive upper edge
    /// of the bin containing the rank-`ceil(q·count)` sample, clamped to the
    /// exact observed maximum. Returns 0 for an empty digest.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(bin, n) in &self.bins {
            seen += n;
            if seen >= rank {
                return digest_bin_high(bin as usize).min(self.max);
            }
        }
        self.max
    }
}

/// A mergeable telemetry snapshot: per-stage time/calls, event counts,
/// histograms, percentile digests, plus (when enabled) span-timeline records
/// and the worst-trial flight-recorder ring — the "where did the time go /
/// why did it fail" record that rides on `uwb_sim::montecarlo::RunStats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Stage statistics, sorted by name.
    pub stages: Vec<StageStat>,
    /// Event counts, sorted by name.
    pub events: Vec<EventStat>,
    /// Histograms, sorted by name.
    pub hists: Vec<HistStat>,
    /// Percentile digests, sorted by name.
    pub digests: Vec<DigestStat>,
    /// Span-timeline records in execution order (only populated with the
    /// `obs-trace` feature). Wall-clock fields are excluded from the
    /// determinism contract; record count and order are not.
    pub spans: Vec<crate::trace::SpanRecord>,
    /// Span records dropped because a per-thread trace ring filled up
    /// between drains.
    pub spans_dropped: u64,
    /// The K worst trials by `(bit_errors desc, acq_metric asc, trial asc)`
    /// with forensic snapshots, merged across threads
    /// (see [`crate::recorder`]).
    pub worst: Vec<crate::recorder::TrialForensics>,
}

/// Merge-joins two name-sorted vectors with `combine` on name collisions.
fn merge_by_name<T: Clone>(
    dst: &mut Vec<T>,
    src: &[T],
    name: impl Fn(&T) -> &'static str,
    combine: impl Fn(&mut T, &T),
) {
    if src.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(dst.len() + src.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < dst.len() && j < src.len() {
        match name(&dst[i]).cmp(name(&src[j])) {
            std::cmp::Ordering::Less => {
                out.push(dst[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(src[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let mut merged = dst[i].clone();
                combine(&mut merged, &src[j]);
                out.push(merged);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&dst[i..]);
    out.extend_from_slice(&src[j..]);
    *dst = out;
}

impl Telemetry {
    /// `true` when nothing was recorded (always true with `obs` off).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
            && self.events.is_empty()
            && self.hists.is_empty()
            && self.digests.is_empty()
            && self.spans.is_empty()
            && self.spans_dropped == 0
            && self.worst.is_empty()
    }

    /// Folds `other` into `self` (adds calls/ns/counts/bins by name).
    /// Associative; the Monte-Carlo engine only applies it in ascending
    /// chunk order, matching the trial-result merge contract.
    pub fn merge(&mut self, other: &Telemetry) {
        merge_by_name(
            &mut self.stages,
            &other.stages,
            |s| s.name,
            |a, b| {
                a.calls += b.calls;
                a.ns += b.ns;
            },
        );
        merge_by_name(
            &mut self.events,
            &other.events,
            |e| e.name,
            |a, b| a.count += b.count,
        );
        merge_by_name(
            &mut self.hists,
            &other.hists,
            |h| h.name,
            |a, b| {
                a.count += b.count;
                a.sum = a.sum.wrapping_add(b.sum);
                // Merge-join the sparse bin lists.
                let mut bins = Vec::with_capacity(a.bins.len() + b.bins.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.bins.len() && j < b.bins.len() {
                    match a.bins[i].0.cmp(&b.bins[j].0) {
                        std::cmp::Ordering::Less => {
                            bins.push(a.bins[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            bins.push(b.bins[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            bins.push((a.bins[i].0, a.bins[i].1 + b.bins[j].1));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                bins.extend_from_slice(&a.bins[i..]);
                bins.extend_from_slice(&b.bins[j..]);
                a.bins = bins;
            },
        );
        merge_by_name(
            &mut self.digests,
            &other.digests,
            |d| d.name,
            |a, b| {
                a.count += b.count;
                a.sum = a.sum.wrapping_add(b.sum);
                a.max = a.max.max(b.max);
                let mut bins = Vec::with_capacity(a.bins.len() + b.bins.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.bins.len() && j < b.bins.len() {
                    match a.bins[i].0.cmp(&b.bins[j].0) {
                        std::cmp::Ordering::Less => {
                            bins.push(a.bins[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            bins.push(b.bins[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            bins.push((a.bins[i].0, a.bins[i].1 + b.bins[j].1));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                bins.extend_from_slice(&a.bins[i..]);
                bins.extend_from_slice(&b.bins[j..]);
                a.bins = bins;
            },
        );
        // Spans concatenate: the engine merges chunks in ascending chunk
        // order and each chunk's spans are in serial execution order, so the
        // merged sequence is thread-count invariant.
        self.spans.extend_from_slice(&other.spans);
        self.spans_dropped += other.spans_dropped;
        // Worst-trial ring: keep the K globally worst by the pure key.
        if !other.worst.is_empty() {
            self.worst.extend_from_slice(&other.worst);
            self.worst.sort_unstable_by_key(|f| f.sort_key());
            self.worst.truncate(crate::recorder::WORST_K);
        }
    }

    /// Total nanoseconds across all stages.
    pub fn total_stage_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.ns).sum()
    }

    /// Count for a named event (0 when never recorded).
    pub fn event_count(&self, name: &str) -> u64 {
        self.events
            .iter()
            .find(|e| e.name == name)
            .map_or(0, |e| e.count)
    }

    /// Stage statistics for a named stage, if recorded.
    pub fn stage(&self, name: &str) -> Option<&StageStat> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Renders the snapshot as hand-rolled JSON (no serde), **including**
    /// the wall-clock `ns` fields. Shape:
    ///
    /// ```json
    /// {"stages":[{"name":"tx","calls":8,"ns":12345}],
    ///  "events":[{"name":"crc_fail","count":2}],
    ///  "hists":[{"name":"trial_bit_errors","count":8,"sum":3,
    ///            "bins":[[0,5],[1,3]]}],
    ///  "quantiles":[{"name":"trial_bit_errors","count":8,
    ///                "p50":1,"p95":3,"p99":3,"max":3}]}
    /// ```
    ///
    /// Span-timeline records and the flight-recorder ring are **not** part
    /// of this report; see [`crate::trace::export_chrome`] and
    /// [`crate::recorder::render_report`].
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// [`Telemetry::to_json`] with every wall-clock field omitted: the
    /// result is **bit-identical across thread counts** for a deterministic
    /// Monte-Carlo run (the determinism-gate form).
    pub fn to_json_deterministic(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, with_timing: bool) -> String {
        let mut s = String::from("{\"stages\":[");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            if with_timing {
                s.push_str(&format!(
                    "{{\"name\":{},\"calls\":{},\"ns\":{}}}",
                    crate::json::escape(st.name),
                    st.calls,
                    st.ns
                ));
            } else {
                s.push_str(&format!(
                    "{{\"name\":{},\"calls\":{}}}",
                    crate::json::escape(st.name),
                    st.calls
                ));
            }
        }
        s.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"count\":{}}}",
                crate::json::escape(e.name),
                e.count
            ));
        }
        s.push_str("],\"hists\":[");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"count\":{},\"sum\":{},\"bins\":[",
                crate::json::escape(h.name),
                h.count,
                h.sum
            ));
            for (j, (bin, n)) in h.bins.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{bin},{n}]"));
            }
            s.push_str("]}");
        }
        s.push_str("],\"quantiles\":[");
        for (i, d) in self.digests.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                crate::json::escape(d.name),
                d.count,
                d.quantile(0.50),
                d.quantile(0.95),
                d.quantile(0.99),
                d.max
            ));
        }
        s.push_str("]}");
        s
    }

    /// FNV-1a hash over the deterministic content (names, call counts,
    /// event counts, histogram bins — **not** nanoseconds): two runs with
    /// the same contributing trials produce the same fingerprint regardless
    /// of thread count.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for s in &self.stages {
            eat(s.name.as_bytes());
            eat(&s.calls.to_le_bytes());
        }
        for e in &self.events {
            eat(e.name.as_bytes());
            eat(&e.count.to_le_bytes());
        }
        for hh in &self.hists {
            eat(hh.name.as_bytes());
            eat(&hh.count.to_le_bytes());
            eat(&hh.sum.to_le_bytes());
            for (bin, n) in &hh.bins {
                eat(&[*bin]);
                eat(&n.to_le_bytes());
            }
        }
        for d in &self.digests {
            eat(d.name.as_bytes());
            eat(&d.count.to_le_bytes());
            eat(&d.sum.to_le_bytes());
            eat(&d.max.to_le_bytes());
            for (bin, n) in &d.bins {
                eat(&bin.to_le_bytes());
                eat(&n.to_le_bytes());
            }
        }
        h
    }

    /// FNV-1a hash over the span-timeline's deterministic content — the
    /// ordered `(stage name, trial)` sequence plus the drop count, **not**
    /// the wall-clock timestamps or thread ids. Bit-identical for any
    /// `UWB_THREADS` on a deterministic run.
    pub fn trace_fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for sp in &self.spans {
            eat(sp.name.as_bytes());
            eat(&sp.trial.to_le_bytes());
        }
        eat(&self.spans_dropped.to_le_bytes());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Telemetry {
        Telemetry {
            stages: vec![
                StageStat {
                    name: "acq",
                    calls: 2,
                    ns: 100,
                },
                StageStat {
                    name: "tx",
                    calls: 4,
                    ns: 50,
                },
            ],
            events: vec![EventStat {
                name: "crc_fail",
                count: 1,
            }],
            hists: vec![HistStat {
                name: "errs",
                count: 3,
                sum: 5,
                bins: vec![(0, 1), (2, 2)],
            }],
            ..Default::default()
        }
    }

    #[test]
    fn log2_binning() {
        assert_eq!(log2_bin(0), 0);
        assert_eq!(log2_bin(1), 1);
        assert_eq!(log2_bin(2), 2);
        assert_eq!(log2_bin(3), 2);
        assert_eq!(log2_bin(4), 3);
        assert_eq!(log2_bin(1023), 10);
        assert_eq!(log2_bin(1024), 11);
        assert_eq!(log2_bin(u64::MAX), 63);
    }

    #[test]
    fn log2_binning_saturates_at_top_bin() {
        // Overflow pin: the top bin is saturating. u64::MAX, anything with
        // the high bit set, and the 2^62 / 2^63 boundary values must all
        // land in bin 63 deterministically (bin 63 therefore covers
        // [2^62, u64::MAX], twice the width of a regular bin).
        assert_eq!(log2_bin(u64::MAX), HIST_BINS - 1);
        assert_eq!(log2_bin(u64::MAX - 1), HIST_BINS - 1);
        assert_eq!(log2_bin(1u64 << 63), HIST_BINS - 1);
        assert_eq!(log2_bin((1u64 << 63) - 1), HIST_BINS - 1);
        assert_eq!(log2_bin(1u64 << 62), HIST_BINS - 1);
        // The last value with its own (unsaturated) bin.
        assert_eq!(log2_bin((1u64 << 62) - 1), HIST_BINS - 2);
    }

    #[test]
    fn digest_binning_is_log_linear_and_exhaustive() {
        // Exact bins below 16.
        for v in 0u64..16 {
            assert_eq!(digest_bin(v), v as usize);
        }
        // Every bin's inclusive upper edge maps back into that bin, and
        // edges are strictly increasing until saturation.
        let mut prev_high = 0u64;
        for bin in 0..DIGEST_BINS {
            let high = digest_bin_high(bin);
            assert_eq!(
                digest_bin(high),
                bin,
                "bin {bin} upper edge {high} maps elsewhere"
            );
            if bin > 0 && high != u64::MAX {
                assert!(high > prev_high, "bin {bin} edge not increasing");
            }
            prev_high = high;
        }
        // Extremes.
        assert_eq!(digest_bin(u64::MAX), DIGEST_BINS - 1);
        assert_eq!(digest_bin_high(DIGEST_BINS - 1), u64::MAX);
        // Relative bin width stays within the advertised 6.25% above 16.
        for v in [17u64, 100, 999, 12_345, 1 << 30, u64::MAX / 3] {
            let b = digest_bin(v);
            let high = digest_bin_high(b);
            assert!(high >= v);
            assert!(
                (high - v) as f64 <= v as f64 / 16.0 + 1.0,
                "bin width too coarse at {v}: high {high}"
            );
        }
    }

    #[test]
    fn digest_quantiles_are_deterministic_and_ordered() {
        let mut bins: Vec<(u16, u64)> = Vec::new();
        let mut max = 0u64;
        let mut add = |bins: &mut Vec<(u16, u64)>, v: u64| {
            let b = digest_bin(v) as u16;
            match bins.binary_search_by_key(&b, |&(bin, _)| bin) {
                Ok(i) => bins[i].1 += 1,
                Err(i) => bins.insert(i, (b, 1)),
            }
            max = max.max(v);
        };
        // 100 samples: 0..=89 are small, ten large outliers of 1000.
        let mut sum = 0u64;
        for v in 0..90u64 {
            add(&mut bins, v % 8);
            sum += v % 8;
        }
        for _ in 0..10 {
            add(&mut bins, 1000);
            sum += 1000;
        }
        let d = DigestStat {
            name: "q",
            count: 100,
            sum,
            max,
            bins,
        };
        let p50 = d.quantile(0.50);
        let p95 = d.quantile(0.95);
        let p99 = d.quantile(0.99);
        assert!(p50 <= 7, "p50 {p50} should sit in the small mass");
        assert!(p95 >= 937 && p95 <= 1000, "p95 {p95} should hit the outliers");
        assert_eq!(p99, 1000, "p99 clamps to the exact max's bin edge");
        assert!(p50 <= p95 && p95 <= p99 && p99 <= d.max);
        // Empty digest yields zeros, not panics.
        let empty = DigestStat {
            name: "e",
            count: 0,
            sum: 0,
            max: 0,
            bins: vec![],
        };
        assert_eq!(empty.quantile(0.99), 0);
    }

    #[test]
    fn digest_merge_adds_bins_and_maxes() {
        let a0 = DigestStat {
            name: "d",
            count: 2,
            sum: 18,
            max: 17,
            bins: vec![(digest_bin(1) as u16, 1), (digest_bin(17) as u16, 1)],
        };
        let b0 = DigestStat {
            name: "d",
            count: 1,
            sum: 1000,
            max: 1000,
            bins: vec![(digest_bin(1000) as u16, 1)],
        };
        let mut a = Telemetry {
            digests: vec![a0],
            ..Default::default()
        };
        let b = Telemetry {
            digests: vec![b0],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.digests.len(), 1);
        assert_eq!(a.digests[0].count, 3);
        assert_eq!(a.digests[0].max, 1000);
        assert_eq!(a.digests[0].bins.len(), 3);
        let total: u64 = a.digests[0].bins.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn merge_adds_and_interleaves() {
        let mut a = sample();
        let b = Telemetry {
            stages: vec![
                StageStat {
                    name: "rake",
                    calls: 1,
                    ns: 7,
                },
                StageStat {
                    name: "tx",
                    calls: 1,
                    ns: 3,
                },
            ],
            events: vec![
                EventStat {
                    name: "acq_miss",
                    count: 2,
                },
                EventStat {
                    name: "crc_fail",
                    count: 4,
                },
            ],
            hists: vec![HistStat {
                name: "errs",
                count: 1,
                sum: 9,
                bins: vec![(2, 1), (4, 1)],
            }],
            ..Default::default()
        };
        a.merge(&b);
        let names: Vec<_> = a.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["acq", "rake", "tx"]);
        assert_eq!(a.stage("tx").unwrap().calls, 5);
        assert_eq!(a.stage("tx").unwrap().ns, 53);
        assert_eq!(a.event_count("crc_fail"), 5);
        assert_eq!(a.event_count("acq_miss"), 2);
        assert_eq!(a.event_count("nonexistent"), 0);
        assert_eq!(a.hists[0].count, 4);
        assert_eq!(a.hists[0].sum, 14);
        assert_eq!(a.hists[0].bins, vec![(0, 1), (2, 3), (4, 1)]);
    }

    #[test]
    fn merge_is_associative_on_counts() {
        let (a, b, c) = (sample(), sample(), sample());
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn json_shapes() {
        let t = sample();
        let full = t.to_json();
        assert!(full.contains("\"ns\":100"), "{full}");
        assert!(full.contains("\"bins\":[[0,1],[2,2]]"), "{full}");
        let det = t.to_json_deterministic();
        assert!(!det.contains("\"ns\""), "{det}");
        // Both parse with the in-repo checker.
        crate::json::parse(&full).unwrap();
        crate::json::parse(&det).unwrap();
        // Empty snapshot still renders valid JSON.
        crate::json::parse(&Telemetry::default().to_json()).unwrap();
    }

    #[test]
    fn fingerprint_ignores_timing_only() {
        let a = sample();
        let mut b = sample();
        b.stages[0].ns = 999_999;
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample();
        c.events[0].count += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
