//! Minimal hand-rolled JSON: an escaper for rendering and a strict
//! recursive-descent parser for schema validation in tests.
//!
//! The workspace bans external dependencies, so the `uwb-telemetry-v2`
//! documents are rendered by hand and validated with this parser. The
//! parser is deliberately strict: no `NaN`/`Infinity` tokens, no trailing
//! commas, no comments — if a renderer leaks a non-finite float the schema
//! test fails to parse.

/// Renders `s` as a JSON string literal **including** the surrounding
/// quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; always finite — the grammar has no
    /// `NaN`/`Infinity` tokens).
    Num(f64),
    /// String (unescaped).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}' at end of input", b as char)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape in string".to_string()),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: find the full sequence.
                    let start = self.pos - 1;
                    let len = if b >= 0xf0 {
                        4
                    } else if b >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    if start + len > self.bytes.len() {
                        return Err("truncated UTF-8 in string".to_string());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{text}' at byte {start}"));
        }
        Ok(Json::Num(n))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(out)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos - 1)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if out.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key \"{key}\" at byte {key_at}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(out)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos - 1)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_quotes_and_controls() {
        assert_eq!(escape("abc"), "\"abc\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("a\nb"), "\"a\\nb\"");
        assert_eq!(escape("a\u{1}b"), "\"a\\u0001b\"");
    }

    #[test]
    fn parse_roundtrips_basic_document() {
        let doc = r#"{"name":"rake","calls":12,"arr":[1,2.5,-3e2],"ok":true,"n":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("rake"));
        assert_eq!(v.get("calls").unwrap().as_num(), Some(12.0));
        let arr = v.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_num(), Some(-300.0));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n").unwrap(), &Json::Null);
    }

    #[test]
    fn parse_escaped_strings() {
        let v = parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
        // Round-trip through escape().
        let s = "weird \"chars\"\n\ttab \\ slash";
        assert_eq!(parse(&escape(s)).unwrap().as_str(), Some(s));
    }

    #[test]
    fn parse_rejects_nan_inf_and_garbage() {
        assert!(parse("NaN").is_err());
        assert!(parse("Infinity").is_err());
        assert!(parse("-Infinity").is_err());
        assert!(parse("{\"a\":NaN}").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1,2],").is_err());
        assert!(parse("").is_err());
        assert!(parse("{\"a\"").is_err());
    }

    #[test]
    fn parse_rejects_duplicate_keys() {
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse(r#"{"a":{"b":1,"b":2}}"#).is_err());
        // Same key at different nesting depths is fine.
        assert!(parse(r#"{"a":{"a":1},"b":[{"a":2},{"a":3}]}"#).is_ok());
    }

    #[test]
    fn parse_unicode_passthrough() {
        let v = parse("\"π ≈ 3.14159\"").unwrap();
        assert_eq!(v.as_str(), Some("π ≈ 3.14159"));
    }
}
