//! # uwb-obs — zero-overhead telemetry for the UWB reproduction
//!
//! The paper's receiver must *adapt* (power/QoS/data-rate, interferer
//! monitoring) based on what the pipeline observes at runtime, and more than
//! half of the system's power sits in the digital back end — so knowing
//! *where* per-trial time goes and *why* a packet failed is part of the
//! architecture, not an afterthought. This crate provides the measurement
//! substrate used by every other crate in the workspace:
//!
//! * **stage timers** — [`span!`] / [`StageTimer`]: RAII nanosecond
//!   accumulators with preallocated per-thread slots (zero heap allocation
//!   on the warm path);
//! * **events** — [`event!`]: deterministic per-thread counts of rare
//!   happenings (acquisition miss, CRC failure, notch retune) plus a
//!   bounded global ring buffer of the most recent occurrences, tagged with
//!   the Monte-Carlo trial that produced them;
//! * **histograms** — [`hist!`]: fixed-bin log2 histograms of deterministic
//!   per-trial quantities (bit errors per trial, acquisition offsets);
//! * **percentile digests** — [`digest!`]: fixed log-linear (HDR-style)
//!   histograms with deterministic p50/p95/p99/max extraction
//!   ([`telemetry::DigestStat::quantile`]), surfaced as the `"quantiles"`
//!   array of the `uwb-telemetry-v2` report;
//! * **span timelines** — [`trace`] (opt-in `obs-trace` feature): the same
//!   [`span!`] guards additionally fill per-thread rings of
//!   `{stage, trial, start_ns, dur_ns}` records, exportable as Chrome Trace
//!   Event JSON for Perfetto;
//! * **flight recorder** — [`recorder`]: a bounded deterministic ring of the
//!   K worst trials with forensic snapshots (trial seed for replay, [`note!`]
//!   values, event breadcrumbs), thread-count-invariant by construction;
//! * **sharded counters / gauges** — [`counter!`] / [`gauge!`]: process-wide
//!   registry metrics with per-thread shards, merged in deterministic shard
//!   order (u64 wrapping addition, so the merged value is order-independent
//!   anyway — the fixed order mirrors the Monte-Carlo merge contract);
//! * **snapshots** — [`Telemetry`]: a mergeable, JSON-renderable snapshot of
//!   a thread's stage/event/histogram state, drained per Monte-Carlo chunk
//!   and merged in deterministic chunk order by `uwb_sim::montecarlo`.
//!
//! ## The `obs` feature
//!
//! With the `obs` feature **off** (the default for bare library consumers),
//! every macro and collection function compiles to a no-op: [`StageTimer`]
//! is a zero-sized type, [`event!`]/[`hist!`]/[`digest!`]/[`note!`] expand
//! to dead borrows the optimizer deletes, and [`take_thread_telemetry`]
//! returns an empty [`Telemetry`]. The umbrella `uwb` crate and the
//! experiment binaries enable the feature by default. The `obs-trace`
//! feature (off by default, implies `obs`) additionally turns on span
//! timelines; without it [`trace::enabled`] is `false` and span recording
//! costs nothing.
//!
//! ## Histogram bin edges
//!
//! [`hist!`] bins by **significant bits**: bin 0 holds the value 0 and bin
//! `k` (1 ≤ k ≤ 62) holds `2^(k-1) ≤ v < 2^k` — so bin 1 is exactly {1},
//! bin 2 is {2, 3}, bin 3 is {4..=7}, and so on. The top bin (63) is
//! **saturating**: it holds every value with 63 *or more* significant bits,
//! i.e. the closed range `[2^62, u64::MAX]` — `u64::MAX` and every
//! near-boundary value land there deterministically rather than wrapping or
//! panicking. [`digest!`] refines the same idea with 16 linear sub-buckets
//! per power-of-two decade ([`telemetry::DIGEST_BINS`] bins total), which
//! bounds the relative quantile error at 6.25%; its top bin's inclusive
//! upper edge saturates at `u64::MAX`.
//!
//! ## Determinism contract
//!
//! Stage *call counts*, *event counts*, and *histogram bins* depend only on
//! the executed trials, so — drained per chunk and merged in chunk order —
//! they are bit-identical for any `UWB_THREADS`. Stage *nanosecond totals*
//! are wall-clock measurements and are explicitly excluded from that
//! contract; [`Telemetry::to_json_deterministic`] and
//! [`Telemetry::fingerprint`] omit them.
//!
//! ## Example
//!
//! ```
//! fn work() {
//!     let _t = uwb_obs::span!("demo_stage");
//!     uwb_obs::hist!("demo_values", 37u64);
//!     uwb_obs::event!("demo_event");
//! }
//! work();
//! let snap = uwb_obs::take_thread_telemetry();
//! if uwb_obs::enabled() {
//!     assert_eq!(snap.stages[0].name, "demo_stage");
//!     assert_eq!(snap.stages[0].calls, 1);
//! } else {
//!     assert!(snap.is_empty());
//! }
//! ```

#![warn(missing_docs)]

pub mod counter;
pub mod json;
pub mod recorder;
pub mod telemetry;
pub mod trace;

mod collect;
mod registry;
mod ring;

pub use collect::{current_trial, set_trial, take_thread_telemetry, StageTimer};
#[doc(hidden)]
pub use collect::{record_digest, record_event, record_hist};
pub use counter::{Gauge, ShardedCounter, COUNTER_SHARDS};
pub use registry::{
    register_counter, register_digest, register_event, register_gauge, register_hist,
    register_note, register_stage, registered_counters, registered_gauges, DigestId, EventId,
    GaugeId, HistId, NoteId, StageId, MAX_DIGESTS, MAX_EVENTS, MAX_HISTS, MAX_NOTES, MAX_STAGES,
};
pub use ring::{clear_events, recent_events, Event, RING_CAP};
pub use telemetry::{
    DigestStat, EventStat, HistStat, StageStat, Telemetry, DIGEST_BINS, HIST_BINS,
};

/// `true` when this build collects telemetry (the `obs` feature is on).
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

// ---------------------------------------------------------------------------
// Macros — real collectors with `obs`, dead no-ops without.
// ---------------------------------------------------------------------------

/// Starts an RAII stage timer: nanoseconds between this call and the guard's
/// drop are accumulated into the named stage's preallocated per-thread slot.
///
/// ```
/// let _t = uwb_obs::span!("rake");
/// // ... stage body ...
/// ```
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __UWB_OBS_STAGE: ::std::sync::OnceLock<$crate::StageId> =
            ::std::sync::OnceLock::new();
        $crate::StageTimer::start(*__UWB_OBS_STAGE.get_or_init(|| $crate::register_stage($name)))
    }};
}

/// No-op form (`obs` feature off): a zero-sized guard.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        let _ = &$name;
        $crate::StageTimer::start($crate::StageId::NONE)
    }};
}

/// Records one occurrence of a named rare event (optionally with a `u64`
/// payload): bumps the deterministic per-thread count and pushes a
/// trial-tagged entry onto the bounded global ring buffer.
///
/// ```
/// uwb_obs::event!("acq_miss");
/// uwb_obs::event!("notch_retune", 150_000_000u64);
/// ```
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::event!($name, 0u64)
    };
    ($name:expr, $value:expr) => {{
        static __UWB_OBS_EVENT: ::std::sync::OnceLock<$crate::EventId> =
            ::std::sync::OnceLock::new();
        let __id = *__UWB_OBS_EVENT.get_or_init(|| $crate::register_event($name));
        $crate::record_event(__id, $name, $value);
    }};
}

/// No-op form (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! event {
    ($name:expr) => {{
        let _ = &$name;
    }};
    ($name:expr, $value:expr) => {{
        let _ = (&$name, &$value);
    }};
}

/// Records a `u64` sample into the named fixed-bin log2 histogram
/// (bin 0 holds zeros; bin *k* holds values with *k* significant bits).
///
/// ```
/// uwb_obs::hist!("trial_bit_errors", 3u64);
/// ```
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! hist {
    ($name:expr, $value:expr) => {{
        static __UWB_OBS_HIST: ::std::sync::OnceLock<$crate::HistId> =
            ::std::sync::OnceLock::new();
        let __id = *__UWB_OBS_HIST.get_or_init(|| $crate::register_hist($name));
        $crate::record_hist(__id, $value);
    }};
}

/// No-op form (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! hist {
    ($name:expr, $value:expr) => {{
        let _ = (&$name, &$value);
    }};
}

/// Records a `u64` sample into the named percentile digest: a fixed
/// log-linear (HDR-style) histogram with deterministic p50/p95/p99/max
/// extraction, rendered in the telemetry report's `"quantiles"` array.
///
/// ```
/// uwb_obs::digest!("trial_bit_errors", 3u64);
/// ```
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! digest {
    ($name:expr, $value:expr) => {{
        static __UWB_OBS_DIGEST: ::std::sync::OnceLock<$crate::DigestId> =
            ::std::sync::OnceLock::new();
        let __id = *__UWB_OBS_DIGEST.get_or_init(|| $crate::register_digest($name));
        $crate::record_digest(__id, $value);
    }};
}

/// No-op form (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! digest {
    ($name:expr, $value:expr) => {{
        let _ = (&$name, &$value);
    }};
}

/// Writes a named forensic note onto the flight recorder's in-flight trial
/// (latest value per name wins; ignored outside `recorder::begin_trial` /
/// `recorder::observe`). Signed quantities should be stored two's-complement
/// (`as u64`) and are rendered back as `i64`.
///
/// ```
/// uwb_obs::note!("snr_milli_db", (-3500i64) as u64);
/// ```
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! note {
    ($name:expr, $value:expr) => {{
        static __UWB_OBS_NOTE: ::std::sync::OnceLock<$crate::NoteId> =
            ::std::sync::OnceLock::new();
        let __id = *__UWB_OBS_NOTE.get_or_init(|| $crate::register_note($name));
        $crate::recorder::record_note(__id, $value);
    }};
}

/// No-op form (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! note {
    ($name:expr, $value:expr) => {{
        let _ = (&$name, &$value);
    }};
}

/// Resolves (registering on first use) a named process-wide
/// [`ShardedCounter`] from the static registry.
///
/// ```
/// uwb_obs::counter!("fft_plans_built").add(1);
/// ```
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __UWB_OBS_CTR: ::std::sync::OnceLock<&'static $crate::ShardedCounter> =
            ::std::sync::OnceLock::new();
        *__UWB_OBS_CTR.get_or_init(|| $crate::register_counter($name))
    }};
}

/// No-op form (`obs` feature off): a shared dead counter.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        let _ = &$name;
        &$crate::counter::NOOP_COUNTER
    }};
}

/// Resolves (registering on first use) a named process-wide [`Gauge`].
///
/// ```
/// uwb_obs::gauge!("agc_gain_milli").set(1287);
/// ```
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __UWB_OBS_GAUGE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__UWB_OBS_GAUGE.get_or_init(|| $crate::register_gauge($name))
    }};
}

/// No-op form (`obs` feature off): a shared dead gauge.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        let _ = &$name;
        &$crate::counter::NOOP_GAUGE
    }};
}
