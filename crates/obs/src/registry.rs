//! Static registry of stages, events, histograms, counters, and gauges.
//!
//! Registration is idempotent by name and happens once per call site (the
//! macros cache the returned id in a `OnceLock`), so it is a cold-path
//! concern: the warm path only ever touches preallocated per-thread slots
//! indexed by these ids. Capacities are fixed ([`MAX_STAGES`],
//! [`MAX_EVENTS`], [`MAX_HISTS`]); registrations past the cap return the
//! `NONE` sentinel and are silently dropped rather than panicking inside an
//! instrumented library.

use crate::counter::{Gauge, ShardedCounter};
use std::sync::Mutex;

/// Maximum number of distinct stage names.
pub const MAX_STAGES: usize = 32;
/// Maximum number of distinct event names.
pub const MAX_EVENTS: usize = 32;
/// Maximum number of distinct histogram names.
pub const MAX_HISTS: usize = 16;
/// Maximum number of distinct percentile digests.
pub const MAX_DIGESTS: usize = 8;
/// Maximum number of distinct flight-recorder note names.
pub const MAX_NOTES: usize = 16;

/// Identifies a registered pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageId(pub(crate) u16);

/// Identifies a registered event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) u16);

/// Identifies a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistId(pub(crate) u16);

/// Identifies a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(pub(crate) u16);

/// Identifies a registered percentile digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DigestId(pub(crate) u16);

/// Identifies a registered flight-recorder note name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NoteId(pub(crate) u16);

impl StageId {
    /// Sentinel for "not registered" (no-op builds, capacity overflow).
    pub const NONE: StageId = StageId(u16::MAX);
}

impl EventId {
    /// Sentinel for "not registered".
    pub const NONE: EventId = EventId(u16::MAX);
}

impl HistId {
    /// Sentinel for "not registered".
    pub const NONE: HistId = HistId(u16::MAX);
}

impl DigestId {
    /// Sentinel for "not registered".
    pub const NONE: DigestId = DigestId(u16::MAX);
}

impl NoteId {
    /// Sentinel for "not registered".
    pub const NONE: NoteId = NoteId(u16::MAX);
}

#[derive(Default)]
struct Registry {
    stages: Vec<&'static str>,
    events: Vec<&'static str>,
    hists: Vec<&'static str>,
    digests: Vec<&'static str>,
    notes: Vec<&'static str>,
    counters: Vec<(&'static str, &'static ShardedCounter)>,
    gauges: Vec<(&'static str, &'static Gauge)>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    stages: Vec::new(),
    events: Vec::new(),
    hists: Vec::new(),
    digests: Vec::new(),
    notes: Vec::new(),
    counters: Vec::new(),
    gauges: Vec::new(),
});

fn intern(list: &mut Vec<&'static str>, cap: usize, name: &'static str) -> Option<u16> {
    if let Some(i) = list.iter().position(|n| *n == name) {
        return Some(i as u16);
    }
    if list.len() >= cap {
        return None;
    }
    list.push(name);
    Some((list.len() - 1) as u16)
}

/// Registers (or looks up) a stage name, returning its id.
pub fn register_stage(name: &'static str) -> StageId {
    let mut reg = REGISTRY.lock().expect("obs registry poisoned");
    intern(&mut reg.stages, MAX_STAGES, name).map_or(StageId::NONE, StageId)
}

/// Registers (or looks up) an event name, returning its id.
pub fn register_event(name: &'static str) -> EventId {
    let mut reg = REGISTRY.lock().expect("obs registry poisoned");
    intern(&mut reg.events, MAX_EVENTS, name).map_or(EventId::NONE, EventId)
}

/// Registers (or looks up) a histogram name, returning its id.
pub fn register_hist(name: &'static str) -> HistId {
    let mut reg = REGISTRY.lock().expect("obs registry poisoned");
    intern(&mut reg.hists, MAX_HISTS, name).map_or(HistId::NONE, HistId)
}

/// Registers (or looks up) a percentile digest name, returning its id.
pub fn register_digest(name: &'static str) -> DigestId {
    let mut reg = REGISTRY.lock().expect("obs registry poisoned");
    intern(&mut reg.digests, MAX_DIGESTS, name).map_or(DigestId::NONE, DigestId)
}

/// Registers (or looks up) a flight-recorder note name, returning its id.
pub fn register_note(name: &'static str) -> NoteId {
    let mut reg = REGISTRY.lock().expect("obs registry poisoned");
    intern(&mut reg.notes, MAX_NOTES, name).map_or(NoteId::NONE, NoteId)
}

/// Registers (or looks up) a process-wide sharded counter by name.
///
/// The counter is leaked once on first registration and lives for the rest
/// of the process — exactly like a `static`, but nameable at runtime.
pub fn register_counter(name: &'static str) -> &'static ShardedCounter {
    let mut reg = REGISTRY.lock().expect("obs registry poisoned");
    if let Some((_, c)) = reg.counters.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let c: &'static ShardedCounter = Box::leak(Box::new(ShardedCounter::new()));
    reg.counters.push((name, c));
    c
}

/// Registers (or looks up) a process-wide gauge by name.
pub fn register_gauge(name: &'static str) -> &'static Gauge {
    let mut reg = REGISTRY.lock().expect("obs registry poisoned");
    if let Some((_, g)) = reg.gauges.iter().find(|(n, _)| *n == name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    reg.gauges.push((name, g));
    g
}

/// Snapshot of every registered counter as `(name, merged value)` rows,
/// sorted by name (shards summed in fixed shard order).
pub fn registered_counters() -> Vec<(&'static str, u64)> {
    let reg = REGISTRY.lock().expect("obs registry poisoned");
    let mut rows: Vec<(&'static str, u64)> =
        reg.counters.iter().map(|(n, c)| (*n, c.get())).collect();
    rows.sort_unstable_by_key(|(n, _)| *n);
    rows
}

/// Snapshot of every registered gauge as `(name, value)` rows, sorted by
/// name.
pub fn registered_gauges() -> Vec<(&'static str, u64)> {
    let reg = REGISTRY.lock().expect("obs registry poisoned");
    let mut rows: Vec<(&'static str, u64)> = reg.gauges.iter().map(|(n, g)| (*n, g.get())).collect();
    rows.sort_unstable_by_key(|(n, _)| *n);
    rows
}

/// Names of all registered stages, indexed by [`StageId`].
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn stage_names() -> Vec<&'static str> {
    REGISTRY.lock().expect("obs registry poisoned").stages.clone()
}

/// Names of all registered events, indexed by [`EventId`].
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn event_names() -> Vec<&'static str> {
    REGISTRY.lock().expect("obs registry poisoned").events.clone()
}

/// Names of all registered histograms, indexed by [`HistId`].
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn hist_names() -> Vec<&'static str> {
    REGISTRY.lock().expect("obs registry poisoned").hists.clone()
}

/// Names of all registered percentile digests, indexed by [`DigestId`].
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn digest_names() -> Vec<&'static str> {
    REGISTRY.lock().expect("obs registry poisoned").digests.clone()
}

/// Names of all registered flight-recorder notes, indexed by [`NoteId`].
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn note_names() -> Vec<&'static str> {
    REGISTRY.lock().expect("obs registry poisoned").notes.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let a = register_stage("reg_test_stage");
        let b = register_stage("reg_test_stage");
        assert_eq!(a, b);
        assert_ne!(a, StageId::NONE);
        let e1 = register_event("reg_test_event");
        let e2 = register_event("reg_test_event");
        assert_eq!(e1, e2);
        let h1 = register_hist("reg_test_hist");
        let h2 = register_hist("reg_test_hist");
        assert_eq!(h1, h2);
    }

    #[test]
    fn counters_and_gauges_are_shared_by_name() {
        let c1 = register_counter("reg_test_ctr");
        let c2 = register_counter("reg_test_ctr");
        assert!(std::ptr::eq(c1, c2));
        c1.add(3);
        assert!(registered_counters()
            .iter()
            .any(|(n, v)| *n == "reg_test_ctr" && (*v >= 3 || !crate::enabled())));
        let g1 = register_gauge("reg_test_gauge");
        let g2 = register_gauge("reg_test_gauge");
        assert!(std::ptr::eq(g1, g2));
    }
}
