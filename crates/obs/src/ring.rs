//! Bounded global ring buffer of recent rare events.
//!
//! Fixed-capacity (`[Event; RING_CAP]`) storage under a const-initialised
//! `Mutex` — pushing never allocates. Each entry carries the Monte-Carlo
//! trial that produced it (via [`crate::set_trial`]) plus a monotonically
//! increasing sequence number so readers can order entries across wraps.
//!
//! The ring is *diagnostic*, not part of the determinism contract: entry
//! order depends on thread interleaving. Deterministic per-event counts live
//! in [`crate::Telemetry`].

#[cfg(feature = "obs")]
use std::sync::Mutex;

/// Capacity of the global event ring.
pub const RING_CAP: usize = 256;

/// One recorded rare event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Registered event name.
    pub name: &'static str,
    /// Monte-Carlo trial active on the recording thread (0 if untagged).
    pub trial: u64,
    /// Optional payload (e.g. a retuned notch frequency in Hz).
    pub value: u64,
    /// Global sequence number (monotone; orders entries across ring wraps).
    pub seq: u64,
}

#[cfg(feature = "obs")]
struct Ring {
    buf: [Event; RING_CAP],
    /// Total number of events ever pushed (next seq).
    pushed: u64,
}

#[cfg(feature = "obs")]
const EMPTY: Event = Event {
    name: "",
    trial: 0,
    value: 0,
    seq: 0,
};

#[cfg(feature = "obs")]
static RING: Mutex<Ring> = Mutex::new(Ring {
    buf: [EMPTY; RING_CAP],
    pushed: 0,
});

/// Pushes an event (called from [`crate::event!`] via the collector).
#[cfg(feature = "obs")]
pub(crate) fn push(name: &'static str, trial: u64, value: u64) {
    let mut ring = RING.lock().expect("obs ring poisoned");
    let seq = ring.pushed;
    let slot = (seq % RING_CAP as u64) as usize;
    ring.buf[slot] = Event {
        name,
        trial,
        value,
        seq,
    };
    ring.pushed = seq + 1;
}

#[cfg(not(feature = "obs"))]
#[allow(dead_code)]
pub(crate) fn push(_name: &'static str, _trial: u64, _value: u64) {}

/// Snapshot of the retained events, oldest first.
#[cfg(feature = "obs")]
pub fn recent_events() -> Vec<Event> {
    let ring = RING.lock().expect("obs ring poisoned");
    let n = ring.pushed.min(RING_CAP as u64) as usize;
    let mut out = Vec::with_capacity(n);
    let start = ring.pushed - n as u64;
    for s in start..ring.pushed {
        out.push(ring.buf[(s % RING_CAP as u64) as usize]);
    }
    out
}

/// Always empty (`obs` feature off).
#[cfg(not(feature = "obs"))]
pub fn recent_events() -> Vec<Event> {
    Vec::new()
}

/// Empties the ring (test hygiene).
#[cfg(feature = "obs")]
pub fn clear_events() {
    let mut ring = RING.lock().expect("obs ring poisoned");
    ring.buf = [EMPTY; RING_CAP];
    ring.pushed = 0;
}

/// No-op (`obs` feature off).
#[cfg(not(feature = "obs"))]
pub fn clear_events() {}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_most_recent_and_orders_by_seq() {
        clear_events();
        for i in 0..(RING_CAP as u64 + 10) {
            push("ring_test", i, i * 2);
        }
        let events = recent_events();
        assert_eq!(events.len(), RING_CAP);
        // Oldest retained entry is seq 10; newest is seq RING_CAP+9.
        assert_eq!(events.first().unwrap().seq, 10);
        assert_eq!(events.last().unwrap().seq, RING_CAP as u64 + 9);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(events.last().unwrap().value, (RING_CAP as u64 + 9) * 2);
        clear_events();
        assert!(recent_events().is_empty());
    }
}
