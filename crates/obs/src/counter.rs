//! Sharded atomic counters and gauges.
//!
//! A [`ShardedCounter`] spreads increments over [`COUNTER_SHARDS`]
//! cache-line-padded atomic cells — each thread hashes to a home shard, so
//! concurrent `add`s from different workers never bounce the same cache
//! line. [`ShardedCounter::get`] merges the shards in fixed index order
//! (u64 wrapping addition is order-independent, but the deterministic order
//! mirrors the Monte-Carlo engine's ordered-prefix merge contract and keeps
//! the read path auditable).
//!
//! With the `obs` feature off, `add`/`set` are empty inline functions — the
//! types still exist so instrumented code compiles unchanged.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter (power of two, each on its own cache line).
pub const COUNTER_SHARDS: usize = 16;

#[repr(align(64))]
struct Shard(AtomicU64);

/// A process-wide counter sharded across padded atomic cells.
pub struct ShardedCounter {
    shards: [Shard; COUNTER_SHARDS],
}

#[cfg(feature = "obs")]
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

#[cfg(not(feature = "obs"))]
#[allow(dead_code)]
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

#[cfg(feature = "obs")]
#[inline]
fn home_shard() -> usize {
    thread_local! {
        static HOME: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    HOME.with(|h| *h)
}

impl ShardedCounter {
    /// A zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        ShardedCounter {
            shards: [const { Shard(AtomicU64::new(0)) }; COUNTER_SHARDS],
        }
    }

    /// Adds `v` to the calling thread's home shard.
    #[cfg(feature = "obs")]
    #[inline]
    pub fn add(&self, v: u64) {
        self.shards[home_shard()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// No-op (`obs` feature off).
    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub fn add(&self, _v: u64) {}

    /// Convenience for `add(1)`.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merges the shards in fixed index order and returns the total.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }

    /// Zeroes every shard (test/bench hygiene — racy against concurrent
    /// `add`s by design; the merged value is only exact at quiescence).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        ShardedCounter::new()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardedCounter({})", self.get())
    }
}

/// Shared dead counter returned by the no-op [`crate::counter!`] expansion.
pub static NOOP_COUNTER: ShardedCounter = ShardedCounter::new();

/// A process-wide last-write-wins gauge (a single relaxed atomic).
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge (usable in `static` position).
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Stores `v` (last write wins).
    #[cfg(feature = "obs")]
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// No-op (`obs` feature off).
    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    pub fn set(&self, _v: u64) {}

    /// The last stored value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Shared dead gauge returned by the no-op [`crate::gauge!`] expansion.
pub static NOOP_GAUGE: Gauge = Gauge::new();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = ShardedCounter::new();
        for _ in 0..10 {
            c.inc();
        }
        c.add(5);
        if crate::enabled() {
            assert_eq!(c.get(), 15);
        } else {
            assert_eq!(c.get(), 0);
        }
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn counter_merges_across_threads() {
        let c = ShardedCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::new();
        g.set(7);
        g.set(42);
        if crate::enabled() {
            assert_eq!(g.get(), 42);
        } else {
            assert_eq!(g.get(), 0);
        }
    }
}
