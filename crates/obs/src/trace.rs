//! Span timelines: per-thread fixed-capacity rings of
//! `{stage, trial, start_ns, dur_ns}` records filled by the same [`crate::span!`]
//! RAII guards that feed the aggregate stage timers, drained per Monte-Carlo
//! chunk into [`crate::Telemetry::spans`] and exportable as Chrome Trace
//! Event Format JSON (viewable in Perfetto / `chrome://tracing`).
//!
//! Only compiled into real collectors with the `obs-trace` cargo feature
//! (which implies `obs`); otherwise every function here is a no-op and
//! [`enabled`] returns `false`.
//!
//! ## Determinism contract
//!
//! `start_ns`, `dur_ns`, and `thread` are wall-clock / scheduling artifacts
//! and are **excluded** from the determinism contract. Record **counts and
//! ordering** — the `(name, trial)` sequence hashed by
//! [`crate::Telemetry::trace_fingerprint`] — are bit-identical for any
//! `UWB_THREADS`, because each chunk's records are appended in serial
//! execution order and chunks merge in ascending chunk order.
//!
//! ## Allocation contract
//!
//! The per-thread ring is reserved to [`TRACE_CAP`] records on the first
//! span of each thread (a warm-up-path, one-time allocation) and never grows:
//! once full between drains, further records are counted as dropped rather
//! than reallocating, so steady-state spans stay allocation-free.

/// Capacity of each per-thread span ring, in records. Sized so one chunk of
/// a 1,000-user network round (≈ 20k spans) fits without drops; when a chunk
/// overflows it, the newest records are dropped and counted
/// ([`crate::Telemetry::spans_dropped`]) deterministically.
pub const TRACE_CAP: usize = 65_536;

/// One completed span: a named pipeline stage that ran on `thread` during
/// Monte-Carlo trial `trial`, from `start_ns` (process-relative) for
/// `dur_ns` nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (a registered static string).
    pub name: &'static str,
    /// Monte-Carlo trial (or network round) index the span ran under.
    pub trial: u64,
    /// Start time in nanoseconds since the process trace epoch
    /// (wall-clock: excluded from the determinism contract).
    pub start_ns: u64,
    /// Duration in nanoseconds (wall-clock: excluded from the determinism
    /// contract).
    pub dur_ns: u64,
    /// Arbitrary per-thread id (assigned in thread-creation order; excluded
    /// from the determinism contract).
    pub thread: u32,
}

/// `true` when this build records span timelines (`obs-trace` feature on).
pub const fn enabled() -> bool {
    cfg!(feature = "obs-trace")
}

#[cfg(feature = "obs-trace")]
mod imp {
    use super::{SpanRecord, TRACE_CAP};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Process-wide epoch all span start times are measured against.
    pub(crate) fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

    struct Ring {
        /// `(stage id, trial, start_ns, dur_ns)`; names resolve at drain.
        buf: Vec<(u16, u64, u64, u64)>,
        dropped: u64,
        thread: u32,
    }

    thread_local! {
        static RING: RefCell<Ring> = RefCell::new(Ring {
            buf: Vec::new(),
            dropped: 0,
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        });
    }

    /// Appends one completed span to this thread's ring (called from
    /// `StageTimer::drop`). Reserves the full ring capacity on first use;
    /// saturates (counting drops) instead of growing.
    #[inline]
    pub(crate) fn push(stage: u16, trial: u64, start_ns: u64, dur_ns: u64) {
        RING.with(|r| {
            let mut r = r.borrow_mut();
            if r.buf.capacity() == 0 {
                r.buf.reserve_exact(TRACE_CAP);
            }
            if r.buf.len() < TRACE_CAP {
                r.buf.push((stage, trial, start_ns, dur_ns));
            } else {
                r.dropped += 1;
            }
        });
    }

    /// Drains this thread's ring into name-resolved records (take
    /// semantics; the ring keeps its capacity).
    pub(crate) fn drain() -> (Vec<SpanRecord>, u64) {
        let names = crate::registry::stage_names();
        RING.with(|r| {
            let mut r = r.borrow_mut();
            if r.buf.is_empty() && r.dropped == 0 {
                return (Vec::new(), 0);
            }
            let thread = r.thread;
            let spans = r
                .buf
                .iter()
                .map(|&(stage, trial, start_ns, dur_ns)| SpanRecord {
                    name: names.get(stage as usize).copied().unwrap_or("?"),
                    trial,
                    start_ns,
                    dur_ns,
                    thread,
                })
                .collect();
            r.buf.clear();
            let dropped = std::mem::take(&mut r.dropped);
            (spans, dropped)
        })
    }
}

#[cfg(feature = "obs-trace")]
pub(crate) use imp::{drain, epoch, push};

/// Empty drain (`obs-trace` feature off; kept for cfg symmetry).
#[cfg(not(feature = "obs-trace"))]
#[inline(always)]
#[allow(dead_code)]
pub(crate) fn drain() -> (Vec<SpanRecord>, u64) {
    (Vec::new(), 0)
}

/// Renders span records as a Chrome Trace Event Format document
/// (`{"traceEvents":[...]}` with `ph:"X"` complete events), loadable in
/// Perfetto or `chrome://tracing`. Timestamps are microseconds with
/// nanosecond precision; the Monte-Carlo trial index rides in `args.trial`.
pub fn export_chrome(spans: &[SpanRecord]) -> String {
    let mut s = String::with_capacity(128 + spans.len() * 96);
    s.push_str("{\"traceEvents\":[");
    for (i, sp) in spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":{},\"cat\":\"uwb\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trial\":{}}}}}",
            crate::json::escape(sp.name),
            sp.start_ns / 1_000,
            sp.start_ns % 1_000,
            sp.dur_ns / 1_000,
            sp.dur_ns % 1_000,
            sp.thread,
            sp.trial
        ));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_valid_json_and_carries_trials() {
        let spans = [
            SpanRecord {
                name: "tx",
                trial: 3,
                start_ns: 1_234_567,
                dur_ns: 890,
                thread: 0,
            },
            SpanRecord {
                name: "rx_rake",
                trial: 4,
                start_ns: 2_000_000,
                dur_ns: 1_500,
                thread: 1,
            },
        ];
        let doc = export_chrome(&spans);
        let v = crate::json::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("tx"));
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("ts").unwrap().as_num(), Some(1234.567));
        assert_eq!(
            events[1].get("args").unwrap().get("trial").unwrap().as_num(),
            Some(4.0)
        );
        // Empty timeline still renders a valid document.
        crate::json::parse(&export_chrome(&[])).unwrap();
    }

    #[test]
    fn spans_ride_the_thread_telemetry_drain() {
        let _ = crate::take_thread_telemetry(); // clear residue
        {
            let _t = crate::span!("trace_test_stage");
            std::hint::black_box(0u64);
        }
        let snap = crate::take_thread_telemetry();
        if enabled() {
            assert_eq!(snap.spans.len(), 1);
            assert_eq!(snap.spans[0].name, "trace_test_stage");
            assert_eq!(snap.spans_dropped, 0);
            // Second drain is empty.
            assert!(crate::take_thread_telemetry().spans.is_empty());
        } else {
            assert!(snap.spans.is_empty());
        }
    }
}
