//! Per-thread collection state: stage timers, event counts, histograms.
//!
//! Every collector slot is a const-initialised `Cell<u64>` inside a
//! `thread_local!` block — no lazy allocation, no locking, no atomic RMW on
//! the warm path. [`take_thread_telemetry`] drains the thread's state into a
//! [`Telemetry`] snapshot (zeroing the slots), which the Monte-Carlo engine
//! merges in deterministic chunk order.

#[cfg(feature = "obs")]
use crate::registry::{self, EventId, HistId};
#[cfg(not(feature = "obs"))]
use crate::registry::{EventId, HistId};

use crate::registry::{DigestId, StageId};
use crate::telemetry::Telemetry;

#[cfg(feature = "obs")]
use crate::telemetry::{
    digest_bin, log2_bin, DigestStat, EventStat, HistStat, StageStat, DIGEST_BINS, HIST_BINS,
};
#[cfg(feature = "obs")]
use std::cell::Cell;
#[cfg(feature = "obs")]
use std::time::Instant;

#[cfg(feature = "obs")]
use crate::registry::{MAX_DIGESTS, MAX_EVENTS, MAX_HISTS, MAX_STAGES};

// ---------------------------------------------------------------------------
// Thread-local collector (obs on)
// ---------------------------------------------------------------------------

#[cfg(feature = "obs")]
struct Collector {
    stage_ns: [Cell<u64>; MAX_STAGES],
    stage_calls: [Cell<u64>; MAX_STAGES],
    events: [Cell<u64>; MAX_EVENTS],
    hist_n: [Cell<u64>; MAX_HISTS],
    hist_sum: [Cell<u64>; MAX_HISTS],
    hist_bins: [[Cell<u64>; HIST_BINS]; MAX_HISTS],
    digest_n: [Cell<u64>; MAX_DIGESTS],
    digest_sum: [Cell<u64>; MAX_DIGESTS],
    digest_max: [Cell<u64>; MAX_DIGESTS],
    digest_bins: [[Cell<u64>; DIGEST_BINS]; MAX_DIGESTS],
    trial: Cell<u64>,
}

#[cfg(feature = "obs")]
impl Collector {
    const fn new() -> Self {
        Collector {
            stage_ns: [const { Cell::new(0) }; MAX_STAGES],
            stage_calls: [const { Cell::new(0) }; MAX_STAGES],
            events: [const { Cell::new(0) }; MAX_EVENTS],
            hist_n: [const { Cell::new(0) }; MAX_HISTS],
            hist_sum: [const { Cell::new(0) }; MAX_HISTS],
            hist_bins: [const { [const { Cell::new(0) }; HIST_BINS] }; MAX_HISTS],
            digest_n: [const { Cell::new(0) }; MAX_DIGESTS],
            digest_sum: [const { Cell::new(0) }; MAX_DIGESTS],
            digest_max: [const { Cell::new(0) }; MAX_DIGESTS],
            digest_bins: [const { [const { Cell::new(0) }; DIGEST_BINS] }; MAX_DIGESTS],
            trial: Cell::new(0),
        }
    }
}

#[cfg(feature = "obs")]
thread_local! {
    static TLS: Collector = const { Collector::new() };
}

// ---------------------------------------------------------------------------
// Trial tagging
// ---------------------------------------------------------------------------

/// Tags subsequent events on this thread with the given Monte-Carlo trial
/// index (shows up in the ring buffer entries).
#[cfg(feature = "obs")]
#[inline]
pub fn set_trial(trial: u64) {
    TLS.with(|c| c.trial.set(trial));
}

/// No-op (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn set_trial(_trial: u64) {}

/// The trial index most recently set on this thread via [`set_trial`].
#[cfg(feature = "obs")]
#[inline]
pub fn current_trial() -> u64 {
    TLS.with(|c| c.trial.get())
}

/// Always 0 (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn current_trial() -> u64 {
    0
}

// ---------------------------------------------------------------------------
// Stage timers
// ---------------------------------------------------------------------------

/// RAII guard accumulating wall nanoseconds (and one call) into a stage's
/// per-thread slot on drop. Construct via [`crate::span!`].
#[cfg(feature = "obs")]
pub struct StageTimer {
    id: StageId,
    t0: Instant,
}

#[cfg(feature = "obs")]
impl StageTimer {
    /// Starts timing the given stage (no-op guard if `id` is the sentinel).
    #[inline]
    pub fn start(id: StageId) -> StageTimer {
        // Pin the trace epoch no later than any span start, so span start
        // offsets never saturate to zero (except the epoch-defining first).
        #[cfg(feature = "obs-trace")]
        let _ = crate::trace::epoch();
        StageTimer {
            id,
            t0: Instant::now(),
        }
    }
}

#[cfg(feature = "obs")]
impl Drop for StageTimer {
    #[inline]
    fn drop(&mut self) {
        if self.id == StageId::NONE {
            return;
        }
        let ns = self.t0.elapsed().as_nanos() as u64;
        let i = self.id.0 as usize;
        let trial = TLS.with(|c| {
            c.stage_ns[i].set(c.stage_ns[i].get().wrapping_add(ns));
            c.stage_calls[i].set(c.stage_calls[i].get() + 1);
            c.trial.get()
        });
        #[cfg(feature = "obs-trace")]
        {
            let start_ns = self
                .t0
                .saturating_duration_since(crate::trace::epoch())
                .as_nanos() as u64;
            crate::trace::push(self.id.0, trial, start_ns, ns);
        }
        #[cfg(not(feature = "obs-trace"))]
        let _ = trial;
    }
}

/// Zero-sized no-op guard (`obs` feature off).
#[cfg(not(feature = "obs"))]
pub struct StageTimer;

#[cfg(not(feature = "obs"))]
impl StageTimer {
    /// No-op.
    #[inline(always)]
    pub fn start(_id: StageId) -> StageTimer {
        StageTimer
    }
}

/// Empty `Drop` so call sites may end a span early with `drop(timer)`
/// without tripping `clippy::drop_non_drop` in the no-op build; the
/// optimizer erases it entirely.
#[cfg(not(feature = "obs"))]
impl Drop for StageTimer {
    #[inline(always)]
    fn drop(&mut self) {}
}

// ---------------------------------------------------------------------------
// Event / histogram recording (called from the macros)
// ---------------------------------------------------------------------------

/// Bumps the per-thread count for the event and pushes a trial-tagged entry
/// onto the global ring buffer. Called by [`crate::event!`]; not public API.
#[cfg(feature = "obs")]
#[doc(hidden)]
#[inline]
pub fn record_event(id: EventId, name: &'static str, value: u64) {
    if id == EventId::NONE {
        return;
    }
    let trial = TLS.with(|c| {
        let i = id.0 as usize;
        c.events[i].set(c.events[i].get() + 1);
        c.trial.get()
    });
    crate::recorder::crumb(id.0, value);
    crate::ring::push(name, trial, value);
}

/// No-op (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[doc(hidden)]
#[inline(always)]
pub fn record_event(_id: EventId, _name: &'static str, _value: u64) {}

/// Records `value` into the histogram's per-thread log2 bins. Called by
/// [`crate::hist!`]; not public API.
#[cfg(feature = "obs")]
#[doc(hidden)]
#[inline]
pub fn record_hist(id: HistId, value: u64) {
    if id == HistId::NONE {
        return;
    }
    let i = id.0 as usize;
    let b = log2_bin(value);
    TLS.with(|c| {
        c.hist_n[i].set(c.hist_n[i].get() + 1);
        c.hist_sum[i].set(c.hist_sum[i].get().wrapping_add(value));
        c.hist_bins[i][b].set(c.hist_bins[i][b].get() + 1);
    });
}

/// No-op (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[doc(hidden)]
#[inline(always)]
pub fn record_hist(_id: HistId, _value: u64) {}

/// Records `value` into the percentile digest's per-thread log-linear bins.
/// Called by [`crate::digest!`]; not public API.
#[cfg(feature = "obs")]
#[doc(hidden)]
#[inline]
pub fn record_digest(id: DigestId, value: u64) {
    if id == DigestId::NONE {
        return;
    }
    let i = id.0 as usize;
    let b = digest_bin(value);
    TLS.with(|c| {
        c.digest_n[i].set(c.digest_n[i].get() + 1);
        c.digest_sum[i].set(c.digest_sum[i].get().wrapping_add(value));
        c.digest_max[i].set(c.digest_max[i].get().max(value));
        c.digest_bins[i][b].set(c.digest_bins[i][b].get() + 1);
    });
}

/// No-op (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[doc(hidden)]
#[inline(always)]
pub fn record_digest(_id: DigestId, _value: u64) {}

// ---------------------------------------------------------------------------
// Draining
// ---------------------------------------------------------------------------

/// Drains this thread's collector into a [`Telemetry`] snapshot, zeroing
/// every slot (take semantics). The snapshot's entries are sorted by name.
///
/// With the `obs` feature off this allocates nothing and returns an empty
/// snapshot.
#[cfg(feature = "obs")]
pub fn take_thread_telemetry() -> Telemetry {
    let stage_names = registry::stage_names();
    let event_names = registry::event_names();
    let hist_names = registry::hist_names();
    let digest_names = registry::digest_names();

    TLS.with(|c| {
        let mut stages: Vec<StageStat> = Vec::new();
        for (i, name) in stage_names.iter().enumerate() {
            let calls = c.stage_calls[i].replace(0);
            let ns = c.stage_ns[i].replace(0);
            if calls > 0 || ns > 0 {
                stages.push(StageStat { name, calls, ns });
            }
        }
        let mut events: Vec<EventStat> = Vec::new();
        for (i, name) in event_names.iter().enumerate() {
            let count = c.events[i].replace(0);
            if count > 0 {
                events.push(EventStat { name, count });
            }
        }
        let mut hists: Vec<HistStat> = Vec::new();
        for (i, name) in hist_names.iter().enumerate() {
            let count = c.hist_n[i].replace(0);
            let sum = c.hist_sum[i].replace(0);
            let mut bins: Vec<(u8, u64)> = Vec::new();
            for (b, cell) in c.hist_bins[i].iter().enumerate() {
                let n = cell.replace(0);
                if n > 0 {
                    bins.push((b as u8, n));
                }
            }
            if count > 0 {
                hists.push(HistStat {
                    name,
                    count,
                    sum,
                    bins,
                });
            }
        }
        let mut digests: Vec<DigestStat> = Vec::new();
        for (i, name) in digest_names.iter().enumerate() {
            let count = c.digest_n[i].replace(0);
            let sum = c.digest_sum[i].replace(0);
            let max = c.digest_max[i].replace(0);
            let mut bins: Vec<(u16, u64)> = Vec::new();
            for (b, cell) in c.digest_bins[i].iter().enumerate() {
                let n = cell.replace(0);
                if n > 0 {
                    bins.push((b as u16, n));
                }
            }
            if count > 0 {
                digests.push(DigestStat {
                    name,
                    count,
                    sum,
                    max,
                    bins,
                });
            }
        }
        stages.sort_unstable_by_key(|s| s.name);
        events.sort_unstable_by_key(|e| e.name);
        hists.sort_unstable_by_key(|h| h.name);
        digests.sort_unstable_by_key(|d| d.name);
        let (spans, spans_dropped) = crate::trace::drain();
        let worst = crate::recorder::drain();
        Telemetry {
            stages,
            events,
            hists,
            digests,
            spans,
            spans_dropped,
            worst,
        }
    })
}

/// Empty snapshot (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[inline]
pub fn take_thread_telemetry() -> Telemetry {
    Telemetry::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_accumulates_and_drains() {
        let _ = take_thread_telemetry(); // clear residue from other tests
        {
            let _t = crate::span!("collect_test_stage");
            std::hint::black_box(0u64);
        }
        {
            let _t = crate::span!("collect_test_stage");
            std::hint::black_box(0u64);
        }
        let snap = take_thread_telemetry();
        if crate::enabled() {
            let s = snap.stage("collect_test_stage").expect("stage present");
            assert_eq!(s.calls, 2);
            // second drain is empty
            let snap2 = take_thread_telemetry();
            assert!(snap2.stage("collect_test_stage").is_none());
        } else {
            assert!(snap.is_empty());
        }
    }

    #[test]
    fn events_and_hists_drain() {
        let _ = take_thread_telemetry();
        crate::event!("collect_test_event");
        crate::event!("collect_test_event", 9u64);
        crate::hist!("collect_test_hist", 5u64);
        crate::hist!("collect_test_hist", 0u64);
        let snap = take_thread_telemetry();
        if crate::enabled() {
            assert_eq!(snap.event_count("collect_test_event"), 2);
            let h = snap
                .hists
                .iter()
                .find(|h| h.name == "collect_test_hist")
                .expect("hist present");
            assert_eq!(h.count, 2);
            assert_eq!(h.sum, 5);
            // 5 has 3 significant bits -> bin 3; 0 -> bin 0
            assert!(h.bins.contains(&(0, 1)));
            assert!(h.bins.contains(&(3, 1)));
        } else {
            assert!(snap.is_empty());
        }
    }

    #[test]
    fn trial_tag_roundtrip() {
        set_trial(41);
        if crate::enabled() {
            assert_eq!(current_trial(), 41);
        } else {
            assert_eq!(current_trial(), 0);
        }
        set_trial(0);
    }
}
