//! Worst-trial flight recorder: a bounded deterministic ring keeping the K
//! worst Monte-Carlo trials with full forensic snapshots.
//!
//! Each trial is scored by the pure key `(bit_errors desc, acq_metric asc,
//! trial asc)` — no wall-clock anywhere — so the per-thread worst-K lists
//! merge (via [`crate::Telemetry`]) into a report that is **byte-identical
//! for any `UWB_THREADS`**. A snapshot carries the trial's derived RNG seed
//! (so `smoke --replay-seed <seed>` can re-run exactly that trial), named
//! forensic notes written during the trial (SNR, AGC gain, acquisition
//! offset/metric, CRC/header outcome — see [`crate::note!`]), and a
//! breadcrumb ring of the most recent [`crate::event!`] occurrences.
//!
//! Everything lives in fixed-capacity per-thread storage ([`WORST_K`],
//! [`NOTE_SLOTS`], [`CRUMB_SLOTS`], [`INFLIGHT_SLOTS`]): recording a note,
//! a breadcrumb, or an observation never allocates. With the `obs` feature
//! off every function here is a no-op.
//!
//! Up to [`INFLIGHT_SLOTS`] trials may be armed concurrently on one thread:
//! the batched stage-sweep runtime arms a whole sub-batch, sweeps each DSP
//! stage across it (re-tagging [`crate::set_trial`] per trial), and
//! observes each trial at the end. Writes attribute to the armed slot whose
//! trial matches the thread's current trial tag, falling back to the only
//! armed slot when exactly one is armed (the legacy single-trial contract).

/// How many worst trials each report keeps.
pub const WORST_K: usize = 8;
/// Forensic note slots per trial (distinct note names; latest value wins).
pub const NOTE_SLOTS: usize = 12;
/// Breadcrumb slots per trial (most recent events win).
pub const CRUMB_SLOTS: usize = 10;
/// In-flight trial slots per thread. The batched stage-sweep runtime arms
/// one slot per trial in the sub-batch before sweeping stages across them,
/// so this bounds the engine's batch width (`resolve_batch` clamps to it).
/// Arming more concurrent trials evicts the oldest-armed slot, mirroring
/// the legacy single-slot recorder's overwrite-on-rearm behaviour.
pub const INFLIGHT_SLOTS: usize = 16;

/// Forensic snapshot of one Monte-Carlo trial, captured by the flight
/// recorder. All fields are trial-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialForensics {
    /// Monte-Carlo trial (or network round) index.
    pub trial: u64,
    /// The trial's derived RNG seed (`derive_trial_seed(master, trial)`);
    /// feed it to `smoke --replay-seed` to re-run exactly this trial.
    pub seed: u64,
    /// Bit errors the trial produced (the primary badness key).
    pub bit_errors: u64,
    /// `f64::to_bits` of the acquisition metric (0 when the run's path does
    /// not acquire). For the positive metrics produced by the correlator,
    /// bit order equals numeric order, so *lower* is worse.
    pub acq_metric_bits: u64,
    /// Total events seen during the trial (the breadcrumb ring keeps only
    /// the last [`CRUMB_SLOTS`] of them).
    pub events_seen: u32,
    n_notes: u8,
    n_crumbs: u8,
    crumb_head: u8,
    notes: [(u16, u64); NOTE_SLOTS],
    crumbs: [(u16, u64); CRUMB_SLOTS],
}

impl TrialForensics {
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    const EMPTY: TrialForensics = TrialForensics {
        trial: 0,
        seed: 0,
        bit_errors: 0,
        acq_metric_bits: 0,
        events_seen: 0,
        n_notes: 0,
        n_crumbs: 0,
        crumb_head: 0,
        notes: [(0, 0); NOTE_SLOTS],
        crumbs: [(0, 0); CRUMB_SLOTS],
    };

    /// Worst-first sort key: most bit errors, then weakest acquisition
    /// metric, then lowest trial index. Pure — no wall-clock — so ordering
    /// is thread-count invariant.
    pub fn sort_key(&self) -> (std::cmp::Reverse<u64>, u64, u64) {
        (
            std::cmp::Reverse(self.bit_errors),
            self.acq_metric_bits,
            self.trial,
        )
    }

    /// The trial's forensic notes as `(name, value)` rows in recording
    /// order. Values are raw `u64` payloads; signed quantities (e.g.
    /// milli-dB) are stored two's-complement and should be read back via
    /// `as i64`.
    pub fn notes(&self) -> Vec<(&'static str, u64)> {
        let names = crate::registry::note_names();
        self.notes[..self.n_notes as usize]
            .iter()
            .map(|&(id, v)| (names.get(id as usize).copied().unwrap_or("?"), v))
            .collect()
    }

    /// The trial's most recent event breadcrumbs as `(name, value)` rows in
    /// chronological order (oldest kept first).
    pub fn crumbs(&self) -> Vec<(&'static str, u64)> {
        let names = crate::registry::event_names();
        let n = self.n_crumbs as usize;
        (0..n)
            .map(|i| {
                // When the ring wrapped, `crumb_head` is the oldest slot.
                let idx = if n < CRUMB_SLOTS {
                    i
                } else {
                    (self.crumb_head as usize + i) % CRUMB_SLOTS
                };
                let (id, v) = self.crumbs[idx];
                (names.get(id as usize).copied().unwrap_or("?"), v)
            })
            .collect()
    }
}

#[cfg(feature = "obs")]
mod imp {
    use super::{TrialForensics, CRUMB_SLOTS, INFLIGHT_SLOTS, NOTE_SLOTS, WORST_K};
    use crate::registry::NoteId;
    use std::cell::RefCell;

    struct RecState {
        /// Fixed pool of in-flight trial snapshots. The batched stage-sweep
        /// runtime keeps a whole sub-batch armed at once; the unbatched
        /// engine uses exactly one slot at a time.
        inflight: [TrialForensics; INFLIGHT_SLOTS],
        armed: [bool; INFLIGHT_SLOTS],
        /// Arm-order stamps; the oldest-armed slot is evicted when a
        /// `begin_trial` finds no free slot (legacy overwrite semantics).
        armed_at: [u64; INFLIGHT_SLOTS],
        next_arm: u64,
        worst: [TrialForensics; WORST_K],
        n_worst: usize,
    }

    impl RecState {
        /// The slot an in-flight write lands in: the armed slot whose trial
        /// matches the thread's current trial tag ([`crate::set_trial`]);
        /// otherwise — preserving the single-trial behaviour of standalone
        /// harnesses that arm without tagging — the only armed slot, if
        /// exactly one is armed; otherwise none (the write is dropped, as
        /// it cannot be attributed deterministically).
        fn attribute(&self) -> Option<usize> {
            let tag = crate::current_trial();
            let mut only = None;
            let mut n_armed = 0usize;
            for i in 0..INFLIGHT_SLOTS {
                if self.armed[i] {
                    if self.inflight[i].trial == tag {
                        return Some(i);
                    }
                    n_armed += 1;
                    only = Some(i);
                }
            }
            if n_armed == 1 {
                only
            } else {
                None
            }
        }
    }

    thread_local! {
        static REC: RefCell<RecState> = const {
            RefCell::new(RecState {
                inflight: [TrialForensics::EMPTY; INFLIGHT_SLOTS],
                armed: [false; INFLIGHT_SLOTS],
                armed_at: [0; INFLIGHT_SLOTS],
                next_arm: 0,
                worst: [TrialForensics::EMPTY; WORST_K],
                n_worst: 0,
            })
        };
    }

    /// Arms a recorder slot for a new trial: resets its in-flight snapshot.
    /// Called by the Monte-Carlo engine next to `set_trial`. Re-arming a
    /// trial that is already in flight resets that slot; with every slot
    /// armed, the oldest-armed one is evicted.
    #[inline]
    pub fn begin_trial(trial: u64, seed: u64) {
        REC.with(|r| {
            let mut r = r.borrow_mut();
            let mut slot = None;
            for i in 0..INFLIGHT_SLOTS {
                if r.armed[i] && r.inflight[i].trial == trial {
                    slot = Some(i);
                    break;
                }
            }
            if slot.is_none() {
                slot = (0..INFLIGHT_SLOTS).find(|&i| !r.armed[i]);
            }
            let i = slot.unwrap_or_else(|| {
                (0..INFLIGHT_SLOTS)
                    .min_by_key(|&i| r.armed_at[i])
                    .expect("INFLIGHT_SLOTS > 0")
            });
            r.inflight[i] = TrialForensics::EMPTY;
            r.inflight[i].trial = trial;
            r.inflight[i].seed = seed;
            r.armed[i] = true;
            r.armed_at[i] = r.next_arm;
            r.next_arm += 1;
        });
    }

    /// Writes a forensic note onto the attributed in-flight trial (latest
    /// value wins per name; silently dropped when no trial is attributable
    /// or the note slots are full). Called by [`crate::note!`]; not public
    /// API.
    #[doc(hidden)]
    #[inline]
    pub fn record_note(id: NoteId, value: u64) {
        if id == NoteId::NONE {
            return;
        }
        REC.with(|r| {
            let mut r = r.borrow_mut();
            let Some(i) = r.attribute() else {
                return;
            };
            let c = &mut r.inflight[i];
            let n = c.n_notes as usize;
            if let Some(slot) = c.notes[..n].iter_mut().find(|(i, _)| *i == id.0) {
                slot.1 = value;
            } else if n < NOTE_SLOTS {
                c.notes[n] = (id.0, value);
                c.n_notes += 1;
            }
        });
    }

    /// Appends an event breadcrumb to the attributed in-flight trial's ring
    /// (called from `record_event`).
    #[inline]
    pub(crate) fn crumb(event: u16, value: u64) {
        REC.with(|r| {
            let mut r = r.borrow_mut();
            let Some(i) = r.attribute() else {
                return;
            };
            let c = &mut r.inflight[i];
            c.events_seen = c.events_seen.saturating_add(1);
            if (c.n_crumbs as usize) < CRUMB_SLOTS {
                c.crumbs[c.n_crumbs as usize] = (event, value);
                c.n_crumbs += 1;
            } else {
                // Overwrite the oldest slot; head advances.
                c.crumbs[c.crumb_head as usize] = (event, value);
                c.crumb_head = (c.crumb_head + 1) % CRUMB_SLOTS as u8;
            }
        });
    }

    /// Finalizes the attributed in-flight trial with its outcome and inserts
    /// it into this thread's worst-K list if it ranks. Disarms that slot
    /// until the next `begin_trial`.
    ///
    /// Because [`TrialForensics::sort_key`] is a strict total order (trial
    /// index breaks every tie), the worst-K list is identical no matter the
    /// order in which a batch's trials are observed.
    #[inline]
    pub fn observe(bit_errors: u64, acq_metric_bits: u64) {
        REC.with(|r| {
            let mut r = r.borrow_mut();
            let Some(i) = r.attribute() else {
                return;
            };
            r.armed[i] = false;
            r.inflight[i].bit_errors = bit_errors;
            r.inflight[i].acq_metric_bits = acq_metric_bits;
            let cand = r.inflight[i];
            let key = cand.sort_key();
            let n = r.n_worst;
            // Insertion sort into the fixed worst-first array.
            let pos = r.worst[..n]
                .iter()
                .position(|w| key < w.sort_key())
                .unwrap_or(n);
            if pos >= WORST_K {
                return;
            }
            let end = (n + 1).min(WORST_K);
            r.worst.copy_within(pos..end - 1, pos + 1);
            r.worst[pos] = cand;
            r.n_worst = end;
        });
    }

    /// Drains this thread's worst-K list (take semantics), worst first.
    /// Also disarms any leftover in-flight slots, so abandoned trials from
    /// one run can never be attributed writes from a later one.
    pub(crate) fn drain() -> Vec<TrialForensics> {
        REC.with(|r| {
            let mut r = r.borrow_mut();
            let out = r.worst[..r.n_worst].to_vec();
            r.n_worst = 0;
            r.armed = [false; INFLIGHT_SLOTS];
            out
        })
    }
}

#[cfg(feature = "obs")]
pub use imp::{begin_trial, observe, record_note};

#[cfg(feature = "obs")]
pub(crate) use imp::{crumb, drain};

/// No-op (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn begin_trial(_trial: u64, _seed: u64) {}

/// No-op (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn observe(_bit_errors: u64, _acq_metric_bits: u64) {}

/// No-op (`obs` feature off).
#[cfg(not(feature = "obs"))]
#[doc(hidden)]
#[inline(always)]
pub fn record_note(_id: crate::registry::NoteId, _value: u64) {}

/// Empty drain (`obs` feature off; kept for cfg symmetry).
#[cfg(not(feature = "obs"))]
#[inline(always)]
#[allow(dead_code)]
pub(crate) fn drain() -> Vec<TrialForensics> {
    Vec::new()
}

/// Renders the worst-K report as a fixed-width text table. Contains no
/// wall-clock fields, so for a deterministic run the rendered report is
/// **byte-identical across thread counts**.
pub fn render_report(worst: &[TrialForensics]) -> String {
    if worst.is_empty() {
        return String::from("flight recorder: no observed trials\n");
    }
    let mut s = format!(
        "flight recorder: {} worst trial(s) by (bit_errors, acq_metric, trial)\n",
        worst.len()
    );
    s.push_str(&format!(
        "{:<8} {:<18} {:>10} {:>12}  notes / breadcrumbs\n",
        "trial", "seed", "bit_errs", "acq_metric"
    ));
    for f in worst {
        let acq = f64::from_bits(f.acq_metric_bits);
        let acq_str = if f.acq_metric_bits == 0 {
            String::from("-")
        } else {
            format!("{acq:.4}")
        };
        s.push_str(&format!(
            "{:<8} {:<#18x} {:>10} {:>12}  ",
            f.trial, f.seed, f.bit_errors, acq_str
        ));
        let notes = f.notes();
        for (i, (name, v)) in notes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{name}={}", *v as i64));
        }
        let crumbs = f.crumbs();
        if !crumbs.is_empty() {
            if !notes.is_empty() {
                s.push_str("; ");
            }
            s.push_str(&format!("events[{}]: ", f.events_seen));
            for (i, (name, v)) in crumbs.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                if *v == 0 {
                    s.push_str(name);
                } else {
                    s.push_str(&format!("{name}({v})"));
                }
            }
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_k_keeps_the_k_worst_in_pure_key_order() {
        let _ = crate::take_thread_telemetry(); // clear residue
        for trial in 0..20u64 {
            begin_trial(trial, 0x1000 + trial);
            // Badness profile: trial t produces (t * 7) % 13 errors.
            observe((trial * 7) % 13, 0);
        }
        let snap = crate::take_thread_telemetry();
        if !crate::enabled() {
            assert!(snap.worst.is_empty());
            return;
        }
        assert_eq!(snap.worst.len(), WORST_K);
        // Worst first, keys strictly descending-badness (ties by trial).
        for w in snap.worst.windows(2) {
            assert!(w[0].sort_key() <= w[1].sort_key());
        }
        assert_eq!(snap.worst[0].bit_errors, 12);
        // Seeds ride along for replay.
        assert_eq!(snap.worst[0].seed, 0x1000 + snap.worst[0].trial);
        // Second drain is empty.
        assert!(crate::take_thread_telemetry().worst.is_empty());
    }

    #[test]
    fn notes_and_crumbs_are_captured_and_bounded() {
        let _ = crate::take_thread_telemetry();
        begin_trial(7, 0xABCD);
        crate::note!("rec_test_snr_mdb", (-3500i64) as u64);
        crate::note!("rec_test_gain", 12u64);
        crate::note!("rec_test_gain", 15u64); // latest wins
        for i in 0..(CRUMB_SLOTS as u64 + 4) {
            crate::event!("rec_test_evt", i);
        }
        observe(42, 1.5f64.to_bits());
        let snap = crate::take_thread_telemetry();
        if !crate::enabled() {
            assert!(snap.worst.is_empty());
            return;
        }
        let f = &snap.worst[0];
        assert_eq!(f.trial, 7);
        assert_eq!(f.bit_errors, 42);
        let notes = f.notes();
        assert!(notes.contains(&("rec_test_snr_mdb", (-3500i64) as u64)));
        assert!(notes.contains(&("rec_test_gain", 15)));
        // The crumb ring keeps the most recent CRUMB_SLOTS events.
        let crumbs = f.crumbs();
        assert_eq!(crumbs.len(), CRUMB_SLOTS);
        assert_eq!(f.events_seen as usize, CRUMB_SLOTS + 4);
        assert_eq!(crumbs[0], ("rec_test_evt", 4));
        assert_eq!(crumbs[CRUMB_SLOTS - 1], ("rec_test_evt", CRUMB_SLOTS as u64 + 3));
        // The report renders every captured trial and parses as text.
        let report = render_report(&snap.worst);
        assert!(report.contains("rec_test_gain=15"), "{report}");
        assert!(report.contains("rec_test_snr_mdb=-3500"), "{report}");
    }

    #[test]
    fn merge_across_snapshots_is_worst_k_of_the_union() {
        let _ = crate::take_thread_telemetry();
        if !crate::enabled() {
            return;
        }
        begin_trial(1, 0);
        observe(100, 0);
        let mut a = crate::take_thread_telemetry();
        begin_trial(2, 0);
        observe(200, 0);
        let b = crate::take_thread_telemetry();
        a.merge(&b);
        assert_eq!(a.worst.len(), 2);
        assert_eq!(a.worst[0].bit_errors, 200);
        assert_eq!(a.worst[1].bit_errors, 100);
    }

    #[test]
    fn unarmed_observations_are_ignored() {
        let _ = crate::take_thread_telemetry();
        observe(9999, 0); // no begin_trial: must not record
        let snap = crate::take_thread_telemetry();
        assert!(snap.worst.is_empty());
    }

    #[test]
    fn concurrent_inflight_trials_attribute_by_trial_tag() {
        let _ = crate::take_thread_telemetry();
        if !crate::enabled() {
            return;
        }
        // Arm a whole batch, then sweep "stages" across it out of order,
        // re-tagging the thread's current trial before each write — the
        // shape of the batched stage-sweep runtime.
        let batch: [u64; 4] = [40, 41, 42, 43];
        for &t in &batch {
            crate::set_trial(t);
            begin_trial(t, 0x9000 + t);
        }
        for &t in batch.iter().rev() {
            crate::set_trial(t);
            crate::note!("rec_test_gain", t);
        }
        for &t in &batch {
            crate::set_trial(t);
            crate::event!("rec_test_evt", t);
            observe(t, 0);
        }
        crate::set_trial(0);
        let snap = crate::take_thread_telemetry();
        assert_eq!(snap.worst.len(), batch.len());
        // Worst-first by bit_errors: 43, 42, 41, 40 — and each snapshot
        // carries exactly its own trial's note, crumb, and seed.
        for (i, f) in snap.worst.iter().enumerate() {
            let t = batch[batch.len() - 1 - i];
            assert_eq!(f.trial, t);
            assert_eq!(f.seed, 0x9000 + t);
            assert_eq!(f.bit_errors, t);
            assert_eq!(f.notes(), vec![("rec_test_gain", t)]);
            assert_eq!(f.crumbs(), vec![("rec_test_evt", t)]);
            assert_eq!(f.events_seen, 1);
        }
    }

    #[test]
    fn arming_past_capacity_evicts_the_oldest_slot() {
        let _ = crate::take_thread_telemetry();
        if !crate::enabled() {
            return;
        }
        // Arm INFLIGHT_SLOTS + 2 trials without observing: the first two
        // must be evicted, the rest still observable by tag.
        let n = INFLIGHT_SLOTS as u64 + 2;
        for t in 0..n {
            crate::set_trial(t);
            begin_trial(t, t);
        }
        for t in 0..n {
            crate::set_trial(t);
            observe(1000 + t, 0);
        }
        crate::set_trial(0);
        let snap = crate::take_thread_telemetry();
        // Evicted trials 0 and 1 cannot be observed; the worst-K list holds
        // the K worst of the surviving INFLIGHT_SLOTS trials.
        assert_eq!(snap.worst.len(), WORST_K);
        assert_eq!(snap.worst[0].bit_errors, 1000 + n - 1);
        assert!(snap.worst.iter().all(|f| f.trial >= 2));
    }
}
