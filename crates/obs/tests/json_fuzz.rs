//! Fuzz-shaped property tests for the `uwb_obs::json` error paths.
//!
//! The strict parser backs the telemetry schema gates, so its failure mode
//! matters as much as its success mode: malformed, truncated, and
//! duplicate-key inputs must **return `Err`** (or a well-formed value for
//! benign mutations) — never panic, never hang, never index out of bounds.

use proptest::prelude::*;
use uwb_obs::json::{escape, parse, Json};

/// ASCII-only seed corpus shaped like the documents the workspace actually
/// renders (telemetry reports, bench baselines, Chrome trace exports), so
/// truncation and mutation hit realistic parser states.
const SEEDS: &[&str] = &[
    r#"{"schema":"uwb-telemetry-v2","trials":100,"telemetry":{"stages":[{"name":"tx","calls":8,"ns":12345}],"events":[],"hists":[{"name":"e","count":3,"sum":5,"bins":[[0,1],[2,2]]}],"quantiles":[{"name":"e","count":3,"p50":1,"p95":2,"p99":2,"max":2}]}}"#,
    r#"{"traceEvents":[{"name":"tx","cat":"uwb","ph":"X","ts":1.234,"dur":0.567,"pid":1,"tid":0,"args":{"trial":7}}]}"#,
    r#"{"kernels_us":{"a":10.0,"b":2.5e1},"throughput":{"tps":-1.5e-3}}"#,
    r#"[null,true,false,0,-0.5,1e9,"s",[],{},{"k":[1,2,3]}]"#,
    r#""just a string with \"escapes\" and \\ slashes\n""#,
];

/// The byte alphabet mutations draw from: JSON structure characters plus a
/// few innocuous and a few hostile bytes.
const ALPHABET: &[u8] = b"{}[]\",:0129ee+-.ntf\\ \x00\x7f\x01x";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup never panics the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let s = String::from_utf8_lossy(&bytes);
        let _ = parse(&s);
    }

    /// Truncating a valid document at any byte never panics, and a strict
    /// prefix of a seed document never parses as complete (every seed ends
    /// inside a string, object, or array that the cut leaves open, or the
    /// remainder becomes trailing garbage).
    #[test]
    fn truncation_never_panics(seed in 0usize..SEEDS.len(), cut in 0usize..512) {
        let doc = SEEDS[seed];
        let cut = cut.min(doc.len());
        let prefix = &doc[..cut]; // seeds are ASCII: any cut is a char boundary
        let res = parse(prefix);
        if cut < doc.len() {
            prop_assert!(res.is_err(), "truncated doc parsed: {prefix:?}");
        } else {
            prop_assert!(res.is_ok());
        }
    }

    /// Single-byte substitutions never panic; when they parse, the result is
    /// a plain value (the parser stayed in-bounds and terminated).
    #[test]
    fn mutation_never_panics(
        seed in 0usize..SEEDS.len(),
        at in 0usize..512,
        with in 0usize..ALPHABET.len(),
    ) {
        let mut bytes = SEEDS[seed].as_bytes().to_vec();
        let at = at % bytes.len();
        bytes[at] = ALPHABET[with];
        let s = String::from_utf8_lossy(&bytes);
        let _ = parse(&s);
    }

    /// Objects with a repeated key are rejected with `Err` wherever the
    /// duplicate sits, while the same keys at different depths stay legal.
    #[test]
    fn duplicate_keys_always_rejected(
        key in prop::collection::vec(97u8..=122, 1..8),
        v1 in -1000i64..1000,
        v2 in -1000i64..1000,
        nested in 0usize..3,
    ) {
        let key = String::from_utf8(key).unwrap();
        let k = escape(&key);
        let dup = format!("{{{k}:{v1},{k}:{v2}}}");
        let doc = match nested {
            0 => dup.clone(),
            1 => format!("{{\"outer\":{dup}}}"),
            _ => format!("[1,{dup},2]"),
        };
        prop_assert!(parse(&doc).is_err(), "duplicate key accepted: {doc}");
        // Control: the same shape with distinct keys parses.
        let ok = format!("{{{k}:{v1},{}:{v2}}}", escape(&format!("{key}_2")));
        prop_assert!(parse(&ok).is_ok(), "distinct keys rejected: {ok}");
        // Same key at different nesting depths is not a duplicate.
        let deep = format!("{{{k}:{{{k}:{v1}}}}}");
        prop_assert!(parse(&deep).is_ok(), "nested reuse rejected: {deep}");
    }

    /// Escaped strings round-trip through `escape` -> `parse` for arbitrary
    /// ASCII content (the renderer/parser pair stays closed).
    #[test]
    fn escape_roundtrip(bytes in prop::collection::vec(0u8..=127, 0..64)) {
        let s: String = bytes.iter().map(|&b| b as char).collect();
        let doc = escape(&s);
        let v = parse(&doc).unwrap();
        prop_assert_eq!(v, Json::Str(s));
    }
}
