//! # uwb-bench — experiment harnesses
//!
//! One binary per experiment of `DESIGN.md` §5 (run with
//! `cargo run -p uwb-bench --release --bin <name>`), plus Criterion benches
//! for the computational hot paths (`cargo bench`).
//!
//! | Binary | Experiment | Paper source |
//! |---|---|---|
//! | `fig4_pulse` | E1 | Fig. 4 waveform + spectrum |
//! | `fcc_mask` | E2 | §1 −41.3 dBm/MHz mask |
//! | `gen1_link` | E3 | §2 193 kbps link |
//! | `gen1_sync` | E3 | §2 sync < 70 µs |
//! | `adc_resolution` | E4 | §1 1-bit vs 4-bit claim |
//! | `gen2_link` | E5 | §3 100 Mbps over CM1–CM4 |
//! | `chanest_bits` | E6 | §3 4-bit channel estimate |
//! | `acquisition_time` | E7 | §1/§3 parallelized search |
//! | `interferer_notch` | E8 | §3 spectral monitor + notch |
//! | `bandplan` | E9 | §3 14 channels |
//! | `power_breakdown` | E10 | §1 back end + ADC > half |
//! | `modulation_compare` | E11 | §3 discrete platform study |
//! | `adaptation` | E12 | §3 power/QoS/rate trade |
//! | `ranging` | E13 | abstract: "precise locationing" |
//! | `rake_fingers` | A1 | ablation: the programmable finger count |
//! | `tracking_loops` | A2 | ablation: DLL S-curve + PLL vs CFO |
//! | `channel_profiles` | A3 | S-V channel statistics vs published profiles |
//! | `interleave_mismatch` | A4 | interleaved-ADC lane mismatch severity |
//! | `acquisition_roc` | A5 | acquisition threshold operating characteristic |
//! | `frame_efficiency` | A6 | goodput vs preamble length and payload size |

#![warn(missing_docs)]

pub mod tracked;

/// Common seed used by experiment binaries so published numbers reproduce.
pub const EXPERIMENT_SEED: u64 = 20050307; // DATE 2005, Munich, 7 March

/// Standard experiment banner.
pub fn banner(id: &str, title: &str, source: &str) -> String {
    format!(
        "==============================================================\n\
         {id}: {title}\n\
         paper source: {source}\n\
         =============================================================="
    )
}

/// Extracts the value of a `--trace <path>` flag from an argument list.
pub fn trace_arg(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Writes a run's span timeline as Chrome Trace Event JSON (viewable in
/// Perfetto / `chrome://tracing`). Warns instead of writing an empty file
/// when the build records no spans (`obs-trace` feature off).
pub fn write_trace(path: &str, telemetry: &uwb_obs::Telemetry) -> std::io::Result<()> {
    if !uwb_obs::trace::enabled() {
        eprintln!(
            "warning: --trace {path}: this build records no spans; \
             rebuild with `--features obs-trace`"
        );
        return Ok(());
    }
    std::fs::write(path, uwb_obs::trace::export_chrome(&telemetry.spans))?;
    println!(
        "trace: {} span(s) ({} dropped) -> {path}",
        telemetry.spans.len(),
        telemetry.spans_dropped
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_contains_fields() {
        let b = banner("E1", "pulse", "Fig. 4");
        assert!(b.contains("E1"));
        assert!(b.contains("Fig. 4"));
    }
}
