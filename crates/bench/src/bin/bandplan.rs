//! E9 — the 14-channel band plan (paper §3: "upconverted to one of 14
//! channels (sub-bands) in the 3.1-10.6 GHz band").
//!
//! Prints the channel grid and measures, per channel, the upconverted
//! occupied bandwidth and the leakage into each adjacent channel.

use uwb_bench::banner;
use uwb_phy::bandplan::Channel;
use uwb_phy::{Gen2Config, Gen2Transmitter};
use uwb_platform::report::Table;
use uwb_rf::TxChain;
use uwb_sim::time::SampleRate;

fn main() {
    println!(
        "{}",
        banner("E9", "14-channel band plan occupancy", "§3")
    );

    // Baseband synthesized directly at the passband rate (sample-exact
    // upconversion).
    let fs = SampleRate::new(32e9);
    let cfg = Gen2Config {
        sample_rate: fs,
        preamble_repeats: 1,
        ..Gen2Config::nominal_100mbps()
    };
    let tx = Gen2Transmitter::new(cfg).expect("config");
    let burst = tx.transmit_packet(&[0x96; 24]).expect("payload");

    let mut table = Table::new(vec![
        "ch",
        "center (GHz)",
        "edges (GHz)",
        "-10 dB BW (MHz)",
        "adj. leakage (dB)",
        "in FCC band",
    ]);

    for ch in Channel::all() {
        let chain = TxChain::new(ch.center(), 1.0);
        let pass = chain.transmit(&burst.samples, fs);
        let psd = uwb_dsp::psd::welch_real(&pass, fs.as_hz(), 4096, uwb_dsp::Window::Blackman);
        let bw = psd.bandwidth_below_peak(10.0);
        // Power inside own channel vs inside the next channel up.
        let (freqs, vals) = psd.sorted();
        let band_power = |lo: f64, hi: f64| -> f64 {
            freqs
                .iter()
                .zip(&vals)
                .filter(|(&f, _)| f >= lo && f < hi)
                .map(|(_, &v)| v)
                .sum()
        };
        let own = band_power(ch.low_edge().as_hz(), ch.high_edge().as_hz());
        let spacing = 528e6;
        let adj = band_power(
            ch.low_edge().as_hz() + spacing,
            ch.high_edge().as_hz() + spacing,
        );
        let leak_db = 10.0 * (adj / own.max(1e-300)).log10();
        table.row(vec![
            ch.index().to_string(),
            format!("{:.3}", ch.center().as_ghz()),
            format!(
                "{:.3}-{:.3}",
                ch.low_edge().as_ghz(),
                ch.high_edge().as_ghz()
            ),
            format!("{:.0}", bw / 1e6),
            format!("{leak_db:.1}"),
            if ch.within_fcc_band() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("\n{table}");
    println!(
        "expected shape: 14 non-overlapping 500 MHz channels on a 528 MHz grid\n\
         spanning 3.168-10.560 GHz, each with strongly negative adjacent-channel\n\
         leakage (pulse spectrum rolls off between grid slots)."
    );
}
