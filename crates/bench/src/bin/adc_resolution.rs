//! E4 — ADC resolution study: the paper's §1 claim (from their ref \[1\])
//! that "a 1-bit ADC in a noise limited regime, and a 4-bit ADC in a
//! narrowband interferer regime are sufficient".
//!
//! Regime 1 (noise-limited): BER vs ADC bits. The classic result is that a
//! 1-bit converter costs ~π/2 (≈2 dB) of SNR — *sufficient*, not free.
//! Regime 2 (interferer): a strong in-band CW rides through the AGC and
//! ADC; the digital back end then removes it with a notch. With 1–2 bits
//! the wanted signal is crushed below the quantizer's resolution *before*
//! the digital notch can act; with ≥4 bits it survives. The experiment
//! quantizes explicitly, notches digitally, and demodulates with an
//! otherwise-transparent receiver.

use uwb_adc::Quantizer;
use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_dsp::Complex;
use uwb_phy::packet::{decode_payload_bits, reference_payload_bits};
use uwb_phy::{Gen2Config, Gen2Receiver, Gen2Transmitter};
use uwb_platform::link::{run_ber_fast, LinkScenario};
use uwb_platform::metrics::ErrorCounter;
use uwb_platform::report::{format_rate, Table};
use uwb_rf::TunableNotch;
use uwb_sim::awgn::add_awgn_complex;
use uwb_sim::montecarlo::{MonteCarlo, RunOutcome};
use uwb_sim::time::Hertz;
use uwb_sim::Interferer;

/// Per-worker state for the interferer-regime study: transmitter, receiver,
/// quantizer under test and the pre-tuned digital notch, all built once per
/// worker thread (the old loop rebuilt the notch for every trial).
struct AdcWorker {
    config: Gen2Config,
    tx: Gen2Transmitter,
    rx: Gen2Receiver,
    quantizer: Quantizer,
    notch: TunableNotch,
}

impl AdcWorker {
    fn new(config: &Gen2Config, bits: u32) -> Self {
        let mut notch = TunableNotch::new(config.sample_rate, 30.0);
        notch.tune(Hertz::new(150e6));
        AdcWorker {
            config: config.clone(),
            tx: Gen2Transmitter::new(config.clone()).expect("tx"),
            rx: Gen2Receiver::new(config.clone()).expect("rx"),
            quantizer: Quantizer::new(bits, 1.0),
            notch,
        }
    }
}

/// BER with explicit quantization at `bits`, digital notch, transparent
/// receiver. Runs on the deterministic parallel engine; a truncated run
/// (trial budget before error target / bit budget) is reported in the
/// returned [`RunOutcome::stats`] instead of being silently swallowed.
fn interferer_ber(
    bits: u32,
    ebn0_db: f64,
    intf_rel_db: f64,
    notch: bool,
    target_errors: u64,
    max_bits: u64,
) -> RunOutcome<ErrorCounter> {
    // Transparent receiver: effectively unquantized internal ADC.
    let config = Gen2Config {
        adc_bits: 24,
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let payload_len = 32usize;
    let master_seed = EXPERIMENT_SEED ^ ((bits as u64) << 32) ^ ((notch as u64) << 48);
    MonteCarlo::new(master_seed, 10_000).run(
        || AdcWorker::new(&config, bits),
        |w, _trial, rng, counter: &mut ErrorCounter| {
            let mut payload = vec![0u8; payload_len];
            rng.fill_bytes(&mut payload);
            let burst = w.tx.transmit_packet(&payload).expect("frame");
            let fs = w.config.sample_rate.as_hz();

            // Noise at the target Eb/N0 (Eb = 1 pulse-energy/bit for BPSK).
            let n0 = 1.0 / uwb_dsp::math::db_to_pow(ebn0_db);
            let mut samples = add_awgn_complex(&burst.samples, n0, rng);

            // Strong in-band CW interferer.
            let p_sig = uwb_dsp::complex::mean_power(&burst.samples);
            let intf = Interferer::cw(150e6, p_sig * uwb_dsp::math::db_to_pow(intf_rel_db));
            samples = intf.add_to(&samples, fs, rng);

            // AGC to the ADC full scale, then quantize at the resolution
            // under test: the interferer dominates the AGC, exactly the
            // failure mode under study.
            let p = uwb_dsp::complex::mean_power(&samples);
            let gain = 0.355 / p.sqrt();
            let scaled: Vec<Complex> = samples.iter().map(|&z| z * gain).collect();
            let mut digitized = w.quantizer.quantize_complex(&scaled);

            // Digital notch at the (known) interferer frequency — the back
            // end's interference suppression, operating on quantized data.
            if notch {
                digitized = w.notch.process(&digitized);
            }

            let slot0_start = burst.slot0_center - w.tx.pulse().len() / 2;
            let stats = w
                .rx
                .payload_statistics_known_timing(&digitized, slot0_start, payload_len);
            if let Ok(decoded) = decode_payload_bits(&stats, payload_len, &w.config) {
                counter.add_bits(&reference_payload_bits(&payload), &decoded);
            }
        },
        |c| c.errors >= target_errors || c.total >= max_bits,
    )
}

fn main() {
    println!(
        "{}",
        banner(
            "E4",
            "ADC bits: 1-bit noise-limited vs 4-bit interferer regime",
            "§1 (citing their ref [1])"
        )
    );

    let bits_grid = [1u32, 2, 3, 4, 5, 8];
    let target_errors = 60;
    let max_bits = 120_000;

    // --- Regime 1: noise-limited ---
    let ebn0 = 7.0;
    let mk = |b: u32, e: f64| {
        let config = Gen2Config {
            adc_bits: b,
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        };
        run_ber_fast(
            &LinkScenario::awgn(config, e, EXPERIMENT_SEED),
            32,
            target_errors,
            max_bits,
        )
    };
    let mut t1 = Table::new(vec!["ADC bits", "BER (noise-limited)", "vs 8-bit"]);
    let mut noise_rows = Vec::new();
    for &b in &bits_grid {
        noise_rows.push((b, mk(b, ebn0)));
    }
    let ref_noise = noise_rows.last().unwrap().1.rate().max(1e-9);
    for (b, c) in &noise_rows {
        t1.row(vec![
            b.to_string(),
            format_rate(c.errors, c.total),
            format!("{:.1}x", c.rate() / ref_noise),
        ]);
    }
    println!("\nnoise-limited regime (Eb/N0 = {ebn0} dB):\n{t1}");

    // The "sufficient" claim: 1-bit at +2.5 dB matches multi-bit — i.e. the
    // 1-bit penalty is a bounded ~2 dB (pi/2), not a floor.
    let one_bit_boosted = mk(1, ebn0 + 4.0);
    println!(
        "1-bit at Eb/N0 = {:.1} dB: BER {} (vs 8-bit at {ebn0} dB: {})\n\
         -> the 1-bit converter costs a bounded ~2-4 dB of link budget\n\
         (classic hard-limiter loss), i.e. it is *sufficient* in the\n\
         noise-limited regime. {}\n",
        ebn0 + 4.0,
        format_rate(one_bit_boosted.errors, one_bit_boosted.total),
        format_rate(
            noise_rows.last().unwrap().1.errors,
            noise_rows.last().unwrap().1.total
        ),
        if one_bit_boosted.rate() <= 2.5 * ref_noise.max(1e-4) {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // --- Regime 2: narrowband interferer + digital notch ---
    let intf_rel_db = 20.0;
    let ebn0_i = 10.0;
    let mut t2 = Table::new(vec![
        "ADC bits",
        "BER (interferer, notched)",
        "BER (interferer, no notch)",
    ]);
    let mut notched_rows = Vec::new();
    let mut truncated = 0u32;
    for &b in &bits_grid {
        let with_notch = interferer_ber(b, ebn0_i, intf_rel_db, true, target_errors, max_bits);
        let without = interferer_ber(b, ebn0_i, intf_rel_db, false, 30, 40_000);
        truncated += with_notch.stats.truncated() as u32 + without.stats.truncated() as u32;
        notched_rows.push((b, with_notch.value.rate()));
        t2.row(vec![
            b.to_string(),
            format_rate(with_notch.value.errors, with_notch.value.total),
            format_rate(without.value.errors, without.value.total),
        ]);
    }
    println!(
        "interferer regime (CW {intf_rel_db:.0} dB above signal, Eb/N0 = {ebn0_i} dB, \
         digital notch after the ADC):\n{t2}"
    );
    if truncated > 0 {
        println!("note: {truncated} run(s) hit the 10 000-trial budget before converging");
    }

    let low_bits_fail = notched_rows[0].1 > 0.05; // 1-bit floors
    let three_bit = notched_rows[2].1;
    // 4-bit is the knee: an order of magnitude below 3-bit and workable.
    let four_bits_ok = notched_rows[3].1 < 0.05 && notched_rows[3].1 < three_bit / 3.0;
    println!(
        "paper claims: 1-bit insufficient with interferer ({}), 4-bit sufficient ({})",
        if low_bits_fail { "PASS" } else { "FAIL" },
        if four_bits_ok { "PASS" } else { "FAIL" },
    );
}
