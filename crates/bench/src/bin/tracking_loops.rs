//! Ablation — the fine-tracking loops of Figs. 1 and 3 (PLL/DLL blocks).
//!
//! Part 1 (DLL): timing discriminator S-curve and convergence against a
//! sub-sample timing offset — the retiming problem the receiver's
//! "Retiming Block" solves.
//! Part 2 (PLL): BER vs residual LO CFO with carrier tracking on/off.

use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_dsp::resample::fractional_delay;
use uwb_dsp::Complex;
use uwb_phy::packet::{decode_payload_bits, reference_payload_bits};
use uwb_phy::pulse::PulseShape;
use uwb_phy::tracking::Dll;
use uwb_phy::{Gen2Config, Gen2Receiver, Gen2Transmitter};
use uwb_platform::metrics::ErrorCounter;
use uwb_platform::report::{format_rate, Table};
use uwb_rf::LocalOscillator;
use uwb_sim::awgn::add_awgn_complex;
use uwb_sim::time::SampleRate;
use uwb_sim::{Hertz, Rand};

fn main() {
    println!(
        "{}",
        banner("A2", "fine tracking: DLL S-curve + PLL vs CFO", "Figs. 1 & 3 PLL/DLL")
    );

    // --- Part 1: DLL discriminator S-curve and convergence ---
    let fs = SampleRate::from_gsps(1.0);
    let pulse = PulseShape::gen2_default().generate_complex(fs);
    let make_sig = |delay: f64| -> Vec<Complex> {
        let mut sig = vec![Complex::ZERO; 40];
        sig.extend_from_slice(&pulse);
        sig.extend(vec![Complex::ZERO; 40]);
        fractional_delay(&sig, delay, 8)
    };

    let dll = Dll::new(1.0, 0.4);
    let mut s_curve = Table::new(vec!["true offset (samples)", "discriminator"]);
    for &off in &[-0.8, -0.4, -0.2, 0.0, 0.2, 0.4, 0.8] {
        let sig = make_sig(off);
        let d = dll.discriminant(&sig, &pulse, 40.0);
        s_curve.row(vec![format!("{off:+.1}"), format!("{d:+.3}")]);
    }
    println!("\nDLL early-late S-curve (spacing 1 sample):\n{s_curve}");

    let mut conv = Table::new(vec!["true offset", "DLL estimate after 30 updates", "residual"]);
    for &off in &[0.15, 0.35, -0.45] {
        let sig = make_sig(off);
        let mut loop_dll = Dll::new(1.0, 0.4);
        for _ in 0..30 {
            loop_dll.update(&sig, &pulse, 40.0);
        }
        conv.row(vec![
            format!("{off:+.2}"),
            format!("{:+.3}", loop_dll.timing()),
            format!("{:+.3}", loop_dll.timing() - off),
        ]);
    }
    println!("DLL convergence:\n{conv}");

    // --- Part 2: PLL vs CFO ---
    let base = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let payload_len = 48usize;
    let run = |cfo_ppm: f64, tracking: bool| -> ErrorCounter {
        let cfg = Gen2Config {
            carrier_tracking: tracking,
            ..base.clone()
        };
        let tx = Gen2Transmitter::new(cfg.clone()).expect("tx");
        let rx = Gen2Receiver::new(cfg.clone()).expect("rx");
        let mut counter = ErrorCounter::new();
        for trial in 0..12u64 {
            let mut rng = Rand::new(EXPERIMENT_SEED ^ trial);
            let mut payload = vec![0u8; payload_len];
            rng.fill_bytes(&mut payload);
            let burst = tx.transmit_packet(&payload).expect("frame");
            let mut lo = LocalOscillator::with_impairments(
                Hertz::from_ghz(5.0),
                cfo_ppm,
                0.0,
            );
            let spun = lo.baseband_rotation(&burst.samples, cfg.sample_rate.as_hz(), &mut rng);
            let p = uwb_dsp::complex::mean_power(&spun);
            let noisy = add_awgn_complex(&spun, p / 20.0, &mut rng);
            let slot0 = burst.slot0_center - tx.pulse().len() / 2;
            let stats = rx.payload_statistics_known_timing(&noisy, slot0, payload_len);
            if let Ok(bits) = decode_payload_bits(&stats, payload_len, &cfg) {
                counter.add_bits(&reference_payload_bits(&payload), &bits);
            }
        }
        counter
    };

    let mut pll_table = Table::new(vec!["LO CFO (ppm @ 5 GHz)", "BER no tracking", "BER with PLL"]);
    for &ppm in &[0.0, 2.0, 5.0, 10.0, 20.0] {
        let off = run(ppm, false);
        let on = run(ppm, true);
        pll_table.row(vec![
            format!("{ppm:.0}"),
            format_rate(off.errors, off.total),
            format_rate(on.errors, on.total),
        ]);
    }
    println!("PLL carrier tracking vs residual CFO:\n{pll_table}");
    println!(
        "expected shape: the DLL discriminator is odd and monotonic through\n\
         zero and the loop converges to the true sub-sample offset; without\n\
         the PLL the link dies once the CFO rotates the constellation within\n\
         a packet (~5 ppm at 5 GHz), while the tracked receiver holds BER."
    );
}
