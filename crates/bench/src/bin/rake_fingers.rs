//! Ablation — the "programmable" RAKE finger count (paper §3).
//!
//! Sweeps the finger count on CM1 and CM3 at fixed Eb/N0, reporting the
//! captured channel energy, the measured BER, and the modeled power of the
//! RAKE block — the complexity/performance knob the paper's receiver
//! exposes.

use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_phy::power::PowerModel;
use uwb_phy::Gen2Config;
use uwb_platform::link::{run_ber_fast, LinkScenario};
use uwb_platform::report::{format_rate, Table};
use uwb_sim::sv_channel::{ChannelModel, ChannelRealization};
use uwb_sim::Rand;

fn main() {
    println!(
        "{}",
        banner("A1", "ablation: RAKE finger count", "§3 'programmable' RAKE")
    );

    let ebn0 = 9.0;
    let fingers_grid = [1usize, 2, 4, 8, 16, 32];
    let model = PowerModel::cmos180();

    for channel in [ChannelModel::Cm1, ChannelModel::Cm3] {
        // Ensemble-average energy capture for context.
        let mut rng = Rand::new(EXPERIMENT_SEED);
        let mut capture = vec![0.0f64; fingers_grid.len()];
        let ensemble = 50;
        for _ in 0..ensemble {
            let ch = ChannelRealization::generate(channel, &mut rng);
            for (i, &n) in fingers_grid.iter().enumerate() {
                capture[i] += ch.energy_capture(n) / ensemble as f64;
            }
        }

        let mut table = Table::new(vec![
            "fingers",
            "mean energy capture",
            "BER",
            "RAKE block power (mW)",
        ]);
        for (i, &n) in fingers_grid.iter().enumerate() {
            let cfg = Gen2Config {
                rake_fingers: n,
                preamble_repeats: 2,
                ..Gen2Config::nominal_100mbps()
            };
            let c = run_ber_fast(
                &LinkScenario {
                    channel,
                    ..LinkScenario::awgn(cfg.clone(), ebn0, EXPERIMENT_SEED)
                },
                32,
                60,
                120_000,
            );
            let rake_mw = model
                .breakdown(&cfg)
                .blocks
                .iter()
                .find(|b| b.name.starts_with("RAKE"))
                .map(|b| b.mw)
                .unwrap_or(0.0);
            table.row(vec![
                n.to_string(),
                format!("{:.0} %", 100.0 * capture[i]),
                format_rate(c.errors, c.total),
                format!("{rake_mw:.2}"),
            ]);
        }
        println!("\nchannel {channel}, Eb/N0 = {ebn0} dB:\n{table}");
    }
    println!(
        "expected shape: BER improves steeply over the first few fingers\n\
         (each finger adds captured energy) and saturates once the remaining\n\
         paths are below the noise — while RAKE power grows linearly. The\n\
         knee position moves right from CM1 to CM3 (more dispersed energy),\n\
         which is exactly why the finger count is a *programmable* knob."
    );
}
