//! E1 — reproduces paper Fig. 4: a 500 MHz-bandwidth pulse on a 5 GHz
//! carrier (±150 mV span, 580 ps/div ⇒ a few-ns burst).
//!
//! Prints the time-domain oscillogram, the measured −10 dB bandwidth, the
//! burst duration, and the spectrum peak location.

use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_phy::pulse::{measure_bandwidth, PulseShape};
use uwb_platform::report::{oscillogram, Table};
use uwb_rf::TxChain;
use uwb_sim::time::{Hertz, SampleRate};

fn main() {
    println!(
        "{}",
        banner("E1", "500 MHz pulse with 5 GHz carrier", "Fig. 4")
    );
    let _ = EXPERIMENT_SEED; // deterministic experiment: no randomness used

    let fs = SampleRate::new(32e9);
    let carrier = Hertz::from_ghz(5.0);

    // Baseband pulse.
    let shape = PulseShape::gen2_default();
    let baseband = shape.generate(fs);
    let bb_bw = measure_bandwidth(&baseband, fs, 10.0);

    // Upconvert to the Fig. 4 carrier, scale to the paper's ±150 mV display.
    let bb_complex = shape.generate_complex(fs);
    let tx = TxChain::new(carrier, 1.0);
    let passband = tx.transmit(&bb_complex, fs);
    let peak = uwb_dsp::math::max_abs(&passband);
    let scaled: Vec<f64> = passband.iter().map(|x| x / peak * 0.150).collect();

    // Burst duration at 10% of peak (matches scope-trace reading).
    let dt_ps = 1e12 / fs.as_hz();
    let above = scaled
        .iter()
        .filter(|x| x.abs() > 0.1 * 0.150)
        .count();
    let duration_ps = above as f64 * dt_ps;

    // Spectrum of the passband burst.
    let mut padded = passband.clone();
    padded.resize(passband.len() * 8, 0.0);
    let psd = uwb_dsp::psd::periodogram_real(&padded, fs.as_hz(), uwb_dsp::Window::Blackman);
    let peak_f = psd.peak_frequency().abs();
    let pass_bw = psd.bandwidth_below_peak(10.0);

    println!("\ntime-domain burst (~{:.0} ps per column, span ±150 mV):\n", {
        let cols = 78.0;
        scaled.len() as f64 * dt_ps / cols
    });
    // Show the central ±3 ns of the burst.
    let half_window = (3e-9 * fs.as_hz()) as usize;
    let c = scaled.len() / 2;
    let window = &scaled[c.saturating_sub(half_window)..(c + half_window).min(scaled.len())];
    println!("{}", oscillogram(window, 17, 78));

    let mut table = Table::new(vec!["quantity", "paper", "measured"]);
    table.row(vec![
        "carrier frequency".to_string(),
        "5 GHz".to_string(),
        format!("{:.3} GHz", peak_f / 1e9),
    ]);
    table.row(vec![
        "pulse bandwidth (-10 dB, baseband)".to_string(),
        "500 MHz".to_string(),
        format!("{:.1} MHz", bb_bw.as_mhz()),
    ]);
    table.row(vec![
        "passband -10 dB bandwidth".to_string(),
        "~500 MHz".to_string(),
        format!("{:.1} MHz", pass_bw / 1e9 * 1e3),
    ]);
    table.row(vec![
        "burst duration (10% envelope)".to_string(),
        "few ns (580 ps/div trace)".to_string(),
        format!("{:.2} ns", duration_ps / 1e3),
    ]);
    table.row(vec![
        "display span".to_string(),
        "±150 mV".to_string(),
        format!("±{:.0} mV", uwb_dsp::math::max_abs(&scaled) * 1e3),
    ]);
    println!("\n{table}");

    let ok = (peak_f - 5e9).abs() < 0.2e9 && (bb_bw.as_mhz() - 500.0).abs() < 75.0;
    println!("shape check: {}", if ok { "PASS" } else { "FAIL" });
}
