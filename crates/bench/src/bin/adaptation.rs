//! E12 — link adaptation: trading power, complexity, QoS and data rate
//! (paper §3: "this receiver allows us to trade off power dissipation with
//! signal processing complexity, quality of service and data rate, adapting
//! to channel conditions").

use uwb_bench::banner;
use uwb_phy::{ChannelConditions, Gen2Config, LinkAdapter, PowerModel};
use uwb_platform::report::Table;

fn main() {
    println!(
        "{}",
        banner("E12", "power / QoS / rate adaptation", "§3")
    );

    let adapter = LinkAdapter::new(Gen2Config::nominal_100mbps(), PowerModel::cmos180());

    // SNR sweep at the paper's severe-multipath point (~20 ns rms).
    let mut table = Table::new(vec![
        "SNR (dB)",
        "delay spread (ns)",
        "rate (Mbps)",
        "FEC",
        "pulses/bit",
        "RAKE fingers",
        "MLSE taps",
        "power (mW)",
        "rationale",
    ]);
    for &(snr, spread) in &[
        (20.0, 3.0),
        (16.0, 12.0),
        (12.0, 20.0),
        (9.0, 20.0),
        (6.0, 20.0),
        (2.0, 25.0),
    ] {
        let op = adapter.adapt(&ChannelConditions {
            snr_db: snr,
            delay_spread_ns: spread,
            interferer_present: false,
        });
        table.row(vec![
            format!("{snr:.0}"),
            format!("{spread:.0}"),
            format!("{:.1}", op.bit_rate / 1e6),
            match op.config.fec {
                Some(c) => format!("K={}", c.constraint_length),
                None => "off".to_string(),
            },
            op.config.pulses_per_bit.to_string(),
            op.config.rake_fingers.to_string(),
            op.config.mlse_taps.to_string(),
            format!("{:.1}", op.power.total_mw()),
            op.rationale.clone(),
        ]);
    }
    println!("\n{table}");

    // The frontier: rate vs power across the SNR grid at fixed dispersion.
    let curve = adapter.trade_curve(&[0.0, 2.0, 5.0, 9.0, 12.0, 16.0, 20.0], 10.0);
    let mut frontier = Table::new(vec!["SNR (dB)", "rate (Mbps)", "power (mW)", "mW per Mbps"]);
    for (snr, op) in [0.0, 2.0, 5.0, 9.0, 12.0, 16.0, 20.0].iter().zip(&curve) {
        frontier.row(vec![
            format!("{snr:.0}"),
            format!("{:.1}", op.bit_rate / 1e6),
            format!("{:.1}", op.power.total_mw()),
            format!("{:.2}", op.power.total_mw() / (op.bit_rate / 1e6)),
        ]);
    }
    println!("rate/power frontier at 10 ns delay spread:\n{frontier}");
    println!(
        "expected shape: as SNR falls the policy spends symbols (spreading),\n\
         trellis states (FEC/MLSE) and fingers to hold QoS, so rate falls and\n\
         energy-per-bit rises — the paper's adaptive trade made concrete."
    );
}
