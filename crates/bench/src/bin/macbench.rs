//! macbench — tracked benchmarks for the discrete-event MAC simulator
//! (the perf anchor for `scripts/check.sh mac`).
//!
//! Measures the MAC planning phase, one warm 8-user discrete-event trial
//! (arrivals + CSMA + waveform synthesis + overlap mixing + decode + ARQ),
//! and one warm 1,000-user clustered-city trial, and emits a
//! machine-readable JSON report:
//!
//! ```text
//! cargo run -p uwb-bench --release --bin macbench -- --out BENCH_mac.json
//! cargo run -p uwb-bench --release --bin macbench -- --check BENCH_mac.json --tol 15
//! ```
//!
//! `--check` exits non-zero if any gated metric regresses by more than
//! `--tol` percent against the committed baseline. The flat JSON schema
//! (`uwb-macbench-v1`):
//!
//! ```json
//! {
//!   "schema": "uwb-macbench-v1",
//!   "kernels_us": {
//!     "plan_mac_8user": <µs per full MAC planning phase>,
//!     "mac_trial_8user": <µs per warm 8-user trial>,
//!     "mac_trial_1k": <µs per warm 1000-user trial>
//!   },
//!   "throughput": {
//!     "frames_per_s_8user": <data frames simulated per wall-second>,
//!     "delivered_frac_8user": <deterministic delivered/offered>,
//!     "mean_latency_slots_8user": <deterministic mean delivery latency>
//!   },
//!   "stage_ns_per_trial": { "stage:<name>": <ns per trial>, ... }
//! }
//! ```
//!
//! `delivered_frac_8user` and `mean_latency_slots_8user` are *physical*
//! quantities, bit-deterministic for the fixed scenario/seed — they gate
//! not as perf numbers but as cheap whole-stack determinism pins (any
//! drift means the traffic, CSMA, PHY, or ARQ behavior changed). The
//! `stage:` profile is informational.

use std::process::ExitCode;
use std::time::Instant;
use uwb_bench::tracked::{check_against, time_us, MetricPolicy};
use uwb_bench::EXPERIMENT_SEED;
use uwb_mac::{plan_mac, run_mac_plan_threads, MacAccumulator, MacScenario, MacWorker};
use uwb_net::ChannelPolicy;
use uwb_phy::bandplan::Channel;

/// One measured kernel: name + median microseconds per call.
struct Kernel {
    name: &'static str,
    us_per_call: f64,
}

/// The benchmark scenario: 8 users, 4 channels (every link has one
/// co-channel contender), 1.2 Erlang per link — past the knee, so CSMA
/// defers, collisions, and ARQ retries are all on the measured path.
fn bench_scenario() -> MacScenario {
    let mut sc = MacScenario::ring(8, 9.0, 1.2, EXPERIMENT_SEED);
    sc.net.policy = ChannelPolicy::RoundRobin((3..7).map(|i| Channel::new(i).unwrap()).collect());
    sc.horizon_slots = 400;
    sc.replications = 4;
    sc
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tol_pct = 15.0;
    let mut trials = 6u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--check" => {
                check_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--tol" => {
                tol_pct = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(tol_pct);
                i += 2;
            }
            "--trials" => {
                trials = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(trials);
                i += 2;
            }
            other => {
                eprintln!(
                    "macbench: unknown argument {other}\n\
                     usage: macbench [--out PATH] [--check BASELINE [--tol PCT]] [--trials N]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let scenario = bench_scenario();
    let mut kernels = Vec::new();

    // 1. The serial MAC planning phase: network planning + per-config
    //    airtime probes + sense-set extraction.
    kernels.push(Kernel {
        name: "plan_mac_8user",
        us_per_call: time_us(3, 5, || {
            let _ = plan_mac(&scenario);
        }),
    });

    let plan = plan_mac(&scenario);

    // 2. One warm 8-user trial: the full event loop over the 400-slot
    //    horizon plus queue drain.
    let (trial_us, frames_per_s, telemetry) = {
        let mut worker = MacWorker::new(&plan);
        let mut acc = MacAccumulator::default();
        // Warm-up trial so all pooled buffers reach steady state, then
        // drop its telemetry.
        worker.trial(&plan, 0, &mut acc);
        let _ = uwb_obs::take_thread_telemetry();
        let mut acc = MacAccumulator::default();
        let t0 = Instant::now();
        for rep in 0..trials {
            worker.trial(&plan, rep, &mut acc);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let telemetry = uwb_obs::take_thread_telemetry();
        let frames: u64 = acc.links.iter().map(|l| l.tx_frames).sum();
        (
            elapsed * 1e6 / trials.max(1) as f64,
            frames as f64 / elapsed,
            telemetry,
        )
    };
    kernels.push(Kernel {
        name: "mac_trial_8user",
        us_per_call: trial_us,
    });

    // 3. One warm 1,000-user clustered-city trial on the sparse graph.
    {
        let mut city = MacScenario::clustered_city(100, 10, 9.0, 1.0, EXPERIMENT_SEED);
        city.horizon_slots = 60;
        let city_plan = plan_mac(&city);
        let mut worker = MacWorker::new(&city_plan);
        let mut acc = MacAccumulator::default();
        worker.trial(&city_plan, 0, &mut acc);
        kernels.push(Kernel {
            name: "mac_trial_1k",
            us_per_call: time_us(1, 3, || {
                worker.trial(&city_plan, 1, &mut acc);
            }),
        });
    }

    // 4. The deterministic physics pins from the full measured run
    //    (1 thread so the baseline reproduces anywhere).
    let report = run_mac_plan_threads(plan_mac(&scenario), 1);
    let delivered_frac = report.delivered_fraction();
    let delivered: u64 = report.delivered_total;
    let lat_sum: u64 = report.links.iter().map(|l| l.stats.latency_slots_sum).sum();
    let mean_latency_slots = if delivered == 0 {
        0.0
    } else {
        lat_sum as f64 / delivered as f64
    };

    // --- Render. ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"uwb-macbench-v1\",\n");
    json.push_str("  \"kernels_us\": {\n");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        json.push_str(&format!("    \"{}\": {:.3}{comma}\n", k.name, k.us_per_call));
    }
    json.push_str("  },\n");
    json.push_str("  \"throughput\": {\n");
    json.push_str(&format!(
        "    \"frames_per_s_8user\": {frames_per_s:.1},\n"
    ));
    json.push_str(&format!(
        "    \"delivered_frac_8user\": {delivered_frac:.6},\n"
    ));
    json.push_str(&format!(
        "    \"mean_latency_slots_8user\": {mean_latency_slots:.4}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"stage_ns_per_trial\": {\n");
    let stages = &telemetry.stages;
    for (i, st) in stages.iter().enumerate() {
        let comma = if i + 1 == stages.len() { "" } else { "," };
        let per_trial = st.ns as f64 / trials.max(1) as f64;
        json.push_str(&format!("    \"stage:{}\": {per_trial:.0}{comma}\n", st.name));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    for k in &kernels {
        println!("{:<26} {:>12.2} µs/call", k.name, k.us_per_call);
    }
    println!(
        "{:<26} {:>12.1} frames/s (1 thread)",
        "frames_per_s_8user", frames_per_s
    );
    println!(
        "{:<26} {:>12.4} delivered/offered",
        "delivered_frac_8user", delivered_frac
    );
    println!(
        "{:<26} {:>12.2} slots mean latency",
        "mean_latency_slots_8user", mean_latency_slots
    );
    println!("\n8-user MAC report ({} replications):", report.stats.trials);
    print!("{}", report.table());

    let profile = uwb_platform::report::stage_table(&telemetry);
    if !profile.is_empty() {
        println!("\nwarm-trial stage profile ({trials} trials):");
        print!("{profile}");
    }

    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("macbench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = check_path {
        return check_against("macbench", &path, &json, tol_pct, &metric_policy);
    }
    ExitCode::SUCCESS
}

/// Metric policy for the `uwb-macbench-v1` schema: kernel timings gate;
/// frames/s is load-sensitive (info only); the delivered fraction and
/// mean latency gate as determinism pins (bit-stable for the fixed seed,
/// so any drift means the MAC/PHY behavior changed); the `stage:` profile
/// is informational.
fn metric_policy(key: &str) -> MetricPolicy {
    if key == "schema" || key.starts_with("stage:") {
        MetricPolicy::Skip
    } else if key == "frames_per_s_8user" {
        MetricPolicy::InfoHigherBetter
    } else {
        MetricPolicy::Gate
    }
}
