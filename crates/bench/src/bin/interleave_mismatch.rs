//! A4 — ablation: interleaved-ADC lane mismatch (paper §2's "4-way
//! time-interleaved flash ADC").
//!
//! Interleaving buys 2 GSps from 500 MSps lanes at the cost of a new error
//! family: per-lane offset, gain, and sample-time skew, which appear as
//! spurs at multiples of fs/4. This ablation measures converter SNDR and
//! the gen1 link BER as mismatch severity scales from ideal to 10× typical.

use uwb_adc::{sine_test, InterleaveMismatch, InterleavedAdc};
use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_gen1::{Gen1Config, Gen1Receiver, Gen1Transmitter};
use uwb_platform::metrics::ErrorCounter;
use uwb_platform::report::{format_rate, Table};
use uwb_sim::awgn::add_awgn_real;
use uwb_sim::Rand;

fn scaled(mult: f64) -> InterleaveMismatch {
    let t = InterleaveMismatch::typical();
    InterleaveMismatch {
        offset_sigma: t.offset_sigma * mult,
        gain_sigma: t.gain_sigma * mult,
        skew_sigma_s: t.skew_sigma_s * mult,
    }
}

fn main() {
    println!(
        "{}",
        banner("A4", "interleaved-ADC mismatch severity", "§2 / Fig. 1")
    );

    // --- Converter-level SNDR ---
    let mut t1 = Table::new(vec![
        "mismatch (x typical)",
        "SNDR (dB)",
        "ENOB",
        "SFDR (dB)",
    ]);
    let n = 16_384;
    let x: Vec<f64> = (0..n)
        .map(|i| 0.9 * (std::f64::consts::TAU * 0.0437 * i as f64).sin())
        .collect();
    for &mult in &[0.0f64, 0.5, 1.0, 3.0, 10.0] {
        let mut rng = Rand::new(EXPERIMENT_SEED);
        let adc = InterleavedAdc::gen1(4, scaled(mult), &mut rng);
        let y = adc.convert_block(&x);
        let r = sine_test(&y, 2e9, 8);
        t1.row(vec![
            format!("{mult:.1}"),
            format!("{:.1}", r.sndr_db),
            format!("{:.2}", r.enob),
            format!("{:.1}", r.sfdr_db),
        ]);
    }
    println!("\nconverter metrology (4-bit, 4-way, 2 GSps, full-scale sine):\n{t1}");

    // --- Link-level BER at the gen1 operating point ---
    let cfg = Gen1Config {
        pulses_per_bit: 16, // lighter spreading to expose the ADC floor
        ..Gen1Config::demonstrated_193kbps()
    };
    let tx = Gen1Transmitter::new(cfg.clone());
    let eb = cfg.pulses_per_bit as f64;
    let ebn0_db = 8.0;
    let noise_p = eb / (2.0 * uwb_dsp::math::db_to_pow(ebn0_db));

    let mut t2 = Table::new(vec!["mismatch (x typical)", "bits", "errors", "BER"]);
    for &mult in &[0.0f64, 1.0, 3.0, 10.0] {
        let rx = Gen1Receiver::new(cfg.clone(), scaled(mult), EXPERIMENT_SEED);
        let mut counter = ErrorCounter::new();
        let mut rng = Rand::new(EXPERIMENT_SEED ^ mult.to_bits());
        let mut attempts = 0;
        while counter.errors < 40 && counter.total < 4_000 && attempts < 120 {
            attempts += 1;
            let bits: Vec<bool> = (0..48).map(|_| rng.bit()).collect();
            let burst = tx.transmit(&bits);
            let noisy = add_awgn_real(&burst.samples, noise_p, &mut rng);
            if let Some(decoded) = rx.receive(&noisy, bits.len()) {
                counter.add_bits(&bits, &decoded.bits);
            }
        }
        t2.row(vec![
            format!("{mult:.1}"),
            counter.total.to_string(),
            counter.errors.to_string(),
            format_rate(counter.errors, counter.total),
        ]);
    }
    println!("gen1 link at Eb/N0 = {ebn0_db} dB, 16x spreading:\n{t2}");
    println!(
        "expected shape: SNDR/ENOB degrade smoothly with mismatch (offset and\n\
         gain spurs at fs/4 multiples, skew error growing with input\n\
         frequency); the spread-spectrum link is tolerant of typical mismatch\n\
         (spurs land mostly out of the despreading bandwidth) and only starts\n\
         losing bits at several times the typical values — the robustness\n\
         that let gen1 use an aggressive interleaved converter."
    );
}
