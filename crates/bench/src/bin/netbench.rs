//! netbench — tracked benchmarks for the multi-user piconet simulator
//! (the perf anchor for `scripts/check.sh net`).
//!
//! Measures the network warm path (clean synthesis + superposition mixing +
//! per-victim reception for an 8-user piconet), the mixing kernel itself,
//! and the serial planning phase, and emits a machine-readable JSON report:
//!
//! ```text
//! cargo run -p uwb-bench --release --bin netbench -- --out BENCH_net.json
//! cargo run -p uwb-bench --release --bin netbench -- --check BENCH_net.json --tol 15
//! ```
//!
//! `--check` exits non-zero if any gated metric regresses by more than
//! `--tol` percent (default 15) against the committed baseline. The JSON
//! schema (`uwb-netbench-v1`) is flat on purpose so the checker needs no
//! real JSON parser:
//!
//! ```json
//! {
//!   "schema": "uwb-netbench-v1",
//!   "kernels_us": {
//!     "net_round_8user": <µs per warm 8-user round>,
//!     "mix_superpose_8x": <µs per 8-source superposition>,
//!     "plan_8user": <µs per full planning phase>
//!   },
//!   "throughput": {
//!     "rounds_per_s": <warm rounds/s, 1 thread>,
//!     "aggregate_mbps": <deterministic 8-user aggregate goodput>
//!   },
//!   "stage_ns_per_trial": { "stage:<name>": <ns per round>, ... }
//! }
//! ```
//!
//! `aggregate_mbps` is a *physical* quantity, bit-deterministic for the
//! fixed scenario/seed — it is gated not as a perf number but as a cheap
//! whole-chain determinism pin. `stage_ns_per_trial` (one engine trial =
//! one network round; named like dspbench's for schema consistency) is the
//! informational telemetry profile (`stage:` keys are skipped by the
//! checker).

use std::process::ExitCode;
use std::time::Instant;
use uwb_bench::tracked::{check_against, time_us, MetricPolicy};
use uwb_bench::EXPERIMENT_SEED;
use uwb_dsp::stream::accumulate_scaled;
use uwb_dsp::Complex;
use uwb_net::{
    build_coupling_sparse, plan_network, run_plan_threads, NetAccumulator, NetScenario, NetWorker,
};
use uwb_phy::bandplan::Channel;
use uwb_sim::Rand;

/// One measured kernel: name + median microseconds per call.
struct Kernel {
    name: &'static str,
    us_per_call: f64,
}

/// The benchmark scenario: 8 users on the default 4 m ring, round-robin
/// across the full band plan (adjacent-channel leakage active), AWGN.
fn bench_scenario() -> NetScenario {
    let mut sc = NetScenario::ring(8, 8.0, EXPERIMENT_SEED);
    sc.rounds = 16;
    sc
}

fn noise_complex(n: usize, seed: u64) -> Vec<Complex> {
    let mut rng = Rand::new(seed);
    (0..n)
        .map(|_| Complex::new(rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tol_pct = 15.0;
    let mut rounds = 24u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--check" => {
                check_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--tol" => {
                tol_pct = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(tol_pct);
                i += 2;
            }
            "--rounds" => {
                rounds = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(rounds);
                i += 2;
            }
            other => {
                eprintln!(
                    "netbench: unknown argument {other}\n\
                     usage: netbench [--out PATH] [--check BASELINE [--tol PCT]] [--rounds N]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let scenario = bench_scenario();
    let mut kernels = Vec::new();

    // 1. The serial planning phase (probe synthesis + allocation +
    //    measurement) for the 8-user scenario.
    kernels.push(Kernel {
        name: "plan_8user",
        us_per_call: time_us(3, 5, || {
            let _ = plan_network(&scenario);
        }),
    });

    let plan = plan_network(&scenario);

    // 2. The 8-source superposition kernel at the real record shape:
    //    own record copied, then 7 scaled accumulations.
    {
        // Match the true per-round record length by synthesizing one
        // link's clean record.
        let len = {
            let link = &plan.links[0];
            let mut w = uwb_platform::link::LinkWorker::new(&link.scenario);
            let mut rng = Rand::for_trial(link.scenario.seed, 0);
            let _ = w.synthesize_clean_streamed(
                &link.scenario,
                scenario.payload_len,
                scenario.block_len,
                &mut rng,
            );
            w.clean_record().len()
        };
        let sources: Vec<Vec<Complex>> = (0..8).map(|s| noise_complex(len, s as u64)).collect();
        let mut mixed = noise_complex(len, 99);
        kernels.push(Kernel {
            name: "mix_superpose_8x",
            us_per_call: time_us(50, 9, || {
                mixed.copy_from_slice(&sources[0]);
                for src in &sources[1..] {
                    accumulate_scaled(&mut mixed, src, 0.125);
                }
            }),
        });
    }

    // 3. One warm 8-user round: full clean synthesis for all 8 links +
    //    8 victim mixes + 8 receptions, driven directly on one worker.
    let (round_us, rounds_per_s, telemetry) = {
        let mut worker = NetWorker::new(&plan);
        let mut acc = NetAccumulator::default();
        // Warm-up round so buffers reach steady state, then drop its spans.
        worker.round(&plan, 0, &mut acc);
        let _ = uwb_obs::take_thread_telemetry();
        let t0 = Instant::now();
        for r in 0..rounds {
            worker.round(&plan, r % plan.rounds.max(1), &mut acc);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let telemetry = uwb_obs::take_thread_telemetry();
        (
            elapsed * 1e6 / rounds.max(1) as f64,
            rounds as f64 / elapsed,
            telemetry,
        )
    };
    kernels.push(Kernel {
        name: "net_round_8user",
        us_per_call: round_us,
    });

    // 4. Sparse interference-graph construction at city scale: 10,000
    //    links on the clustered floor plan, round-robin channels, the
    //    scaling scenario's -40 dB coupling floor. This is the pure
    //    plan-time graph build (spatial grids + radius queries + exact
    //    rechecks), no waveform synthesis.
    let edges_per_node_10k;
    {
        let city = NetScenario::clustered_city(1000, 10, 8.0, EXPERIMENT_SEED);
        let all: Vec<Channel> = Channel::all().collect();
        let channels: Vec<Channel> = (0..city.len()).map(|l| all[l % all.len()]).collect();
        let rows = build_coupling_sparse(&city.topology, &city.selectivity, &channels, &city.coupling);
        let edges: usize = rows.iter().map(|r| r.len()).sum();
        edges_per_node_10k = edges as f64 / city.len() as f64;
        kernels.push(Kernel {
            name: "graph_build_10k",
            us_per_call: time_us(1, 5, || {
                let _ = build_coupling_sparse(
                    &city.topology,
                    &city.selectivity,
                    &channels,
                    &city.coupling,
                );
            }),
        });
    }

    // 5. One warm 1,000-user round on the event-driven sparse path: lazy
    //    shared-waveform synthesis, arena recycling, per-victim mixing and
    //    reception. `nodes_per_s_1k` is the headline scaling number.
    let nodes_per_s_1k;
    {
        let mut city = NetScenario::clustered_city(100, 10, 8.0, EXPERIMENT_SEED);
        city.rounds = 4;
        let city_plan = plan_network(&city);
        let mut worker = NetWorker::new(&city_plan);
        let mut acc = NetAccumulator::default();
        worker.round(&city_plan, 0, &mut acc);
        let us = time_us(1, 5, || {
            worker.round(&city_plan, 1, &mut acc);
        });
        nodes_per_s_1k = city_plan.len() as f64 / (us * 1e-6);
        kernels.push(Kernel {
            name: "net_round_1k",
            us_per_call: us,
        });
    }

    // 6. The deterministic aggregate goodput of the full measured run
    //    (1 thread so the baseline is reproducible anywhere).
    let report = run_plan_threads(plan, 1);
    let aggregate_mbps = report.aggregate_throughput_bps / 1e6;

    // --- Render. ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"uwb-netbench-v1\",\n");
    json.push_str("  \"kernels_us\": {\n");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {:.3}{comma}\n",
            k.name, k.us_per_call
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"throughput\": {\n");
    json.push_str(&format!("    \"rounds_per_s\": {rounds_per_s:.1},\n"));
    json.push_str(&format!("    \"nodes_per_s_1k\": {nodes_per_s_1k:.0},\n"));
    json.push_str(&format!(
        "    \"edges_per_node_10k\": {edges_per_node_10k:.2},\n"
    ));
    json.push_str(&format!("    \"aggregate_mbps\": {aggregate_mbps:.3}\n"));
    json.push_str("  },\n");
    json.push_str("  \"stage_ns_per_trial\": {\n");
    let stages = &telemetry.stages;
    for (i, st) in stages.iter().enumerate() {
        let comma = if i + 1 == stages.len() { "" } else { "," };
        let per_round = st.ns as f64 / rounds.max(1) as f64;
        json.push_str(&format!(
            "    \"stage:{}\": {per_round:.0}{comma}\n",
            st.name
        ));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    for k in &kernels {
        println!("{:<24} {:>12.2} µs/call", k.name, k.us_per_call);
    }
    println!("{:<24} {:>12.1} rounds/s (1 thread)", "rounds_per_s", rounds_per_s);
    println!("{:<24} {:>12.0} nodes/s (1k round)", "nodes_per_s_1k", nodes_per_s_1k);
    println!("{:<24} {:>12.2} edges/node (10k graph)", "edges_per_node_10k", edges_per_node_10k);
    println!("{:<24} {:>12.3} Mbit/s aggregate", "aggregate_mbps", aggregate_mbps);
    println!("\n8-user report ({} rounds):", report.stats.trials);
    print!("{}", report.table());

    let profile = uwb_platform::report::stage_table(&telemetry);
    if !profile.is_empty() {
        println!("\nwarm-round stage profile ({rounds} rounds):");
        print!("{profile}");
    }

    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("netbench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = check_path {
        return check_against("netbench", &path, &json, tol_pct, &metric_policy);
    }
    ExitCode::SUCCESS
}

/// Metric policy for the `uwb-netbench-v1` schema: kernel timings gate
/// (including `graph_build_10k` and `net_round_1k`, the sparse-path scaling
/// anchors); rounds/s and nodes/s are load-sensitive (info only);
/// `aggregate_mbps` and `edges_per_node_10k` gate as determinism pins
/// (bit-stable for the fixed seed, so any drift means the physics or the
/// graph changed); the `stage:` profile is informational.
fn metric_policy(key: &str) -> MetricPolicy {
    if key == "schema" || key.starts_with("stage:") {
        MetricPolicy::Skip
    } else if key == "rounds_per_s" || key == "nodes_per_s_1k" {
        MetricPolicy::InfoHigherBetter
    } else {
        MetricPolicy::Gate
    }
}
