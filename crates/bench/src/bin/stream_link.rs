//! stream_link — tracked benchmark for the streamed link-trial path (the
//! perf anchor for `scripts/check.sh stream`).
//!
//! Compares single-threaded BER-trial throughput of the batch synthesis
//! path (`LinkWorker::trial_ber`) against the streamed one
//! (`LinkWorker::trial_ber_streamed`) on the smoke scenario, verifies their
//! counters agree bit-for-bit first, and emits a machine-readable report:
//!
//! ```text
//! cargo run -p uwb-bench --release --bin stream_link -- --out BENCH_stream.json
//! cargo run -p uwb-bench --release --bin stream_link -- --check BENCH_stream.json
//! ```
//!
//! Two gates:
//!
//! * **Overhead** (every run): the streamed path must stay within
//!   `--max-overhead` percent (default 5) of batch throughput — the
//!   streaming refactor's acceptance criterion. This is an absolute gate,
//!   independent of any baseline file.
//! * **Parity** (every run): `--parity-trials` (default 50) trials on
//!   identical per-trial seeds must produce bit-identical error counters.
//!
//! `--check BASELINE` additionally prints the delta table against the
//! committed numbers; the throughput rows are informational (wall-clock,
//! machine-dependent) — regression protection comes from the absolute
//! overhead gate, which re-runs on every invocation.
//!
//! JSON schema (`uwb-streamlink-v1`, flat `"name": number` pairs):
//!
//! ```json
//! {
//!   "schema": "uwb-streamlink-v1",
//!   "throughput_tps": { "batch": <trials/s>, "streamed": <trials/s> },
//!   "overhead_pct": <100 * (batch - streamed) / batch>,
//!   "block_len": <samples>
//! }
//! ```

use std::process::ExitCode;
use uwb_bench::tracked::{check_against, MetricPolicy};
use uwb_bench::EXPERIMENT_SEED;
use uwb_phy::Gen2Config;
use uwb_platform::link::{LinkScenario, LinkWorker, DEFAULT_STREAM_BLOCK};
use uwb_platform::ErrorCounter;
use uwb_sim::Rand;

/// The smoke scenario shared with `dspbench`: AWGN, short preamble,
/// Eb/N0 = 6 dB, 24-byte payload.
fn scenario() -> LinkScenario {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    LinkScenario::awgn(config, 6.0, EXPERIMENT_SEED)
}

/// Runs `trials` trials through both paths on identical per-trial seeds and
/// returns the two counters — the batch/streamed parity check (bit-exact on
/// the AWGN smoke scenario; see `uwb_sim::stream` for the contract).
fn parity_counters(sc: &LinkScenario, block_len: usize, trials: u64) -> (ErrorCounter, ErrorCounter) {
    let mut worker = LinkWorker::new(sc);
    let mut batch = ErrorCounter::default();
    let mut streamed = ErrorCounter::default();
    for t in 0..trials {
        let mut rng = Rand::for_trial(sc.seed, t);
        worker.trial_ber(sc, 24, &mut rng, &mut batch);
        let mut rng = Rand::for_trial(sc.seed, t);
        worker.trial_ber_streamed(sc, 24, block_len, &mut rng, &mut streamed);
    }
    (batch, streamed)
}

/// Measures single-threaded trials/s for both paths. The batch and
/// streamed passes are *interleaved* rep by rep — slow machine-level noise
/// (CPU frequency drift, neighbouring load) then hits both paths in the
/// same epochs instead of biasing whichever path runs first — and each
/// path takes the minimum over `reps` passes (the standard noise-robust
/// statistic for the tracked benchmarks).
fn measure_tps(sc: &LinkScenario, block_len: usize, trials: u64, reps: usize) -> (f64, f64) {
    let mut worker = LinkWorker::new(sc);
    let mut counter = ErrorCounter::default();

    // Warm both paths (FFT plans, scratch pools, streaming-channel storage).
    for t in 0..3 {
        let mut rng = Rand::for_trial(sc.seed, t);
        worker.trial_ber(sc, 24, &mut rng, &mut counter);
        let mut rng = Rand::for_trial(sc.seed, t);
        worker.trial_ber_streamed(sc, 24, block_len, &mut rng, &mut counter);
    }

    let mut best_batch = f64::INFINITY;
    let mut best_streamed = f64::INFINITY;
    for _ in 0..reps.max(1) {
        // Alternate per *trial* (~0.5 ms grain): any noise epoch longer
        // than one trial taxes both paths almost identically.
        let mut batch_s = 0.0f64;
        let mut streamed_s = 0.0f64;
        for t in 0..trials {
            let mut rng = Rand::for_trial(sc.seed, t);
            let t0 = std::time::Instant::now();
            worker.trial_ber(sc, 24, &mut rng, &mut counter);
            batch_s += t0.elapsed().as_secs_f64();

            let mut rng = Rand::for_trial(sc.seed, t);
            let t0 = std::time::Instant::now();
            worker.trial_ber_streamed(sc, 24, block_len, &mut rng, &mut counter);
            streamed_s += t0.elapsed().as_secs_f64();
        }
        best_batch = best_batch.min(batch_s / trials.max(1) as f64);
        best_streamed = best_streamed.min(streamed_s / trials.max(1) as f64);
    }
    (1.0 / best_batch, 1.0 / best_streamed)
}

fn render_json(batch_tps: f64, streamed_tps: f64, overhead_pct: f64, block_len: usize) -> String {
    format!(
        "{{\n  \"schema\": \"uwb-streamlink-v1\",\n  \"throughput_tps\": {{\n    \
         \"batch\": {batch_tps:.1},\n    \"streamed\": {streamed_tps:.1}\n  }},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \"block_len\": {block_len}\n}}\n"
    )
}

/// Metric policy for `uwb-streamlink-v1`: all throughput numbers are
/// wall-clock and machine-dependent, so the baseline comparison is
/// informational; the hard gate is the absolute `--max-overhead` check
/// that re-runs on this machine every invocation.
fn metric_policy(key: &str) -> MetricPolicy {
    match key {
        "schema" | "block_len" => MetricPolicy::Skip,
        "batch" | "streamed" => MetricPolicy::InfoHigherBetter,
        "overhead_pct" => MetricPolicy::InfoLowerBetter,
        _ => MetricPolicy::Gate,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tol_pct = 15.0;
    let mut trials = 200u64;
    let mut reps = 5usize;
    let mut block_len = DEFAULT_STREAM_BLOCK;
    let mut max_overhead = 5.0f64;
    let mut parity_trials = 50u64;
    let mut i = 0;
    while i < args.len() {
        let take = |cur: usize| args.get(cur + 1).cloned();
        match args[i].as_str() {
            "--out" => {
                out_path = take(i);
                i += 2;
            }
            "--check" => {
                check_path = take(i);
                i += 2;
            }
            "--tol" => {
                tol_pct = take(i).and_then(|s| s.parse().ok()).unwrap_or(tol_pct);
                i += 2;
            }
            "--trials" => {
                trials = take(i).and_then(|s| s.parse().ok()).unwrap_or(trials);
                i += 2;
            }
            "--reps" => {
                reps = take(i).and_then(|s| s.parse().ok()).unwrap_or(reps);
                i += 2;
            }
            "--block" => {
                block_len = take(i).and_then(|s| s.parse().ok()).unwrap_or(block_len);
                i += 2;
            }
            "--max-overhead" => {
                max_overhead = take(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(max_overhead);
                i += 2;
            }
            "--parity-trials" => {
                parity_trials = take(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(parity_trials);
                i += 2;
            }
            other => {
                eprintln!(
                    "stream_link: unknown argument {other}\n\
                     usage: stream_link [--out PATH] [--check BASELINE [--tol PCT]]\n\
                            [--trials N] [--reps N] [--block SAMPLES]\n\
                            [--max-overhead PCT] [--parity-trials N]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let sc = scenario();

    // Gate 1: bit-exact parity on identical seeds.
    let (batch_c, streamed_c) = parity_counters(&sc, block_len, parity_trials);
    if batch_c != streamed_c {
        eprintln!(
            "stream_link: PARITY FAILURE over {parity_trials} trials: \
             batch {batch_c} vs streamed {streamed_c}"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "parity: OK — counters bit-identical over {parity_trials} trials ({batch_c})"
    );

    // Gate 2: streamed throughput within max_overhead percent of batch.
    let (batch_tps, streamed_tps) = measure_tps(&sc, block_len, trials, reps);
    let overhead_pct = (batch_tps - streamed_tps) / batch_tps * 100.0;
    println!("{:<22} {:>10.1} trials/s (1 thread)", "batch", batch_tps);
    println!("{:<22} {:>10.1} trials/s (1 thread)", "streamed", streamed_tps);
    println!(
        "{:<22} {:>+10.2} % (block {block_len}, gate {max_overhead}%)",
        "streaming overhead", overhead_pct
    );
    let json = render_json(batch_tps, streamed_tps, overhead_pct, block_len);

    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("stream_link: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if overhead_pct > max_overhead {
        eprintln!(
            "stream_link: streamed path {overhead_pct:.2}% slower than batch \
             (gate: {max_overhead}%)"
        );
        return ExitCode::FAILURE;
    }

    if let Some(path) = check_path {
        return check_against("stream_link", &path, &json, tol_pct, &metric_policy);
    }
    ExitCode::SUCCESS
}
