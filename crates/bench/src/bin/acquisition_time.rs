//! E7 — acquisition time vs correlator parallelization (paper §1: fast
//! acquisition to keep the preamble near ~20 µs; §2: gen1 locks < 70 µs).
//!
//! Sweeps the gen2 search-engine parallelism, reporting modeled search time
//! and Monte-Carlo detection statistics at a low per-sample SNR.

use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_phy::{AcquisitionConfig, CoarseAcquisition, Gen2Config, Gen2Transmitter};
use uwb_platform::report::Table;
use uwb_sim::awgn::add_awgn_complex;
use uwb_sim::Rand;

fn main() {
    println!(
        "{}",
        banner("E7", "acquisition time vs parallelization", "§1 / §3")
    );

    let cfg = Gen2Config {
        preamble_repeats: 3,
        ..Gen2Config::nominal_100mbps()
    };
    let tx = Gen2Transmitter::new(cfg.clone()).expect("config");
    let template = tx.preamble_template();
    let sps = cfg.samples_per_slot();
    let period = cfg.preamble_length() * sps;
    let fs = cfg.sample_rate.as_hz();

    println!(
        "\npreamble: {} chips x {} repeats at {} MHz PRF -> {:.2} µs air time",
        cfg.preamble_length(),
        cfg.preamble_repeats,
        cfg.prf.as_mhz(),
        cfg.preamble_duration_us()
    );

    let mut table = Table::new(vec![
        "parallel correlators",
        "search time (µs)",
        "fits ~20 µs preamble",
        "detections (20 trials)",
        "mean |offset error| (samples)",
    ]);

    for p in [1usize, 4, 16, 32, 64, 128] {
        let engine = CoarseAcquisition::new(
            template.clone(),
            AcquisitionConfig {
                threshold: 0.28,
                parallelism: p,
                clock_hz: fs,
            },
        );
        let mut rng = Rand::new(EXPERIMENT_SEED ^ p as u64);
        let mut detections = 0;
        let mut err_sum = 0.0;
        let mut time_us = 0.0;
        let trials = 20;
        for _ in 0..trials {
            let burst = tx.transmit_packet(&[0x5A; 8]).expect("payload");
            let p_sig = uwb_dsp::complex::mean_power(&burst.samples);
            let noisy = add_awgn_complex(&burst.samples, 3.0 * p_sig, &mut rng);
            let r = engine.acquire(&noisy, period);
            time_us = r.search_time_us;
            if r.detected {
                detections += 1;
                let truth = burst.slot0_center - tx.pulse().len() / 2;
                err_sum += (r.offset as f64 - truth as f64).abs();
            }
        }
        table.row(vec![
            p.to_string(),
            format!("{time_us:.1}"),
            if time_us <= 20.0 { "yes" } else { "no" }.to_string(),
            format!("{detections}/{trials}"),
            format!("{:.2}", err_sum / detections.max(1) as f64),
        ]);
    }
    println!("\n{table}");
    println!(
        "expected shape: search time scales as 1/parallelism; with enough\n\
         correlators the full code-phase search fits inside the ~20 µs\n\
         preamble budget the paper targets, with unchanged detection quality."
    );
}
