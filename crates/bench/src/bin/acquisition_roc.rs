//! A5 — ablation: acquisition detector operating characteristic.
//!
//! The coarse-acquisition threshold trades missed packets against false
//! alarms (paper §1: fast, reliable sync is a headline requirement). This
//! experiment sweeps the normalized-correlation threshold and reports
//! detection and false-alarm rates at several SNRs, plus the same for
//! longer preambles — justifying the receiver's default threshold.

use std::time::Duration;
use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_phy::{AcquisitionConfig, CoarseAcquisition, Gen2Config, Gen2Transmitter};
use uwb_platform::report::Table;
use uwb_sim::awgn::{add_awgn_complex, complex_noise};
use uwb_sim::montecarlo::{resolve_threads, MonteCarlo};

fn main() {
    println!(
        "{}",
        banner("A5", "acquisition ROC: threshold / SNR / preamble length", "§1")
    );

    let trials = 40u64;
    let thresholds = [0.08, 0.12, 0.18, 0.28, 0.45];
    let mut total_trials = 0u64;
    let mut total_wall = Duration::ZERO;

    for degree in [6u32, 7] {
        let cfg = Gen2Config {
            preamble_degree: degree,
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        };
        let tx = Gen2Transmitter::new(cfg.clone()).expect("config");
        let template = tx.preamble_template();
        let period = cfg.preamble_length() * cfg.samples_per_slot();

        let mut table = Table::new(vec![
            "threshold",
            "P_fa (noise only)",
            "P_d @ -12 dB/sample",
            "P_d @ -9 dB",
            "P_d @ -6 dB",
        ]);
        for &th in &thresholds {
            let mk_engine = || {
                CoarseAcquisition::new(
                    template.clone(),
                    AcquisitionConfig {
                        threshold: th,
                        parallelism: 32,
                        clock_hz: cfg.sample_rate.as_hz(),
                    },
                )
            };

            // False alarms on pure noise. One engine per worker; every
            // trial draws an independent noise record from its derived
            // per-trial stream.
            let fa_run = MonteCarlo::new(EXPERIMENT_SEED ^ th.to_bits(), trials).run(
                mk_engine,
                |engine, _trial, rng, fa: &mut u64| {
                    let noise = complex_noise(period * 3, 1.0, rng);
                    if engine.acquire(&noise, period).detected {
                        *fa += 1;
                    }
                },
                |_| false,
            );
            total_trials += fa_run.stats.trials;
            total_wall += fa_run.stats.wall;
            let fa = fa_run.value;

            // Detections at several per-sample SNRs. The burst is
            // deterministic, so each worker synthesizes it once and only
            // the noise varies per trial.
            let mut detections = Vec::new();
            for snr_db in [-12.0f64, -9.0, -6.0] {
                let det_run = MonteCarlo::new(
                    EXPERIMENT_SEED ^ th.to_bits() ^ snr_db.to_bits(),
                    trials,
                )
                .run(
                    || {
                        let engine = mk_engine();
                        let burst = tx.transmit_packet(&[0x5A; 8]).expect("payload");
                        let p = uwb_dsp::complex::mean_power(&burst.samples);
                        let truth = burst.slot0_center - tx.pulse().len() / 2;
                        (engine, burst, p, truth)
                    },
                    |(engine, burst, p, truth), _trial, rng, det: &mut u64| {
                        let noisy = add_awgn_complex(
                            &burst.samples,
                            *p / uwb_dsp::math::db_to_pow(snr_db),
                            rng,
                        );
                        let r = engine.acquire(&noisy, period);
                        if r.detected && r.offset.abs_diff(*truth) <= 2 {
                            *det += 1;
                        }
                    },
                    |_| false,
                );
                total_trials += det_run.stats.trials;
                total_wall += det_run.stats.wall;
                detections.push(det_run.value);
            }
            table.row(vec![
                format!("{th:.2}"),
                format!("{}/{trials}", fa),
                format!("{}/{trials}", detections[0]),
                format!("{}/{trials}", detections[1]),
                format!("{}/{trials}", detections[2]),
            ]);
        }
        println!(
            "\npreamble degree {degree} ({} chips, {:.2} µs/period):\n{table}",
            cfg.preamble_length(),
            period as f64 / cfg.sample_rate.as_hz() * 1e6
        );
    }
    println!(
        "engine: {total_trials} acquisition trials in {:.2} s on {} thread(s) \
         ({:.0} trials/s)\n",
        total_wall.as_secs_f64(),
        resolve_threads(None),
        total_trials as f64 / total_wall.as_secs_f64().max(1e-12),
    );
    println!(
        "expected shape: false alarms die out above ~2/sqrt(N) while detection\n\
         holds to lower thresholds; the receiver's default (0.28) sits in the\n\
         gap for the 127-chip preamble across the SNR range where the payload\n\
         itself is decodable. Longer preambles widen the gap (more integration)."
    );
}
