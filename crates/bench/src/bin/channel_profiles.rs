//! A3 — channel-model validation: the Saleh–Valenzuela substrate against
//! its published statistics and the paper's "rms delay spread on the order
//! of 20 ns" claim.

use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_platform::report::Table;
use uwb_sim::sv_channel::{ChannelModel, ChannelRealization};
use uwb_sim::Rand;

fn main() {
    println!(
        "{}",
        banner("A3", "802.15.3a channel statistics", "§1 multipath assumptions")
    );

    let ensemble = 200;
    let mut table = Table::new(vec![
        "model",
        "nominal rms (ns)",
        "measured rms (ns)",
        "mean excess (ns)",
        "paths (mean)",
        "E capture, 8 fingers",
    ]);
    for model in [
        ChannelModel::Cm1,
        ChannelModel::Cm2,
        ChannelModel::Cm3,
        ChannelModel::Cm4,
    ] {
        let mut rng = Rand::new(EXPERIMENT_SEED);
        let mut rms = 0.0;
        let mut excess = 0.0;
        let mut paths = 0.0;
        let mut capture = 0.0;
        for _ in 0..ensemble {
            let ch = ChannelRealization::generate(model, &mut rng);
            rms += ch.rms_delay_spread_ns();
            excess += ch.mean_excess_delay_ns();
            paths += ch.len() as f64;
            capture += ch.energy_capture(8);
        }
        let k = ensemble as f64;
        table.row(vec![
            format!("{model}"),
            format!("{:.1}", model.nominal_rms_ns()),
            format!("{:.1}", rms / k),
            format!("{:.1}", excess / k),
            format!("{:.0}", paths / k),
            format!("{:.0} %", 100.0 * capture / k),
        ]);
    }
    println!("\nensemble of {ensemble} realizations per model:\n{table}");
    println!(
        "paper context: \"rms delay spread of the channel on the order of\n\
         20 ns\" — CM3/CM4 bracket that regime; the receiver's design budget\n\
         (64 ns estimation window, programmable fingers) is sized from these\n\
         profiles."
    );
}
