//! E11 — modulation-scheme comparison on the discrete-prototype platform
//! (paper §3: the platform allows "the comparison between different
//! modulation schemes" within 500 MHz).
//!
//! BER vs Eb/N0 for BPSK / OOK / 2-PPM / 4-PAM (coherent), the noncoherent
//! variants where defined, and each format's closed-form AWGN reference.

use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_phy::Modulation;
use uwb_platform::metrics::{bpsk_awgn_ber, ook_awgn_ber, pam4_awgn_ber, ppm2_awgn_ber};
use uwb_platform::report::{format_rate, log_strip_chart, Table};
use uwb_platform::waveform::{modulation_ber, modulation_ber_noncoherent};

fn theory(m: Modulation, ebn0: f64) -> f64 {
    match m {
        Modulation::Bpsk => bpsk_awgn_ber(ebn0),
        Modulation::Ook => ook_awgn_ber(ebn0),
        Modulation::Ppm2 => ppm2_awgn_ber(ebn0),
        Modulation::Pam4 => pam4_awgn_ber(ebn0),
    }
}

fn main() {
    println!(
        "{}",
        banner("E11", "modulation comparison within 500 MHz", "§3 + Fig. 4 context")
    );

    let grid = [2.0, 4.0, 6.0, 8.0, 10.0];
    let target_errors = 300;
    let max_bits = 3_000_000;

    for m in Modulation::all() {
        let mut table = Table::new(vec!["Eb/N0 (dB)", "measured", "theory", "noncoherent"]);
        let mut series = Vec::new();
        for (i, &e) in grid.iter().enumerate() {
            let c = modulation_ber(m, e, target_errors, max_bits, EXPERIMENT_SEED + i as u64);
            let nc = modulation_ber_noncoherent(
                m,
                e,
                target_errors,
                max_bits,
                EXPERIMENT_SEED + 100 + i as u64,
            );
            series.push((e, c.rate()));
            table.row(vec![
                format!("{e:.0}"),
                format_rate(c.errors, c.total),
                format!("{:.2e}", theory(m, e)),
                match nc {
                    Some(n) => format_rate(n.errors, n.total),
                    None => "-".to_string(),
                },
            ]);
        }
        println!("\n{m}:\n{table}");
        println!("{}", log_strip_chart(&series, "Eb/N0", "BER"));
    }

    // Rate/robustness summary at 8 dB.
    let mut summary = Table::new(vec![
        "format",
        "bits/symbol",
        "slots/symbol",
        "relative rate @ fixed PRF",
        "BER @ 8 dB",
    ]);
    for m in Modulation::all() {
        let c = modulation_ber(m, 8.0, 400, 4_000_000, EXPERIMENT_SEED + 7);
        let rate = m.bits_per_symbol() as f64 / m.slots_per_symbol() as f64;
        summary.row(vec![
            m.to_string(),
            m.bits_per_symbol().to_string(),
            m.slots_per_symbol().to_string(),
            format!("{rate:.1}x"),
            format_rate(c.errors, c.total),
        ]);
    }
    println!("\nsummary at Eb/N0 = 8 dB:\n{summary}");
    println!(
        "expected shape: BPSK best per-Eb (antipodal); OOK/2-PPM pay ~3 dB;\n\
         4-PAM trades ~1.3 dB for 2x rate; noncoherent detection costs more\n\
         at low SNR — the trade space the discrete prototype was built to map."
    );
}
