//! A6 — frame efficiency: why the paper wants a ~20 µs preamble.
//!
//! §1 motivates fast acquisition by requiring the preamble be "comparable
//! with current wireless systems (~20 µs)". This experiment quantifies the
//! cost: goodput (payload bits over total air time) vs payload size and
//! preamble length at the 100 Mbps operating point — analytically from the
//! frame geometry and verified against synthesized burst durations.

use uwb_bench::banner;
use uwb_phy::{Gen2Config, Gen2Transmitter};
use uwb_platform::report::Table;

fn main() {
    println!(
        "{}",
        banner("A6", "frame efficiency vs preamble length", "§1 preamble budget")
    );

    let mut table = Table::new(vec![
        "preamble (chips x reps)",
        "preamble air time (µs)",
        "payload (bytes)",
        "burst (µs)",
        "goodput (Mbps)",
        "efficiency",
    ]);

    for (degree, repeats) in [(7u32, 2usize), (7, 4), (7, 8), (10, 4)] {
        for payload_len in [32usize, 256, 1500] {
            let cfg = Gen2Config {
                preamble_degree: degree,
                preamble_repeats: repeats,
                ..Gen2Config::nominal_100mbps()
            };
            let tx = Gen2Transmitter::new(cfg.clone()).expect("config");
            let payload = vec![0xA5u8; payload_len];
            let burst = tx.transmit_packet(&payload).expect("size");
            let air_us = burst.duration_us();
            let goodput = 8.0 * payload_len as f64 / (air_us * 1e-6) / 1e6;
            let efficiency = goodput / (cfg.bit_rate() / 1e6);
            table.row(vec![
                format!("{} x {repeats}", cfg.preamble_length()),
                format!("{:.2}", cfg.preamble_duration_us()),
                payload_len.to_string(),
                format!("{air_us:.2}"),
                format!("{goodput:.1}"),
                format!("{:.0} %", 100.0 * efficiency),
            ]);
        }
    }
    println!("\n100 Mbps link, BPSK, 1 pulse/bit:\n{table}");
    println!(
        "expected shape: at short packets the preamble dominates air time —\n\
         a 1023-chip preamble (the kind a slow serial search would need for\n\
         repeated dwells) caps goodput well below half the channel rate, while\n\
         the parallel-search-enabled 127-chip x 2-4 preamble keeps efficiency\n\
         high even for 32-byte packets. That is the §1 argument for fast\n\
         acquisition, in numbers."
    );
}
