//! Smoke — a fast end-to-end sanity check of the Monte-Carlo engine and the
//! gen2 link (used by `scripts/check.sh smoke`).
//!
//! Runs one small AWGN BER point on the parallel engine, re-runs it pinned
//! to a single worker thread, and exits non-zero unless:
//!
//! * both runs finish without exhausting the trial budget (non-truncated);
//! * the two counters are bit-identical (the engine's determinism contract);
//! * the measured BER is sane for the operating point.
//!
//! Extra modes:
//!
//! * `--trace out.json` — export the run's span timeline as Chrome Trace
//!   Event JSON (needs a build with `--features obs-trace`);
//! * `--replay-seed <seed>` — re-run exactly one trial on the given derived
//!   RNG seed (from a flight-recorder report) with a verbose forensic dump;
//! * `--speedup [trials]` — engine-vs-serial throughput comparison.

use std::process::ExitCode;
use std::time::Instant;
use uwb_bench::{banner, trace_arg, write_trace, EXPERIMENT_SEED};
use uwb_phy::Gen2Config;
use uwb_platform::link::{
    run_ber_budgeted, run_packet, run_ber_fast_budgeted, run_ber_fast_streamed_budgeted,
    LinkOutcome, LinkScenario, LinkWorker, TrialBudget, DEFAULT_STREAM_BLOCK,
};
use uwb_platform::report::stage_table;

/// Parses a u64 seed in decimal or `0x`-prefixed hex (the form the flight
/// recorder prints).
fn parse_seed(s: &str) -> Result<u64, std::num::ParseIntError> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    }
}

/// Renders a trials/sec figure that may be unavailable for untimed runs.
fn tps(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1} trials/s"),
        None => "n/a trials/s".to_string(),
    }
}

/// `smoke --speedup [trials]`: measures trials/sec of the pre-engine runner
/// behavior (serial loop, tx/rx rebuilt per packet — what `run_ber` did
/// before the Monte-Carlo port) against the engine-backed `run_ber`
/// (per-worker cached state, `UWB_THREADS` workers) on the same scenario.
fn speedup(trials: u64) -> ExitCode {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let scenario = LinkScenario::awgn(config, 6.0, EXPERIMENT_SEED);

    // Before: the old serial loop (run_packet rebuilds the worker per call,
    // exactly like the pre-port run_ber body).
    let t0 = Instant::now();
    let mut serial = LinkOutcome::default();
    for t in 0..trials {
        run_packet(&scenario, 24, t, &mut serial);
    }
    let before = t0.elapsed();
    let before_tps = trials as f64 / before.as_secs_f64();

    // After: the engine with the same trial count (no early stop).
    let run = run_ber_budgeted(
        &scenario,
        24,
        u64::MAX,
        u64::MAX,
        TrialBudget { max_trials: trials },
    );
    let after_tps = run.stats.trials_per_sec();

    assert_eq!(run.outcome, serial, "engine must reproduce the serial loop");
    println!(
        "before (serial, per-trial state): {trials} trials in {:.2} s  ({before_tps:.1} trials/s)",
        before.as_secs_f64()
    );
    println!(
        "after  (engine, {} thread(s)):    {}  ({})",
        run.stats.threads,
        run.stats.summary(),
        tps(after_tps)
    );
    if let Some(after) = after_tps {
        println!("speedup: {:.2}x", after / before_tps);
    }

    // Fast (BER-only) path rate, for comparison against the pre-PR
    // `run_ber_fast` (measure the seed commit with the same scenario to get
    // the "before" number).
    let fast = run_ber_fast_budgeted(
        &scenario,
        24,
        u64::MAX,
        u64::MAX,
        TrialBudget { max_trials: trials },
    );
    println!(
        "fast path (engine, {} thread(s)): {}  ({})",
        fast.stats.threads,
        fast.stats.summary(),
        tps(fast.stats.trials_per_sec())
    );
    ExitCode::SUCCESS
}

/// `smoke --replay-seed <seed>`: re-runs exactly one full trial on a derived
/// RNG seed taken from a flight-recorder report, with a verbose forensic
/// dump (outcome, stage profile, notes, event breadcrumbs). The trial's
/// waveforms, decisions, and errors reproduce the recorded trial bit-for-bit
/// because every trial is a pure function of its derived seed.
fn replay(seed: u64) -> ExitCode {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let scenario = LinkScenario::awgn(config, 6.0, EXPERIMENT_SEED);
    println!("replaying one trial on derived seed {seed:#x}");

    let _ = uwb_obs::take_thread_telemetry(); // isolate the dump
    uwb_obs::set_trial(0);
    uwb_obs::recorder::begin_trial(0, seed);
    let mut rng = uwb_sim::Rand::new(seed);
    let mut worker = LinkWorker::new(&scenario);
    let mut outcome = LinkOutcome::default();
    worker.trial_full(&scenario, 24, &mut rng, &mut outcome);
    let telemetry = uwb_obs::take_thread_telemetry();

    println!(
        "outcome: {} bit error(s) / {} bits, packets {}/{} ok, {} sync failure(s)",
        outcome.ber.errors, outcome.ber.total, outcome.packets_ok, outcome.packets,
        outcome.sync_failures
    );
    let profile = stage_table(&telemetry);
    if !profile.is_empty() {
        println!("\nstage profile (1 trial):");
        print!("{profile}");
    }
    print!("\n{}", uwb_obs::recorder::render_report(&telemetry.worst));
    if !uwb_obs::enabled() {
        eprintln!("warning: telemetry disabled in this build; rebuild with `--features obs`");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if let Some(seed) = args
        .iter()
        .position(|a| a == "--replay-seed")
        .and_then(|i| args.get(i + 1))
    {
        let Ok(seed) = parse_seed(seed) else {
            eprintln!("--replay-seed: expected a decimal or 0x-hex u64, got '{seed}'");
            return ExitCode::FAILURE;
        };
        return replay(seed);
    }
    if args.iter().any(|a| a == "--speedup") {
        let trials = args
            .iter()
            .skip_while(|a| *a != "--speedup")
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(400);
        return speedup(trials);
    }
    println!("{}", banner("S0", "engine + link smoke check", "tier-1 gate"));

    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    // 6 dB AWGN: a few errors per thousand bits, so the error target is
    // reachable well inside the trial budget. Runs on the batched
    // stage-sweep path (`UWB_BATCH` wide); on AWGN its counters are
    // bit-identical to the unbatched fast path.
    let scenario = LinkScenario::awgn(config, 6.0, EXPERIMENT_SEED);
    let budget = TrialBudget { max_trials: 2_000 };
    let run =
        run_ber_fast_streamed_budgeted(&scenario, 24, DEFAULT_STREAM_BLOCK, 20, 200_000, budget);
    println!("parallel : {run}  ({})", run.stats.summary());

    let mut failures = 0u32;
    if run.stop.truncated() {
        eprintln!("FAIL: run truncated by the trial budget ({})", run.stats.trials);
        failures += 1;
    }
    if run.total == 0 {
        eprintln!("FAIL: no bits observed");
        failures += 1;
    }
    let rate = run.rate();
    if !(rate > 1e-5 && rate < 0.2) {
        eprintln!("FAIL: BER {rate:.3e} outside the sane window (1e-5, 0.2) for 6 dB AWGN");
        failures += 1;
    }

    // Determinism: the same run pinned to one worker thread must agree
    // bit-for-bit with the free-threaded run above — counters AND the
    // deterministic telemetry view (stage call counts, events, histograms).
    std::env::set_var("UWB_THREADS", "1");
    let serial =
        run_ber_fast_streamed_budgeted(&scenario, 24, DEFAULT_STREAM_BLOCK, 20, 200_000, budget);
    std::env::remove_var("UWB_THREADS");
    println!("1-thread : {serial}  ({})", serial.stats.summary());
    if serial.counter != run.counter || serial.stop != run.stop {
        eprintln!(
            "FAIL: thread-count dependence: {} threads gave {}, 1 thread gave {}",
            run.stats.threads, run.counter, serial.counter
        );
        failures += 1;
    }
    if serial.stats.telemetry.fingerprint() != run.stats.telemetry.fingerprint() {
        eprintln!(
            "FAIL: telemetry thread-count dependence: fingerprint {:#x} vs {:#x}",
            run.stats.telemetry.fingerprint(),
            serial.stats.telemetry.fingerprint()
        );
        failures += 1;
    }
    if uwb_obs::enabled() && run.stats.telemetry.is_empty() {
        eprintln!("FAIL: telemetry enabled but the run snapshot is empty");
        failures += 1;
    }

    // Per-stage profile of the multi-threaded run (uwb-telemetry-v2).
    let profile = stage_table(&run.stats.telemetry);
    if !profile.is_empty() {
        println!("\nstage profile ({} trials):", run.stats.trials);
        print!("{profile}");
    }
    // Percentile digests (v2 `quantiles`).
    for d in &run.stats.telemetry.digests {
        println!(
            "digest {}: n={} p50={} p95={} p99={} max={}",
            d.name,
            d.count,
            d.quantile(0.50),
            d.quantile(0.95),
            d.quantile(0.99),
            d.max
        );
    }
    // Worst-trial flight recorder (seeds feed `smoke --replay-seed`).
    if !run.stats.telemetry.worst.is_empty() {
        print!("\n{}", uwb_obs::recorder::render_report(&run.stats.telemetry.worst));
    }
    // Optional span-timeline export.
    if let Some(path) = trace_arg(&args) {
        if let Err(e) = write_trace(&path, &run.stats.telemetry) {
            eprintln!("FAIL: --trace {path}: {e}");
            failures += 1;
        }
    }

    if failures == 0 {
        println!("smoke: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("smoke: {failures} check(s) failed");
        ExitCode::FAILURE
    }
}
