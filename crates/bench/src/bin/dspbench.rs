//! dspbench — tracked micro-benchmarks for the zero-allocation DSP kernel
//! layer (the perf anchor for `scripts/check.sh bench`).
//!
//! Measures the FFT/correlation kernels that dominate the Monte-Carlo link
//! trials, plus single-threaded end-to-end trial throughput, and emits a
//! machine-readable JSON report:
//!
//! ```text
//! cargo run -p uwb-bench --release --bin dspbench -- --out BENCH_dsp.json
//! cargo run -p uwb-bench --release --bin dspbench -- --check BENCH_dsp.json --tol 15
//! ```
//!
//! `--check` exits non-zero if any kernel regresses by more than `--tol`
//! percent (default 15) against the committed baseline. Absolute timings
//! move between machines; the regression gate therefore compares *this*
//! machine's fresh run against the committed numbers only when asked to
//! (CI runs on stable hardware; see EXPERIMENTS.md for methodology).
//!
//! The JSON schema (`uwb-dspbench-v1`) is flat on purpose so the checker
//! needs no real JSON parser:
//!
//! ```json
//! {
//!   "schema": "uwb-dspbench-v1",
//!   "kernels_us": { "<name>": <median-microseconds-per-call>, ... },
//!   "throughput_tps": { "full_path": <trials/s>, "fast_path": <trials/s>,
//!                       "full_path_batched": <trials/s>, "fast_path_batched": <trials/s> },
//!   "stage_ns_per_trial": { "stage:<name>": <ns-per-trial>, ... },
//!   "fft_plans_built": <count>
//! }
//! ```
//!
//! `stage_ns_per_trial` is the per-stage wall-clock profile of the full-path
//! throughput loop (uwb-obs stage timers; empty when the `obs`
//! feature is off). Keys are prefixed `stage:` and the regression checker
//! skips them — the profile is informational, never a CI gate.

use std::process::ExitCode;
use std::time::Instant;
use uwb_bench::tracked::{check_against, time_us, MetricPolicy};
use uwb_bench::EXPERIMENT_SEED;
use uwb_dsp::correlation::{circular_autocorrelation, cross_correlate_fft_into};
use uwb_dsp::fft::{cached_plan, fft_convolve_real_into, fft_plans_built, Fft};
use uwb_dsp::{Complex, DspScratch};
use uwb_phy::{AcquisitionConfig, CoarseAcquisition, Gen2Config};
use uwb_platform::link::{
    BatchScratch, LinkOutcome, LinkScenario, LinkWorker, DEFAULT_STREAM_BLOCK,
};
use uwb_platform::ErrorCounter;
use uwb_sim::montecarlo::resolve_batch;
use uwb_sim::Rand;

/// One measured kernel: name + median microseconds per call.
struct Kernel {
    name: &'static str,
    us_per_call: f64,
}

fn noise_complex(n: usize, seed: u64) -> Vec<Complex> {
    let mut rng = Rand::new(seed);
    (0..n)
        .map(|_| Complex::new(rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)))
        .collect()
}

fn noise_real(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rand::new(seed);
    (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
}

fn run_kernels() -> Vec<Kernel> {
    let mut out = Vec::new();

    // 1. 4096-point forward FFT through the thread-local plan cache,
    //    in place (the acquisition inner loop shape).
    {
        let plan = cached_plan(4096);
        let mut buf = noise_complex(4096, 1);
        out.push(Kernel {
            name: "fft4096_planned_fwd",
            us_per_call: time_us(100, 15, || {
                plan.forward_in_place(&mut buf);
            }),
        });
    }

    // 2. The same transform with the plan rebuilt per call — what every
    //    FFT cost before the plan cache (kept as a reference point).
    {
        let mut buf = noise_complex(4096, 2);
        out.push(Kernel {
            name: "fft4096_unplanned_fwd",
            us_per_call: time_us(50, 15, || {
                let plan = Fft::new(4096);
                plan.forward_in_place(&mut buf);
            }),
        });
    }

    // 2b. 4096-point forward f32 SoA FFT (the `fast-acq` acquisition
    //     correlator shape) through its thread-local plan cache.
    {
        let plan = uwb_dsp::fft32::cached_plan32(4096);
        let mut rng = Rand::new(21);
        let mut re: Vec<f32> = (0..4096).map(|_| rng.uniform_in(-1.0, 1.0) as f32).collect();
        let mut im: Vec<f32> = (0..4096).map(|_| rng.uniform_in(-1.0, 1.0) as f32).collect();
        out.push(Kernel {
            name: "fft32_4096_planned_fwd",
            us_per_call: time_us(100, 15, || {
                plan.forward_in_place(&mut re, &mut im);
            }),
        });
    }

    // 2c. Block Gaussian generation at the AWGN per-trial shape (4096
    //     draws ≈ one complex noise burst over a short record).
    {
        let mut rng = Rand::new(22);
        let mut buf = vec![0.0f64; 4096];
        out.push(Kernel {
            name: "fill_gaussian_4096",
            us_per_call: time_us(200, 15, || {
                rng.fill_gaussian(&mut buf);
            }),
        });
    }

    // 2d. Fused AGC scale + ADC quantization at the digitizer shape
    //     (2560 samples through a 5-bit converter).
    {
        let q = uwb_adc::Quantizer::new(5, 1.0);
        let input = noise_complex(2560, 23);
        let mut out_buf = Vec::new();
        out.push(Kernel {
            name: "quantize_scaled_2560x5b",
            us_per_call: time_us(200, 15, || {
                q.quantize_scaled_into(&input, 1.7, &mut out_buf);
            }),
        });
    }

    // 3. Packed real convolution (pulse shaping / template construction
    //    shape): 2000-sample record against a 257-tap pulse.
    {
        let a = noise_real(2000, 3);
        let b = noise_real(257, 4);
        let mut scratch = DspScratch::new();
        let mut conv = Vec::new();
        out.push(Kernel {
            name: "fft_convolve_real_2000x257",
            us_per_call: time_us(50, 15, || {
                fft_convolve_real_into(&a, &b, &mut scratch, &mut conv);
            }),
        });
    }

    // 4. FFT cross-correlation at the channel-estimation shape:
    //    2555-sample record against a 1277-sample preamble template.
    {
        let sig = noise_complex(2555, 5);
        let tpl = noise_complex(1277, 6);
        let mut scratch = DspScratch::new();
        let mut corr = Vec::new();
        out.push(Kernel {
            name: "cross_correlate_fft_2555x1277",
            us_per_call: time_us(30, 15, || {
                cross_correlate_fft_into(&sig, &tpl, &mut scratch, &mut corr);
            }),
        });
    }

    // 5. Circular autocorrelation of a 1024-chip code (PN-code analysis
    //    path; O(n²) before the FFT fold).
    {
        let x = noise_real(1024, 7);
        out.push(Kernel {
            name: "circular_autocorr_1024",
            us_per_call: time_us(15, 15, || {
                let _ = circular_autocorrelation(&x);
            }),
        });
    }

    // 6. Batched coarse acquisition at the stage-sweep shape: the template
    //    spectrum is warmed once, then 8 records (one batch) are searched
    //    against it — the per-batch amortization the batched runtime buys
    //    over 8 independent acquisitions (which would each re-check the
    //    memo under the bank's lock).
    {
        let tpl = noise_complex(1277, 8);
        let acq = CoarseAcquisition::new(tpl, AcquisitionConfig::with_clock(2e9));
        let records: Vec<Vec<Complex>> = (0..8).map(|i| noise_complex(2555, 9 + i)).collect();
        let mut scratch = DspScratch::new();
        out.push(Kernel {
            name: "batched_acquisition_B8",
            us_per_call: time_us(10, 15, || {
                acq.warm(2555, 1277);
                for rec in &records {
                    let _ = acq.acquire_with(rec, 1277, &mut scratch);
                }
            }),
        });
    }

    out
}

/// The four end-to-end throughput figures plus the loop-wide FFT-plan
/// count and the full-path stage profile.
struct Throughput {
    full_tps: f64,
    fast_tps: f64,
    full_batched_tps: f64,
    fast_batched_tps: f64,
    plans_built: u64,
    telemetry: uwb_obs::Telemetry,
}

/// Single-threaded end-to-end trial throughput on the smoke scenario
/// (AWGN, preamble_repeats = 2, Eb/N0 = 6 dB, 24-byte payload) — one
/// worker driven directly, exactly what each Monte-Carlo thread executes.
///
/// Four loops: the unbatched full and fast (BER-only) paths, then the same
/// two on the batched stage-sweep runtime at `UWB_BATCH` (default
/// `DEFAULT_BATCH`) trials per batch. `plans_built` counts the FFT plans
/// constructed over the whole section *including* warm-up — in the steady state this must equal the
/// number of distinct transform sizes the link path touches (each size
/// planned exactly once, never per trial), so the JSON number stays O(1)
/// no matter how many trials run — and `telemetry` is the per-stage
/// profile of the timed unbatched full-path loop (empty when the `obs`
/// feature is off).
fn run_throughput(trials: u64) -> Throughput {
    let config = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let scenario = LinkScenario::awgn(config, 6.0, EXPERIMENT_SEED);
    let mut worker = LinkWorker::new(&scenario);
    let plans_before = fft_plans_built();

    // Full path (acquisition + packet decode + BER).
    let mut outcome = LinkOutcome::default();
    // Warm the buffers so the measurement sees the steady state.
    let mut rng = Rand::for_trial(scenario.seed, 0);
    worker.trial_full(&scenario, 24, &mut rng, &mut outcome);
    // Drop the warm-up's stage timers so the profile covers exactly the
    // timed loop below.
    let _ = uwb_obs::take_thread_telemetry();
    let t0 = Instant::now();
    for t in 0..trials {
        let mut rng = Rand::for_trial(scenario.seed, t);
        worker.trial_full(&scenario, 24, &mut rng, &mut outcome);
    }
    let full_tps = trials as f64 / t0.elapsed().as_secs_f64();
    let telemetry = uwb_obs::take_thread_telemetry();

    // Fast path (known-timing BER only).
    let mut counter = ErrorCounter::default();
    let mut rng = Rand::for_trial(scenario.seed, 0);
    worker.trial_ber(&scenario, 24, &mut rng, &mut counter);
    let t0 = Instant::now();
    for t in 0..trials {
        let mut rng = Rand::for_trial(scenario.seed, t);
        worker.trial_ber(&scenario, 24, &mut rng, &mut counter);
    }
    let fast_tps = trials as f64 / t0.elapsed().as_secs_f64();

    // Batched stage-sweep paths: `UWB_BATCH` (default [`DEFAULT_BATCH`])
    // consecutive trials per sub-batch — the per-worker loop
    // `MonteCarlo::run_batched` executes. The pinned baseline is generated
    // with `UWB_BATCH` unset; the env override exists for B-sweep
    // measurements (see EXPERIMENTS.md).
    let batch = resolve_batch(None);
    let mut scratch = BatchScratch::new();
    let mut outcome = LinkOutcome::default();
    worker.trial_batch_full_streamed(
        &scenario,
        24,
        DEFAULT_STREAM_BLOCK,
        0..batch.min(trials.max(1)),
        &mut scratch,
        &mut outcome,
    );
    let t0 = Instant::now();
    let mut lo = 0;
    while lo < trials {
        let hi = (lo + batch).min(trials);
        worker.trial_batch_full_streamed(
            &scenario,
            24,
            DEFAULT_STREAM_BLOCK,
            lo..hi,
            &mut scratch,
            &mut outcome,
        );
        lo = hi;
    }
    let full_batched_tps = trials as f64 / t0.elapsed().as_secs_f64();

    let mut counter = ErrorCounter::default();
    worker.trial_batch_ber_streamed(
        &scenario,
        24,
        DEFAULT_STREAM_BLOCK,
        0..batch.min(trials.max(1)),
        &mut scratch,
        &mut counter,
    );
    let t0 = Instant::now();
    let mut lo = 0;
    while lo < trials {
        let hi = (lo + batch).min(trials);
        worker.trial_batch_ber_streamed(
            &scenario,
            24,
            DEFAULT_STREAM_BLOCK,
            lo..hi,
            &mut scratch,
            &mut counter,
        );
        lo = hi;
    }
    let fast_batched_tps = trials as f64 / t0.elapsed().as_secs_f64();

    Throughput {
        full_tps,
        fast_tps,
        full_batched_tps,
        fast_batched_tps,
        plans_built: fft_plans_built() - plans_before,
        telemetry,
    }
}

fn render_json(
    kernels: &[Kernel],
    tp: &Throughput,
    trials: u64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"uwb-dspbench-v1\",\n");
    s.push_str("  \"kernels_us\": {\n");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        s.push_str(&format!("    \"{}\": {:.3}{comma}\n", k.name, k.us_per_call));
    }
    s.push_str("  },\n");
    s.push_str("  \"throughput_tps\": {\n");
    s.push_str(&format!("    \"full_path\": {:.1},\n", tp.full_tps));
    s.push_str(&format!("    \"fast_path\": {:.1},\n", tp.fast_tps));
    s.push_str(&format!(
        "    \"full_path_batched\": {:.1},\n",
        tp.full_batched_tps
    ));
    s.push_str(&format!(
        "    \"fast_path_batched\": {:.1}\n",
        tp.fast_batched_tps
    ));
    s.push_str("  },\n");
    // Informational stage profile ("stage:"-prefixed keys are skipped by the
    // regression checker). ns per trial, not per call, so stages that run
    // more than once per trial still sum to the trial budget.
    s.push_str("  \"stage_ns_per_trial\": {\n");
    let stages = &tp.telemetry.stages;
    for (i, st) in stages.iter().enumerate() {
        let comma = if i + 1 == stages.len() { "" } else { "," };
        let per_trial = st.ns as f64 / trials.max(1) as f64;
        s.push_str(&format!("    \"stage:{}\": {per_trial:.0}{comma}\n", st.name));
    }
    s.push_str("  },\n");
    s.push_str(&format!("  \"fft_plans_built\": {}\n", tp.plans_built));
    s.push_str("}\n");
    s
}

/// Metric policy for the `uwb-dspbench-v1` schema: kernel times are the
/// gate; end-to-end trials/s is too load-sensitive to gate CI on and the
/// `stage:` profile is wall-clock, machine- and feature-dependent.
fn metric_policy(key: &str) -> MetricPolicy {
    if key == "schema" || key == "fft_plans_built" || key.starts_with("stage:") {
        MetricPolicy::Skip
    } else if matches!(
        key,
        "full_path" | "fast_path" | "full_path_batched" | "fast_path_batched"
    ) {
        MetricPolicy::InfoHigherBetter
    } else {
        MetricPolicy::Gate
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tol_pct = 15.0;
    let mut trials = 400u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--check" => {
                check_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--tol" => {
                tol_pct = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(tol_pct);
                i += 2;
            }
            "--trials" => {
                trials = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(trials);
                i += 2;
            }
            other => {
                eprintln!(
                    "dspbench: unknown argument {other}\n\
                     usage: dspbench [--out PATH] [--check BASELINE [--tol PCT]] [--trials N]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // Throughput first, on a cold plan cache, so `fft_plans_built` reports
    // exactly how many distinct transform sizes the link path planned (each
    // once). The kernel section would otherwise pre-populate the cache.
    let tp = run_throughput(trials);
    let kernels = run_kernels();
    let json = render_json(&kernels, &tp, trials);

    for k in &kernels {
        println!("{:<34} {:>10.2} µs/call", k.name, k.us_per_call);
    }
    println!("{:<34} {:>10.1} trials/s (1 thread)", "full_path", tp.full_tps);
    println!("{:<34} {:>10.1} trials/s (1 thread)", "fast_path", tp.fast_tps);
    println!(
        "{:<34} {:>10.1} trials/s (1 thread, B={})",
        "full_path_batched", tp.full_batched_tps, resolve_batch(None)
    );
    println!(
        "{:<34} {:>10.1} trials/s (1 thread, B={})",
        "fast_path_batched", tp.fast_batched_tps, resolve_batch(None)
    );
    println!("{:<34} {:>10}", "fft_plans_built", tp.plans_built);

    // Per-stage profile of the full-path loop (uwb-obs stage timers).
    let profile = uwb_platform::report::stage_table(&tp.telemetry);
    if !profile.is_empty() {
        println!("\nfull-path stage profile ({trials} trials):");
        print!("{profile}");
    }

    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("dspbench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = check_path {
        return check_against("dspbench", &path, &json, tol_pct, &metric_policy);
    }
    ExitCode::SUCCESS
}
