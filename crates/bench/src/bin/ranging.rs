//! E13 — "precise locationing" (paper abstract).
//!
//! The 500 MHz pulses that carry data also timestamp the direct path.
//! Part 1: one-way TOA error vs SNR (LOS). Part 2: two-way ranging distance
//! error over CM1/CM3 multipath, leading-edge detector vs naive
//! strongest-peak picking (which rides the strongest echo in NLOS).

use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_dsp::resample::fractional_delay;
use uwb_dsp::Complex;
use uwb_phy::pulse::PulseShape;
use uwb_phy::ranging::{distance_to_delay_ns, solve_two_way, ToaEstimator};
use uwb_platform::report::Table;
use uwb_sim::awgn::add_awgn_complex;
use uwb_sim::sv_channel::{ChannelModel, ChannelRealization};
use uwb_sim::time::SampleRate;
use uwb_sim::Rand;

fn fs() -> SampleRate {
    SampleRate::from_gsps(1.0)
}

/// A preamble-like ranging waveform: 31 BPSK pulses at 100 MHz PRF.
fn ranging_waveform() -> Vec<Complex> {
    let pulse = PulseShape::gen2_default().generate_complex(fs());
    let chips = uwb_phy::pn::msequence_chips(5);
    let sps = 10;
    let n = (chips.len() - 1) * sps + pulse.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, &c) in chips.iter().enumerate() {
        for (j, &p) in pulse.iter().enumerate() {
            out[k * sps + j] += p * c;
        }
    }
    out
}

fn main() {
    println!(
        "{}",
        banner("E13", "precise locationing via leading-edge TOA", "abstract")
    );

    let template = ranging_waveform();
    let est = ToaEstimator::new();

    // --- Part 1: TOA error vs matched-filter SNR (LOS, fractional delays) ---
    let mut t1 = Table::new(vec!["per-sample SNR (dB)", "TOA RMS error (ps)", "range RMS (cm)"]);
    for &snr_db in &[0.0f64, 6.0, 12.0, 20.0] {
        let mut rng = Rand::new(EXPERIMENT_SEED ^ snr_db.to_bits());
        let mut sq = 0.0;
        let trials = 60;
        for _ in 0..trials {
            let true_delay = rng.uniform_in(0.0, 10.0);
            let mut sig = vec![Complex::ZERO; 80];
            sig.extend_from_slice(&template);
            sig.extend(vec![Complex::ZERO; 80]);
            let delayed = fractional_delay(&sig, true_delay, 8);
            let p = uwb_dsp::complex::mean_power(&delayed);
            let noisy = add_awgn_complex(&delayed, p / uwb_dsp::math::db_to_pow(snr_db), &mut rng);
            if let Some(toa) = est.estimate(&noisy, &template, fs()) {
                let err_samples = toa.samples - (80.0 + true_delay);
                sq += err_samples * err_samples;
            } else {
                sq += 100.0; // count misses harshly
            }
        }
        let rms_samples = (sq / trials as f64).sqrt();
        let rms_ps = rms_samples * 1e3; // 1 GS/s -> 1 ns/sample
        t1.row(vec![
            format!("{snr_db:.0}"),
            format!("{rms_ps:.0}"),
            format!("{:.1}", rms_ps * 1e-12 * uwb_sim::pathloss::SPEED_OF_LIGHT * 1e2),
        ]);
    }
    println!("\nLOS TOA accuracy (sub-sample parabolic refinement):\n{t1}");

    // --- Part 2: two-way ranging through multipath ---
    let mut t2 = Table::new(vec![
        "channel",
        "true distance",
        "leading-edge error (cm, median)",
        "strongest-peak error (cm, median)",
    ]);
    let naive = ToaEstimator {
        edge_fraction: 0.999, // effectively strongest-peak picking
        search_back: 0,
    };
    for channel in [ChannelModel::Cm1, ChannelModel::Cm3] {
        for &dist_m in &[1.0f64, 5.0] {
            let mut rng = Rand::new(EXPERIMENT_SEED ^ dist_m.to_bits());
            let delay_samples = distance_to_delay_ns(dist_m) * fs().as_hz() / 1e9;
            let mut edge_errs = Vec::new();
            let mut peak_errs = Vec::new();
            for _ in 0..40 {
                let ch = ChannelRealization::generate(channel, &mut rng);
                let mut sig = vec![Complex::ZERO; 60];
                sig.extend_from_slice(&template);
                sig.extend(vec![Complex::ZERO; 120]);
                let through = ch.apply(&sig, fs());
                let delayed = fractional_delay(&through, delay_samples, 8);
                let p = uwb_dsp::complex::mean_power(&delayed);
                let noisy = add_awgn_complex(&delayed, p / 100.0, &mut rng);
                for (which, est_ref) in [(0, &est), (1, &naive)] {
                    if let Some(toa) = est_ref.estimate(&noisy, &template, fs()) {
                        // Two-way: assume symmetric link (same TOA both ways).
                        let t_tx = 0.0;
                        let turnaround = 1000.0;
                        let measured_oneway_ns = toa.ns - 60.0; // template inserted at 60
                        let r = solve_two_way(
                            t_tx,
                            2.0 * measured_oneway_ns + turnaround,
                            turnaround,
                        );
                        let err_cm = (r.distance_m - dist_m).abs() * 100.0;
                        if which == 0 {
                            edge_errs.push(err_cm);
                        } else {
                            peak_errs.push(err_cm);
                        }
                    }
                }
            }
            let median = |v: &mut Vec<f64>| -> f64 {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v.get(v.len() / 2).copied().unwrap_or(f64::NAN)
            };
            t2.row(vec![
                format!("{channel}"),
                format!("{dist_m:.0} m"),
                format!("{:.0}", median(&mut edge_errs)),
                format!("{:.0}", median(&mut peak_errs)),
            ]);
        }
    }
    println!("two-way ranging through multipath (100 SNR, 40 realizations):\n{t2}");
    println!(
        "expected shape: LOS accuracy reaches centimetres at high SNR (the\n\
         500 MHz bandwidth's promise); through multipath the naive strongest-\n\
         peak ranger is biased late by metres (it locks onto echoes) while\n\
         the leading-edge detector stays within tens of centimetres — the\n\
         'precise locationing' the abstract claims, and why UWB does it."
    );
}
