//! E2 — FCC spectral-mask compliance of the gen2 transmitter.
//!
//! Paper §1: transmissions are limited to −41.3 dBm/MHz EIRP. For each of
//! the 14 channels we upconvert a modulated burst, scale it to the maximum
//! compliant power, and report the margin across the whole mask (including
//! the GPS notch at 0.96–1.61 GHz).

use uwb_bench::banner;
use uwb_phy::bandplan::Channel;
use uwb_phy::{Gen2Config, Gen2Transmitter};
use uwb_platform::mask::{check_mask, fcc_indoor_mask, scale_to_mask};
use uwb_platform::report::Table;
use uwb_rf::TxChain;
use uwb_sim::time::SampleRate;

fn main() {
    println!(
        "{}",
        banner("E2", "FCC −41.3 dBm/MHz mask compliance", "§1 + §3 band plan")
    );

    // Synthesize the baseband directly at the passband simulation rate so
    // upconversion is sample-exact.
    let fs = SampleRate::new(32e9);
    let mask = fcc_indoor_mask();
    let cfg = Gen2Config {
        sample_rate: fs,
        preamble_repeats: 1,
        ..Gen2Config::nominal_100mbps()
    };
    let tx = Gen2Transmitter::new(cfg.clone()).expect("config");
    let burst = tx.transmit_packet(&[0xA5; 16]).expect("payload");

    let mut table = Table::new(vec![
        "channel",
        "center",
        "peak density (dBm/MHz)",
        "worst margin (dB)",
        "worst at",
        "compliant",
    ]);

    let mut all_ok = true;
    for ch in Channel::all() {
        let chain = TxChain::new(ch.center(), 1.0);
        let passband = chain.transmit(&burst.samples, fs);
        // Scale each channel's burst to just meet the in-band ceiling.
        let (scaled, _) = scale_to_mask(&passband, fs, &mask, 1.0, -41.3 - 0.5);
        let report = check_mask(&scaled, fs, &mask, 1.0);
        all_ok &= report.compliant;
        table.row(vec![
            format!("{}", ch.index()),
            format!("{:.3} GHz", ch.center().as_ghz()),
            format!("{:.1}", report.peak_density_dbm_per_mhz),
            format!("{:+.1}", report.worst_margin_db),
            format!("{:.2} GHz", report.worst_frequency_hz / 1e9),
            if report.compliant { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("\n{table}");
    println!(
        "paper: all 14 channels operate at the −41.3 dBm/MHz ceiling.\n\
         measured: every channel {} the mask when scaled to the ceiling.",
        if all_ok { "meets" } else { "VIOLATES" }
    );
    println!("shape check: {}", if all_ok { "PASS" } else { "FAIL" });
}
