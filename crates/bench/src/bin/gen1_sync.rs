//! E3b — gen1 packet synchronization in under 70 µs (paper §2).
//!
//! Sweeps the hardware parallelization of the sync engine and reports the
//! modeled search time, plus a Monte-Carlo check that the lock is correct
//! at the operating SNR.

use uwb_adc::InterleaveMismatch;
use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_gen1::{Gen1Config, Gen1Receiver, Gen1Transmitter, Gen1Sync};
use uwb_platform::report::Table;
use uwb_sim::awgn::add_awgn_real;
use uwb_sim::Rand;

fn main() {
    println!(
        "{}",
        banner("E3b", "packet synchronization < 70 µs", "§2 / Fig. 1")
    );

    // --- Timing model vs parallelization ---
    let mut table = Table::new(vec![
        "parallel correlators",
        "phases",
        "dwells",
        "search time (µs)",
        "< 70 µs",
    ]);
    for p in [1usize, 16, 64, 128, 256, 512, 1024] {
        let cfg = Gen1Config {
            sync_parallelism: p,
            ..Gen1Config::demonstrated_193kbps()
        };
        let phases = cfg.preamble_period_samples();
        let t = cfg.sync_time_us();
        table.row(vec![
            p.to_string(),
            phases.to_string(),
            phases.div_ceil(p).to_string(),
            format!("{t:.1}"),
            if t < 70.0 { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("\n{table}");

    // --- Monte-Carlo lock accuracy at the demonstrated point ---
    let cfg = Gen1Config::demonstrated_193kbps();
    let tx = Gen1Transmitter::new(cfg.clone());
    let rx = Gen1Receiver::new(cfg.clone(), InterleaveMismatch::typical(), EXPERIMENT_SEED);
    let sync = Gen1Sync::new(tx.preamble_template(), cfg.clone());
    let mut rng = Rand::new(EXPERIMENT_SEED);
    let trials = 40;
    let mut locks = 0;
    let mut exact = 0;
    let mut times = Vec::new();
    for _ in 0..trials {
        let bits: Vec<bool> = (0..4).map(|_| rng.bit()).collect();
        let burst = tx.transmit(&bits);
        let p = uwb_dsp::complex::mean_power_real(&burst.samples);
        let noisy = add_awgn_real(&burst.samples, 4.0 * p, &mut rng);
        let digitized = rx.digitize(&noisy);
        if let Some(r) = sync.acquire(&digitized) {
            locks += 1;
            times.push(r.search_time_us);
            if r.offset.abs_diff(burst.slot0_start) <= 1 {
                exact += 1;
            }
        }
    }
    let mean_t = times.iter().sum::<f64>() / times.len().max(1) as f64;
    println!(
        "Monte-Carlo at -6 dB per-sample SNR: {locks}/{trials} locks, {exact}/{locks} \
         on the exact phase, modeled search time {mean_t:.1} µs"
    );
    println!(
        "paper: \"packet synchronization is obtained in less than 70 µs\".\n\
         shape check: {}",
        if mean_t < 70.0 && locks == trials {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
