//! E5 — the gen2 100 Mbps direct-conversion link over multipath
//! (paper §3, Fig. 3).
//!
//! BER vs Eb/N0 waterfalls in AWGN and CM1/CM3 channels, with the
//! RAKE+channel-estimation receiver against a single-finger matched-filter
//! baseline. Expected shape: the RAKE's margin over the single finger grows
//! with delay spread, and AWGN tracks the BPSK theory curve.

use std::time::Duration;
use uwb_bench::{banner, trace_arg, write_trace, EXPERIMENT_SEED};
use uwb_phy::Gen2Config;
use uwb_platform::link::{run_ber_fast_streamed, BerRun, LinkScenario};
use uwb_platform::metrics::bpsk_awgn_ber;
use uwb_platform::report::{format_rate, stage_table, Table};
use uwb_sim::montecarlo::resolve_threads;
use uwb_sim::sv_channel::ChannelModel;

/// `errors/total = rate`, with a trailing `*` when the run exhausted its
/// trial budget before reaching the error target or bit budget.
fn format_cell(run: &BerRun) -> String {
    let mut s = format_rate(run.errors, run.total);
    if run.stop.truncated() {
        s.push('*');
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    println!(
        "{}",
        banner("E5", "gen2 100 Mbps link: BER vs Eb/N0, RAKE vs 1-finger", "§3 / Fig. 3")
    );

    let grid = [2.0, 4.0, 6.0, 8.0, 10.0];
    let target_errors = 60;
    let max_bits = 150_000;

    let rake_cfg = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let single_cfg = Gen2Config {
        rake_fingers: 1,
        ..rake_cfg.clone()
    };
    let mlse_cfg = Gen2Config {
        mlse_taps: 3,
        ..rake_cfg.clone()
    };

    let mut total_trials = 0u64;
    let mut total_wall = Duration::ZERO;
    let mut telemetry = uwb_obs::Telemetry::default();
    for (label, channel) in [
        ("AWGN", ChannelModel::Awgn),
        ("CM1 (LOS, ~5 ns rms)", ChannelModel::Cm1),
        ("CM3 (NLOS, ~14 ns rms)", ChannelModel::Cm3),
    ] {
        let mut table = Table::new(vec![
            "Eb/N0 (dB)",
            "BPSK theory",
            "RAKE-8 + 4-bit est.",
            "RAKE-8 + MLSE-3",
            "1-finger baseline",
        ]);
        // Batched stage-sweep runner (`UWB_BATCH` wide): bit-identical to
        // the unbatched fast runner on AWGN; multipath points use the
        // streamed convolution, which agrees to numerical precision (see
        // EXPERIMENTS.md for the value shift at the E5 re-baseline).
        for &ebn0 in &grid {
            let rake = run_ber_fast_streamed(
                &LinkScenario {
                    channel,
                    ..LinkScenario::awgn(rake_cfg.clone(), ebn0, EXPERIMENT_SEED)
                },
                32,
                target_errors,
                max_bits,
            );
            let mlse = run_ber_fast_streamed(
                &LinkScenario {
                    channel,
                    ..LinkScenario::awgn(mlse_cfg.clone(), ebn0, EXPERIMENT_SEED)
                },
                32,
                target_errors,
                max_bits,
            );
            let single = run_ber_fast_streamed(
                &LinkScenario {
                    channel,
                    ..LinkScenario::awgn(single_cfg.clone(), ebn0, EXPERIMENT_SEED + 1)
                },
                32,
                target_errors,
                max_bits,
            );
            for run in [&rake, &mlse, &single] {
                total_trials += run.stats.trials;
                total_wall += run.stats.wall;
                telemetry.merge(&run.stats.telemetry);
            }
            table.row(vec![
                format!("{ebn0:.0}"),
                format!("{:.2e}", bpsk_awgn_ber(ebn0)),
                format_cell(&rake),
                format_cell(&mlse),
                format_cell(&single),
            ]);
        }
        println!("\nchannel: {label}\n{table}");
    }

    // --- FEC: coded vs uncoded at equal Eb per *information* bit --------
    // The AWGN calibration divides the frame energy by the number of
    // information bits, so the rate-1/2 coded link pays its 3 dB rate
    // penalty inside the same Eb/N0 axis — what remains is pure coding
    // gain. K=7 (171,133) soft-decision Viterbi should open a widening gap
    // below ~1e-2, with K=3 (7,5) in between.
    let uncoded_cfg = rake_cfg.clone();
    let k3_cfg = Gen2Config {
        fec: Some(uwb_phy::fec::ConvCode::k3()),
        ..rake_cfg.clone()
    };
    let k7_cfg = Gen2Config {
        fec: Some(uwb_phy::fec::ConvCode::k7()),
        ..rake_cfg.clone()
    };
    let mut fec_table = Table::new(vec![
        "Eb/N0 (dB)",
        "uncoded 100 Mbps",
        "K=3 (7,5) 50 Mbps",
        "K=7 (171,133) 50 Mbps",
    ]);
    for &ebn0 in &[2.0, 3.0, 4.0, 5.0, 6.0] {
        let mut cells = vec![format!("{ebn0:.0}")];
        for cfg in [&uncoded_cfg, &k3_cfg, &k7_cfg] {
            let run = run_ber_fast_streamed(
                &LinkScenario::awgn(cfg.clone(), ebn0, EXPERIMENT_SEED),
                32,
                target_errors,
                max_bits,
            );
            total_trials += run.stats.trials;
            total_wall += run.stats.wall;
            telemetry.merge(&run.stats.telemetry);
            cells.push(format_cell(&run));
        }
        fec_table.row(cells);
    }
    println!(
        "\nconvolutional coding gain (AWGN, soft-decision Viterbi, \
         RAKE-8 + 4-bit est.):\n{fec_table}"
    );

    // Guarded rate: a sub-microsecond aggregate wall time (possible when every
    // point is cached or trivially small) renders as "n/a" instead of a
    // nonsense figure from a near-zero denominator.
    let tps = if total_wall.as_secs_f64() < 1e-6 {
        "n/a trials/s".to_string()
    } else {
        format!("{:.0} trials/s", total_trials as f64 / total_wall.as_secs_f64())
    };
    println!(
        "\nengine: {total_trials} packet trials in {:.2} s on {} thread(s) \
         ({tps}); '*' marks runs truncated by the trial budget",
        total_wall.as_secs_f64(),
        resolve_threads(None),
    );

    // Per-stage profile aggregated over every BER point (uwb-telemetry-v2).
    let profile = stage_table(&telemetry);
    if !profile.is_empty() {
        println!("\nstage profile ({total_trials} trials, all points merged):");
        print!("{profile}");
    }
    // Worst trials across every point (seeds feed `smoke --replay-seed`,
    // though replaying a non-smoke scenario needs the matching config).
    if !telemetry.worst.is_empty() {
        print!("\n{}", uwb_obs::recorder::render_report(&telemetry.worst));
    }
    // Optional span-timeline export aggregated over every BER point.
    if let Some(path) = trace_arg(&args) {
        if let Err(e) = write_trace(&path, &telemetry) {
            eprintln!("--trace {path}: {e}");
            std::process::exit(1);
        }
    }

    println!(
        "expected shape (paper): the programmable RAKE + 4-bit channel estimate\n\
         recovers the multipath energy; a single finger loses a growing fraction\n\
         of the energy as delay spread rises from CM1 to CM3. Once the spread\n\
         exceeds the 10 ns symbol, symbol-rate ISI raises the RAKE's floor and\n\
         the Viterbi (MLSE) demodulator recovers it — the paper's §1 claim that\n\
         \"the ISI due to multipath can be addressed with a Viterbi demodulator\"."
    );
}
