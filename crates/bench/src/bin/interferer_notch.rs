//! E8 — interferer detection, frequency estimation, and notch recovery
//! (paper §3: "the digital back end detects the presence of an interferer
//! and estimates its frequency that may be used in the front end notch
//! filter").
//!
//! Part 1: frequency-estimation accuracy of the spectral monitor across
//! interferer placements and powers. Part 2: link BER clean / jammed /
//! notched.

use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_phy::{Gen2Config, Gen2Transmitter, SpectralMonitor};
use uwb_platform::link::{run_ber_fast, LinkScenario};
use uwb_platform::report::{format_rate, stage_table, Table};
use uwb_sim::{Interferer, Rand};

fn main() {
    println!(
        "{}",
        banner("E8", "spectral monitoring + tunable notch", "§3 / Fig. 3")
    );

    let cfg = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let fs = cfg.sample_rate.as_hz();

    // --- Part 1: frequency estimation accuracy ---
    let tx = Gen2Transmitter::new(cfg.clone()).expect("config");
    let burst = tx.transmit_packet(&[0x3C; 128]).expect("payload");
    let p_sig = uwb_dsp::complex::mean_power(&burst.samples);
    let monitor = SpectralMonitor::new();
    let mut rng = Rand::new(EXPERIMENT_SEED);

    let mut t1 = Table::new(vec![
        "interferer offset (MHz)",
        "I/S (dB)",
        "detected",
        "estimate (MHz)",
        "error (kHz)",
    ]);
    for &(f_mhz, isr_db) in &[
        (-210.0, 10.0),
        (-80.0, 10.0),
        (40.0, 10.0),
        (150.0, 10.0),
        (150.0, 20.0),
        (150.0, 3.0),
    ] {
        let intf = Interferer::cw(f_mhz * 1e6, p_sig * uwb_dsp::math::db_to_pow(isr_db));
        let jammed = intf.add_to(&burst.samples, fs, &mut rng);
        let report = monitor.analyze(&jammed, fs);
        t1.row(vec![
            format!("{f_mhz:+.0}"),
            format!("{isr_db:.0}"),
            if report.detected { "yes" } else { "no" }.to_string(),
            format!("{:+.2}", report.frequency.as_mhz()),
            format!("{:.0}", (report.frequency.as_hz() - f_mhz * 1e6).abs() / 1e3),
        ]);
    }
    println!("\nfrequency estimation (Welch + parabolic interpolation):\n{t1}");

    // --- Part 2: BER clean / jammed / notched ---
    let ebn0 = 10.0;
    let intf = Interferer::cw(150e6, p_sig * 100.0); // 20 dB above signal
    let clean = LinkScenario::awgn(cfg.clone(), ebn0, EXPERIMENT_SEED);
    let jammed = LinkScenario {
        interferer: Some(intf.clone()),
        ..clean.clone()
    };
    let notched = LinkScenario {
        notch_enabled: true,
        ..jammed.clone()
    };
    let mut t2 = Table::new(vec!["condition", "BER", "stop", "engine"]);
    let c_clean = run_ber_fast(&clean, 32, 60, 120_000);
    let c_jam = run_ber_fast(&jammed, 32, 60, 120_000);
    let c_notch = run_ber_fast(&notched, 32, 60, 120_000);
    for (label, c) in [
        ("clean", &c_clean),
        ("CW interferer (+20 dB)", &c_jam),
        ("interferer + monitor + notch", &c_notch),
    ] {
        t2.row(vec![
            label.to_string(),
            format_rate(c.errors, c.total),
            c.stop.to_string(),
            c.stats.summary(),
        ]);
    }
    println!("link impact at Eb/N0 = {ebn0} dB:\n{t2}");
    if c_clean.stop.truncated() || c_jam.stop.truncated() || c_notch.stop.truncated() {
        println!("warning: at least one run was truncated by the trial budget");
    }

    // Per-stage profile over the three link conditions (uwb-obs stage timers).
    // With the notch active the `notch` stage and `notch_retune` events appear;
    // the clean/jammed runs contribute none.
    let mut telemetry = uwb_obs::Telemetry::default();
    for c in [&c_clean, &c_jam, &c_notch] {
        telemetry.merge(&c.stats.telemetry);
    }
    let profile = stage_table(&telemetry);
    if !profile.is_empty() {
        println!("\nstage profile (clean + jammed + notched merged):");
        print!("{profile}");
    }

    let ok = c_jam.rate() > 5.0 * c_clean.rate().max(1e-5)
        && c_notch.rate() < c_jam.rate() / 3.0;
    println!(
        "expected shape: interferer degrades BER by an order of magnitude;\n\
         the estimated-frequency notch recovers most of it -> {}",
        if ok { "PASS" } else { "FAIL" }
    );
}
