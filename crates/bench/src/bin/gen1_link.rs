//! E3a — the gen1 193 kbps wireless link (paper §2, Fig. 1).
//!
//! Runs the first-generation baseband transceiver (monocycles, 2 GSps 4-way
//! interleaved flash ADC) across an SNR sweep and reports the BER waterfall
//! at the demonstrated 193 kbps operating point.

use uwb_adc::InterleaveMismatch;
use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_gen1::{Gen1Config, Gen1Receiver, Gen1Transmitter};
use uwb_platform::metrics::ErrorCounter;
use uwb_platform::report::{format_rate, Table};
use uwb_sim::awgn::add_awgn_real;
use uwb_sim::Rand;

fn main() {
    println!(
        "{}",
        banner("E3a", "gen1 baseband link at 193 kbps", "§2 / Fig. 1")
    );

    // The real spreading factor (162) is kept; bits per burst reduced so the
    // sweep finishes quickly.
    let cfg = Gen1Config::demonstrated_193kbps();
    println!(
        "\noperating point: PRF {:.2} MHz, {} pulses/bit -> {:.1} kbps, {}-bit 4-way flash @ {:.1} GSps",
        cfg.prf().as_mhz(),
        cfg.pulses_per_bit,
        cfg.bit_rate() / 1e3,
        cfg.adc_bits,
        cfg.sample_rate.as_gsps()
    );

    let tx = Gen1Transmitter::new(cfg.clone());
    let rx = Gen1Receiver::new(cfg.clone(), InterleaveMismatch::typical(), EXPERIMENT_SEED);

    let mut table = Table::new(vec![
        "Eb/N0 (dB)",
        "bits",
        "errors",
        "BER",
        "sync ok",
    ]);

    // Eb = pulses_per_bit unit-energy pulses; for real AWGN the per-sample
    // noise power is N0/2, so noise_p = Eb / (2 * 10^(Eb/N0 / 10)).
    let eb = cfg.pulses_per_bit as f64;
    for ebn0_db in [5.0f64, 7.0, 9.0, 11.0, 13.0] {
        let mut counter = ErrorCounter::new();
        let mut syncs = 0usize;
        let mut attempts = 0usize;
        let mut rng = Rand::new(EXPERIMENT_SEED ^ (ebn0_db.to_bits()));
        while counter.errors < 30 && counter.total < 2_000 && attempts < 120 {
            attempts += 1;
            let bits: Vec<bool> = (0..24).map(|_| rng.bit()).collect();
            let burst = tx.transmit(&bits);
            let noise_p = eb / (2.0 * uwb_dsp::math::db_to_pow(ebn0_db));
            let noisy = add_awgn_real(&burst.samples, noise_p, &mut rng);
            if let Some(decoded) = rx.receive(&noisy, bits.len()) {
                syncs += 1;
                counter.add_bits(&bits, &decoded.bits);
            }
        }
        table.row(vec![
            format!("{ebn0_db:.0}"),
            counter.total.to_string(),
            counter.errors.to_string(),
            format_rate(counter.errors, counter.total),
            format!("{syncs}/{attempts}"),
        ]);
    }
    println!("\n{table}");
    println!(
        "paper: \"a wireless link of 193 kbps was demonstrated\".\n\
         measured: the {:.1} kbps link's BER falls along the BPSK waterfall\n\
         (162x despreading supplies the Eb) and the CFAR sync engine locks on\n\
         every attempt across the waterfall region.",
        cfg.bit_rate() / 1e3
    );
}
