//! E10 — receiver power breakdown (paper §1: "more than half of the system
//! power being dissipated in the digital back end and the ADC").
//!
//! Prints the block-level breakdown for both generations and sweeps the
//! data rate to show the fraction stays above one half.

use uwb_bench::banner;
use uwb_gen1::{Gen1Config, Gen1PowerModel};
use uwb_phy::power::{PowerClass, PowerModel};
use uwb_phy::Gen2Config;
use uwb_platform::report::Table;

fn print_breakdown(title: &str, bd: &uwb_phy::PowerBreakdown) {
    let mut table = Table::new(vec!["block", "class", "mW", "% of total"]);
    let total = bd.total_mw();
    for b in &bd.blocks {
        let class = match b.class {
            PowerClass::Analog => "analog",
            PowerClass::Adc => "ADC",
            PowerClass::Digital => "digital",
        };
        table.row(vec![
            b.name.clone(),
            class.to_string(),
            format!("{:.2}", b.mw),
            format!("{:.1}", 100.0 * b.mw / total),
        ]);
    }
    table.row(vec![
        "TOTAL".to_string(),
        String::new(),
        format!("{total:.2}"),
        "100.0".to_string(),
    ]);
    println!("\n{title}:\n{table}");
    println!(
        "digital back end + ADC fraction: {:.1} %  (paper: > 50 %)",
        100.0 * bd.digital_and_adc_fraction()
    );
}

fn main() {
    println!(
        "{}",
        banner("E10", "power: back end + ADC > half of the system", "§1")
    );

    // Gen2 at the nominal 100 Mbps point.
    let model = PowerModel::cmos180();
    let gen2 = model.breakdown(&Gen2Config::nominal_100mbps());
    print_breakdown("gen2 receiver @ 100 Mbps (0.18 µm model)", &gen2);

    // Gen1 at the demonstrated point.
    let gen1 = Gen1PowerModel::cmos180().breakdown(&Gen1Config::demonstrated_193kbps());
    print_breakdown("gen1 receiver @ 193 kbps (0.18 µm model)", &gen1);

    // Fraction vs data rate (spreading sweep).
    let mut table = Table::new(vec![
        "pulses/bit",
        "bit rate (Mbps)",
        "total (mW)",
        "digital+ADC (%)",
    ]);
    let mut all_above_half = true;
    for ppb in [1usize, 2, 4, 8, 16] {
        let cfg = Gen2Config {
            pulses_per_bit: ppb,
            ..Gen2Config::nominal_100mbps()
        };
        let bd = model.breakdown(&cfg);
        let frac = bd.digital_and_adc_fraction();
        all_above_half &= frac > 0.5;
        table.row(vec![
            ppb.to_string(),
            format!("{:.1}", cfg.bit_rate() / 1e6),
            format!("{:.1}", bd.total_mw()),
            format!("{:.1}", 100.0 * frac),
        ]);
    }
    println!("\nfraction vs data rate (gen2):\n{table}");
    println!(
        "shape check (fraction > 50 % at every rate, both generations): {}",
        if all_above_half
            && gen2.digital_and_adc_fraction() > 0.5
            && gen1.digital_and_adc_fraction() > 0.5
        {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
