//! E6 — channel-estimate precision: why 4 bits is the design point
//! (paper §3: "estimated with a precision of up to four bits").
//!
//! Sweeps the channel-estimate quantization from 1 to 8 bits (plus
//! unquantized) on a CM3 link and reports BER and estimator NMSE. Expected
//! shape: 4 bits is within a whisker of unquantized; 1–2 bits clearly worse.

use uwb_bench::{banner, EXPERIMENT_SEED};
use uwb_phy::chanest::ChannelEstimate;
use uwb_phy::Gen2Config;
use uwb_platform::link::{run_ber_fast, LinkScenario};
use uwb_platform::report::{format_rate, Table};
use uwb_sim::sv_channel::{ChannelModel, ChannelRealization};
use uwb_sim::{Rand, SampleRate};

fn main() {
    println!(
        "{}",
        banner("E6", "RAKE BER vs channel-estimate precision", "§3")
    );

    // --- NMSE of quantized estimates over a CM3 ensemble ---
    let mut rng = Rand::new(EXPERIMENT_SEED);
    let fs = SampleRate::from_gsps(1.0);
    let mut nmse = [0.0f64; 9]; // index = bits (0 unused)
    let ensemble = 40;
    for _ in 0..ensemble {
        let ch = ChannelRealization::generate(ChannelModel::Cm3, &mut rng);
        let taps = ch.discretize(fs);
        let est = ChannelEstimate::new(taps);
        for bits in 1..=8u32 {
            nmse[bits as usize] += est.quantized(bits).nmse(&est) / ensemble as f64;
        }
    }

    // --- Link BER vs estimate bits ---
    let ebn0 = 8.0;
    let mut table = Table::new(vec!["estimate bits", "estimator NMSE", "BER on CM3"]);
    let mut rows = Vec::new();
    for bits in [1u32, 2, 3, 4, 6] {
        let cfg = Gen2Config {
            chanest_bits: Some(bits),
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        };
        let c = run_ber_fast(
            &LinkScenario {
                channel: ChannelModel::Cm3,
                ..LinkScenario::awgn(cfg, ebn0, EXPERIMENT_SEED)
            },
            32,
            60,
            120_000,
        );
        rows.push((bits, c.rate()));
        table.row(vec![
            bits.to_string(),
            format!("{:.2e}", nmse[bits as usize]),
            format_rate(c.errors, c.total),
        ]);
    }
    // Unquantized reference.
    let cfg_float = Gen2Config {
        chanest_bits: None,
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let float_ber = run_ber_fast(
        &LinkScenario {
            channel: ChannelModel::Cm3,
            ..LinkScenario::awgn(cfg_float, ebn0, EXPERIMENT_SEED)
        },
        32,
        60,
        120_000,
    );
    table.row(vec![
        "float".to_string(),
        "0".to_string(),
        format_rate(float_ber.errors, float_ber.total),
    ]);
    println!("\nCM3 channel, Eb/N0 = {ebn0} dB, RAKE-8:\n{table}");

    let four_bit = rows.iter().find(|(b, _)| *b == 4).unwrap().1;
    let one_bit = rows[0].1;
    let ok = four_bit < 2.5 * float_ber.rate().max(1e-4)
        && one_bit > four_bit;
    println!(
        "paper design point: 4-bit precision.\n\
         measured: 4-bit BER within ~2x of the unquantized estimator while\n\
         1-bit is clearly worse -> shape check: {}",
        if ok { "PASS" } else { "FAIL" }
    );
}
