//! Shared plumbing for the *tracked* benchmark binaries (`dspbench`,
//! `stream_link`): timing, the flat `"name": number` JSON convention, and
//! the baseline regression checker behind `scripts/check.sh bench` /
//! `scripts/check.sh stream`.
//!
//! Every tracked report uses a flat schema on purpose — each metric is a
//! single `"name": number` pair at some nesting depth, names are globally
//! unique within a report, and the checker needs no real JSON parser (the
//! repo vendors no serde). Binaries declare how each metric is judged via
//! a [`MetricPolicy`] lookup instead of hard-coding key lists in the
//! checker.

use std::process::ExitCode;
use std::time::Instant;

/// Times `f` for `iters` calls, repeated `reps` times; returns the *best*
/// per-call time in microseconds (minimum is the standard noise-robust
/// statistic for micro-benchmarks: all noise is additive).
///
/// The first call runs outside the timed region as warm-up, populating
/// caches (FFT plans, scratch pools, allocator high-water marks).
pub fn time_us<F: FnMut()>(iters: usize, reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters.max(1) {
            f();
        }
        let dt = t0.elapsed().as_secs_f64() * 1e6 / iters.max(1) as f64;
        best = best.min(dt);
    }
    best
}

/// How the regression checker treats one metric of a tracked report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricPolicy {
    /// Smaller is better; a rise beyond tolerance fails the check.
    Gate,
    /// Bigger is better, but too load-sensitive to gate CI on — a drop
    /// beyond tolerance is reported as `slower (info)` only.
    InfoHigherBetter,
    /// Smaller is better, informational only (never fails the check).
    InfoLowerBetter,
    /// Not a metric (schema markers, configuration echoes, profiles).
    Skip,
}

/// Pulls every `"name": number` pair out of a flat-schema report — no
/// general JSON parser needed (or wanted: the repo vendors no serde).
pub fn parse_pairs(json: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let Some(endq) = json[start..].find('"') else {
                break;
            };
            let key = &json[start..start + endq];
            i = start + endq + 1;
            // Skip whitespace, expect ':'.
            while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b':' {
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                    i += 1;
                }
                let num_start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || matches!(bytes[i], b'.' | b'-' | b'e' | b'E' | b'+'))
                {
                    i += 1;
                }
                if let Ok(v) = json[num_start..i].parse::<f64>() {
                    pairs.push((key.to_string(), v));
                }
            }
        } else {
            i += 1;
        }
    }
    pairs
}

/// Compares a freshly rendered report against a committed baseline,
/// printing a metric table and returning the process exit code.
///
/// `policy` maps each metric name to its [`MetricPolicy`]; `tool` labels
/// diagnostics. Only [`MetricPolicy::Gate`] metrics can fail the check:
/// they fail when they rise more than `tol_pct` percent above the
/// baseline. A gated metric missing from the current run also fails.
pub fn check_against(
    tool: &str,
    baseline_path: &str,
    current: &str,
    tol_pct: f64,
    policy: &dyn Fn(&str) -> MetricPolicy,
) -> ExitCode {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{tool}: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base = parse_pairs(&baseline);
    let curr = parse_pairs(current);
    let mut failed = false;
    println!(
        "{:<34} {:>12} {:>12} {:>9}",
        "metric", "baseline", "current", "delta"
    );
    for (key, base_v) in &base {
        let pol = policy(key);
        if pol == MetricPolicy::Skip {
            continue;
        }
        let Some((_, curr_v)) = curr.iter().find(|(k, _)| k == key) else {
            eprintln!("{tool}: metric {key} missing from current run");
            failed = true;
            continue;
        };
        // Positive delta always means "got worse" for the metric's polarity.
        let scale = base_v.abs().max(1e-12);
        let delta_pct = match pol {
            MetricPolicy::InfoHigherBetter => (base_v - curr_v) / scale * 100.0,
            _ => (curr_v - base_v) / scale * 100.0,
        };
        let verdict = if delta_pct > tol_pct {
            match pol {
                MetricPolicy::Gate => {
                    failed = true;
                    "REGRESSED"
                }
                MetricPolicy::InfoHigherBetter => "slower (info)",
                MetricPolicy::InfoLowerBetter => "worse (info)",
                MetricPolicy::Skip => unreachable!(),
            }
        } else if delta_pct < -tol_pct {
            // Faster/better beyond the tolerance band: candidate for re-pinning.
            "improved"
        } else {
            "ok"
        };
        println!("{key:<34} {base_v:>12.3} {curr_v:>12.3} {delta_pct:>+8.1}% {verdict}");
    }
    if failed {
        eprintln!("{tool}: gated metric regression beyond {tol_pct}% tolerance");
        ExitCode::FAILURE
    } else {
        println!("{tool}: all gated metrics within {tol_pct}% of baseline");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "uwb-test-v1",
  "kernels_us": {
    "alpha": 10.0,
    "beta": 2.5e1
  },
  "throughput_tps": { "tps": 100.0 },
  "overhead_pct": -1.5
}"#;

    fn policy(key: &str) -> MetricPolicy {
        match key {
            "schema" => MetricPolicy::Skip,
            "tps" => MetricPolicy::InfoHigherBetter,
            "overhead_pct" => MetricPolicy::InfoLowerBetter,
            _ => MetricPolicy::Gate,
        }
    }

    #[test]
    fn parse_pairs_extracts_flat_metrics() {
        let pairs = parse_pairs(SAMPLE);
        let get = |k: &str| pairs.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("alpha"), Some(10.0));
        assert_eq!(get("beta"), Some(25.0));
        assert_eq!(get("tps"), Some(100.0));
        assert_eq!(get("overhead_pct"), Some(-1.5));
        // The schema string is not a number and never parses as a metric.
        assert_eq!(get("schema"), None);
    }

    #[test]
    fn check_passes_identical_report() {
        let dir = std::env::temp_dir().join("uwb_tracked_test_pass");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.json");
        std::fs::write(&path, SAMPLE).unwrap();
        let code = check_against("test", path.to_str().unwrap(), SAMPLE, 15.0, &policy);
        assert_eq!(code, ExitCode::SUCCESS);
    }

    #[test]
    fn check_fails_gated_regression_but_not_info() {
        let dir = std::env::temp_dir().join("uwb_tracked_test_fail");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.json");
        std::fs::write(&path, SAMPLE).unwrap();
        // tps halves (info only) and overhead worsens (info only): pass.
        let slower = SAMPLE
            .replace("\"tps\": 100.0", "\"tps\": 50.0")
            .replace("\"overhead_pct\": -1.5", "\"overhead_pct\": 40.0");
        let code = check_against("test", path.to_str().unwrap(), &slower, 15.0, &policy);
        assert_eq!(code, ExitCode::SUCCESS);
        // A gated kernel rising 50% fails.
        let regressed = SAMPLE.replace("\"alpha\": 10.0", "\"alpha\": 15.0");
        let code = check_against("test", path.to_str().unwrap(), &regressed, 15.0, &policy);
        assert_eq!(code, ExitCode::FAILURE);
        // A gated kernel *improving* never fails.
        let improved = SAMPLE.replace("\"alpha\": 10.0", "\"alpha\": 2.0");
        let code = check_against("test", path.to_str().unwrap(), &improved, 15.0, &policy);
        assert_eq!(code, ExitCode::SUCCESS);
    }

    #[test]
    fn time_us_returns_finite_positive() {
        let mut x = 0u64;
        let t = time_us(10, 2, || {
            x = x.wrapping_add(1);
        });
        assert!(t.is_finite() && t >= 0.0);
        assert!(x > 0);
    }
}
