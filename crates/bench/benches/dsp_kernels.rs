//! Criterion benches for the DSP substrate kernels (FFT, FIR, PSD,
//! correlation) — the arithmetic that dominates the digital back end's
//! activity and therefore its power (paper §1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uwb_dsp::correlation::{cross_correlate, cross_correlate_fft};
use uwb_dsp::{Complex, Fft, FirFilter, Window};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 1024, 4096] {
        let fft = Fft::new(n);
        let x: Vec<Complex> = (0..n).map(|i| Complex::cis(0.1 * i as f64)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| fft.forward(std::hint::black_box(x)))
        });
    }
    group.finish();
}

fn bench_fir(c: &mut Criterion) {
    let mut group = c.benchmark_group("fir_filter");
    let fir = FirFilter::lowpass(63, 0.2, Window::Hamming);
    let x: Vec<Complex> = (0..4096).map(|i| Complex::cis(0.07 * i as f64)).collect();
    group.throughput(Throughput::Elements(4096));
    group.bench_function("63tap_4096", |b| {
        b.iter(|| fir.filter_complex(std::hint::black_box(&x)))
    });
    group.finish();
}

fn bench_correlation(c: &mut Criterion) {
    let mut group = c.benchmark_group("correlation");
    let sig: Vec<Complex> = (0..8192).map(|i| Complex::cis(0.03 * i as f64)).collect();
    let tpl: Vec<Complex> = sig[100..356].to_vec();
    group.bench_function("direct_8192x256", |b| {
        b.iter(|| cross_correlate(std::hint::black_box(&sig), std::hint::black_box(&tpl)))
    });
    group.bench_function("fft_8192x256", |b| {
        b.iter(|| cross_correlate_fft(std::hint::black_box(&sig), std::hint::black_box(&tpl)))
    });
    group.finish();
}

fn bench_psd(c: &mut Criterion) {
    let mut group = c.benchmark_group("welch_psd");
    let sig: Vec<Complex> = (0..16_384).map(|i| Complex::cis(0.01 * i as f64)).collect();
    group.bench_function("16k_1024seg", |b| {
        b.iter(|| uwb_dsp::psd::welch(std::hint::black_box(&sig), 1e9, 1024, Window::Hann))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fft, bench_fir, bench_correlation, bench_psd
}
criterion_main!(benches);
