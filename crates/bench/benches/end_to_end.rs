//! End-to-end Criterion benches: whole gen2 packets (TX → channel → RX) and
//! the gen1 link, plus the ADC models at line rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uwb_adc::{InterleaveMismatch, InterleavedAdc, Quantizer, SarAdc};
use uwb_gen1::{Gen1Config, Gen1Receiver, Gen1Transmitter};
use uwb_phy::{Gen2Config, Gen2Receiver, Gen2Transmitter};
use uwb_sim::sv_channel::{ChannelModel, ChannelRealization};
use uwb_sim::Rand;

fn bench_gen2_packet(c: &mut Criterion) {
    let cfg = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let tx = Gen2Transmitter::new(cfg.clone()).unwrap();
    let rx = Gen2Receiver::new(cfg.clone()).unwrap();
    let payload = vec![0x5Au8; 32];

    c.bench_function("gen2_tx_32byte_packet", |b| {
        b.iter(|| tx.transmit_packet(std::hint::black_box(&payload)))
    });

    let burst = tx.transmit_packet(&payload).unwrap();
    let mut rng = Rand::new(1);
    let ch = ChannelRealization::generate(ChannelModel::Cm1, &mut rng);
    let through = ch.apply(&burst.samples, cfg.sample_rate);
    c.bench_function("gen2_rx_32byte_packet_cm1", |b| {
        b.iter(|| rx.receive_packet(std::hint::black_box(&through)).unwrap())
    });
}

fn bench_gen1_link(c: &mut Criterion) {
    let cfg = Gen1Config {
        pulses_per_bit: 8,
        ..Gen1Config::demonstrated_193kbps()
    };
    let tx = Gen1Transmitter::new(cfg.clone());
    let rx = Gen1Receiver::new(cfg, InterleaveMismatch::typical(), 2);
    let bits = vec![true, false, true, true, false, false, true, false];
    let burst = tx.transmit(&bits);
    c.bench_function("gen1_rx_8bits", |b| {
        b.iter(|| rx.receive(std::hint::black_box(&burst.samples), 8).unwrap())
    });
}

fn bench_adc(c: &mut Criterion) {
    let mut group = c.benchmark_group("adc_100k_samples");
    group.throughput(Throughput::Elements(100_000));
    let x: Vec<f64> = (0..100_000).map(|i| (i as f64 * 0.01).sin() * 0.9).collect();

    for bits in [1u32, 4, 5] {
        let q = Quantizer::new(bits, 1.0);
        group.bench_with_input(
            BenchmarkId::new("ideal_quantizer", bits),
            &q,
            |b, q| b.iter(|| q.quantize_block(std::hint::black_box(&x))),
        );
    }

    let mut rng = Rand::new(3);
    let sar = SarAdc::with_mismatch(5, 1.0, 0.01, 0.0, &mut rng);
    group.bench_function("sar_5bit", |b| {
        let mut r = Rand::new(4);
        b.iter(|| sar.convert_block(std::hint::black_box(&x), &mut r))
    });

    let interleaved = InterleavedAdc::gen1(4, InterleaveMismatch::typical(), &mut rng);
    group.bench_function("interleaved_flash_4way", |b| {
        b.iter(|| interleaved.convert_block(std::hint::black_box(&x)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gen2_packet, bench_gen1_link, bench_adc
}
criterion_main!(benches);
