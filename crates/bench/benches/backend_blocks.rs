//! Criterion benches for the digital back end blocks of paper Fig. 3:
//! acquisition correlator bank, channel estimator, RAKE combining, Viterbi
//! decoding, MLSE, and the Saleh–Valenzuela channel generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uwb_dsp::Complex;
use uwb_phy::chanest::{estimate_cir, ChannelEstimate};
use uwb_phy::mlse::{apply_symbol_channel, MlseEqualizer};
use uwb_phy::{AcquisitionConfig, CoarseAcquisition, ConvCode, Gen2Config, Gen2Transmitter, RakeReceiver};
use uwb_sim::sv_channel::{ChannelModel, ChannelRealization};
use uwb_sim::Rand;

fn bench_acquisition(c: &mut Criterion) {
    let cfg = Gen2Config {
        preamble_repeats: 2,
        ..Gen2Config::nominal_100mbps()
    };
    let tx = Gen2Transmitter::new(cfg.clone()).unwrap();
    let burst = tx.transmit_packet(&[0u8; 16]).unwrap();
    let engine = CoarseAcquisition::new(
        tx.preamble_template(),
        AcquisitionConfig::with_clock(cfg.sample_rate.as_hz()),
    );
    let period = cfg.preamble_length() * cfg.samples_per_slot();
    c.bench_function("acquisition_full_period", |b| {
        b.iter(|| engine.acquire(std::hint::black_box(&burst.samples), period))
    });
}

fn bench_chanest(c: &mut Criterion) {
    let cfg = Gen2Config::nominal_100mbps();
    let tx = Gen2Transmitter::new(cfg.clone()).unwrap();
    let burst = tx.transmit_packet(&[0u8; 16]).unwrap();
    let template = tx.preamble_template();
    let period = cfg.preamble_length() * cfg.samples_per_slot();
    c.bench_function("channel_estimate_64tap_3periods", |b| {
        b.iter(|| {
            estimate_cir(
                std::hint::black_box(&burst.samples),
                &template,
                burst.slot0_center,
                64,
                3,
                period,
            )
        })
    });
}

fn bench_rake(c: &mut Criterion) {
    let mut rng = Rand::new(1);
    let taps: Vec<Complex> = (0..64)
        .map(|_| Complex::new(rng.gaussian(), rng.gaussian()) * 0.2)
        .collect();
    let est = ChannelEstimate::new(taps);
    let mf: Vec<Complex> = (0..100_000)
        .map(|i| Complex::cis(0.001 * i as f64))
        .collect();
    let mut group = c.benchmark_group("rake_combine_1000_symbols");
    for fingers in [1usize, 4, 8, 16] {
        let rake = RakeReceiver::from_estimate(&est, fingers);
        group.bench_with_input(BenchmarkId::from_parameter(fingers), &rake, |b, rake| {
            b.iter(|| rake.combine_stream(std::hint::black_box(&mf), 0, 10, 1000))
        });
    }
    group.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let mut group = c.benchmark_group("viterbi_decode_1000bits");
    let mut rng = Rand::new(2);
    let bits: Vec<bool> = (0..1000).map(|_| rng.bit()).collect();
    for code in [ConvCode::k3(), ConvCode::k7()] {
        let coded = code.encode(&bits);
        let soft: Vec<f64> = coded
            .iter()
            .map(|&b| if b { 1.0 } else { -1.0 } + 0.3 * rng.gaussian())
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("K{}", code.constraint_length)),
            &soft,
            |b, soft| b.iter(|| code.decode_soft(std::hint::black_box(soft))),
        );
    }
    group.finish();
}

fn bench_mlse(c: &mut Criterion) {
    let h = vec![
        Complex::new(1.0, 0.0),
        Complex::new(0.5, 0.1),
        Complex::new(-0.2, 0.2),
    ];
    let eq = MlseEqualizer::new(h.clone());
    let mut rng = Rand::new(3);
    let symbols: Vec<bool> = (0..1000).map(|_| rng.bit()).collect();
    let rx = apply_symbol_channel(&symbols, &h);
    c.bench_function("mlse_3tap_1000symbols", |b| {
        b.iter(|| eq.equalize(std::hint::black_box(&rx)))
    });
}

fn bench_sv_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sv_channel_generate");
    for model in [ChannelModel::Cm1, ChannelModel::Cm4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{model}")),
            &model,
            |b, &model| {
                let mut rng = Rand::new(4);
                b.iter(|| ChannelRealization::generate(model, &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_acquisition, bench_chanest, bench_rake, bench_viterbi, bench_mlse, bench_sv_channel
}
criterion_main!(benches);
