//! Property-based tests for environment-model invariants.

use proptest::prelude::*;
use uwb_sim::sv_channel::{ChannelModel, ChannelRealization, SvParams, Tap};
use uwb_sim::time::{Hertz, Picoseconds, SampleRate};
use uwb_sim::Rand;
use uwb_dsp::Complex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated channel realization has unit energy and sorted taps.
    #[test]
    fn channel_invariants(seed in any::<u64>()) {
        for model in [ChannelModel::Cm1, ChannelModel::Cm2, ChannelModel::Cm3, ChannelModel::Cm4] {
            let ch = ChannelRealization::generate(model, &mut Rand::new(seed));
            prop_assert!((ch.energy() - 1.0).abs() < 1e-9);
            for w in ch.taps().windows(2) {
                prop_assert!(w[0].delay_ns <= w[1].delay_ns);
            }
            prop_assert!(ch.rms_delay_spread_ns() >= 0.0);
            prop_assert!(ch.mean_excess_delay_ns() >= 0.0);
            prop_assert!(ch.max_excess_delay_ns() >= ch.mean_excess_delay_ns());
        }
    }

    /// Energy capture is monotone in finger count and reaches 1.
    #[test]
    fn energy_capture_monotone(seed in any::<u64>()) {
        let ch = ChannelRealization::generate(ChannelModel::Cm3, &mut Rand::new(seed));
        let mut prev = 0.0;
        for n in [1usize, 2, 4, 8, 16, 64, 100_000] {
            let e = ch.energy_capture(n);
            prop_assert!(e + 1e-12 >= prev);
            prop_assert!(e <= 1.0 + 1e-9);
            prev = e;
        }
        prop_assert!((ch.energy_capture(usize::MAX) - 1.0).abs() < 1e-9);
    }

    /// Custom SV parameters always yield valid realizations.
    #[test]
    fn custom_sv_params(
        cluster_rate in 0.01f64..1.0,
        ray_rate in 0.1f64..5.0,
        cluster_decay in 1.0f64..40.0,
        ray_decay in 0.5f64..20.0,
        seed in any::<u64>(),
    ) {
        let p = SvParams {
            cluster_rate,
            ray_rate,
            cluster_decay,
            ray_decay,
            fading_sigma_db: 3.4,
        };
        let ch = ChannelRealization::generate_sv(&p, &mut Rand::new(seed));
        prop_assert!((ch.energy() - 1.0).abs() < 1e-9);
        prop_assert!(!ch.taps().is_empty());
        prop_assert!(ch.taps().iter().all(|t| t.gain.is_finite()));
    }

    /// from_taps normalizes any non-degenerate tap set.
    #[test]
    fn from_taps_normalizes(gains in prop::collection::vec((0.01f64..10.0, -3.1f64..3.1, 0.0f64..100.0), 1..40)) {
        let taps: Vec<Tap> = gains
            .iter()
            .map(|&(r, phi, d)| Tap { delay_ns: d, gain: Complex::from_polar(r, phi) })
            .collect();
        let ch = ChannelRealization::from_taps(taps);
        prop_assert!((ch.energy() - 1.0).abs() < 1e-9);
    }

    /// AWGN power calibration holds for any requested power.
    #[test]
    fn awgn_power(power in 0.001f64..100.0, seed in any::<u64>()) {
        let mut rng = Rand::new(seed);
        let noise = uwb_sim::awgn::complex_noise(20_000, power, &mut rng);
        let p = uwb_dsp::complex::mean_power(&noise);
        prop_assert!((p - power).abs() / power < 0.1, "{p} vs {power}");
    }

    /// Time/frequency conversions are consistent.
    #[test]
    fn time_units(ns in 0.001f64..1e6) {
        let t = Picoseconds::from_nanos(ns);
        prop_assert!((t.as_ns() - ns).abs() / ns < 1e-12);
        prop_assert!((t.as_secs() * 1e12 - t.as_ps()).abs() < 1e-6 * t.as_ps().abs().max(1.0));
    }

    /// Frequency period inverse relationship.
    #[test]
    fn frequency_period(ghz in 0.001f64..100.0) {
        let f = Hertz::from_ghz(ghz);
        let t = f.period();
        prop_assert!((t.as_secs() * f.as_hz() - 1.0).abs() < 1e-9);
    }

    /// Sample-rate normalization round trip.
    #[test]
    fn normalization_round_trip(gsps in 0.1f64..100.0, frac in -0.5f64..0.5) {
        let fs = SampleRate::from_gsps(gsps);
        let f = fs.to_hz(frac);
        prop_assert!((fs.normalize(f) - frac).abs() < 1e-12);
    }

    /// Free-space path loss grows monotonically with distance and frequency.
    #[test]
    fn fspl_monotone(d1 in 0.1f64..100.0, scale in 1.01f64..10.0, ghz in 1.0f64..11.0) {
        use uwb_sim::pathloss::free_space_path_loss_db;
        let f = Hertz::from_ghz(ghz);
        prop_assert!(free_space_path_loss_db(d1 * scale, f) > free_space_path_loss_db(d1, f));
        let f2 = Hertz::from_ghz(ghz * scale);
        prop_assert!(free_space_path_loss_db(d1, f2) > free_space_path_loss_db(d1, f));
    }

    /// Interferer generators honour their power parameter.
    #[test]
    fn interferer_power(p in 0.01f64..50.0, f_mhz in -400.0f64..400.0, seed in any::<u64>()) {
        let intf = uwb_sim::Interferer::cw(f_mhz * 1e6, p);
        let sig = intf.generate(4096, 1e9, &mut Rand::new(seed));
        let measured = uwb_dsp::complex::mean_power(&sig);
        prop_assert!((measured - p).abs() / p < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Block Gaussian generation is bitwise invariant to how a request is
    /// partitioned into chunks — the carry buffer refills on fixed
    /// boundaries regardless of the caller's chunking.
    #[test]
    fn fill_gaussian_chunk_invariant(
        seed in any::<u64>(),
        cuts in prop::collection::vec(1usize..64, 0..24),
    ) {
        let total = 600usize;
        let mut whole = vec![0.0f64; total];
        Rand::new(seed).fill_gaussian(&mut whole);

        let mut chunked = Rand::new(seed);
        let mut got = Vec::with_capacity(total);
        let mut remaining = total;
        for c in cuts {
            if remaining == 0 {
                break;
            }
            let take = c.min(remaining);
            let mut part = vec![0.0f64; take];
            chunked.fill_gaussian(&mut part);
            got.extend_from_slice(&part);
            remaining -= take;
        }
        if remaining > 0 {
            let mut part = vec![0.0f64; remaining];
            chunked.fill_gaussian(&mut part);
            got.extend_from_slice(&part);
        }
        for (a, b) in whole.iter().zip(&got) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert!(whole.iter().all(|x| x.is_finite()));
    }
}

/// The block stream must never perturb the scalar stream (they draw from
/// independent generator state). Only true off the `precise` feature, where
/// `fill_gaussian` intentionally *is* the scalar stream.
#[cfg(not(feature = "precise"))]
mod block_stream_independence {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn fill_gaussian_leaves_scalar_stream_untouched(
            seed in any::<u64>(),
            n in 1usize..400,
        ) {
            let mut plain = Rand::new(seed);
            let want: Vec<u64> = (0..8).map(|_| plain.gaussian().to_bits()).collect();

            let mut mixed = Rand::new(seed);
            let mut buf = vec![0.0f64; n];
            mixed.fill_gaussian(&mut buf);
            let got: Vec<u64> = (0..8).map(|_| mixed.gaussian().to_bits()).collect();
            prop_assert_eq!(want, got);
        }
    }
}
