//! Property-based tests for the spatial grid index: every query must agree
//! exactly with the brute-force O(N²) scan it replaces, for any point set,
//! cell size, query center, and radius / k.

use proptest::prelude::*;
use uwb_sim::topology::{Position, SpatialGrid, Topology};

/// Brute-force radius query: ids of all points within `r` of `c`,
/// ascending — the reference the grid must reproduce.
fn brute_within(points: &[Position], c: Position, r: f64) -> Vec<u32> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.distance_m(&c) <= r)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Brute-force k-nearest: ascending `(distance, id)`.
fn brute_k_nearest(points: &[Position], c: Position, k: usize) -> Vec<u32> {
    let mut order: Vec<(f64, u32)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.distance_m(&c), i as u32))
        .collect();
    order.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    order.truncate(k);
    order.into_iter().map(|(_, id)| id).collect()
}

fn positions(
    max_len: usize,
) -> impl Strategy<Value = Vec<Position>> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..max_len)
        .prop_map(|v| v.into_iter().map(|(x, y)| Position::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Radius queries agree with the brute-force scan, including the
    /// inclusive boundary, for any cell size.
    #[test]
    fn radius_query_matches_brute_force(
        pts in positions(60),
        cell in 0.3f64..30.0,
        cx in -60.0f64..60.0,
        cy in -60.0f64..60.0,
        r in 0.0f64..120.0,
    ) {
        let grid = SpatialGrid::from_points(pts.iter().copied().enumerate(), cell);
        let c = Position::new(cx, cy);
        let mut got = Vec::new();
        grid.within_radius_into(c, r, &mut got);
        prop_assert_eq!(got, brute_within(&pts, c, r));
    }

    /// An infinite radius returns every indexed point.
    #[test]
    fn infinite_radius_returns_all(pts in positions(40), cell in 0.5f64..10.0) {
        let grid = SpatialGrid::from_points(pts.iter().copied().enumerate(), cell);
        let mut got = Vec::new();
        grid.within_radius_into(Position::new(3.0, -7.0), f64::INFINITY, &mut got);
        let all: Vec<u32> = (0..pts.len() as u32).collect();
        prop_assert_eq!(got, all);
    }

    /// k-nearest agrees with the brute-force (distance, id) sort for any k,
    /// including k larger than the point count.
    #[test]
    fn k_nearest_matches_brute_force(
        pts in positions(50),
        cell in 0.3f64..20.0,
        cx in -60.0f64..60.0,
        cy in -60.0f64..60.0,
        k in 0usize..60,
    ) {
        let grid = SpatialGrid::from_points(pts.iter().copied().enumerate(), cell);
        let c = Position::new(cx, cy);
        let mut got = Vec::new();
        grid.k_nearest_into(c, k, &mut got);
        prop_assert_eq!(got, brute_k_nearest(&pts, c, k));
    }

    /// Build order never changes query results: a reversed-insertion grid
    /// answers identically.
    #[test]
    fn build_order_invariant(
        pts in positions(40),
        cell in 0.4f64..15.0,
        r in 0.0f64..80.0,
    ) {
        let fwd = SpatialGrid::from_points(pts.iter().copied().enumerate(), cell);
        let rev = SpatialGrid::from_points(pts.iter().copied().enumerate().rev(), cell);
        let c = Position::new(-2.5, 4.0);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        fwd.within_radius_into(c, r, &mut a);
        rev.within_radius_into(c, r, &mut b);
        prop_assert_eq!(&a, &b);
        fwd.k_nearest_into(c, 7, &mut a);
        rev.k_nearest_into(c, 7, &mut b);
        prop_assert_eq!(a, b);
    }

    /// The clustered city layout is deterministic in its seed and respects
    /// the requested link distance and cluster count.
    #[test]
    fn clustered_layout_is_deterministic(seed in any::<u64>()) {
        let a = Topology::clustered(4, 5, 30.0, 6.0, 2.0, seed);
        let b = Topology::clustered(4, 5, 30.0, 6.0, 2.0, seed);
        prop_assert_eq!(a.len(), 20);
        for (x, y) in a.links.iter().zip(&b.links) {
            prop_assert_eq!(x, y);
        }
        for l in &a.links {
            prop_assert!((l.distance_m() - 2.0).abs() < 1e-9);
        }
    }
}

/// The `Topology::grid` convenience indexes transmitter positions.
#[test]
fn topology_grid_indexes_transmitters() {
    let topo = Topology::ring(12, 5.0, 1.0);
    let grid = topo.grid(2.0);
    assert_eq!(grid.len(), 12);
    let mut got = Vec::new();
    // Query around link 0's transmitter: it must be in its own neighborhood.
    grid.within_radius_into(topo.links[0].tx, 0.5, &mut got);
    assert!(got.contains(&0));
    let tx_positions: Vec<Position> = topo.links.iter().map(|l| l.tx).collect();
    grid.within_radius_into(Position::new(0.0, 0.0), f64::INFINITY, &mut got);
    assert_eq!(got.len(), tx_positions.len());
}
