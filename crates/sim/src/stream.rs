//! Streaming (block-based) forms of the channel/impairment models.
//!
//! The batch path synthesizes one whole-record `Vec<Complex>` per trial;
//! these operators implement [`uwb_dsp::stream::BlockProcessor`] so the
//! TX→RX chain can run at a fixed block size with memory independent of
//! record length (paper §1/§3: the receiver is a continuously running
//! chain, not a batch processor).
//!
//! All three operators are *chunk-size invariant* (see
//! `uwb_dsp::stream`): any partition of the record into blocks yields
//! bit-identical concatenated output, because every per-output-sample
//! summation order is fixed and all cross-boundary history (channel tail,
//! oscillator phase, RNG position) is carried in state.
//!
//! Parity with the batch path:
//!
//! * [`StreamingChannel`] on a **single-tap** channel (AWGN scenarios) is
//!   bit-identical to [`ChannelRealization::apply_into`]. Multi-tap
//!   channels use a direct-form convolution whose per-sample sums are
//!   ordered by tap index; the batch path uses FFT convolution, so the two
//!   agree to numerical precision (≲1e-12 relative) but not bitwise — the
//!   chunk-invariance gates therefore compare streamed-vs-streamed and
//!   assert equality of *decisions* vs batch.
//! * [`StreamingAwgn`] seeded with the RNG state at the point the batch
//!   path would call `add_awgn_complex_in_place` is bit-identical to it.
//! * [`StreamingInterferer`] for CW and swept kinds draws only the initial
//!   phase and is bit-identical to [`Interferer::add_to_in_place`]; the
//!   modulated kind forks its symbol RNG (documented deviation — the batch
//!   path interleaves symbol draws with nothing else, but a stream of
//!   unknown length cannot leave the shared RNG in a record-independent
//!   state).

use crate::interference::{Interferer, InterfererKind};
use crate::rng::Rand;
use crate::sv_channel::ChannelRealization;
use crate::time::SampleRate;
use uwb_dsp::stream::BlockProcessor;
use uwb_dsp::{Complex, DspScratch, Nco};

/// Stateful direct-form channel convolver: carries the multipath tail
/// across block boundaries and emits it on flush.
///
/// For an `L`-tap discretized impulse response the carried state is the
/// last `L-1` input samples — the peak footprint is O(block + channel
/// tail), independent of record length. Output sample `y[n]` is
/// `Σ_{k=0..L} h[k]·x[n-k]` accumulated in ascending `k`, so the block
/// partition never changes the arithmetic.
#[derive(Debug, Clone, Default)]
pub struct StreamingChannel {
    /// Discretized impulse response.
    h: Vec<Complex>,
    /// Last `h.len()-1` input samples, oldest first.
    history: Vec<Complex>,
}

impl StreamingChannel {
    /// An unconfigured (identity, zero-tap-history) convolver.
    pub fn new() -> Self {
        StreamingChannel {
            h: vec![Complex::ONE],
            history: Vec::new(),
        }
    }

    /// Builds a convolver for one channel realization at sample rate `fs`.
    pub fn from_realization(ch: &ChannelRealization, fs: SampleRate) -> Self {
        let mut s = StreamingChannel::new();
        s.configure(ch, fs);
        s
    }

    /// Re-discretizes `ch` into this convolver, reusing storage and
    /// clearing the carried history (allocation-free once capacities have
    /// reached their high-water marks). The per-trial entry point.
    pub fn configure(&mut self, ch: &ChannelRealization, fs: SampleRate) {
        ch.discretize_into(fs, &mut self.h);
        self.history.clear();
        self.history.resize(self.h.len() - 1, Complex::ZERO);
    }

    /// Length of the carried tail (`L-1` for an `L`-tap response) — the
    /// number of samples `flush_into` will emit.
    pub fn tail_len(&self) -> usize {
        self.history.len()
    }
}

impl BlockProcessor for StreamingChannel {
    fn process_block(&mut self, block: &mut [Complex], scratch: &mut DspScratch) {
        let l = self.h.len();
        if l == 1 {
            // Single-tap channel: plain scaling, bit-identical to the batch
            // `apply_into` fast path (`z * g`, no accumulator —
            // `MulAssign` expands to exactly `*z = *z * g`).
            let g = self.h[0];
            for z in block.iter_mut() {
                *z *= g;
            }
            return;
        }
        let n = block.len();
        // ext = [history | block input]: every x[n-k] an output needs.
        let mut ext = scratch.take_complex(l - 1 + n);
        ext[..l - 1].copy_from_slice(&self.history);
        ext[l - 1..].copy_from_slice(block);
        for (j, out) in block.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            // Fixed ascending-k order: the partition of the record into
            // blocks can never reorder this sum.
            for (k, &hk) in self.h.iter().enumerate() {
                acc += hk * ext[l - 1 + j - k];
            }
            *out = acc;
        }
        self.history.copy_from_slice(&ext[n..]);
        scratch.put_complex(ext);
    }

    fn flush_into(&mut self, out: &mut Vec<Complex>, _scratch: &mut DspScratch) {
        let l = self.h.len();
        // Tail outputs y[N+t], t in 0..L-1, depend only on the carried
        // history: y[N+t] = Σ_{k=t+1..L} h[k]·x[N+t-k].
        for t in 0..l.saturating_sub(1) {
            let mut acc = Complex::ZERO;
            for k in (t + 1)..l {
                acc += self.h[k] * self.history[l - 1 - (k - t)];
            }
            out.push(acc);
        }
        for z in self.history.iter_mut() {
            *z = Complex::ZERO;
        }
    }

    fn reset(&mut self) {
        for z in self.history.iter_mut() {
            *z = Complex::ZERO;
        }
    }

    fn name(&self) -> &'static str {
        "channel"
    }
}

/// Streaming AWGN source: adds circularly-symmetric complex noise of total
/// power `noise_power`, drawing I then Q per sample in record order from an
/// owned RNG.
///
/// Seeded with the RNG state the batch path would hold when calling
/// [`crate::awgn::add_awgn_complex_in_place`], the streamed record is
/// bit-identical to the batch record for any block partition.
#[derive(Debug, Clone)]
pub struct StreamingAwgn {
    sigma: f64,
    rng: Rand,
    initial: Rand,
}

impl StreamingAwgn {
    /// A noise source of total power `noise_power`, consuming `rng` as its
    /// private draw stream. Negative `noise_power` is a caller bug: panics
    /// in debug builds, clamps to zero in release builds.
    pub fn new(noise_power: f64, rng: Rand) -> Self {
        debug_assert!(
            noise_power >= 0.0,
            "negative noise_power ({noise_power}): a mis-signed SNR runs noiseless"
        );
        StreamingAwgn {
            sigma: (noise_power.max(0.0) / 2.0).sqrt(),
            initial: rng.clone(),
            rng,
        }
    }

    /// Re-arms the source for a new record: new noise power, new RNG state.
    /// Negative `noise_power` is a caller bug: panics in debug builds,
    /// clamps to zero in release builds.
    pub fn configure(&mut self, noise_power: f64, rng: Rand) {
        debug_assert!(
            noise_power >= 0.0,
            "negative noise_power ({noise_power}): a mis-signed SNR runs noiseless"
        );
        self.sigma = (noise_power.max(0.0) / 2.0).sqrt();
        self.initial = rng.clone();
        self.rng = rng;
    }
}

impl BlockProcessor for StreamingAwgn {
    fn process_block(&mut self, block: &mut [Complex], _scratch: &mut DspScratch) {
        // Same block stream, I then Q in ascending sample order, as
        // `add_awgn_complex_in_place`; the carry buffer inside the RNG makes
        // the block partition unobservable (chunk-size invariance).
        let mut buf = [0.0f64; 256];
        for chunk in block.chunks_mut(128) {
            self.rng.fill_gaussian(&mut buf[..2 * chunk.len()]);
            for (z, g) in chunk.iter_mut().zip(buf.chunks_exact(2)) {
                *z += Complex::new(self.sigma * g[0], self.sigma * g[1]);
            }
        }
    }

    fn reset(&mut self) {
        self.rng = self.initial.clone();
    }

    fn name(&self) -> &'static str {
        "awgn"
    }
}

/// Carried state of a [`StreamingInterferer`], per interferer kind.
#[derive(Debug, Clone)]
enum InterfererState {
    /// CW tone: phase-continuous oscillator.
    Cw { nco: Nco },
    /// BPSK-modulated tone: oscillator + symbol clock + private symbol RNG.
    /// The RNGs are boxed: `Rand` carries its block-Gaussian carry buffer
    /// inline (~2.5 KB), which would otherwise balloon every variant of this
    /// enum. Both boxes are allocated at construction; `reset` refills the
    /// existing allocation via `clone_from`.
    Modulated {
        nco: Nco,
        sps: usize,
        idx: usize,
        symbol: f64,
        rng: Box<Rand>,
        initial_rng: Box<Rand>,
    },
    /// Swept tone: explicit phase recurrence with the absolute sample index.
    Swept {
        offset_hz: f64,
        sweep_hz_per_s: f64,
        dt: f64,
        phase: f64,
        idx: usize,
    },
}

/// Streaming narrowband interferer: adds the tone to each block with all
/// oscillator/symbol state carried across boundaries.
///
/// Construction draws the starting phase from the caller's RNG — the same
/// single draw, at the same position, as [`Interferer::add_to_in_place`] —
/// so CW and swept kinds are bit-identical to the batch path. The
/// modulated kind additionally forks `rng` for its per-symbol draws (see
/// module docs).
#[derive(Debug, Clone)]
pub struct StreamingInterferer {
    amp: f64,
    offset_hz: f64,
    fs_hz: f64,
    phase0: f64,
    state: InterfererState,
}

impl StreamingInterferer {
    /// Builds the streaming form of `intf` at sample rate `fs_hz`, drawing
    /// the starting phase (and, for the modulated kind, a forked symbol
    /// stream) from `rng`.
    pub fn new(intf: &Interferer, fs_hz: f64, rng: &mut Rand) -> Self {
        let phase0 = rng.uniform_in(0.0, std::f64::consts::TAU);
        let state = match &intf.kind {
            InterfererKind::ContinuousWave => InterfererState::Cw {
                nco: Nco::with_phase(intf.offset_hz, fs_hz, phase0),
            },
            InterfererKind::Modulated { symbol_rate_hz } => {
                let symbol_rng = rng.fork(0x7354_5245_414d); // "STREAM"
                InterfererState::Modulated {
                    nco: Nco::with_phase(intf.offset_hz, fs_hz, phase0),
                    sps: (fs_hz / symbol_rate_hz).max(1.0) as usize,
                    idx: 0,
                    symbol: 1.0,
                    initial_rng: Box::new(symbol_rng.clone()),
                    rng: Box::new(symbol_rng),
                }
            }
            InterfererKind::Swept { sweep_hz_per_s } => InterfererState::Swept {
                offset_hz: intf.offset_hz,
                sweep_hz_per_s: *sweep_hz_per_s,
                dt: 1.0 / fs_hz,
                phase: phase0,
                idx: 0,
            },
        };
        StreamingInterferer {
            amp: intf.power.sqrt(),
            offset_hz: intf.offset_hz,
            fs_hz,
            phase0,
            state,
        }
    }
}

impl BlockProcessor for StreamingInterferer {
    fn process_block(&mut self, block: &mut [Complex], _scratch: &mut DspScratch) {
        let amp = self.amp;
        match &mut self.state {
            InterfererState::Cw { nco } => {
                for z in block.iter_mut() {
                    *z += nco.next_complex() * amp;
                }
            }
            InterfererState::Modulated {
                nco,
                sps,
                idx,
                symbol,
                rng,
                ..
            } => {
                for z in block.iter_mut() {
                    if *idx % *sps == 0 {
                        *symbol = if rng.bit() { 1.0 } else { -1.0 };
                    }
                    *z += nco.next_complex() * (amp * *symbol);
                    *idx += 1;
                }
            }
            InterfererState::Swept {
                offset_hz,
                sweep_hz_per_s,
                dt,
                phase,
                idx,
            } => {
                // Same recurrence as the batch path, with the absolute
                // sample index carried across blocks.
                for z in block.iter_mut() {
                    let f = *offset_hz + *sweep_hz_per_s * (*idx as f64 * *dt);
                    *phase += std::f64::consts::TAU * f * *dt;
                    *z += Complex::from_polar(amp, *phase);
                    *idx += 1;
                }
            }
        }
    }

    fn reset(&mut self) {
        match &mut self.state {
            InterfererState::Cw { nco } => {
                *nco = Nco::with_phase(self.offset_hz, self.fs_hz, self.phase0);
            }
            InterfererState::Modulated {
                nco,
                idx,
                symbol,
                rng,
                initial_rng,
                ..
            } => {
                *nco = Nco::with_phase(self.offset_hz, self.fs_hz, self.phase0);
                *idx = 0;
                *symbol = 1.0;
                // clone_from reuses the box's existing allocation, keeping
                // reset allocation-free on the warm path.
                rng.clone_from(initial_rng);
            }
            InterfererState::Swept { phase, idx, .. } => {
                *phase = self.phase0;
                *idx = 0;
            }
        }
    }

    fn name(&self) -> &'static str {
        "interferer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awgn::add_awgn_complex_in_place;
    use crate::sv_channel::ChannelModel;
    use uwb_dsp::stream::{assert_chunk_invariant, process_record};

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((0.11 * i as f64).sin(), (0.07 * i as f64).cos()))
            .collect()
    }

    #[test]
    fn channel_single_tap_matches_batch_bitwise() {
        let ch = ChannelRealization::identity();
        let fs = SampleRate::from_gsps(1.0);
        let sig = test_signal(500);
        let mut scratch = DspScratch::new();
        let mut batch = Vec::new();
        ch.apply_into(&sig, fs, &mut scratch, &mut batch);

        let mut streamed = sig.clone();
        let mut conv = StreamingChannel::from_realization(&ch, fs);
        process_record(&mut conv, &mut streamed, 64, &mut scratch);
        assert_eq!(streamed, batch);
    }

    #[test]
    fn channel_multipath_is_chunk_invariant_and_near_batch() {
        let mut rng = Rand::new(77);
        let ch = ChannelRealization::generate(ChannelModel::Cm2, &mut rng);
        let fs = SampleRate::from_gsps(1.0);
        let sig = test_signal(700);

        assert_chunk_invariant(&sig, &[1, 13, 64, 255, 700, 2000], || {
            StreamingChannel::from_realization(&ch, fs)
        });

        // Against the FFT batch path: equal to numerical precision.
        let batch = ch.apply(&sig, fs);
        let mut streamed = sig.clone();
        let mut scratch = DspScratch::new();
        let mut conv = StreamingChannel::from_realization(&ch, fs);
        process_record(&mut conv, &mut streamed, 128, &mut scratch);
        assert_eq!(streamed.len(), batch.len());
        let scale: f64 = batch.iter().map(|z| z.norm()).fold(1e-9, f64::max);
        for (i, (s, b)) in streamed.iter().zip(&batch).enumerate() {
            assert!(
                (*s - *b).norm() <= 1e-9 * scale,
                "sample {i}: {s:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn channel_tail_footprint_is_record_length_independent() {
        let mut rng = Rand::new(5);
        let ch = ChannelRealization::generate(ChannelModel::Cm3, &mut rng);
        let fs = SampleRate::from_gsps(1.0);
        let mut conv = StreamingChannel::from_realization(&ch, fs);
        let tail = conv.tail_len();
        let mut scratch = DspScratch::new();
        for len in [100usize, 10_000] {
            let mut rec = test_signal(len);
            process_record(&mut conv, &mut rec, 256, &mut scratch);
            assert_eq!(conv.tail_len(), tail, "tail grew with record length");
            conv.configure(&ch, fs);
        }
    }

    #[test]
    fn awgn_matches_batch_bitwise() {
        let sig = test_signal(333);
        let p = 0.7;
        let mut batch = sig.clone();
        add_awgn_complex_in_place(&mut batch, p, &mut Rand::new(42));

        for bl in [1usize, 10, 64, 333, 500] {
            let mut streamed = sig.clone();
            let mut src = StreamingAwgn::new(p, Rand::new(42));
            let mut scratch = DspScratch::new();
            process_record(&mut src, &mut streamed, bl, &mut scratch);
            assert_eq!(streamed, batch, "block {bl}");
        }
    }

    #[test]
    fn awgn_reset_replays_stream() {
        let mut src = StreamingAwgn::new(0.5, Rand::new(9));
        let mut scratch = DspScratch::new();
        let mut a = test_signal(50);
        src.process_block(&mut a, &mut scratch);
        src.reset();
        let mut b = test_signal(50);
        src.process_block(&mut b, &mut scratch);
        assert_eq!(a, b);
    }

    #[test]
    fn cw_and_swept_interferer_match_batch_bitwise() {
        let sig = test_signal(400);
        for kind in [
            InterfererKind::ContinuousWave,
            InterfererKind::Swept {
                sweep_hz_per_s: 2e14,
            },
        ] {
            let intf = Interferer {
                offset_hz: 120e6,
                power: 3.0,
                kind,
            };
            let mut batch = sig.clone();
            intf.add_to_in_place(&mut batch, 1e9, &mut Rand::new(13));

            for bl in [7usize, 100, 400] {
                let mut rng = Rand::new(13);
                let mut src = StreamingInterferer::new(&intf, 1e9, &mut rng);
                let mut streamed = sig.clone();
                let mut scratch = DspScratch::new();
                process_record(&mut src, &mut streamed, bl, &mut scratch);
                assert_eq!(streamed, batch, "block {bl}");
            }
        }
    }

    #[test]
    fn modulated_interferer_is_chunk_invariant() {
        let intf = Interferer {
            offset_hz: -80e6,
            power: 1.5,
            kind: InterfererKind::Modulated {
                symbol_rate_hz: 20e6,
            },
        };
        let sig = test_signal(350);
        assert_chunk_invariant(&sig, &[1, 17, 50, 350, 999], || {
            StreamingInterferer::new(&intf, 1e9, &mut Rand::new(21))
        });
        // And its power is calibrated like the batch form.
        let mut rng = Rand::new(3);
        let mut src = StreamingInterferer::new(&intf, 1e9, &mut rng);
        let mut buf = vec![Complex::ZERO; 20_000];
        let mut scratch = DspScratch::new();
        src.process_block(&mut buf, &mut scratch);
        let p = uwb_dsp::complex::mean_power(&buf);
        assert!((p - 1.5).abs() / 1.5 < 0.02, "{p}");
    }

    #[test]
    fn interferer_reset_replays() {
        let intf = Interferer {
            offset_hz: 60e6,
            power: 2.0,
            kind: InterfererKind::Modulated {
                symbol_rate_hz: 25e6,
            },
        };
        let mut rng = Rand::new(8);
        let mut src = StreamingInterferer::new(&intf, 1e9, &mut rng);
        let mut scratch = DspScratch::new();
        let mut a = test_signal(90);
        src.process_block(&mut a, &mut scratch);
        src.reset();
        let mut b = test_signal(90);
        src.process_block(&mut b, &mut scratch);
        assert_eq!(a, b);
    }
}
