//! Behavioral model of the planar elliptical UWB antenna (paper Fig. 2).
//!
//! The physical antenna (42 mm × 27 mm elliptical dipole, Powell &
//! Chandrakasan 2004) cannot be reproduced in software; what matters to the
//! receiver — per the paper's §1, "the impulse responses of both the antenna
//! and the RF front-end add to that of the channel" — is that the antenna is
//! a band-pass element whose ringing extends the composite impulse response.
//! We model it as a Butterworth band-pass over 3.1–10.6 GHz whose impulse
//! response is convolved into the passband signal path.

use crate::time::{Hertz, SampleRate};
use uwb_dsp::{BiquadCascade, Biquad};

/// Physical footprint of the paper's antenna in millimetres.
pub const ANTENNA_WIDTH_MM: f64 = 42.0;
/// Physical height of the paper's antenna in millimetres.
pub const ANTENNA_HEIGHT_MM: f64 = 27.0;

/// Band-pass behavioral model of the UWB antenna.
#[derive(Debug, Clone)]
pub struct Antenna {
    low_edge: Hertz,
    high_edge: Hertz,
    order_sections: usize,
}

impl Antenna {
    /// The paper's antenna: passband 3.1–10.6 GHz, 2 high-pass + 2 low-pass
    /// biquad sections (4th-order edges).
    pub fn uwb_elliptical() -> Self {
        Antenna {
            low_edge: Hertz::from_ghz(3.1),
            high_edge: Hertz::from_ghz(10.6),
            order_sections: 2,
        }
    }

    /// Custom band edges.
    ///
    /// # Panics
    ///
    /// Panics if the edges are not ordered and positive.
    pub fn with_band(low_edge: Hertz, high_edge: Hertz, order_sections: usize) -> Self {
        assert!(
            low_edge.as_hz() > 0.0 && high_edge.as_hz() > low_edge.as_hz(),
            "band edges must satisfy 0 < low < high"
        );
        assert!(order_sections > 0, "need at least one filter section");
        Antenna {
            low_edge,
            high_edge,
            order_sections,
        }
    }

    /// Lower −3 dB edge.
    pub fn low_edge(&self) -> Hertz {
        self.low_edge
    }

    /// Upper −3 dB edge.
    pub fn high_edge(&self) -> Hertz {
        self.high_edge
    }

    /// Builds the band-pass filter for a given (real passband) sample rate.
    ///
    /// # Panics
    ///
    /// Panics if `fs` does not satisfy Nyquist for the upper band edge.
    fn build_filter(&self, fs: SampleRate) -> BiquadCascade {
        let f_hi = fs.normalize(self.high_edge);
        let f_lo = fs.normalize(self.low_edge);
        assert!(
            f_hi < 0.5,
            "sample rate {fs} too low for the antenna's {} upper edge",
            self.high_edge
        );
        let q = std::f64::consts::FRAC_1_SQRT_2;
        let mut sections = Vec::new();
        for _ in 0..self.order_sections {
            sections.push(Biquad::highpass(f_lo, q));
            sections.push(Biquad::lowpass(f_hi, q));
        }
        BiquadCascade::new(sections)
    }

    /// Applies the antenna response to a real passband signal sampled at
    /// `fs`.
    ///
    /// # Panics
    ///
    /// Panics if `fs` does not satisfy Nyquist for the upper band edge.
    pub fn apply(&self, signal: &[f64], fs: SampleRate) -> Vec<f64> {
        self.build_filter(fs).process(signal)
    }

    /// The sampled impulse response at `fs`, truncated when the tail energy
    /// falls below `1e-6` of the total (minimum 16 samples).
    pub fn impulse_response(&self, fs: SampleRate, max_len: usize) -> Vec<f64> {
        let mut filt = self.build_filter(fs);
        let mut h = Vec::with_capacity(max_len);
        h.push(filt.push(1.0));
        for _ in 1..max_len {
            h.push(filt.push(0.0));
        }
        // Trim the negligible tail.
        let total: f64 = h.iter().map(|x| x * x).sum();
        let mut acc = 0.0;
        let mut cut = h.len();
        for (i, &x) in h.iter().enumerate().rev() {
            acc += x * x;
            if acc > 1e-6 * total {
                cut = i + 1;
                break;
            }
        }
        h.truncate(cut.max(16.min(max_len)));
        h
    }

    /// Magnitude response (dB) at frequency `f` for sample rate `fs`.
    pub fn magnitude_db(&self, f: Hertz, fs: SampleRate) -> f64 {
        self.build_filter(fs).magnitude_db(fs.normalize(f))
    }

    /// Duration in nanoseconds over which the impulse response retains
    /// `fraction` of its energy — the "ringing" the receiver's channel
    /// estimator must absorb.
    pub fn ringing_ns(&self, fs: SampleRate, fraction: f64) -> f64 {
        let h = self.impulse_response(fs, 4096);
        let total: f64 = h.iter().map(|x| x * x).sum();
        let mut acc = 0.0;
        for (i, &x) in h.iter().enumerate() {
            acc += x * x;
            if acc >= fraction * total {
                return (i + 1) as f64 / fs.as_hz() * 1e9;
            }
        }
        h.len() as f64 / fs.as_hz() * 1e9
    }
}

impl Default for Antenna {
    fn default() -> Self {
        Antenna::uwb_elliptical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 32e9;

    fn fs() -> SampleRate {
        SampleRate::new(FS)
    }

    #[test]
    fn passband_flat_stopband_rejects() {
        let ant = Antenna::uwb_elliptical();
        // Mid-band ~ 6 GHz: low loss.
        let mid = ant.magnitude_db(Hertz::from_ghz(6.0), fs());
        assert!(mid > -3.0, "mid-band loss {mid}");
        // Deep out-of-band: strong rejection.
        let low = ant.magnitude_db(Hertz::from_ghz(0.5), fs());
        assert!(low < -25.0, "LF rejection {low}");
        let hi = ant.magnitude_db(Hertz::from_ghz(15.0), fs());
        assert!(hi < -8.0, "HF rejection {hi}");
    }

    #[test]
    fn impulse_response_finite_and_ringing() {
        let ant = Antenna::uwb_elliptical();
        let h = ant.impulse_response(fs(), 4096);
        assert!(h.len() >= 16);
        let energy: f64 = h.iter().map(|x| x * x).sum();
        assert!(energy > 0.0);
        // 99% of energy within a few ns (antenna adds sub-channel-scale IR).
        let ring = ant.ringing_ns(fs(), 0.99);
        assert!(ring > 0.01 && ring < 10.0, "ringing {ring} ns");
    }

    #[test]
    fn apply_bandlimits_a_dc_step() {
        let ant = Antenna::uwb_elliptical();
        let step = vec![1.0; 2048];
        let out = ant.apply(&step, fs());
        // DC is blocked: tail of the output decays toward zero.
        let tail = &out[1536..];
        let tail_rms = uwb_dsp::math::rms(tail);
        assert!(tail_rms < 0.05, "DC leaked: {tail_rms}");
    }

    #[test]
    fn tone_in_band_passes() {
        let ant = Antenna::uwb_elliptical();
        let f0 = 5.0e9;
        let n = 8192;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f0 * i as f64 / FS).sin())
            .collect();
        let y = ant.apply(&x, fs());
        let gain = uwb_dsp::math::rms(&y[n / 2..]) / uwb_dsp::math::rms(&x[n / 2..]);
        assert!(gain > 0.7, "in-band gain {gain}");
    }

    #[test]
    fn dimensions_match_paper() {
        assert_eq!(ANTENNA_WIDTH_MM, 42.0);
        assert_eq!(ANTENNA_HEIGHT_MM, 27.0);
    }

    #[test]
    #[should_panic(expected = "too low")]
    fn nyquist_violation_panics() {
        Antenna::uwb_elliptical().apply(&[0.0; 4], SampleRate::from_gsps(2.0));
    }

    #[test]
    #[should_panic(expected = "band edges")]
    fn bad_band_panics() {
        Antenna::with_band(Hertz::from_ghz(5.0), Hertz::from_ghz(3.0), 2);
    }
}
