//! Additive white Gaussian noise.

use crate::rng::Rand;
use uwb_dsp::complex::{mean_power, mean_power_real};
use uwb_dsp::Complex;

/// Stack-buffer quantum for the chunked noise loops: 256 gaussians = 128
/// complex samples per refill, matching `GAUSS_BATCH` so each chunk maps to
/// one carry-buffer drain. The chunking is unobservable — the block stream
/// is chunk-size invariant (see [`Rand::fill_gaussian`]).
const NOISE_CHUNK: usize = 256;

/// Validates `noise_power`: negative power is a sign error in the caller
/// (e.g. a mis-signed SNR sweep), which would otherwise silently run
/// *noiseless* and report perfect BER. Debug builds panic; release builds
/// keep the documented clamp-to-zero behaviour.
#[inline]
fn checked_noise_power(noise_power: f64) -> f64 {
    debug_assert!(
        noise_power >= 0.0,
        "negative noise_power ({noise_power}): a mis-signed SNR runs noiseless"
    );
    noise_power.max(0.0)
}

/// Adds real AWGN of the given power (variance) to a signal.
///
/// Negative `noise_power` is a caller bug: it panics in debug builds and
/// clamps to zero (noiseless) in release builds.
pub fn add_awgn_real(signal: &[f64], noise_power: f64, rng: &mut Rand) -> Vec<f64> {
    let sigma = checked_noise_power(noise_power).sqrt();
    let mut out = signal.to_vec();
    let mut buf = [0.0f64; NOISE_CHUNK];
    for chunk in out.chunks_mut(NOISE_CHUNK) {
        rng.fill_gaussian(&mut buf[..chunk.len()]);
        for (x, g) in chunk.iter_mut().zip(&buf) {
            *x += sigma * g;
        }
    }
    out
}

/// Adds circularly-symmetric complex AWGN of total power `noise_power`
/// (split evenly between I and Q).
///
/// Negative `noise_power` is a caller bug: it panics in debug builds and
/// clamps to zero (noiseless) in release builds.
pub fn add_awgn_complex(signal: &[Complex], noise_power: f64, rng: &mut Rand) -> Vec<Complex> {
    let mut out = signal.to_vec();
    add_awgn_complex_in_place(&mut out, noise_power, rng);
    out
}

/// [`add_awgn_complex`] mutating the signal in place (allocation-free).
///
/// Noise comes from the block stream ([`Rand::fill_gaussian`]) in I-then-Q
/// order per sample, pulled through a stack chunk buffer; draw order and
/// arithmetic are identical to the allocating form, so results and
/// downstream RNG state are bit-identical — the per-trial form used by the
/// Monte-Carlo workers. Negative `noise_power` panics in debug builds and
/// clamps to zero in release builds.
pub fn add_awgn_complex_in_place(signal: &mut [Complex], noise_power: f64, rng: &mut Rand) {
    let sigma = (checked_noise_power(noise_power) / 2.0).sqrt();
    let mut buf = [0.0f64; NOISE_CHUNK];
    for chunk in signal.chunks_mut(NOISE_CHUNK / 2) {
        rng.fill_gaussian(&mut buf[..2 * chunk.len()]);
        for (z, g) in chunk.iter_mut().zip(buf.chunks_exact(2)) {
            *z += Complex::new(sigma * g[0], sigma * g[1]);
        }
    }
}

/// Generates `n` samples of complex AWGN with total power `noise_power`.
///
/// Negative `noise_power` is a caller bug: it panics in debug builds and
/// clamps to zero (silence) in release builds.
pub fn complex_noise(n: usize, noise_power: f64, rng: &mut Rand) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; n];
    add_awgn_complex_in_place(&mut out, noise_power, rng);
    out
}

/// Generates `n` samples of real AWGN with power (variance) `noise_power`.
///
/// Negative `noise_power` is a caller bug: it panics in debug builds and
/// clamps to zero (silence) in release builds.
pub fn real_noise(n: usize, noise_power: f64, rng: &mut Rand) -> Vec<f64> {
    let sigma = checked_noise_power(noise_power).sqrt();
    let mut out = vec![0.0; n];
    rng.fill_gaussian(&mut out);
    for x in &mut out {
        *x *= sigma;
    }
    out
}

/// Adds complex noise scaled for a target SNR (dB) relative to the measured
/// power of `signal`. Returns the noisy signal and the noise power used.
pub fn add_noise_snr(signal: &[Complex], snr_db: f64, rng: &mut Rand) -> (Vec<Complex>, f64) {
    let p_sig = mean_power(signal);
    let p_noise = p_sig / uwb_dsp::math::db_to_pow(snr_db);
    (add_awgn_complex(signal, p_noise, rng), p_noise)
}

/// Real-signal variant of [`add_noise_snr`].
pub fn add_noise_snr_real(signal: &[f64], snr_db: f64, rng: &mut Rand) -> (Vec<f64>, f64) {
    let p_sig = mean_power_real(signal);
    let p_noise = p_sig / uwb_dsp::math::db_to_pow(snr_db);
    (add_awgn_real(signal, p_noise, rng), p_noise)
}

/// Noise power for a given `Eb/N0` (dB) at complex baseband.
///
/// With `samples_per_bit` samples carrying each bit and average signal power
/// `signal_power`, the energy per bit is `signal_power * samples_per_bit`
/// (per-sample units), so `N0 = Eb / (Eb/N0)` and the per-sample complex
/// noise power at the full sample rate is `N0` (two-sided, I+Q).
pub fn noise_power_for_ebn0(signal_power: f64, samples_per_bit: f64, ebn0_db: f64) -> f64 {
    let eb = signal_power * samples_per_bit;
    eb / uwb_dsp::math::db_to_pow(ebn0_db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_power_is_calibrated() {
        let mut rng = Rand::new(1);
        let n = 200_000;
        let p = 0.04;
        let noise = complex_noise(n, p, &mut rng);
        let measured = mean_power(&noise);
        assert!((measured - p).abs() / p < 0.03, "{measured}");
        let rnoise = real_noise(n, p, &mut rng);
        let rm = mean_power_real(&rnoise);
        assert!((rm - p).abs() / p < 0.03, "{rm}");
    }

    #[test]
    fn snr_calibration() {
        let mut rng = Rand::new(2);
        let sig = vec![Complex::ONE; 100_000];
        let (noisy, p_noise) = add_noise_snr(&sig, 10.0, &mut rng);
        assert!((p_noise - 0.1).abs() < 1e-12);
        // Noise power check: subtract the known signal.
        let resid: f64 = noisy
            .iter()
            .map(|z| (*z - Complex::ONE).norm_sqr())
            .sum::<f64>()
            / noisy.len() as f64;
        assert!((resid - 0.1).abs() < 0.005, "{resid}");
    }

    #[test]
    fn snr_real_calibration() {
        let mut rng = Rand::new(3);
        let sig = vec![1.0; 100_000];
        let (noisy, p_noise) = add_noise_snr_real(&sig, 3.0, &mut rng);
        let resid: f64 = noisy.iter().map(|x| (x - 1.0) * (x - 1.0)).sum::<f64>()
            / noisy.len() as f64;
        assert!((resid - p_noise).abs() / p_noise < 0.05);
    }

    #[test]
    fn in_place_matches_allocating_bitwise() {
        let sig: Vec<Complex> = (0..64).map(|i| Complex::new(i as f64, -0.5)).collect();
        let want = add_awgn_complex(&sig, 0.3, &mut Rand::new(17));
        let mut rng = Rand::new(17);
        let mut buf = sig.clone();
        add_awgn_complex_in_place(&mut buf, 0.3, &mut rng);
        assert_eq!(buf, want);
        // Downstream RNG state must match too.
        assert_eq!(rng.gaussian(), {
            let mut r2 = Rand::new(17);
            let _ = add_awgn_complex(&sig, 0.3, &mut r2);
            r2.gaussian()
        });
    }

    #[test]
    fn zero_noise_passthrough() {
        let mut rng = Rand::new(4);
        let sig = vec![Complex::new(1.0, -2.0); 16];
        let out = add_awgn_complex(&sig, 0.0, &mut rng);
        assert_eq!(out, sig);
    }

    #[test]
    fn ebn0_mapping() {
        // 0 dB Eb/N0, unit power, 1 sample/bit: N0 = 1.
        assert!((noise_power_for_ebn0(1.0, 1.0, 0.0) - 1.0).abs() < 1e-12);
        // +3 dB halves the noise.
        assert!((noise_power_for_ebn0(1.0, 1.0, 3.0103) - 0.5).abs() < 1e-4);
        // More samples per bit means proportionally more noise per sample.
        assert!((noise_power_for_ebn0(1.0, 8.0, 0.0) - 8.0).abs() < 1e-12);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "negative noise_power")]
    fn negative_noise_power_panics_in_debug() {
        // A mis-signed SNR sweep used to clamp silently to zero noise and
        // report perfect BER; debug builds now catch the sign error.
        let mut rng = Rand::new(1);
        let mut sig = vec![Complex::ONE; 4];
        add_awgn_complex_in_place(&mut sig, -0.1, &mut rng);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn negative_noise_power_clamps_in_release() {
        // Release builds keep the documented clamp-to-zero behaviour.
        let mut rng = Rand::new(1);
        let sig = vec![Complex::ONE; 4];
        assert_eq!(add_awgn_complex(&sig, -0.1, &mut rng), sig);
        assert_eq!(real_noise(4, -1.0, &mut rng), vec![0.0; 4]);
    }

    #[test]
    fn allocating_forms_share_the_block_stream() {
        // complex_noise / add_awgn_complex / in_place all consume the same
        // number of block-stream draws per sample, so they are
        // interchangeable bitwise at matched seeds.
        let n = 300; // spans a carry-buffer refill
        let noise = complex_noise(n, 0.5, &mut Rand::new(9));
        let from_add = add_awgn_complex(&vec![Complex::ZERO; n], 0.5, &mut Rand::new(9));
        assert_eq!(noise, from_add);
    }

    #[test]
    fn noise_is_white_ish() {
        // Lag-1 autocorrelation should be near zero.
        let mut rng = Rand::new(5);
        let noise = real_noise(100_000, 1.0, &mut rng);
        let mut acc = 0.0;
        for i in 0..noise.len() - 1 {
            acc += noise[i] * noise[i + 1];
        }
        let rho = acc / (noise.len() - 1) as f64;
        assert!(rho.abs() < 0.02, "lag-1 correlation {rho}");
    }
}
