//! Deterministic parallel Monte-Carlo engine.
//!
//! Every quantitative claim reproduced from the paper (BER waterfalls, sync
//! statistics, interferer-rescue curves) is a Monte-Carlo estimate. This
//! module turns the former one-trial-at-a-time loops into a std-only
//! work-stealing engine whose merged result is **bit-identical for 1 and N
//! worker threads**:
//!
//! * workers pull fixed-size *chunks* of trial indices from a shared atomic
//!   counter (`std::thread::scope`, no extra crates);
//! * each trial gets its own RNG via [`crate::rng::derive_trial_seed`]
//!   `(master_seed, trial)` — streams never depend on which worker ran the
//!   trial;
//! * expensive per-run state (transmitters, receivers, monitors) is built
//!   once per worker by a `make_state` closure and reused across trials;
//! * per-chunk partial results are merged through the [`Merge`] trait in
//!   strict chunk order (an ordered-prefix reduction), and the early-stop
//!   predicate is evaluated at chunk boundaries of that deterministic
//!   order — so the set of trials contributing to the final result does not
//!   depend on thread count or scheduling. Workers that overrun the stop
//!   point have their chunks discarded.
//!
//! Thread count comes from the `UWB_THREADS` environment variable (0 or
//! unset → `std::thread::available_parallelism`), overridable per run with
//! [`MonteCarlo::threads`].
//!
//! ## Telemetry
//!
//! When the `obs` feature is on, the engine drains each worker's
//! [`uwb_obs`] thread-local collector *per chunk* and merges the snapshots
//! in the same deterministic chunk order as the results — so the
//! [`RunStats::telemetry`] stage call counts, event counts, and histogram
//! bins cover exactly the contributing trials and are bit-identical for any
//! `UWB_THREADS`. Overrun chunks are discarded together with their
//! telemetry. Stage *nanosecond* totals are wall-clock measurements and are
//! excluded from the determinism contract
//! ([`uwb_obs::Telemetry::to_json_deterministic`] omits them).

use crate::rng::Rand;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use uwb_obs::Telemetry;

/// Result types that can be combined across trials / chunks / workers.
///
/// `merge` must be associative, and the engine guarantees it is only ever
/// applied in ascending trial order, so plain counter addition satisfies the
/// bit-identical determinism contract.
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: &Self);
}

/// Why a Monte-Carlo run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The stop predicate became true on the deterministic merge prefix.
    TargetReached,
    /// All `max_trials` trials ran without the predicate firing — the
    /// estimate is *truncated* by the trial budget and callers must surface
    /// that instead of reporting a clean statistic.
    TrialBudgetExhausted,
}

impl StopReason {
    /// `true` when the run stopped because the trial budget ran out.
    pub fn truncated(&self) -> bool {
        matches!(self, StopReason::TrialBudgetExhausted)
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::TargetReached => write!(f, "target-reached"),
            StopReason::TrialBudgetExhausted => write!(f, "trial-budget-exhausted"),
        }
    }
}

/// Per-run execution statistics.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Trials contributing to the merged result.
    pub trials: u64,
    /// Trials actually executed (≥ `trials`: overrun chunks are discarded).
    pub trials_executed: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Per-run telemetry snapshot: stage timings/call counts, event counts,
    /// and histograms accumulated over exactly the contributing trials,
    /// merged in deterministic chunk order. Empty when the `obs` feature is
    /// off.
    pub telemetry: Telemetry,
}

impl RunStats {
    /// Contributing trials per wall-clock second, or `None` when the run was
    /// too short to time meaningfully (wall clock under 1 µs — the old
    /// `max(1e-12)` divide guard silently reported absurd throughputs for
    /// empty runs).
    pub fn trials_per_sec(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        if secs < 1e-6 {
            None
        } else {
            Some(self.trials as f64 / secs)
        }
    }

    /// `true` when the result was cut short by the trial budget.
    pub fn truncated(&self) -> bool {
        self.stop_reason.truncated()
    }

    /// One-line human summary (`trials … in … ms, … trials/s, reason`).
    pub fn summary(&self) -> String {
        let tps = match self.trials_per_sec() {
            Some(v) => format!("{v:.0} trials/s"),
            None => "n/a trials/s".to_string(),
        };
        format!(
            "{} trials in {:.1} ms on {} thread{} ({}, {})",
            self.trials,
            self.wall.as_secs_f64() * 1e3,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            tps,
            self.stop_reason,
        )
    }

    /// `uwb-telemetry-v2` JSON record (hand-rolled — no serde).
    ///
    /// Run-level wall-clock fields (`wall_ms`, `trials_per_sec`) vary
    /// between runs; the embedded `"telemetry"` object is the
    /// *deterministic* view (stage call counts, event counts, histogram
    /// bins, and the v2 `"quantiles"` percentile digests — no nanoseconds)
    /// and is bit-identical for any `UWB_THREADS`. `trials_per_sec` is
    /// `null` when the run was too short to time.
    pub fn to_json(&self) -> String {
        let tps = match self.trials_per_sec() {
            Some(v) => format!("{v:.1}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"schema\":\"uwb-telemetry-v2\",\"trials\":{},\"trials_executed\":{},\"wall_ms\":{:.3},\"threads\":{},\"trials_per_sec\":{},\"stop_reason\":\"{}\",\"truncated\":{},\"telemetry\":{}}}",
            self.trials,
            self.trials_executed,
            self.wall.as_secs_f64() * 1e3,
            self.threads,
            tps,
            self.stop_reason,
            self.truncated(),
            self.telemetry.to_json_deterministic(),
        )
    }
}

/// A merged Monte-Carlo result together with its run statistics.
#[derive(Debug, Clone)]
pub struct RunOutcome<R> {
    /// The deterministically merged result.
    pub value: R,
    /// Execution statistics.
    pub stats: RunStats,
}

/// Resolves the worker count: explicit override, else `UWB_THREADS`, else
/// `available_parallelism`.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("UWB_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Default batch width for the stage-sweep trial path.
pub const DEFAULT_BATCH: u64 = 8;

/// Resolves the stage-sweep batch width: explicit override, else the
/// `UWB_BATCH` environment variable (0 or unset → [`DEFAULT_BATCH`]).
/// Clamped to `1..=`[`uwb_obs::recorder::INFLIGHT_SLOTS`] — the flight
/// recorder keeps one armed forensic slot per in-flight trial, so wider
/// batches would silently evict snapshots.
pub fn resolve_batch(explicit: Option<u64>) -> u64 {
    let raw = explicit.or_else(|| {
        std::env::var("UWB_BATCH")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0)
    });
    raw.unwrap_or(DEFAULT_BATCH)
        .clamp(1, uwb_obs::recorder::INFLIGHT_SLOTS as u64)
}

/// A configured Monte-Carlo run (see the module docs for the guarantees).
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Master seed; trial `t` runs on `derive_trial_seed(master_seed, t)`.
    pub master_seed: u64,
    /// Hard trial budget (the run never executes more than this many
    /// contributing trials).
    pub max_trials: u64,
    /// Trials per scheduling chunk. The stop predicate is evaluated at
    /// chunk boundaries, so smaller chunks stop closer to the target at the
    /// cost of more scheduling overhead.
    pub chunk_size: u64,
    /// Explicit thread count (`None` → `UWB_THREADS` / available cores).
    pub threads: Option<usize>,
}

impl MonteCarlo {
    /// A run with the default chunk size (8) and environment thread count.
    pub fn new(master_seed: u64, max_trials: u64) -> Self {
        MonteCarlo {
            master_seed,
            max_trials,
            chunk_size: 8,
            threads: None,
        }
    }

    /// Overrides the worker thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Overrides the chunk size.
    pub fn chunk_size(mut self, n: u64) -> Self {
        self.chunk_size = n.max(1);
        self
    }

    /// Runs the Monte-Carlo loop.
    ///
    /// * `make_state` builds per-worker cached state (transmitters,
    ///   receivers, scratch buffers) once per worker thread;
    /// * `trial(state, trial_index, rng, acc)` runs one trial, accumulating
    ///   into `acc` (a chunk-local `R`); it must be deterministic given the
    ///   trial index and RNG, and must not carry information between trials
    ///   through `state`;
    /// * `stop(&merged)` is evaluated on the deterministic merge prefix
    ///   after each chunk; once true, the run winds down cooperatively.
    ///
    /// Returns the merged result and [`RunStats`]. The result is
    /// bit-identical for any thread count.
    pub fn run<R, S, FS, FT, FP>(&self, make_state: FS, trial: FT, stop: FP) -> RunOutcome<R>
    where
        R: Merge + Default + Send,
        FS: Fn() -> S + Sync,
        FT: Fn(&mut S, u64, &mut Rand, &mut R) + Sync,
        FP: Fn(&R) -> bool + Sync,
    {
        self.run_engine(
            self.chunk_size.max(1),
            make_state,
            |state, lo, hi, local| {
                for t in lo..hi {
                    uwb_obs::set_trial(t);
                    // Arm the flight recorder with the trial's derived seed so
                    // a worst-trial snapshot can be replayed standalone.
                    uwb_obs::recorder::begin_trial(
                        t,
                        crate::rng::derive_trial_seed(self.master_seed, t),
                    );
                    let mut rng = Rand::for_trial(self.master_seed, t);
                    trial(state, t, &mut rng, local);
                }
            },
            stop,
        )
    }

    /// The scheduling chunk size the batched path actually uses:
    /// [`MonteCarlo::chunk_size`] rounded **up** to a multiple of `batch`,
    /// so a sub-batch never straddles a chunk boundary and the early-stop
    /// prefix stays a whole number of batches. When `batch` divides
    /// `chunk_size` (the default 8 with B ∈ {1, 2, 4, 8}) this is exactly
    /// `chunk_size`, and [`MonteCarlo::run_batched`] stops at the same
    /// trial boundaries as [`MonteCarlo::run`].
    pub fn effective_chunk_size(&self, batch: u64) -> u64 {
        let chunk = self.chunk_size.max(1);
        let batch = batch.max(1);
        chunk.div_ceil(batch) * batch
    }

    /// Runs the Monte-Carlo loop, handing the trial closure `batch`
    /// consecutive trial indices at a time so it can sweep each DSP stage
    /// across the whole sub-batch (structure-of-arrays style) instead of
    /// finishing one trial before starting the next.
    ///
    /// * `make_state` builds per-worker cached state once per worker;
    /// * `batch_fn(state, lo..hi, acc)` runs trials `lo..hi`
    ///   (`hi - lo ≤ batch`), accumulating into `acc`. The engine has
    ///   already tagged ([`uwb_obs::set_trial`]) and armed
    ///   ([`uwb_obs::recorder::begin_trial`]) every trial in the range; the
    ///   closure must derive per-trial RNG streams via
    ///   [`Rand::for_trial`]`(master_seed, t)` and re-tag `set_trial(t)`
    ///   before each trial's portion of a stage sweep so telemetry and
    ///   forensics attribute correctly;
    /// * `stop(&merged)` is evaluated on the deterministic merge prefix
    ///   after each chunk, exactly as in [`MonteCarlo::run`].
    ///
    /// Scheduling uses [`MonteCarlo::effective_chunk_size`], so when
    /// `batch` divides `chunk_size` the contributing trial set — and hence
    /// the merged result, telemetry fingerprint, and worst-trial report —
    /// is bit-identical to [`MonteCarlo::run`] with a closure performing
    /// the same per-trial computation, for any `UWB_THREADS`.
    pub fn run_batched<R, S, FS, FB, FP>(
        &self,
        batch: u64,
        make_state: FS,
        batch_fn: FB,
        stop: FP,
    ) -> RunOutcome<R>
    where
        R: Merge + Default + Send,
        FS: Fn() -> S + Sync,
        FB: Fn(&mut S, std::ops::Range<u64>, &mut R) + Sync,
        FP: Fn(&R) -> bool + Sync,
    {
        let batch = batch.clamp(1, uwb_obs::recorder::INFLIGHT_SLOTS as u64);
        self.run_engine(
            self.effective_chunk_size(batch),
            make_state,
            |state, lo, hi, local| {
                let mut b_lo = lo;
                while b_lo < hi {
                    let b_hi = (b_lo + batch).min(hi);
                    // Arm the whole sub-batch up front: one forensic slot
                    // per in-flight trial, keyed by trial index.
                    for t in b_lo..b_hi {
                        uwb_obs::set_trial(t);
                        uwb_obs::recorder::begin_trial(
                            t,
                            crate::rng::derive_trial_seed(self.master_seed, t),
                        );
                    }
                    batch_fn(state, b_lo..b_hi, local);
                    b_lo = b_hi;
                }
            },
            stop,
        )
    }

    /// The shared worker/reducer skeleton behind [`MonteCarlo::run`] and
    /// [`MonteCarlo::run_batched`]: chunk scheduling, per-chunk telemetry
    /// drains, the ordered-prefix merge, and early-stop bookkeeping.
    /// `chunk_body(state, lo, hi, acc)` executes trials `lo..hi` of one
    /// chunk, including any per-trial tagging/arming.
    fn run_engine<R, S, FS, FC, FP>(
        &self,
        chunk: u64,
        make_state: FS,
        chunk_body: FC,
        stop: FP,
    ) -> RunOutcome<R>
    where
        R: Merge + Default + Send,
        FS: Fn() -> S + Sync,
        FC: Fn(&mut S, u64, u64, &mut R) + Sync,
        FP: Fn(&R) -> bool + Sync,
    {
        let t0 = Instant::now();
        // Discard telemetry residue on the calling thread so the per-run
        // snapshot covers exactly the contributing trials regardless of
        // whether this thread doubles as the worker (single-threaded mode)
        // or only coordinates (multi-threaded mode).
        let _ = uwb_obs::take_thread_telemetry();
        let threads = resolve_threads(self.threads);
        let n_chunks = self.max_trials.div_ceil(chunk);

        let next_chunk = AtomicU64::new(0);
        // Chunk index after which no merging happens (u64::MAX = undecided).
        let stop_chunk = AtomicU64::new(u64::MAX);
        let executed = AtomicU64::new(0);
        let reducer = Mutex::new(Reducer::<R> {
            pending: BTreeMap::new(),
            merged: R::default(),
            telemetry: Telemetry::default(),
            frontier: 0,
            stopped_at: None,
        });

        let worker = || {
            let mut state = make_state();
            // Discard any telemetry residue this thread accumulated outside
            // the engine (only possible in single-threaded mode, where the
            // caller's thread is the worker): the per-run snapshot must
            // cover exactly the contributing trials for any thread count.
            let _ = uwb_obs::take_thread_telemetry();
            loop {
                let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks || c > stop_chunk.load(Ordering::Relaxed) {
                    break;
                }
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(self.max_trials);
                let mut local = R::default();
                chunk_body(&mut state, lo, hi, &mut local);
                // Drain this chunk's telemetry; it merges (or is discarded)
                // together with the chunk's result.
                let telem = uwb_obs::take_thread_telemetry();
                executed.fetch_add(hi - lo, Ordering::Relaxed);
                let mut red = reducer.lock().expect("reducer poisoned");
                if red.stopped_at.is_some() {
                    // Result already decided; drop the overrun chunk.
                    continue;
                }
                red.pending.insert(c, (local, telem));
                // Advance the deterministic merge frontier.
                loop {
                    let frontier = red.frontier;
                    let Some((r, t)) = red.pending.remove(&frontier) else {
                        break;
                    };
                    red.merged.merge(&r);
                    red.telemetry.merge(&t);
                    let at = red.frontier;
                    red.frontier += 1;
                    if stop(&red.merged) {
                        red.stopped_at = Some(at);
                        stop_chunk.store(at, Ordering::Relaxed);
                        red.pending.clear();
                        break;
                    }
                }
            }
        };

        if threads <= 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(worker);
                }
            });
        }

        let red = reducer.into_inner().expect("reducer poisoned");
        let (stop_reason, trials) = match red.stopped_at {
            Some(k) => (
                StopReason::TargetReached,
                ((k + 1) * chunk).min(self.max_trials),
            ),
            None => (StopReason::TrialBudgetExhausted, self.max_trials),
        };
        let mut telemetry = red.telemetry;
        if stop_reason.truncated() {
            // Truncation is itself a reportable rare event: record it (ring
            // buffer + count) and fold the record into the run snapshot.
            // Emitted on the coordinating thread after the workers joined,
            // so it is deterministic for any thread count.
            uwb_obs::set_trial(trials.saturating_sub(1));
            uwb_obs::event!("run_truncated", trials);
            telemetry.merge(&uwb_obs::take_thread_telemetry());
        }
        RunOutcome {
            value: red.merged,
            stats: RunStats {
                trials,
                trials_executed: executed.load(Ordering::Relaxed),
                wall: t0.elapsed(),
                threads,
                stop_reason,
                telemetry,
            },
        }
    }
}

struct Reducer<R> {
    pending: BTreeMap<u64, (R, Telemetry)>,
    merged: R,
    telemetry: Telemetry,
    frontier: u64,
    stopped_at: Option<u64>,
}

impl Merge for u64 {
    fn merge(&mut self, other: &Self) {
        *self += other;
    }
}

impl Merge for f64 {
    fn merge(&mut self, other: &Self) {
        *self += other;
    }
}

impl<A: Merge, B: Merge> Merge for (A, B) {
    fn merge(&mut self, other: &Self) {
        self.0.merge(&other.0);
        self.1.merge(&other.1);
    }
}

impl<T: Clone> Merge for Vec<T> {
    /// Concatenation — chunk order makes this deterministic too.
    fn merge(&mut self, other: &Self) {
        self.extend_from_slice(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default, Clone, PartialEq, Eq)]
    struct Tally {
        trials: u64,
        hits: u64,
        checksum: u64,
    }

    impl Merge for Tally {
        fn merge(&mut self, other: &Self) {
            self.trials += other.trials;
            self.hits += other.hits;
            self.checksum = self.checksum.wrapping_add(other.checksum);
        }
    }

    fn toy_run(threads: usize, max_trials: u64, target_hits: u64) -> (Tally, RunStats) {
        let out = MonteCarlo::new(42, max_trials).threads(threads).run(
            || (),
            |_, trial, rng, acc: &mut Tally| {
                acc.trials += 1;
                if rng.chance(0.125) {
                    acc.hits += 1;
                }
                acc.checksum = acc.checksum.wrapping_add(rng.next_u64() ^ trial);
            },
            |acc| acc.hits >= target_hits,
        );
        (out.value, out.stats)
    }

    #[test]
    fn identical_across_thread_counts() {
        let (v1, s1) = toy_run(1, 10_000, 64);
        for threads in [2, 4, 8] {
            let (vn, sn) = toy_run(threads, 10_000, 64);
            assert_eq!(v1, vn, "{threads} threads");
            assert_eq!(s1.trials, sn.trials);
            assert_eq!(s1.stop_reason, sn.stop_reason);
        }
    }

    #[test]
    fn early_stop_reports_target_reached() {
        let (v, s) = toy_run(4, 100_000, 10);
        assert_eq!(s.stop_reason, StopReason::TargetReached);
        assert!(!s.truncated());
        assert!(v.hits >= 10);
        assert!(s.trials < 100_000, "stop did not engage: {}", s.trials);
        assert_eq!(v.trials, s.trials, "merged trials must match stats");
        assert!(s.trials_executed >= s.trials);
    }

    #[test]
    fn budget_exhaustion_is_flagged() {
        // Impossible target: predicate never fires.
        let (v, s) = toy_run(3, 500, u64::MAX);
        assert_eq!(s.stop_reason, StopReason::TrialBudgetExhausted);
        assert!(s.truncated());
        assert_eq!(s.trials, 500);
        assert_eq!(v.trials, 500);
    }

    #[test]
    fn chunk_size_one_matches_serial_trial_granularity() {
        let run = |threads: usize| {
            MonteCarlo::new(7, 1_000)
                .chunk_size(1)
                .threads(threads)
                .run(
                    || (),
                    |_, _, rng, acc: &mut Tally| {
                        acc.trials += 1;
                        if rng.chance(0.5) {
                            acc.hits += 1;
                        }
                    },
                    |acc| acc.hits >= 20,
                )
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.value, b.value);
        // With chunk 1, the merged prefix stops exactly at the trial where
        // the 20th hit lands.
        assert_eq!(a.value.hits, 20);
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let builds = AtomicU64::new(0);
        let out = MonteCarlo::new(1, 64).threads(2).run(
            || builds.fetch_add(1, Ordering::Relaxed),
            |_, _, _, acc: &mut u64| *acc += 1,
            |_| false,
        );
        assert_eq!(out.value, 64);
        let n = builds.load(Ordering::Relaxed);
        assert!((1..=2).contains(&n), "state built once per worker, got {n}");
    }

    #[test]
    fn stats_formatting() {
        let (_, s) = toy_run(1, 100, 5);
        let json = s.to_json();
        assert!(json.contains("\"schema\":\"uwb-telemetry-v2\""), "{json}");
        assert!(json.contains("\"trials\":"), "{json}");
        assert!(json.contains("\"stop_reason\":\"target-reached\""), "{json}");
        assert!(json.contains("\"telemetry\":{"), "{json}");
        assert!(s.summary().contains("trials/s"));
        if let Some(tps) = s.trials_per_sec() {
            assert!(tps > 0.0);
        }
    }

    #[test]
    fn trials_per_sec_is_none_for_untimed_runs() {
        let s = RunStats {
            trials: 100,
            trials_executed: 100,
            wall: Duration::from_nanos(10),
            threads: 1,
            stop_reason: StopReason::TrialBudgetExhausted,
            telemetry: Telemetry::default(),
        };
        assert_eq!(s.trials_per_sec(), None);
        assert!(s.summary().contains("n/a trials/s"), "{}", s.summary());
        assert!(
            s.to_json().contains("\"trials_per_sec\":null"),
            "{}",
            s.to_json()
        );
    }

    #[test]
    fn truncated_run_records_event() {
        let (_, s) = toy_run(2, 300, u64::MAX);
        assert!(s.truncated());
        if uwb_obs::enabled() {
            assert_eq!(s.telemetry.event_count("run_truncated"), 1);
        } else {
            assert!(s.telemetry.is_empty());
        }
    }

    #[test]
    fn telemetry_counts_are_thread_count_invariant() {
        let run = |threads: usize| {
            MonteCarlo::new(17, 4_000).threads(threads).run(
                || (),
                |_, _trial, rng, acc: &mut Tally| {
                    let _t = uwb_obs::span!("mc_test_stage");
                    acc.trials += 1;
                    let v = rng.next_u64() % 100;
                    uwb_obs::hist!("mc_test_hist", v);
                    if v == 0 {
                        uwb_obs::event!("mc_test_rare");
                    }
                    if rng.chance(0.125) {
                        acc.hits += 1;
                    }
                },
                |acc| acc.hits >= 40,
            )
        };
        let a = run(1);
        for threads in [2, 4] {
            let b = run(threads);
            assert_eq!(a.value, b.value, "{threads} threads");
            assert_eq!(
                a.stats.telemetry.to_json_deterministic(),
                b.stats.telemetry.to_json_deterministic(),
                "{threads} threads"
            );
            assert_eq!(
                a.stats.telemetry.fingerprint(),
                b.stats.telemetry.fingerprint(),
                "{threads} threads"
            );
        }
        if uwb_obs::enabled() {
            let st = a.stats.telemetry.stage("mc_test_stage").expect("stage");
            assert_eq!(st.calls, a.stats.trials);
        }
    }

    #[test]
    fn env_threads_parsing() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn batch_resolution_clamps_to_recorder_capacity() {
        assert_eq!(resolve_batch(Some(1)), 1);
        assert_eq!(resolve_batch(Some(8)), 8);
        assert_eq!(resolve_batch(Some(0)), 1);
        assert_eq!(
            resolve_batch(Some(1 << 20)),
            uwb_obs::recorder::INFLIGHT_SLOTS as u64
        );
        assert!(resolve_batch(None) >= 1);
    }

    #[test]
    fn chunk_size_rounds_up_to_a_multiple_of_batch() {
        // Default chunk 8: every B ∈ {1, 2, 4, 8} divides it — scheduling
        // (and hence early-stop boundaries) identical to the unbatched run.
        let mc = MonteCarlo::new(1, 1000);
        assert_eq!(mc.chunk_size, 8);
        for b in [1, 2, 4, 8] {
            assert_eq!(mc.effective_chunk_size(b), 8, "B={b}");
        }
        // Non-divisors round the chunk *up* so a sub-batch never straddles
        // a chunk boundary.
        assert_eq!(mc.effective_chunk_size(3), 9);
        assert_eq!(mc.effective_chunk_size(5), 10);
        assert_eq!(mc.effective_chunk_size(16), 16);
        // And an explicit chunk override still rounds against the batch.
        let mc = MonteCarlo::new(1, 1000).chunk_size(20);
        assert_eq!(mc.effective_chunk_size(8), 24);
        assert_eq!(mc.effective_chunk_size(4), 20);
    }

    /// The reference per-trial computation used by the batched-identity
    /// tests: one RNG draw stream + telemetry per trial.
    fn batched_toy_trial(t: u64, rng: &mut Rand, acc: &mut Tally) {
        let _sp = uwb_obs::span!("mc_batch_stage");
        acc.trials += 1;
        let v = rng.next_u64() % 64;
        uwb_obs::hist!("mc_batch_hist", v);
        uwb_obs::note!("mc_batch_note", v);
        if v == 0 {
            uwb_obs::event!("mc_batch_rare");
        }
        if rng.chance(0.125) {
            acc.hits += 1;
        }
        acc.checksum = acc.checksum.wrapping_add(rng.next_u64() ^ t);
        uwb_obs::recorder::observe(v, 0);
    }

    #[test]
    fn run_batched_is_bit_identical_to_run() {
        const SEED: u64 = 99;
        let reference = MonteCarlo::new(SEED, 2_000).threads(1).run(
            || (),
            |_, t, rng, acc: &mut Tally| batched_toy_trial(t, rng, acc),
            |acc| acc.hits >= 30,
        );
        for batch in [1u64, 2, 4, 8] {
            for threads in [1usize, 4] {
                let out = MonteCarlo::new(SEED, 2_000).threads(threads).run_batched(
                    batch,
                    || (),
                    |_, range: std::ops::Range<u64>, acc: &mut Tally| {
                        // Stage-sweep shape: draw all RNG streams first,
                        // then run the per-trial computation in a second
                        // sweep — the engine contract (per-trial seeds,
                        // per-trial tags) makes this equivalent.
                        let rngs: Vec<Rand> =
                            range.clone().map(|t| Rand::for_trial(SEED, t)).collect();
                        for (t, mut rng) in range.zip(rngs) {
                            uwb_obs::set_trial(t);
                            batched_toy_trial(t, &mut rng, acc);
                        }
                    },
                    |acc| acc.hits >= 30,
                );
                assert_eq!(reference.value, out.value, "B={batch} threads={threads}");
                assert_eq!(reference.stats.trials, out.stats.trials);
                assert_eq!(reference.stats.stop_reason, out.stats.stop_reason);
                assert_eq!(
                    reference.stats.telemetry.to_json_deterministic(),
                    out.stats.telemetry.to_json_deterministic(),
                    "B={batch} threads={threads}"
                );
                assert_eq!(
                    uwb_obs::recorder::render_report(&reference.stats.telemetry.worst),
                    uwb_obs::recorder::render_report(&out.stats.telemetry.worst),
                    "B={batch} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn vec_merge_preserves_trial_order() {
        let run = |threads: usize| {
            MonteCarlo::new(5, 100).threads(threads).run(
                || (),
                |_, trial, _, acc: &mut Vec<u64>| acc.push(trial),
                |_| false,
            )
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.value, (0..100).collect::<Vec<u64>>());
        assert_eq!(a.value, b.value);
    }
}
