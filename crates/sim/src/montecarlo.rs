//! Deterministic parallel Monte-Carlo engine.
//!
//! Every quantitative claim reproduced from the paper (BER waterfalls, sync
//! statistics, interferer-rescue curves) is a Monte-Carlo estimate. This
//! module turns the former one-trial-at-a-time loops into a std-only
//! work-stealing engine whose merged result is **bit-identical for 1 and N
//! worker threads**:
//!
//! * workers pull fixed-size *chunks* of trial indices from a shared atomic
//!   counter (`std::thread::scope`, no extra crates);
//! * each trial gets its own RNG via [`crate::rng::derive_trial_seed`]
//!   `(master_seed, trial)` — streams never depend on which worker ran the
//!   trial;
//! * expensive per-run state (transmitters, receivers, monitors) is built
//!   once per worker by a `make_state` closure and reused across trials;
//! * per-chunk partial results are merged through the [`Merge`] trait in
//!   strict chunk order (an ordered-prefix reduction), and the early-stop
//!   predicate is evaluated at chunk boundaries of that deterministic
//!   order — so the set of trials contributing to the final result does not
//!   depend on thread count or scheduling. Workers that overrun the stop
//!   point have their chunks discarded.
//!
//! Thread count comes from the `UWB_THREADS` environment variable (0 or
//! unset → `std::thread::available_parallelism`), overridable per run with
//! [`MonteCarlo::threads`].

use crate::rng::Rand;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Result types that can be combined across trials / chunks / workers.
///
/// `merge` must be associative, and the engine guarantees it is only ever
/// applied in ascending trial order, so plain counter addition satisfies the
/// bit-identical determinism contract.
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: &Self);
}

/// Why a Monte-Carlo run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The stop predicate became true on the deterministic merge prefix.
    TargetReached,
    /// All `max_trials` trials ran without the predicate firing — the
    /// estimate is *truncated* by the trial budget and callers must surface
    /// that instead of reporting a clean statistic.
    TrialBudgetExhausted,
}

impl StopReason {
    /// `true` when the run stopped because the trial budget ran out.
    pub fn truncated(&self) -> bool {
        matches!(self, StopReason::TrialBudgetExhausted)
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::TargetReached => write!(f, "target-reached"),
            StopReason::TrialBudgetExhausted => write!(f, "trial-budget-exhausted"),
        }
    }
}

/// Per-run execution statistics.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Trials contributing to the merged result.
    pub trials: u64,
    /// Trials actually executed (≥ `trials`: overrun chunks are discarded).
    pub trials_executed: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

impl RunStats {
    /// Contributing trials per wall-clock second.
    pub fn trials_per_sec(&self) -> f64 {
        self.trials as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// `true` when the result was cut short by the trial budget.
    pub fn truncated(&self) -> bool {
        self.stop_reason.truncated()
    }

    /// One-line human summary (`trials … in … ms, … trials/s, reason`).
    pub fn summary(&self) -> String {
        format!(
            "{} trials in {:.1} ms on {} thread{} ({:.0} trials/s, {})",
            self.trials,
            self.wall.as_secs_f64() * 1e3,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.trials_per_sec(),
            self.stop_reason,
        )
    }

    /// Compact JSON record for BENCH tracking (hand-rolled — no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trials\":{},\"trials_executed\":{},\"wall_ms\":{:.3},\"threads\":{},\"trials_per_sec\":{:.1},\"stop_reason\":\"{}\",\"truncated\":{}}}",
            self.trials,
            self.trials_executed,
            self.wall.as_secs_f64() * 1e3,
            self.threads,
            self.trials_per_sec(),
            self.stop_reason,
            self.truncated(),
        )
    }
}

/// A merged Monte-Carlo result together with its run statistics.
#[derive(Debug, Clone)]
pub struct RunOutcome<R> {
    /// The deterministically merged result.
    pub value: R,
    /// Execution statistics.
    pub stats: RunStats,
}

/// Resolves the worker count: explicit override, else `UWB_THREADS`, else
/// `available_parallelism`.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("UWB_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A configured Monte-Carlo run (see the module docs for the guarantees).
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Master seed; trial `t` runs on `derive_trial_seed(master_seed, t)`.
    pub master_seed: u64,
    /// Hard trial budget (the run never executes more than this many
    /// contributing trials).
    pub max_trials: u64,
    /// Trials per scheduling chunk. The stop predicate is evaluated at
    /// chunk boundaries, so smaller chunks stop closer to the target at the
    /// cost of more scheduling overhead.
    pub chunk_size: u64,
    /// Explicit thread count (`None` → `UWB_THREADS` / available cores).
    pub threads: Option<usize>,
}

impl MonteCarlo {
    /// A run with the default chunk size (8) and environment thread count.
    pub fn new(master_seed: u64, max_trials: u64) -> Self {
        MonteCarlo {
            master_seed,
            max_trials,
            chunk_size: 8,
            threads: None,
        }
    }

    /// Overrides the worker thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Overrides the chunk size.
    pub fn chunk_size(mut self, n: u64) -> Self {
        self.chunk_size = n.max(1);
        self
    }

    /// Runs the Monte-Carlo loop.
    ///
    /// * `make_state` builds per-worker cached state (transmitters,
    ///   receivers, scratch buffers) once per worker thread;
    /// * `trial(state, trial_index, rng, acc)` runs one trial, accumulating
    ///   into `acc` (a chunk-local `R`); it must be deterministic given the
    ///   trial index and RNG, and must not carry information between trials
    ///   through `state`;
    /// * `stop(&merged)` is evaluated on the deterministic merge prefix
    ///   after each chunk; once true, the run winds down cooperatively.
    ///
    /// Returns the merged result and [`RunStats`]. The result is
    /// bit-identical for any thread count.
    pub fn run<R, S, FS, FT, FP>(&self, make_state: FS, trial: FT, stop: FP) -> RunOutcome<R>
    where
        R: Merge + Default + Send,
        FS: Fn() -> S + Sync,
        FT: Fn(&mut S, u64, &mut Rand, &mut R) + Sync,
        FP: Fn(&R) -> bool + Sync,
    {
        let t0 = Instant::now();
        let threads = resolve_threads(self.threads);
        let chunk = self.chunk_size.max(1);
        let n_chunks = self.max_trials.div_ceil(chunk);

        let next_chunk = AtomicU64::new(0);
        // Chunk index after which no merging happens (u64::MAX = undecided).
        let stop_chunk = AtomicU64::new(u64::MAX);
        let executed = AtomicU64::new(0);
        let reducer = Mutex::new(Reducer::<R> {
            pending: BTreeMap::new(),
            merged: R::default(),
            frontier: 0,
            stopped_at: None,
        });

        let worker = || {
            let mut state = make_state();
            loop {
                let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks || c > stop_chunk.load(Ordering::Relaxed) {
                    break;
                }
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(self.max_trials);
                let mut local = R::default();
                for t in lo..hi {
                    let mut rng = Rand::for_trial(self.master_seed, t);
                    trial(&mut state, t, &mut rng, &mut local);
                }
                executed.fetch_add(hi - lo, Ordering::Relaxed);
                let mut red = reducer.lock().expect("reducer poisoned");
                if red.stopped_at.is_some() {
                    // Result already decided; drop the overrun chunk.
                    continue;
                }
                red.pending.insert(c, local);
                // Advance the deterministic merge frontier.
                loop {
                    let frontier = red.frontier;
                    let Some(r) = red.pending.remove(&frontier) else {
                        break;
                    };
                    red.merged.merge(&r);
                    let at = red.frontier;
                    red.frontier += 1;
                    if stop(&red.merged) {
                        red.stopped_at = Some(at);
                        stop_chunk.store(at, Ordering::Relaxed);
                        red.pending.clear();
                        break;
                    }
                }
            }
        };

        if threads <= 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(worker);
                }
            });
        }

        let red = reducer.into_inner().expect("reducer poisoned");
        let (stop_reason, trials) = match red.stopped_at {
            Some(k) => (
                StopReason::TargetReached,
                ((k + 1) * chunk).min(self.max_trials),
            ),
            None => (StopReason::TrialBudgetExhausted, self.max_trials),
        };
        RunOutcome {
            value: red.merged,
            stats: RunStats {
                trials,
                trials_executed: executed.load(Ordering::Relaxed),
                wall: t0.elapsed(),
                threads,
                stop_reason,
            },
        }
    }
}

struct Reducer<R> {
    pending: BTreeMap<u64, R>,
    merged: R,
    frontier: u64,
    stopped_at: Option<u64>,
}

impl Merge for u64 {
    fn merge(&mut self, other: &Self) {
        *self += other;
    }
}

impl Merge for f64 {
    fn merge(&mut self, other: &Self) {
        *self += other;
    }
}

impl<A: Merge, B: Merge> Merge for (A, B) {
    fn merge(&mut self, other: &Self) {
        self.0.merge(&other.0);
        self.1.merge(&other.1);
    }
}

impl<T: Clone> Merge for Vec<T> {
    /// Concatenation — chunk order makes this deterministic too.
    fn merge(&mut self, other: &Self) {
        self.extend_from_slice(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default, Clone, PartialEq, Eq)]
    struct Tally {
        trials: u64,
        hits: u64,
        checksum: u64,
    }

    impl Merge for Tally {
        fn merge(&mut self, other: &Self) {
            self.trials += other.trials;
            self.hits += other.hits;
            self.checksum = self.checksum.wrapping_add(other.checksum);
        }
    }

    fn toy_run(threads: usize, max_trials: u64, target_hits: u64) -> (Tally, RunStats) {
        let out = MonteCarlo::new(42, max_trials).threads(threads).run(
            || (),
            |_, trial, rng, acc: &mut Tally| {
                acc.trials += 1;
                if rng.chance(0.125) {
                    acc.hits += 1;
                }
                acc.checksum = acc.checksum.wrapping_add(rng.next_u64() ^ trial);
            },
            |acc| acc.hits >= target_hits,
        );
        (out.value, out.stats)
    }

    #[test]
    fn identical_across_thread_counts() {
        let (v1, s1) = toy_run(1, 10_000, 64);
        for threads in [2, 4, 8] {
            let (vn, sn) = toy_run(threads, 10_000, 64);
            assert_eq!(v1, vn, "{threads} threads");
            assert_eq!(s1.trials, sn.trials);
            assert_eq!(s1.stop_reason, sn.stop_reason);
        }
    }

    #[test]
    fn early_stop_reports_target_reached() {
        let (v, s) = toy_run(4, 100_000, 10);
        assert_eq!(s.stop_reason, StopReason::TargetReached);
        assert!(!s.truncated());
        assert!(v.hits >= 10);
        assert!(s.trials < 100_000, "stop did not engage: {}", s.trials);
        assert_eq!(v.trials, s.trials, "merged trials must match stats");
        assert!(s.trials_executed >= s.trials);
    }

    #[test]
    fn budget_exhaustion_is_flagged() {
        // Impossible target: predicate never fires.
        let (v, s) = toy_run(3, 500, u64::MAX);
        assert_eq!(s.stop_reason, StopReason::TrialBudgetExhausted);
        assert!(s.truncated());
        assert_eq!(s.trials, 500);
        assert_eq!(v.trials, 500);
    }

    #[test]
    fn chunk_size_one_matches_serial_trial_granularity() {
        let run = |threads: usize| {
            MonteCarlo::new(7, 1_000)
                .chunk_size(1)
                .threads(threads)
                .run(
                    || (),
                    |_, _, rng, acc: &mut Tally| {
                        acc.trials += 1;
                        if rng.chance(0.5) {
                            acc.hits += 1;
                        }
                    },
                    |acc| acc.hits >= 20,
                )
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.value, b.value);
        // With chunk 1, the merged prefix stops exactly at the trial where
        // the 20th hit lands.
        assert_eq!(a.value.hits, 20);
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let builds = AtomicU64::new(0);
        let out = MonteCarlo::new(1, 64).threads(2).run(
            || builds.fetch_add(1, Ordering::Relaxed),
            |_, _, _, acc: &mut u64| *acc += 1,
            |_| false,
        );
        assert_eq!(out.value, 64);
        let n = builds.load(Ordering::Relaxed);
        assert!(n >= 1 && n <= 2, "state built once per worker, got {n}");
    }

    #[test]
    fn stats_formatting() {
        let (_, s) = toy_run(1, 100, 5);
        let json = s.to_json();
        assert!(json.contains("\"trials\":"), "{json}");
        assert!(json.contains("\"stop_reason\":\"target-reached\""), "{json}");
        assert!(s.summary().contains("trials/s"));
        assert!(s.trials_per_sec() > 0.0);
    }

    #[test]
    fn env_threads_parsing() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn vec_merge_preserves_trial_order() {
        let run = |threads: usize| {
            MonteCarlo::new(5, 100).threads(threads).run(
                || (),
                |_, trial, _, acc: &mut Vec<u64>| acc.push(trial),
                |_| false,
            )
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.value, (0..100).collect::<Vec<u64>>());
        assert_eq!(a.value, b.value);
    }
}
