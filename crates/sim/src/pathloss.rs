//! Path loss and the regulatory link budget.
//!
//! UWB links are power-limited by the FCC's −41.3 dBm/MHz EIRP rule rather
//! than by transmitter capability, so the achievable range/rate trade is set
//! by path loss against that ceiling.

use crate::time::Hertz;

/// Speed of light in metres per second.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// FCC UWB EIRP limit in dBm per MHz (3.1–10.6 GHz indoor mask).
pub const FCC_LIMIT_DBM_PER_MHZ: f64 = -41.3;

/// Lower edge of the FCC UWB band.
pub const FCC_BAND_LOW: Hertz = Hertz::new(3.1e9);
/// Upper edge of the FCC UWB band.
pub const FCC_BAND_HIGH: Hertz = Hertz::new(10.6e9);

/// Free-space path loss in dB at distance `d_m` metres and frequency `f`.
///
/// `FSPL = 20 log10(4 π d f / c)`.
///
/// ```
/// use uwb_sim::pathloss::free_space_path_loss_db;
/// use uwb_sim::time::Hertz;
/// let l = free_space_path_loss_db(1.0, Hertz::from_ghz(5.0));
/// assert!((l - 46.4).abs() < 0.2);
/// ```
///
/// # Panics
///
/// Panics if `d_m <= 0` or the frequency is not positive.
pub fn free_space_path_loss_db(d_m: f64, f: Hertz) -> f64 {
    assert!(d_m > 0.0, "distance must be positive");
    assert!(f.as_hz() > 0.0, "frequency must be positive");
    20.0 * (4.0 * std::f64::consts::PI * d_m * f.as_hz() / SPEED_OF_LIGHT).log10()
}

/// Log-distance path loss model: `PL(d) = PL(d0) + 10 n log10(d/d0)`,
/// with `d0 = 1 m` and free-space loss at the reference distance.
///
/// Indoor UWB exponents: LOS ≈ 1.7, NLOS ≈ 3.5.
///
/// # Panics
///
/// Panics if `d_m <= 0` or the frequency is not positive.
pub fn log_distance_path_loss_db(d_m: f64, f: Hertz, exponent: f64) -> f64 {
    assert!(d_m > 0.0, "distance must be positive");
    free_space_path_loss_db(1.0, f) + 10.0 * exponent * d_m.log10()
}

/// Maximum permitted transmit power (dBm) for a signal occupying
/// `bandwidth` under the FCC PSD limit: `−41.3 + 10 log10(BW/MHz)`.
///
/// For the paper's 500 MHz channel this is ≈ −14.3 dBm.
///
/// ```
/// use uwb_sim::pathloss::max_tx_power_dbm;
/// use uwb_sim::time::Hertz;
/// let p = max_tx_power_dbm(Hertz::from_mhz(500.0));
/// assert!((p - (-14.31)).abs() < 0.05);
/// ```
pub fn max_tx_power_dbm(bandwidth: Hertz) -> f64 {
    FCC_LIMIT_DBM_PER_MHZ + 10.0 * (bandwidth.as_hz() / 1e6).log10()
}

/// Thermal noise floor in dBm for the given bandwidth at 290 K:
/// `−174 dBm/Hz + 10 log10(BW)`.
pub fn thermal_noise_dbm(bandwidth: Hertz) -> f64 {
    -174.0 + 10.0 * bandwidth.as_hz().log10()
}

/// A simple link budget for a UWB channel.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkBudget {
    /// Transmit power in dBm (defaults to the FCC ceiling for the given
    /// bandwidth).
    pub tx_power_dbm: f64,
    /// Occupied bandwidth.
    pub bandwidth: Hertz,
    /// Geometric center frequency used for path loss.
    pub center: Hertz,
    /// Receiver noise figure in dB.
    pub noise_figure_db: f64,
    /// Path loss exponent (1.7 LOS … 3.5 NLOS indoor).
    pub path_loss_exponent: f64,
    /// Implementation margin in dB (filters, estimation losses).
    pub implementation_loss_db: f64,
}

impl LinkBudget {
    /// Budget for one of the paper's 500 MHz channels at the FCC power
    /// ceiling.
    pub fn gen2_channel(center: Hertz) -> Self {
        LinkBudget {
            tx_power_dbm: max_tx_power_dbm(Hertz::from_mhz(500.0)),
            bandwidth: Hertz::from_mhz(500.0),
            center,
            noise_figure_db: 6.6,
            path_loss_exponent: 2.0,
            implementation_loss_db: 3.0,
        }
    }

    /// Received power (dBm) at distance `d_m`.
    pub fn rx_power_dbm(&self, d_m: f64) -> f64 {
        self.tx_power_dbm - log_distance_path_loss_db(d_m, self.center, self.path_loss_exponent)
    }

    /// Receiver noise floor (dBm) including the noise figure.
    pub fn noise_floor_dbm(&self) -> f64 {
        thermal_noise_dbm(self.bandwidth) + self.noise_figure_db
    }

    /// SNR (dB) at distance `d_m`, net of implementation loss.
    pub fn snr_db(&self, d_m: f64) -> f64 {
        self.rx_power_dbm(d_m) - self.noise_floor_dbm() - self.implementation_loss_db
    }

    /// `Eb/N0` (dB) at distance `d_m` for data rate `bit_rate` (bits/s):
    /// `SNR + 10 log10(BW / R)`.
    pub fn ebn0_db(&self, d_m: f64, bit_rate: f64) -> f64 {
        self.snr_db(d_m) + 10.0 * (self.bandwidth.as_hz() / bit_rate).log10()
    }

    /// Maximum distance (m) at which `Eb/N0` stays above `required_ebn0_db`
    /// for data rate `bit_rate`, found by bisection over 0.01–1000 m.
    pub fn max_range_m(&self, bit_rate: f64, required_ebn0_db: f64) -> f64 {
        let (mut lo, mut hi) = (0.01f64, 1000.0f64);
        if self.ebn0_db(hi, bit_rate) >= required_ebn0_db {
            return hi;
        }
        if self.ebn0_db(lo, bit_rate) < required_ebn0_db {
            return 0.0;
        }
        for _ in 0..60 {
            let mid = (lo * hi).sqrt();
            if self.ebn0_db(mid, bit_rate) >= required_ebn0_db {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fspl_reference() {
        // 2.4 GHz at 100 m: ~80.0 dB.
        let l = free_space_path_loss_db(100.0, Hertz::from_ghz(2.4));
        assert!((l - 80.0).abs() < 0.2, "{l}");
        // Doubling distance adds 6 dB.
        let l1 = free_space_path_loss_db(1.0, Hertz::from_ghz(5.0));
        let l2 = free_space_path_loss_db(2.0, Hertz::from_ghz(5.0));
        assert!((l2 - l1 - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn log_distance_matches_fspl_at_exponent_two() {
        let f = Hertz::from_ghz(6.85);
        for &d in &[1.0, 3.0, 10.0] {
            let a = log_distance_path_loss_db(d, f, 2.0);
            let b = free_space_path_loss_db(d, f);
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn fcc_ceiling_for_500mhz() {
        let p = max_tx_power_dbm(Hertz::from_mhz(500.0));
        assert!((p + 14.31).abs() < 0.05, "{p}");
        // Full band 7.5 GHz: about -2.55 dBm.
        let pfull = max_tx_power_dbm(Hertz::new(7.5e9));
        assert!((pfull + 2.55).abs() < 0.1, "{pfull}");
    }

    #[test]
    fn thermal_noise_reference() {
        // 500 MHz -> -174 + 87 = -87 dBm.
        let n = thermal_noise_dbm(Hertz::from_mhz(500.0));
        assert!((n + 87.0).abs() < 0.05, "{n}");
    }

    #[test]
    fn gen2_budget_closes_at_short_range() {
        let lb = LinkBudget::gen2_channel(Hertz::from_ghz(3.432));
        // At 1 m and 100 Mbps the link must close comfortably (>10 dB Eb/N0).
        let e1 = lb.ebn0_db(1.0, 100e6);
        assert!(e1 > 10.0, "Eb/N0 at 1 m = {e1}");
        // Eb/N0 decreases with distance.
        assert!(lb.ebn0_db(10.0, 100e6) < e1);
        // Lower rate buys Eb/N0 exactly 10log10(R1/R2).
        let gain = lb.ebn0_db(5.0, 10e6) - lb.ebn0_db(5.0, 100e6);
        assert!((gain - 10.0).abs() < 1e-9);
    }

    #[test]
    fn max_range_monotonic_in_rate() {
        let lb = LinkBudget::gen2_channel(Hertz::from_ghz(3.96));
        let r_100m = lb.max_range_m(100e6, 10.0);
        let r_10m = lb.max_range_m(10e6, 10.0);
        assert!(r_100m > 0.5, "100 Mbps range {r_100m}");
        assert!(r_10m > r_100m, "{r_10m} vs {r_100m}");
        // Range at the found distance actually meets the requirement.
        assert!(lb.ebn0_db(r_100m * 0.99, 100e6) >= 10.0);
    }

    #[test]
    fn band_edges() {
        assert!((FCC_BAND_LOW.as_ghz() - 3.1).abs() < 1e-12);
        assert!((FCC_BAND_HIGH.as_ghz() - 10.6).abs() < 1e-12);
        assert_eq!(FCC_LIMIT_DBM_PER_MHZ, -41.3);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn zero_distance_panics() {
        free_space_path_loss_db(0.0, Hertz::from_ghz(5.0));
    }
}
