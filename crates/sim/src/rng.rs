//! Deterministic randomness plumbing.
//!
//! Every stochastic model in the workspace takes an explicit `u64` seed so
//! experiments are bit-reproducible. The generator is a self-contained
//! xoshiro256++ (no external crates — the build must work with no registry
//! access) seeded through splitmix64, with Gaussian sampling via Box–Muller.
//!
//! [`derive_trial_seed`] is the workspace-wide rule for turning a
//! `(master_seed, trial)` pair into an independent per-trial stream. It
//! replaces the old `seed ^ trial * GOLDEN` convention, which was linear in
//! both arguments (streams collided across scenarios that differed only in
//! seed offsets) and mapped trial 0 to the master seed verbatim.

/// The splitmix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One step of the splitmix64 sequence: advances `state` and returns the
/// next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    splitmix64_mix(*state)
}

/// Derives the RNG seed for Monte-Carlo trial `trial` of a run with
/// `master_seed`.
///
/// Properties (tested):
/// * `derive_trial_seed(s, 0) != s` — trial 0 does **not** reuse the master
///   seed verbatim;
/// * nonlinear in both arguments — adjacent trials and adjacent master
///   seeds land in unrelated streams, so scenarios run with `seed` and
///   `seed + 1` cannot shadow each other trial-for-trial.
#[inline]
pub fn derive_trial_seed(master_seed: u64, trial: u64) -> u64 {
    // Two chained splitmix64 finalizers with distinct odd offsets: the first
    // decorrelates the master seed, the second folds in the trial index.
    let a = splitmix64_mix(master_seed ^ 0xA076_1D64_78BD_642F);
    splitmix64_mix(a ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xE703_7ED1_A0B4_28DB)
}

/// Number of parallel xoshiro256++ lanes behind [`Rand::fill_gaussian`].
///
/// Eight u64 lanes fill one AVX-512 register; the lane count is part of the
/// block-Gaussian stream definition and must not change without re-pinning
/// the downstream fingerprints.
pub const GAUSS_LANES: usize = 8;

/// Carry-buffer quantum for [`Rand::fill_gaussian`]: gaussians are always
/// produced in blocks of this many, regardless of how callers partition
/// their requests — that fixed refill quantum is what makes the block
/// stream chunk-size invariant.
pub const GAUSS_BATCH: usize = 256;

/// A seeded random source with Gaussian sampling.
///
/// ```
/// use uwb_sim::Rand;
/// let mut a = Rand::new(42);
/// let mut b = Rand::new(42);
/// assert_eq!(a.gaussian(), b.gaussian()); // same seed, same stream
/// ```
///
/// Two Gaussian streams coexist (see [`Rand::fill_gaussian`]): the scalar
/// [`Rand::gaussian`] stream drawn from the main xoshiro state, and the
/// block stream drawn from [`GAUSS_LANES`] independent lanes. They never
/// consume each other's draws, so interleaving calls is well-defined.
#[derive(Debug, Clone)]
pub struct Rand {
    s: [u64; 4],
    spare: Option<f64>,
    /// SoA lane states for the block generator: `lanes[j][i]` is word `j`
    /// of lane `i`'s xoshiro256++ state.
    #[cfg(not(feature = "precise"))]
    lanes: [[u64; GAUSS_LANES]; 4],
    /// Carry buffer of already-generated gaussians (`batch[batch_pos..]`
    /// are still unconsumed).
    #[cfg(not(feature = "precise"))]
    batch: [f64; GAUSS_BATCH],
    #[cfg(not(feature = "precise"))]
    batch_pos: usize,
}

impl Rand {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        // Standard xoshiro seeding: fill the state from a splitmix64 stream.
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // The block-generator lanes continue the same splitmix64 stream, so
        // the main xoshiro state (and every pre-existing pinned stream) is
        // unchanged by their presence.
        #[cfg(not(feature = "precise"))]
        {
            let mut lanes = [[0u64; GAUSS_LANES]; 4];
            for i in 0..GAUSS_LANES {
                for word in lanes.iter_mut() {
                    word[i] = splitmix64(&mut sm);
                }
            }
            Rand {
                s,
                spare: None,
                lanes,
                batch: [0.0; GAUSS_BATCH],
                batch_pos: GAUSS_BATCH,
            }
        }
        #[cfg(feature = "precise")]
        {
            Rand { s, spare: None }
        }
    }

    /// Creates the generator for trial `trial` of a run seeded with
    /// `master_seed` (see [`derive_trial_seed`]).
    pub fn for_trial(master_seed: u64, trial: u64) -> Self {
        Rand::new(derive_trial_seed(master_seed, trial))
    }

    /// Raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; `label` decorrelates children
    /// of the same parent seed.
    pub fn fork(&mut self, label: u64) -> Rand {
        let s = self.next_u64() ^ splitmix64_mix(label.wrapping_add(0x9E37_79B9_7F4A_7C15));
        Rand::new(s)
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Widening-multiply rejection sampling (Lemire): unbiased.
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n || low >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// A random boolean with probability `p` of being `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// A random bit (fair coin).
    pub fn bit(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Fills a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    /// Standard normal sample (Box–Muller with caching of the spare value).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1 = self.uniform();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = std::f64::consts::TAU * u2;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Fills `out` with standard normal samples from the **block stream**.
    ///
    /// The block stream is generated [`GAUSS_BATCH`] samples at a time by
    /// [`GAUSS_LANES`] lane-parallel xoshiro256++ generators feeding a
    /// batched, branch-free Box–Muller (polynomial `ln` and `sin`/`cos`
    /// kernels from [`uwb_dsp::simd`] — the whole refill autovectorizes).
    /// A carry buffer hands out samples across calls, so the stream depends
    /// only on *how many* gaussians have been drawn, never on how the
    /// requests were partitioned (chunk-size invariance, tested).
    ///
    /// This is a **different stream** from the scalar [`Rand::gaussian`]:
    /// the two share a seed but not draws, and their values differ. With
    /// the `precise` feature the block path is replaced by sequential
    /// scalar draws (bit-identical to a `gaussian()` loop), restoring the
    /// pre-vectorization noise stream at matched seeds.
    ///
    /// Per-pair math: `u1 = (k1 + 1)·2⁻⁵³ ∈ (0, 1]` (no rejection loop —
    /// `u1 = 1` gives radius 0), `u2 = k2·2⁻⁵³ ∈ [0, 1)`, then
    /// `r = √(−2 ln u1)` and the pair is `(r·cos τu2, r·sin τu2)`, matching
    /// the scalar draw's cos-then-sin order.
    pub fn fill_gaussian(&mut self, out: &mut [f64]) {
        #[cfg(feature = "precise")]
        for o in out.iter_mut() {
            *o = self.gaussian();
        }
        #[cfg(not(feature = "precise"))]
        {
            let mut filled = 0;
            while filled < out.len() {
                if self.batch_pos == GAUSS_BATCH {
                    self.refill_gaussian_batch();
                }
                let n = (out.len() - filled).min(GAUSS_BATCH - self.batch_pos);
                out[filled..filled + n]
                    .copy_from_slice(&self.batch[self.batch_pos..self.batch_pos + n]);
                self.batch_pos += n;
                filled += n;
            }
        }
    }

    /// Advances all [`GAUSS_LANES`] lane generators one step, writing each
    /// lane's xoshiro256++ output to `out`. Both loops are lane-wise
    /// independent, so they lower to vector shifts/rotates/adds.
    #[cfg(not(feature = "precise"))]
    #[inline]
    // Index form keeps the four state rows visibly in lockstep per lane;
    // an iterator chain over one row would obscure that and change nothing.
    #[allow(clippy::needless_range_loop)]
    fn step_lanes(lanes: &mut [[u64; GAUSS_LANES]; 4], out: &mut [u64; GAUSS_LANES]) {
        for i in 0..GAUSS_LANES {
            out[i] = lanes[0][i]
                .wrapping_add(lanes[3][i])
                .rotate_left(23)
                .wrapping_add(lanes[0][i]);
        }
        for i in 0..GAUSS_LANES {
            let t = lanes[1][i] << 17;
            lanes[2][i] ^= lanes[0][i];
            lanes[3][i] ^= lanes[1][i];
            lanes[1][i] ^= lanes[2][i];
            lanes[0][i] ^= lanes[3][i];
            lanes[2][i] ^= t;
            lanes[3][i] = lanes[3][i].rotate_left(45);
        }
    }

    /// Regenerates the carry buffer: [`GAUSS_BATCH`]`/2` Box–Muller pairs
    /// in four flat passes (raw draws → uniforms, batched `ln`, batched
    /// `sin`/`cos`, combine). All scratch lives on the stack — the warm
    /// path stays allocation-free.
    #[cfg(not(feature = "precise"))]
    fn refill_gaussian_batch(&mut self) {
        const PAIRS: usize = GAUSS_BATCH / 2;
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        let mut u1 = [0.0f64; PAIRS];
        let mut u2 = [0.0f64; PAIRS];
        let mut buf = [0u64; GAUSS_LANES];
        // Radius uniforms first, then angle uniforms: lane step k feeds
        // samples k*LANES..(k+1)*LANES, in lane order.
        for k in 0..PAIRS / GAUSS_LANES {
            Self::step_lanes(&mut self.lanes, &mut buf);
            for (u, &raw) in u1[k * GAUSS_LANES..].iter_mut().zip(&buf) {
                *u = ((raw >> 11) + 1) as f64 * SCALE; // (0, 1]
            }
        }
        for k in 0..PAIRS / GAUSS_LANES {
            Self::step_lanes(&mut self.lanes, &mut buf);
            for (u, &raw) in u2[k * GAUSS_LANES..].iter_mut().zip(&buf) {
                *u = (raw >> 11) as f64 * SCALE; // [0, 1)
            }
        }
        let mut lnv = [0.0f64; PAIRS];
        uwb_dsp::simd::ln_block(&u1, &mut lnv);
        let mut sin = [0.0f64; PAIRS];
        let mut cos = [0.0f64; PAIRS];
        uwb_dsp::simd::sincos_tau_block(&u2, &mut sin, &mut cos);
        for k in 0..PAIRS {
            let r = (-2.0 * lnv[k]).sqrt();
            self.batch[2 * k] = r * cos[k];
            self.batch[2 * k + 1] = r * sin[k];
        }
        self.batch_pos = 0;
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential sample with the given rate λ (mean `1/λ`).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Rayleigh sample with scale σ (mode σ).
    pub fn rayleigh(&mut self, sigma: f64) -> f64 {
        let x = self.gaussian() * sigma;
        let y = self.gaussian() * sigma;
        x.hypot(y)
    }

    /// Log-normal sample where the underlying normal has mean `mu` and
    /// standard deviation `sigma` (both in natural-log units).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.gaussian_with(mu, sigma).exp()
    }

    /// Random vector of `n` standard normal samples.
    pub fn gaussian_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.gaussian()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_dsp::math::{mean, std_dev, variance};

    #[test]
    fn determinism() {
        let mut a = Rand::new(7);
        let mut b = Rand::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.gaussian(), b.gaussian());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rand::new(1);
        let mut b = Rand::new(2);
        let va: Vec<f64> = (0..10).map(|_| a.uniform()).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.uniform()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rand::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let v1: Vec<f64> = (0..10).map(|_| c1.uniform()).collect();
        let v2: Vec<f64> = (0..10).map(|_| c2.uniform()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn trial_seed_distinct_from_master() {
        for seed in [0u64, 1, 42, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            assert_ne!(derive_trial_seed(seed, 0), seed, "seed {seed:#x}");
        }
    }

    #[test]
    fn trial_seeds_do_not_collide_across_adjacent_masters() {
        // The old linear rule had seed ^ trial*G collide whenever
        // (s1 ^ s2) == (t1 ^ t2) * G; the mixed rule must not.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for seed in 0..64u64 {
            for trial in 0..256u64 {
                assert!(
                    seen.insert(derive_trial_seed(seed, trial)),
                    "collision at seed {seed}, trial {trial}"
                );
            }
        }
    }

    #[test]
    fn trial_streams_decorrelated() {
        // Adjacent trials produce unrelated uniform streams.
        let mut a = Rand::for_trial(123, 0);
        let mut b = Rand::for_trial(123, 1);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // And the same (seed, trial) always reproduces.
        let mut c = Rand::for_trial(123, 0);
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vc);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rand::new(123);
        let v = r.gaussian_vec(200_000);
        assert!(mean(&v).abs() < 0.02, "mean {}", mean(&v));
        assert!((variance(&v) - 1.0).abs() < 0.03, "var {}", variance(&v));
    }

    #[test]
    fn fill_gaussian_chunk_invariance() {
        // The block stream must depend only on how many samples were drawn,
        // never on the partition of the requests.
        let mut whole = vec![0.0; 1000];
        Rand::new(77).fill_gaussian(&mut whole);
        for chunks in [vec![1000], vec![1, 999], vec![255, 256, 257, 232], vec![7; 143]] {
            let mut r = Rand::new(77);
            let mut got = Vec::new();
            for c in chunks {
                let mut part = vec![0.0; c];
                r.fill_gaussian(&mut part);
                got.extend_from_slice(&part);
            }
            got.truncate(1000);
            let whole_bits: Vec<u64> = whole.iter().map(|x| x.to_bits()).collect();
            let got_bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(whole_bits, got_bits);
        }
    }

    #[test]
    fn fill_gaussian_moments() {
        let mut r = Rand::new(321);
        let mut v = vec![0.0; 400_000];
        r.fill_gaussian(&mut v);
        assert!(mean(&v).abs() < 0.01, "mean {}", mean(&v));
        assert!((variance(&v) - 1.0).abs() < 0.02, "var {}", variance(&v));
        // Tail sanity: |z| > 3 should appear at ~0.27%.
        let tail = v.iter().filter(|x| x.abs() > 3.0).count() as f64 / v.len() as f64;
        assert!((0.001..0.006).contains(&tail), "3-sigma tail {tail}");
        // And the samples must be finite — the (0, 1] radius uniform rules
        // out ln(0) without a rejection loop.
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[cfg(not(feature = "precise"))]
    #[test]
    fn fill_gaussian_is_a_distinct_stream_from_scalar() {
        // Documented contract: the block stream shares the seed, not the
        // draws. It must differ from the scalar stream and leave it intact.
        let mut r = Rand::new(55);
        let mut block = vec![0.0; 8];
        r.fill_gaussian(&mut block);
        let scalar: Vec<f64> = {
            let mut s = Rand::new(55);
            (0..8).map(|_| s.gaussian()).collect()
        };
        assert_ne!(block, scalar);
        // Drawing from the block stream must not perturb the main stream.
        let mut clean = Rand::new(55);
        for _ in 0..8 {
            let a = r.gaussian();
            let b = clean.gaussian();
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[cfg(feature = "precise")]
    #[test]
    fn fill_gaussian_precise_matches_scalar_bitwise() {
        // With the precise feature, the block API is the scalar stream.
        let mut r = Rand::new(55);
        let mut block = vec![0.0; 33];
        r.fill_gaussian(&mut block);
        let mut s = Rand::new(55);
        for (i, b) in block.iter().enumerate() {
            assert_eq!(b.to_bits(), s.gaussian().to_bits(), "sample {i}");
        }
    }

    #[test]
    fn gaussian_with_params() {
        let mut r = Rand::new(5);
        let v: Vec<f64> = (0..100_000).map(|_| r.gaussian_with(3.0, 0.5)).collect();
        assert!((mean(&v) - 3.0).abs() < 0.02);
        assert!((std_dev(&v) - 0.5).abs() < 0.02);
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rand::new(11);
        let rate = 4.0;
        let v: Vec<f64> = (0..100_000).map(|_| r.exponential(rate)).collect();
        assert!((mean(&v) - 1.0 / rate).abs() < 0.01);
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rayleigh_mean() {
        let mut r = Rand::new(13);
        let sigma = 2.0;
        let v: Vec<f64> = (0..100_000).map(|_| r.rayleigh(sigma)).collect();
        // Rayleigh mean = sigma * sqrt(pi/2).
        let expect = sigma * (std::f64::consts::PI / 2.0).sqrt();
        assert!((mean(&v) - expect).abs() < 0.05);
    }

    #[test]
    fn lognormal_positive() {
        let mut r = Rand::new(17);
        for _ in 0..1000 {
            assert!(r.lognormal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rand::new(19);
        for _ in 0..1000 {
            let x = r.uniform_in(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let k = r.below(7);
            assert!(k < 7);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rand::new(29);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.below(5)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Rand::new(31);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // 13 bytes from a 64-bit generator: all-zero tail is astronomically
        // unlikely; equality with a fresh fill from the same seed must hold.
        let mut r2 = Rand::new(31);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rand::new(23);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rand::new(0).below(0);
    }
}
