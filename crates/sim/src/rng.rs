//! Deterministic randomness plumbing.
//!
//! Every stochastic model in the workspace takes an explicit `u64` seed so
//! experiments are bit-reproducible. This module wraps `rand`'s `StdRng`
//! with Gaussian sampling (Box–Muller, no external distribution crate).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with Gaussian sampling.
///
/// ```
/// use uwb_sim::Rand;
/// let mut a = Rand::new(42);
/// let mut b = Rand::new(42);
/// assert_eq!(a.gaussian(), b.gaussian()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct Rand {
    rng: StdRng,
    spare: Option<f64>,
}

impl Rand {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rand {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Derives an independent child generator; `label` decorrelates children
    /// of the same parent seed.
    pub fn fork(&mut self, label: u64) -> Rand {
        let s: u64 = self.rng.gen::<u64>() ^ label.wrapping_mul(0x9E3779B97F4A7C15);
        Rand::new(s)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.rng.gen_range(0..n)
    }

    /// A random boolean with probability `p` of being `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// A random bit (fair coin).
    pub fn bit(&mut self) -> bool {
        self.rng.gen::<bool>()
    }

    /// Fills a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.rng.fill(buf);
    }

    /// Standard normal sample (Box–Muller with caching of the spare value).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1 = self.uniform();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = std::f64::consts::TAU * u2;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential sample with the given rate λ (mean `1/λ`).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Rayleigh sample with scale σ (mode σ).
    pub fn rayleigh(&mut self, sigma: f64) -> f64 {
        let x = self.gaussian() * sigma;
        let y = self.gaussian() * sigma;
        x.hypot(y)
    }

    /// Log-normal sample where the underlying normal has mean `mu` and
    /// standard deviation `sigma` (both in natural-log units).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.gaussian_with(mu, sigma).exp()
    }

    /// Random vector of `n` standard normal samples.
    pub fn gaussian_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.gaussian()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_dsp::math::{mean, std_dev, variance};

    #[test]
    fn determinism() {
        let mut a = Rand::new(7);
        let mut b = Rand::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.gaussian(), b.gaussian());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rand::new(1);
        let mut b = Rand::new(2);
        let va: Vec<f64> = (0..10).map(|_| a.uniform()).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.uniform()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rand::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let v1: Vec<f64> = (0..10).map(|_| c1.uniform()).collect();
        let v2: Vec<f64> = (0..10).map(|_| c2.uniform()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rand::new(123);
        let v = r.gaussian_vec(200_000);
        assert!(mean(&v).abs() < 0.02, "mean {}", mean(&v));
        assert!((variance(&v) - 1.0).abs() < 0.03, "var {}", variance(&v));
    }

    #[test]
    fn gaussian_with_params() {
        let mut r = Rand::new(5);
        let v: Vec<f64> = (0..100_000).map(|_| r.gaussian_with(3.0, 0.5)).collect();
        assert!((mean(&v) - 3.0).abs() < 0.02);
        assert!((std_dev(&v) - 0.5).abs() < 0.02);
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rand::new(11);
        let rate = 4.0;
        let v: Vec<f64> = (0..100_000).map(|_| r.exponential(rate)).collect();
        assert!((mean(&v) - 1.0 / rate).abs() < 0.01);
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rayleigh_mean() {
        let mut r = Rand::new(13);
        let sigma = 2.0;
        let v: Vec<f64> = (0..100_000).map(|_| r.rayleigh(sigma)).collect();
        // Rayleigh mean = sigma * sqrt(pi/2).
        let expect = sigma * (std::f64::consts::PI / 2.0).sqrt();
        assert!((mean(&v) - expect).abs() < 0.05);
    }

    #[test]
    fn lognormal_positive() {
        let mut r = Rand::new(17);
        for _ in 0..1000 {
            assert!(r.lognormal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rand::new(19);
        for _ in 0..1000 {
            let x = r.uniform_in(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let k = r.below(7);
            assert!(k < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rand::new(23);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rand::new(0).below(0);
    }
}
