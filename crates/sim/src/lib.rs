//! # uwb-sim — environment models for the pulsed-UWB reproduction
//!
//! Everything between the transmit antenna connector and the receive LNA:
//!
//! * [`time`] — `Picoseconds` / `Hertz` / `SampleRate` newtypes
//! * [`rng`] — seeded, reproducible randomness with Gaussian/Rayleigh/
//!   exponential sampling
//! * [`montecarlo`] — deterministic parallel Monte-Carlo engine (bit-identical
//!   results for any thread count, cooperative early stop)
//! * [`awgn`] — calibrated additive noise (per-power, per-SNR, per-Eb/N0)
//! * [`sv_channel`] — IEEE 802.15.3a Saleh–Valenzuela multipath (CM1–CM4),
//!   covering the paper's "rms delay spread ~20 ns" regime
//! * [`interference`] — narrowband interferer generators (CW, modulated,
//!   swept)
//! * [`antenna`] — band-pass behavioral model of the planar elliptical
//!   antenna of paper Fig. 2
//! * [`pathloss`] — free-space/log-distance loss and the FCC −41.3 dBm/MHz
//!   link budget
//! * [`topology`] — piconet floor-plan geometry and pairwise path gains
//!
//! # Example: one CM3 channel realization
//!
//! ```
//! use uwb_sim::{ChannelModel, ChannelRealization, Rand};
//!
//! let mut rng = Rand::new(1);
//! let ch = ChannelRealization::generate(ChannelModel::Cm3, &mut rng);
//! assert!((ch.energy() - 1.0).abs() < 1e-9);
//! assert!(ch.rms_delay_spread_ns() > 1.0);
//! ```

#![warn(missing_docs)]

pub mod antenna;
pub mod awgn;
pub mod interference;
pub mod montecarlo;
pub mod pathloss;
pub mod rng;
pub mod stream;
pub mod sv_channel;
pub mod time;
pub mod topology;

pub use antenna::Antenna;
pub use interference::{Interferer, InterfererKind};
pub use montecarlo::{Merge, MonteCarlo, RunOutcome, RunStats, StopReason};
pub use pathloss::LinkBudget;
pub use rng::{derive_trial_seed, Rand};
pub use stream::{StreamingAwgn, StreamingChannel, StreamingInterferer};
pub use sv_channel::{ChannelModel, ChannelRealization, SvParams, Tap};
pub use time::{Hertz, Picoseconds, SampleRate};
pub use topology::{LinkGeometry, Position, Topology};
