//! Time and frequency newtypes.
//!
//! UWB work mixes picosecond pulse timing with multi-gigahertz carriers; the
//! newtypes here keep units straight at compile time (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A duration expressed in picoseconds.
///
/// ```
/// use uwb_sim::time::Picoseconds;
/// let pulse = Picoseconds::from_nanos(2.0);
/// assert_eq!(pulse.as_ps(), 2000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Picoseconds(f64);

impl Picoseconds {
    /// Creates a duration from picoseconds.
    pub const fn new(ps: f64) -> Self {
        Picoseconds(ps)
    }

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Picoseconds(ns * 1e3)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Picoseconds(us * 1e6)
    }

    /// Creates a duration from seconds.
    pub fn from_secs(s: f64) -> Self {
        Picoseconds(s * 1e12)
    }

    /// The value in picoseconds.
    pub fn as_ps(self) -> f64 {
        self.0
    }

    /// The value in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 * 1e-3
    }

    /// The value in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 * 1e-6
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 * 1e-12
    }

    /// Number of whole samples this duration spans at `rate`.
    pub fn to_samples(self, rate: SampleRate) -> usize {
        (self.as_secs() * rate.as_hz()).round().max(0.0) as usize
    }
}

impl fmt::Display for Picoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e6 {
            write!(f, "{:.3} µs", self.as_us())
        } else if self.0.abs() >= 1e3 {
            write!(f, "{:.3} ns", self.as_ns())
        } else {
            write!(f, "{:.1} ps", self.0)
        }
    }
}

impl Add for Picoseconds {
    type Output = Picoseconds;
    fn add(self, rhs: Picoseconds) -> Picoseconds {
        Picoseconds(self.0 + rhs.0)
    }
}

impl Sub for Picoseconds {
    type Output = Picoseconds;
    fn sub(self, rhs: Picoseconds) -> Picoseconds {
        Picoseconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Picoseconds {
    type Output = Picoseconds;
    fn mul(self, rhs: f64) -> Picoseconds {
        Picoseconds(self.0 * rhs)
    }
}

impl Div<f64> for Picoseconds {
    type Output = Picoseconds;
    fn div(self, rhs: f64) -> Picoseconds {
        Picoseconds(self.0 / rhs)
    }
}

/// A frequency in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hertz(f64);

impl Hertz {
    /// Creates a frequency from hertz.
    pub const fn new(hz: f64) -> Self {
        Hertz(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// The value in hertz.
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// The value in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0 * 1e-6
    }

    /// The value in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 * 1e-9
    }

    /// The period of one cycle.
    pub fn period(self) -> Picoseconds {
        Picoseconds::from_secs(1.0 / self.0)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e9 {
            write!(f, "{:.4} GHz", self.as_ghz())
        } else if self.0.abs() >= 1e6 {
            write!(f, "{:.3} MHz", self.as_mhz())
        } else {
            write!(f, "{:.1} Hz", self.0)
        }
    }
}

impl Add for Hertz {
    type Output = Hertz;
    fn add(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 + rhs.0)
    }
}

impl Sub for Hertz {
    type Output = Hertz;
    fn sub(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 - rhs.0)
    }
}

impl Mul<f64> for Hertz {
    type Output = Hertz;
    fn mul(self, rhs: f64) -> Hertz {
        Hertz(self.0 * rhs)
    }
}

/// A sampling rate in samples per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SampleRate(f64);

impl SampleRate {
    /// Creates a sample rate.
    ///
    /// # Panics
    ///
    /// Panics if `sps` is not strictly positive and finite.
    pub fn new(sps: f64) -> Self {
        assert!(sps > 0.0 && sps.is_finite(), "sample rate must be positive");
        SampleRate(sps)
    }

    /// Creates a sample rate in gigasamples per second.
    pub fn from_gsps(gsps: f64) -> Self {
        SampleRate::new(gsps * 1e9)
    }

    /// Creates a sample rate in megasamples per second.
    pub fn from_msps(msps: f64) -> Self {
        SampleRate::new(msps * 1e6)
    }

    /// Samples per second.
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// Gigasamples per second.
    pub fn as_gsps(self) -> f64 {
        self.0 * 1e-9
    }

    /// The sample interval.
    pub fn sample_period(self) -> Picoseconds {
        Picoseconds::from_secs(1.0 / self.0)
    }

    /// Duration of `n` samples.
    pub fn duration_of(self, n: usize) -> Picoseconds {
        Picoseconds::from_secs(n as f64 / self.0)
    }

    /// Converts a normalized frequency (cycles/sample) to hertz.
    pub fn to_hz(self, normalized: f64) -> Hertz {
        Hertz::new(normalized * self.0)
    }

    /// Converts hertz to a normalized frequency (cycles/sample).
    pub fn normalize(self, f: Hertz) -> f64 {
        f.as_hz() / self.0
    }
}

impl fmt::Display for SampleRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GS/s", self.as_gsps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picoseconds_conversions() {
        let t = Picoseconds::from_micros(70.0);
        assert_eq!(t.as_us(), 70.0);
        assert_eq!(t.as_ns(), 70_000.0);
        assert_eq!(t.as_ps(), 70_000_000.0);
        assert!((Picoseconds::from_secs(1e-9).as_ns() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn picoseconds_arithmetic() {
        let a = Picoseconds::new(100.0);
        let b = Picoseconds::new(50.0);
        assert_eq!((a + b).as_ps(), 150.0);
        assert_eq!((a - b).as_ps(), 50.0);
        assert_eq!((a * 2.0).as_ps(), 200.0);
        assert_eq!((a / 4.0).as_ps(), 25.0);
    }

    #[test]
    fn hertz_conversions() {
        let f = Hertz::from_ghz(5.0);
        assert_eq!(f.as_mhz(), 5000.0);
        assert!((f.period().as_ps() - 200.0).abs() < 1e-9);
        assert_eq!((f + Hertz::from_ghz(1.0)).as_ghz(), 6.0);
        assert_eq!((f * 2.0).as_ghz(), 10.0);
    }

    #[test]
    fn sample_rate_helpers() {
        let fs = SampleRate::from_gsps(2.0); // gen1 ADC rate
        assert_eq!(fs.as_hz(), 2.0e9);
        assert!((fs.sample_period().as_ps() - 500.0).abs() < 1e-9);
        assert!((fs.duration_of(2000).as_ns() - 1000.0).abs() < 1e-6);
        assert_eq!(fs.normalize(Hertz::from_mhz(500.0)), 0.25);
        assert_eq!(fs.to_hz(0.25).as_mhz(), 500.0);
    }

    #[test]
    fn to_samples_rounding() {
        let fs = SampleRate::from_gsps(1.0);
        assert_eq!(Picoseconds::from_nanos(3.4).to_samples(fs), 3);
        assert_eq!(Picoseconds::from_nanos(3.6).to_samples(fs), 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Picoseconds::new(580.0).to_string(), "580.0 ps");
        assert_eq!(Picoseconds::from_nanos(20.0).to_string(), "20.000 ns");
        assert_eq!(Picoseconds::from_micros(70.0).to_string(), "70.000 µs");
        assert_eq!(Hertz::from_ghz(3.432).to_string(), "3.4320 GHz");
        assert_eq!(Hertz::from_mhz(528.0).to_string(), "528.000 MHz");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_sample_rate_panics() {
        SampleRate::new(-1.0);
    }
}
