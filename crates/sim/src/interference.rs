//! Narrowband interferer models.
//!
//! The paper's §1 calls out "narrowband interferers" as a defining UWB
//! challenge and §3 describes a spectral-monitoring block that estimates the
//! interferer frequency for a front-end notch filter. These generators
//! produce the interference those blocks are tested against: a continuous-
//! wave tone (the worst case for a 1-bit ADC), a modulated carrier
//! (802.11a-like), and a swept tone.

use crate::rng::Rand;
use uwb_dsp::{Complex, Nco};

/// A narrowband interferer description.
#[derive(Debug, Clone, PartialEq)]
pub struct Interferer {
    /// Offset of the interferer from the receiver's center frequency, in Hz
    /// (baseband-equivalent frequency).
    pub offset_hz: f64,
    /// Average interferer power (linear, same units as signal power).
    pub power: f64,
    /// Interferer fine structure.
    pub kind: InterfererKind,
}

/// The fine structure of a narrowband interferer.
#[derive(Debug, Clone, PartialEq)]
pub enum InterfererKind {
    /// Pure continuous-wave tone with a random starting phase.
    ContinuousWave,
    /// Tone with random BPSK modulation at `symbol_rate_hz` — approximates
    /// an OFDM subcarrier or generic digital narrowband service.
    Modulated {
        /// Symbol rate of the random BPSK modulation, in hertz.
        symbol_rate_hz: f64,
    },
    /// Tone sweeping linearly by `sweep_hz_per_s`.
    Swept {
        /// Sweep rate in hertz per second.
        sweep_hz_per_s: f64,
    },
}

impl Interferer {
    /// Convenience constructor for a CW interferer.
    pub fn cw(offset_hz: f64, power: f64) -> Self {
        Interferer {
            offset_hz,
            power,
            kind: InterfererKind::ContinuousWave,
        }
    }

    /// Generates `n` complex baseband samples of the interferer at `fs_hz`.
    pub fn generate(&self, n: usize, fs_hz: f64, rng: &mut Rand) -> Vec<Complex> {
        let amp = self.power.sqrt();
        let phase0 = rng.uniform_in(0.0, std::f64::consts::TAU);
        match &self.kind {
            InterfererKind::ContinuousWave => {
                let mut nco = Nco::with_phase(self.offset_hz, fs_hz, phase0);
                (0..n).map(|_| nco.next_complex() * amp).collect()
            }
            InterfererKind::Modulated { symbol_rate_hz } => {
                let mut nco = Nco::with_phase(self.offset_hz, fs_hz, phase0);
                let sps = (fs_hz / symbol_rate_hz).max(1.0) as usize;
                let mut out = Vec::with_capacity(n);
                let mut symbol = 1.0;
                for i in 0..n {
                    if i % sps == 0 {
                        symbol = if rng.bit() { 1.0 } else { -1.0 };
                    }
                    out.push(nco.next_complex() * (amp * symbol));
                }
                out
            }
            InterfererKind::Swept { sweep_hz_per_s } => {
                let mut out = Vec::with_capacity(n);
                let dt = 1.0 / fs_hz;
                let mut phase = phase0;
                for i in 0..n {
                    let f = self.offset_hz + sweep_hz_per_s * (i as f64 * dt);
                    phase += std::f64::consts::TAU * f * dt;
                    out.push(Complex::from_polar(amp, phase));
                }
                out
            }
        }
    }

    /// Adds the interferer to an existing signal in place of allocation
    /// (returns a new vector of the same length).
    pub fn add_to(&self, signal: &[Complex], fs_hz: f64, rng: &mut Rand) -> Vec<Complex> {
        let tone = self.generate(signal.len(), fs_hz, rng);
        signal.iter().zip(&tone).map(|(&s, &t)| s + t).collect()
    }

    /// [`Interferer::add_to`] mutating the signal in place (allocation-free).
    ///
    /// The RNG draw order (starting phase first, then any per-sample symbol
    /// draws) matches [`Interferer::generate`] exactly, so results and
    /// downstream RNG state are bit-identical to the allocating form.
    pub fn add_to_in_place(&self, signal: &mut [Complex], fs_hz: f64, rng: &mut Rand) {
        let amp = self.power.sqrt();
        let phase0 = rng.uniform_in(0.0, std::f64::consts::TAU);
        match &self.kind {
            InterfererKind::ContinuousWave => {
                let mut nco = Nco::with_phase(self.offset_hz, fs_hz, phase0);
                for z in signal.iter_mut() {
                    *z += nco.next_complex() * amp;
                }
            }
            InterfererKind::Modulated { symbol_rate_hz } => {
                let mut nco = Nco::with_phase(self.offset_hz, fs_hz, phase0);
                let sps = (fs_hz / symbol_rate_hz).max(1.0) as usize;
                let mut symbol = 1.0;
                for (i, z) in signal.iter_mut().enumerate() {
                    if i % sps == 0 {
                        symbol = if rng.bit() { 1.0 } else { -1.0 };
                    }
                    *z += nco.next_complex() * (amp * symbol);
                }
            }
            InterfererKind::Swept { sweep_hz_per_s } => {
                let dt = 1.0 / fs_hz;
                let mut phase = phase0;
                for (i, z) in signal.iter_mut().enumerate() {
                    let f = self.offset_hz + sweep_hz_per_s * (i as f64 * dt);
                    phase += std::f64::consts::TAU * f * dt;
                    *z += Complex::from_polar(amp, phase);
                }
            }
        }
    }

    /// Signal-to-interference ratio (dB) that this interferer produces
    /// against a signal of power `signal_power`.
    pub fn sir_db(&self, signal_power: f64) -> f64 {
        uwb_dsp::math::pow_to_db(signal_power / self.power)
    }
}

/// Builds an interferer whose power is set from a target SIR (dB) given the
/// signal power.
pub fn interferer_for_sir(offset_hz: f64, signal_power: f64, sir_db: f64) -> Interferer {
    Interferer::cw(offset_hz, signal_power / uwb_dsp::math::db_to_pow(sir_db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_dsp::complex::mean_power;
    use uwb_dsp::psd::welch;
    use uwb_dsp::Window;

    #[test]
    fn cw_power_calibrated() {
        let mut rng = Rand::new(1);
        let intf = Interferer::cw(50e6, 4.0);
        let sig = intf.generate(10_000, 1e9, &mut rng);
        let p = mean_power(&sig);
        assert!((p - 4.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn cw_lands_at_offset() {
        let mut rng = Rand::new(2);
        let fs = 1e9;
        let f0 = 125e6;
        let intf = Interferer::cw(f0, 1.0);
        let sig = intf.generate(8192, fs, &mut rng);
        let psd = welch(&sig, fs, 2048, Window::Hann);
        assert!((psd.peak_frequency() - f0).abs() < fs / 2048.0);
    }

    #[test]
    fn modulated_power_and_bandwidth() {
        let mut rng = Rand::new(3);
        let fs = 1e9;
        let intf = Interferer {
            offset_hz: -100e6,
            power: 2.0,
            kind: InterfererKind::Modulated {
                symbol_rate_hz: 20e6,
            },
        };
        let sig = intf.generate(65_536, fs, &mut rng);
        assert!((mean_power(&sig) - 2.0).abs() < 1e-9);
        let psd = welch(&sig, fs, 4096, Window::Hann);
        assert!((psd.peak_frequency() + 100e6).abs() < 5e6);
        // Modulated: wider than a CW tone but still narrowband vs 500 MHz.
        let obw = psd.occupied_bandwidth(0.9);
        assert!(obw > 5e6 && obw < 150e6, "obw {obw}");
    }

    #[test]
    fn swept_tone_moves() {
        let mut rng = Rand::new(4);
        let fs = 1e9;
        let intf = Interferer {
            offset_hz: 10e6,
            power: 1.0,
            kind: InterfererKind::Swept {
                sweep_hz_per_s: 1e15, // 1 MHz per µs
            },
        };
        let sig = intf.generate(32_768, fs, &mut rng);
        let early = welch(&sig[..8192], fs, 4096, Window::Hann).peak_frequency();
        let late =
            welch(&sig[24_576..], fs, 4096, Window::Hann).peak_frequency();
        assert!(late > early + 5e6, "sweep did not move: {early} -> {late}");
    }

    #[test]
    fn add_to_superimposes() {
        let mut rng = Rand::new(5);
        let base = vec![Complex::ONE; 1000];
        let intf = Interferer::cw(0.0, 1.0); // DC interferer adds a phasor
        let out = intf.add_to(&base, 1e9, &mut rng);
        assert_eq!(out.len(), base.len());
        // Powers add only on average for uncorrelated phases; check amplitude range.
        assert!(out.iter().all(|z| z.norm() <= 2.0 + 1e-12));
    }

    #[test]
    fn add_to_in_place_matches_allocating_bitwise() {
        let base: Vec<Complex> = (0..500).map(|i| Complex::new(0.01 * i as f64, -1.0)).collect();
        for kind in [
            InterfererKind::ContinuousWave,
            InterfererKind::Modulated { symbol_rate_hz: 20e6 },
            InterfererKind::Swept { sweep_hz_per_s: 1e14 },
        ] {
            let intf = Interferer {
                offset_hz: 55e6,
                power: 2.5,
                kind,
            };
            let want = intf.add_to(&base, 1e9, &mut Rand::new(31));
            let mut buf = base.clone();
            let mut rng = Rand::new(31);
            intf.add_to_in_place(&mut buf, 1e9, &mut rng);
            assert_eq!(buf, want);
        }
    }

    #[test]
    fn sir_helpers() {
        let intf = interferer_for_sir(0.0, 1.0, -20.0);
        // SIR -20 dB means interferer 100x the signal.
        assert!((intf.power - 100.0).abs() < 1e-9);
        assert!((intf.sir_db(1.0) + 20.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let intf = Interferer::cw(77e6, 3.0);
        let a = intf.generate(64, 1e9, &mut Rand::new(9));
        let b = intf.generate(64, 1e9, &mut Rand::new(9));
        assert_eq!(a, b);
    }
}
