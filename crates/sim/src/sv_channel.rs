//! IEEE 802.15.3a Saleh–Valenzuela multipath channel model.
//!
//! The paper's receiver must survive "severe multipath conditions (rms delay
//! spread of the channel on the order of 20 ns)". The 802.15.3a channel
//! modeling subcommittee's Saleh–Valenzuela variant (CM1–CM4) is the model
//! the UWB community — including the authors' group — standardized on for
//! exactly this evaluation, so it is the substrate here.
//!
//! Clusters arrive as a Poisson process with rate Λ; rays within a cluster
//! arrive with rate λ; mean tap energy decays double-exponentially with
//! cluster decay Γ and ray decay γ; per-tap fading is log-normal with random
//! polarity (equivalently uniform phase at complex baseband).

use crate::rng::Rand;
use crate::time::SampleRate;
use uwb_dsp::{Complex, DspScratch};

/// Channel environment selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelModel {
    /// AWGN only — single unit tap, no multipath.
    Awgn,
    /// CM1: line-of-sight, 0–4 m. rms delay spread ≈ 5 ns.
    Cm1,
    /// CM2: non-line-of-sight, 0–4 m. rms ≈ 8 ns.
    Cm2,
    /// CM3: NLOS, 4–10 m. rms ≈ 14 ns.
    Cm3,
    /// CM4: extreme NLOS. rms ≈ 25 ns — the paper's "~20 ns" regime sits
    /// between CM3 and CM4.
    Cm4,
}

impl ChannelModel {
    /// The standard parameter set for this environment, `None` for
    /// [`ChannelModel::Awgn`].
    pub fn parameters(self) -> Option<SvParams> {
        match self {
            ChannelModel::Awgn => None,
            ChannelModel::Cm1 => Some(SvParams {
                cluster_rate: 0.0233,
                ray_rate: 2.5,
                cluster_decay: 7.1,
                ray_decay: 4.3,
                fading_sigma_db: 3.3941,
            }),
            ChannelModel::Cm2 => Some(SvParams {
                cluster_rate: 0.4,
                ray_rate: 0.5,
                cluster_decay: 5.5,
                ray_decay: 6.7,
                fading_sigma_db: 3.3941,
            }),
            ChannelModel::Cm3 => Some(SvParams {
                cluster_rate: 0.0667,
                ray_rate: 2.1,
                cluster_decay: 14.0,
                ray_decay: 7.9,
                fading_sigma_db: 3.3941,
            }),
            ChannelModel::Cm4 => Some(SvParams {
                cluster_rate: 0.0667,
                ray_rate: 2.1,
                cluster_decay: 24.0,
                ray_decay: 12.0,
                fading_sigma_db: 3.3941,
            }),
        }
    }

    /// Nominal rms delay spread of the environment in nanoseconds (from the
    /// 802.15.3a final report).
    pub fn nominal_rms_ns(self) -> f64 {
        match self {
            ChannelModel::Awgn => 0.0,
            ChannelModel::Cm1 => 5.28,
            ChannelModel::Cm2 => 8.03,
            ChannelModel::Cm3 => 14.28,
            ChannelModel::Cm4 => 25.0,
        }
    }
}

impl std::fmt::Display for ChannelModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ChannelModel::Awgn => "AWGN",
            ChannelModel::Cm1 => "CM1",
            ChannelModel::Cm2 => "CM2",
            ChannelModel::Cm3 => "CM3",
            ChannelModel::Cm4 => "CM4",
        };
        f.write_str(s)
    }
}

/// Saleh–Valenzuela model parameters (rates in 1/ns, decays in ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvParams {
    /// Cluster arrival rate Λ (1/ns).
    pub cluster_rate: f64,
    /// Ray arrival rate λ within a cluster (1/ns).
    pub ray_rate: f64,
    /// Cluster energy decay constant Γ (ns).
    pub cluster_decay: f64,
    /// Ray energy decay constant γ (ns).
    pub ray_decay: f64,
    /// Log-normal fading standard deviation per tap (dB).
    pub fading_sigma_db: f64,
}

/// A continuous-time tap: `(delay in ns, complex gain)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tap {
    /// Arrival delay in nanoseconds relative to the first path.
    pub delay_ns: f64,
    /// Complex gain of the path.
    pub gain: Complex,
}

/// A realized channel: continuous taps plus helpers to discretize and apply.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelRealization {
    taps: Vec<Tap>,
}

/// Stable insertion sort by delay — the identical permutation a stable
/// `slice::sort_by` produces, but without that sort's temporary-buffer
/// allocation. Tap counts are small (tens to a few hundred), so the O(n²)
/// worst case never matters; what matters is that the per-trial
/// [`ChannelRealization::regenerate`] path stays allocation-free.
fn sort_taps_stable(taps: &mut [Tap]) {
    for i in 1..taps.len() {
        let mut j = i;
        while j > 0 && taps[j - 1].delay_ns > taps[j].delay_ns {
            taps.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Normalizes total tap energy to one and sorts by delay, in place.
fn finalize_taps(taps: &mut [Tap]) {
    assert!(!taps.is_empty(), "channel needs at least one tap");
    let energy: f64 = taps.iter().map(|t| t.gain.norm_sqr()).sum();
    assert!(energy > 0.0, "channel taps must carry energy");
    let scale = 1.0 / energy.sqrt();
    for t in taps.iter_mut() {
        t.gain = t.gain * scale;
    }
    sort_taps_stable(taps);
}

impl ChannelRealization {
    /// A single unit tap at zero delay (the AWGN channel).
    pub fn identity() -> Self {
        ChannelRealization {
            taps: vec![Tap {
                delay_ns: 0.0,
                gain: Complex::ONE,
            }],
        }
    }

    /// Builds a realization from explicit taps, normalizing total energy to
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty or all gains are zero.
    pub fn from_taps(mut taps: Vec<Tap>) -> Self {
        finalize_taps(&mut taps);
        ChannelRealization { taps }
    }

    /// Draws a random realization of `model` (normalized to unit energy).
    /// [`ChannelModel::Awgn`] yields the identity channel.
    pub fn generate(model: ChannelModel, rng: &mut Rand) -> Self {
        let mut c = ChannelRealization::identity();
        c.regenerate(model, rng);
        c
    }

    /// Draws a random Saleh–Valenzuela realization with explicit parameters.
    pub fn generate_sv(p: &SvParams, rng: &mut Rand) -> Self {
        let mut c = ChannelRealization::identity();
        c.regenerate_sv(p, rng);
        c
    }

    /// Redraws this realization from `model`, reusing the existing tap
    /// storage. Identical RNG draw order and results as
    /// [`ChannelRealization::generate`], but allocation-free once the tap
    /// buffer has reached its high-water capacity — the per-trial form used
    /// by the Monte-Carlo workers.
    pub fn regenerate(&mut self, model: ChannelModel, rng: &mut Rand) {
        match model.parameters() {
            None => {
                self.taps.clear();
                self.taps.push(Tap {
                    delay_ns: 0.0,
                    gain: Complex::ONE,
                });
            }
            Some(p) => self.regenerate_sv(&p, rng),
        }
    }

    /// Redraws a Saleh–Valenzuela realization in place (see
    /// [`ChannelRealization::regenerate`]).
    pub fn regenerate_sv(&mut self, p: &SvParams, rng: &mut Rand) {
        // Truncate the profile when mean energy has decayed by ~50 dB.
        let max_cluster_delay = 5.0 * p.cluster_decay;
        let max_ray_excess = 5.0 * p.ray_decay;
        let sigma_ln = p.fading_sigma_db * std::f64::consts::LN_10 / 20.0;

        let taps = &mut self.taps;
        taps.clear();
        let mut t_cluster = 0.0; // first cluster at 0 by convention
        while t_cluster <= max_cluster_delay {
            let mut tau = 0.0; // first ray of each cluster at the cluster time
            while tau <= max_ray_excess {
                let mean_energy =
                    (-t_cluster / p.cluster_decay).exp() * (-tau / p.ray_decay).exp();
                // Log-normal amplitude fading about the mean energy, with the
                // standard -sigma^2/2 correction so E[|g|^2] = mean_energy.
                let x = rng.gaussian() * sigma_ln;
                let amp = (mean_energy.sqrt()) * (x - sigma_ln * sigma_ln / 2.0).exp();
                // Random polarity (baseband equivalent: uniform phase).
                let phase = rng.uniform_in(0.0, std::f64::consts::TAU);
                taps.push(Tap {
                    delay_ns: t_cluster + tau,
                    gain: Complex::from_polar(amp, phase),
                });
                tau += rng.exponential(p.ray_rate);
            }
            t_cluster += rng.exponential(p.cluster_rate);
        }
        finalize_taps(taps);
    }

    /// The continuous-time taps, sorted by delay.
    pub fn taps(&self) -> &[Tap] {
        &self.taps
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Always `false`: construction guarantees at least one tap.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total energy of the taps (1.0 after normalization).
    pub fn energy(&self) -> f64 {
        self.taps.iter().map(|t| t.gain.norm_sqr()).sum()
    }

    /// Mean excess delay in nanoseconds (energy-weighted mean of delays).
    pub fn mean_excess_delay_ns(&self) -> f64 {
        let e = self.energy();
        self.taps
            .iter()
            .map(|t| t.delay_ns * t.gain.norm_sqr())
            .sum::<f64>()
            / e
    }

    /// rms delay spread in nanoseconds.
    pub fn rms_delay_spread_ns(&self) -> f64 {
        let e = self.energy();
        let mu = self.mean_excess_delay_ns();
        let m2 = self
            .taps
            .iter()
            .map(|t| t.delay_ns * t.delay_ns * t.gain.norm_sqr())
            .sum::<f64>()
            / e;
        (m2 - mu * mu).max(0.0).sqrt()
    }

    /// Maximum excess delay in nanoseconds.
    pub fn max_excess_delay_ns(&self) -> f64 {
        self.taps.last().map_or(0.0, |t| t.delay_ns)
    }

    /// Discretizes the channel into a sampled impulse response at `fs`.
    /// Each continuous tap is accumulated into its nearest sample bin.
    pub fn discretize(&self, fs: SampleRate) -> Vec<Complex> {
        let mut h = Vec::new();
        self.discretize_into(fs, &mut h);
        h
    }

    /// [`ChannelRealization::discretize`] writing into a caller-owned buffer
    /// (cleared and refilled; allocation-free once its capacity suffices).
    pub fn discretize_into(&self, fs: SampleRate, h: &mut Vec<Complex>) {
        let ts_ns = 1e9 / fs.as_hz();
        let n = (self.max_excess_delay_ns() / ts_ns).round() as usize + 1;
        h.clear();
        h.resize(n, Complex::ZERO);
        for t in &self.taps {
            let k = (t.delay_ns / ts_ns).round() as usize;
            h[k.min(n - 1)] += t.gain;
        }
    }

    /// Convolves a complex baseband signal with the discretized channel
    /// ("same" length as `input` plus the channel tail).
    pub fn apply(&self, input: &[Complex], fs: SampleRate) -> Vec<Complex> {
        let h = self.discretize(fs);
        if h.len() == 1 {
            // Single-tap channel (e.g. AWGN's identity): plain scaling —
            // exact, and orders of magnitude cheaper than the FFT path.
            return input.iter().map(|&z| z * h[0]).collect();
        }
        uwb_dsp::fft::fft_convolve(input, &h)
    }

    /// [`ChannelRealization::apply`] computing into caller-owned storage.
    ///
    /// Bit-identical to `apply`; the discretized impulse response and FFT
    /// work buffers come from `scratch`, so steady-state per-trial use is
    /// allocation-free.
    pub fn apply_into(
        &self,
        input: &[Complex],
        fs: SampleRate,
        scratch: &mut DspScratch,
        out: &mut Vec<Complex>,
    ) {
        let mut h = scratch.take_complex(0);
        self.discretize_into(fs, &mut h);
        if h.len() == 1 {
            let g = h[0];
            out.clear();
            out.extend(input.iter().map(|&z| z * g));
        } else {
            uwb_dsp::fft::fft_convolve_into(input, &h, scratch, out);
        }
        scratch.put_complex(h);
    }

    /// Energy captured by the `n` strongest taps, as a fraction of total —
    /// the quantity a selective-RAKE receiver can collect.
    pub fn energy_capture(&self, n: usize) -> f64 {
        let mut energies: Vec<f64> = self.taps.iter().map(|t| t.gain.norm_sqr()).collect();
        energies.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = energies.iter().sum();
        energies.iter().take(n).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_channel() {
        let c = ChannelRealization::identity();
        assert_eq!(c.len(), 1);
        assert_eq!(c.rms_delay_spread_ns(), 0.0);
        assert!((c.energy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_to_unit_energy() {
        let mut rng = Rand::new(1);
        for model in [ChannelModel::Cm1, ChannelModel::Cm3] {
            let c = ChannelRealization::generate(model, &mut rng);
            assert!((c.energy() - 1.0).abs() < 1e-9, "{model}");
        }
    }

    #[test]
    fn rms_delay_spread_orders_by_model() {
        // Ensemble averages must order CM1 < CM2 < CM3 < CM4 and be near the
        // nominal published values.
        let mut rng = Rand::new(42);
        let mut avg = |m: ChannelModel| {
            let n = 60;
            (0..n)
                .map(|_| ChannelRealization::generate(m, &mut rng).rms_delay_spread_ns())
                .sum::<f64>()
                / n as f64
        };
        let r1 = avg(ChannelModel::Cm1);
        let r2 = avg(ChannelModel::Cm2);
        let r3 = avg(ChannelModel::Cm3);
        let r4 = avg(ChannelModel::Cm4);
        assert!(r1 < r2 && r2 < r3 && r3 < r4, "{r1} {r2} {r3} {r4}");
        // Within a factor ~2 of nominal (short truncation biases slightly low).
        assert!(r1 > 2.0 && r1 < 11.0, "CM1 rms {r1}");
        assert!(r3 > 7.0 && r3 < 28.0, "CM3 rms {r3}");
        assert!(r4 > 12.0 && r4 < 50.0, "CM4 rms {r4}");
    }

    #[test]
    fn cm3_is_paper_regime() {
        // CM3/CM4 bracket the paper's "~20 ns" claim.
        assert!(ChannelModel::Cm3.nominal_rms_ns() < 20.0);
        assert!(ChannelModel::Cm4.nominal_rms_ns() > 20.0);
    }

    #[test]
    fn determinism_with_seed() {
        let a = ChannelRealization::generate(ChannelModel::Cm2, &mut Rand::new(7));
        let b = ChannelRealization::generate(ChannelModel::Cm2, &mut Rand::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn regenerate_matches_generate_bitwise() {
        // Same seed, same draw order: the in-place redraw must be identical
        // to a fresh generate, for both AWGN and multipath models.
        for model in [ChannelModel::Awgn, ChannelModel::Cm2, ChannelModel::Cm4] {
            let fresh = ChannelRealization::generate(model, &mut Rand::new(99));
            let mut reused = ChannelRealization::generate(ChannelModel::Cm1, &mut Rand::new(1));
            reused.regenerate(model, &mut Rand::new(99));
            assert_eq!(fresh, reused, "{model}");
        }
    }

    #[test]
    fn apply_into_matches_apply_bitwise() {
        let mut rng = Rand::new(11);
        let fs = SampleRate::from_gsps(2.0);
        let sig: Vec<Complex> = (0..300)
            .map(|i| Complex::new((0.2 * i as f64).sin(), (0.13 * i as f64).cos()))
            .collect();
        let mut scratch = uwb_dsp::DspScratch::new();
        let mut out = Vec::new();
        for model in [ChannelModel::Awgn, ChannelModel::Cm1, ChannelModel::Cm3] {
            let c = ChannelRealization::generate(model, &mut rng);
            let want = c.apply(&sig, fs);
            c.apply_into(&sig, fs, &mut scratch, &mut out);
            assert_eq!(out, want, "{model}");
        }
    }

    #[test]
    fn discretization_preserves_energy_roughly() {
        let mut rng = Rand::new(3);
        let c = ChannelRealization::generate(ChannelModel::Cm1, &mut rng);
        let h = c.discretize(SampleRate::from_gsps(2.0));
        let e: f64 = h.iter().map(|z| z.norm_sqr()).sum();
        // Bin-collisions can add coherently/destructively; allow slack.
        assert!(e > 0.5 && e < 2.0, "discretized energy {e}");
        assert!(!h.is_empty());
    }

    #[test]
    fn apply_extends_signal_by_tail() {
        let mut rng = Rand::new(4);
        let c = ChannelRealization::generate(ChannelModel::Cm1, &mut rng);
        let fs = SampleRate::from_gsps(1.0);
        let sig = vec![Complex::ONE; 100];
        let out = c.apply(&sig, fs);
        let h = c.discretize(fs);
        assert_eq!(out.len(), 100 + h.len() - 1);
    }

    #[test]
    fn identity_apply_is_passthrough() {
        let c = ChannelRealization::identity();
        let fs = SampleRate::from_gsps(1.0);
        let sig: Vec<Complex> = (0..10).map(|i| Complex::new(i as f64, 0.0)).collect();
        let out = c.apply(&sig, fs);
        for (a, b) in sig.iter().zip(&out) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn energy_capture_monotonic() {
        let mut rng = Rand::new(5);
        let c = ChannelRealization::generate(ChannelModel::Cm3, &mut rng);
        let mut prev = 0.0;
        for n in [1, 2, 4, 8, 16, 1000] {
            let e = c.energy_capture(n);
            assert!(e >= prev);
            assert!(e <= 1.0 + 1e-9);
            prev = e;
        }
        assert!((c.energy_capture(100_000) - 1.0).abs() < 1e-9);
        // A few fingers should capture a meaningful fraction but not all.
        let few = c.energy_capture(4);
        assert!(few > 0.05 && few < 1.0, "{few}");
    }

    #[test]
    fn taps_sorted_by_delay() {
        let mut rng = Rand::new(6);
        let c = ChannelRealization::generate(ChannelModel::Cm4, &mut rng);
        for w in c.taps().windows(2) {
            assert!(w[0].delay_ns <= w[1].delay_ns);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_panic() {
        ChannelRealization::from_taps(Vec::new());
    }
}
