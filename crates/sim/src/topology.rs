//! Piconet geometry: node positions and pairwise path gains.
//!
//! The network simulator places transmitter/receiver pairs on a floor plan
//! and needs, for every (victim receiver, foreign transmitter) pair, the
//! *relative* path gain of the interfering path against the victim's own
//! signal path. This module provides the geometry and the pairwise loss
//! table; spectral (channel-separation) attenuation is layered on top by
//! the network crate.

use crate::pathloss::log_distance_path_loss_db;
use crate::time::Hertz;

/// A node position on the floor plan, in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance_m(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// One transmitter→receiver pair placed on the floor plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkGeometry {
    /// Transmitter position.
    pub tx: Position,
    /// Receiver position.
    pub rx: Position,
}

impl LinkGeometry {
    /// Creates a link between `tx` and `rx`.
    pub fn new(tx: Position, rx: Position) -> LinkGeometry {
        LinkGeometry { tx, rx }
    }

    /// Own-link distance, in metres.
    pub fn distance_m(&self) -> f64 {
        self.tx.distance_m(&self.rx)
    }
}

/// The full floor plan: a set of links plus the propagation exponent.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// The links, indexed by link id.
    pub links: Vec<LinkGeometry>,
    /// Log-distance path-loss exponent (1.7 LOS … 3.5 NLOS indoor).
    pub path_loss_exponent: f64,
    /// Minimum separation clamp (m) applied to every distance to keep the
    /// far-field path-loss model out of its near-field singularity.
    pub min_distance_m: f64,
}

impl Topology {
    /// Creates a topology from explicit link geometries with the default
    /// indoor-LOS-ish exponent of 2.0 and a 0.1 m near-field clamp.
    pub fn new(links: Vec<LinkGeometry>) -> Topology {
        Topology {
            links,
            path_loss_exponent: 2.0,
            min_distance_m: 0.1,
        }
    }

    /// A deterministic ring layout: `n` links whose transmitters sit on a
    /// circle of radius `ring_radius_m` and whose receivers sit
    /// `link_distance_m` radially outward from their transmitter. Adjacent
    /// pairs are therefore geometric neighbours — a worst-ish case for
    /// co-channel interference without any randomness.
    pub fn ring(n: usize, ring_radius_m: f64, link_distance_m: f64) -> Topology {
        let links = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
                let (s, c) = theta.sin_cos();
                let tx = Position::new(ring_radius_m * c, ring_radius_m * s);
                let rx = Position::new(
                    (ring_radius_m + link_distance_m) * c,
                    (ring_radius_m + link_distance_m) * s,
                );
                LinkGeometry::new(tx, rx)
            })
            .collect();
        Topology::new(links)
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` if the topology has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Distance (m) from link `tx_link`'s transmitter to link `rx_link`'s
    /// receiver, clamped to `min_distance_m`.
    pub fn distance_m(&self, tx_link: usize, rx_link: usize) -> f64 {
        self.links[tx_link]
            .tx
            .distance_m(&self.links[rx_link].rx)
            .max(self.min_distance_m)
    }

    /// Path loss (dB) from link `tx_link`'s transmitter to link `rx_link`'s
    /// receiver at carrier frequency `f`.
    pub fn path_loss_db(&self, tx_link: usize, rx_link: usize, f: Hertz) -> f64 {
        log_distance_path_loss_db(self.distance_m(tx_link, rx_link), f, self.path_loss_exponent)
    }

    /// Relative gain (dB, usually ≤ 0) of the interfering path from link
    /// `tx_link`'s transmitter into link `rx_link`'s receiver, *referenced
    /// to the victim's own signal path*:
    ///
    /// `rel = PL(own tx → own rx) − PL(foreign tx → own rx)`
    ///
    /// evaluated at the victim's carrier `f` (path loss varies slowly over a
    /// channel separation compared to the selectivity terms layered on top).
    /// A foreign transmitter closer to the victim receiver than the victim's
    /// own transmitter yields a *positive* relative gain — the near–far
    /// problem of multi-user impulse radio.
    pub fn relative_gain_db(&self, tx_link: usize, rx_link: usize, f: Hertz) -> f64 {
        self.path_loss_db(rx_link, rx_link, f) - self.path_loss_db(tx_link, rx_link, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_m(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_m(&a), 0.0);
    }

    #[test]
    fn ring_layout_geometry() {
        let topo = Topology::ring(8, 4.0, 1.0);
        assert_eq!(topo.len(), 8);
        for link in &topo.links {
            assert!((link.distance_m() - 1.0).abs() < 1e-9);
        }
        // Own-link distance equals diag of the pair table.
        for i in 0..8 {
            assert!((topo.distance_m(i, i) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn own_path_relative_gain_is_zero() {
        let topo = Topology::ring(4, 3.0, 1.0);
        let f = Hertz::from_ghz(3.432);
        for i in 0..4 {
            assert!((topo.relative_gain_db(i, i, f)).abs() < 1e-12);
        }
    }

    #[test]
    fn farther_interferer_is_weaker() {
        let topo = Topology::ring(8, 4.0, 1.0);
        let f = Hertz::from_ghz(3.432);
        // Neighbour TX (1 step around the ring) is closer to RX 0 than the
        // TX 4 on the opposite side, so its relative gain is higher.
        let near = topo.relative_gain_db(1, 0, f);
        let far = topo.relative_gain_db(4, 0, f);
        assert!(near > far, "{near} vs {far}");
        // Both interferers are farther from rx0 than its own 1 m tx.
        assert!(near < 0.0);
    }

    #[test]
    fn near_far_problem_visible() {
        // Foreign TX right next to the victim RX → positive relative gain.
        let links = vec![
            LinkGeometry::new(Position::new(0.0, 0.0), Position::new(5.0, 0.0)),
            LinkGeometry::new(Position::new(5.2, 0.0), Position::new(9.0, 0.0)),
        ];
        let topo = Topology::new(links);
        let f = Hertz::from_ghz(5.016);
        assert!(topo.relative_gain_db(1, 0, f) > 0.0);
    }

    #[test]
    fn min_distance_clamp() {
        let links = vec![
            LinkGeometry::new(Position::new(0.0, 0.0), Position::new(1.0, 0.0)),
            LinkGeometry::new(Position::new(1.0, 0.0), Position::new(2.0, 0.0)),
        ];
        let topo = Topology::new(links);
        // TX 1 sits exactly on RX 0; the clamp keeps path loss finite.
        assert_eq!(topo.distance_m(1, 0), 0.1);
        assert!(topo.path_loss_db(1, 0, Hertz::from_ghz(4.0)).is_finite());
    }
}
