//! Piconet geometry: node positions and pairwise path gains.
//!
//! The network simulator places transmitter/receiver pairs on a floor plan
//! and needs, for every (victim receiver, foreign transmitter) pair, the
//! *relative* path gain of the interfering path against the victim's own
//! signal path. This module provides the geometry and the pairwise loss
//! table; spectral (channel-separation) attenuation is layered on top by
//! the network crate.

use crate::pathloss::log_distance_path_loss_db;
use crate::rng::Rand;
use crate::time::Hertz;

/// A node position on the floor plan, in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance_m(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// One transmitter→receiver pair placed on the floor plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkGeometry {
    /// Transmitter position.
    pub tx: Position,
    /// Receiver position.
    pub rx: Position,
}

impl LinkGeometry {
    /// Creates a link between `tx` and `rx`.
    pub fn new(tx: Position, rx: Position) -> LinkGeometry {
        LinkGeometry { tx, rx }
    }

    /// Own-link distance, in metres.
    pub fn distance_m(&self) -> f64 {
        self.tx.distance_m(&self.rx)
    }
}

/// The full floor plan: a set of links plus the propagation exponent.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// The links, indexed by link id.
    pub links: Vec<LinkGeometry>,
    /// Log-distance path-loss exponent (1.7 LOS … 3.5 NLOS indoor).
    pub path_loss_exponent: f64,
    /// Minimum separation clamp (m) applied to every distance to keep the
    /// far-field path-loss model out of its near-field singularity.
    pub min_distance_m: f64,
}

impl Topology {
    /// Creates a topology from explicit link geometries with the default
    /// indoor-LOS-ish exponent of 2.0 and a 0.1 m near-field clamp.
    pub fn new(links: Vec<LinkGeometry>) -> Topology {
        Topology {
            links,
            path_loss_exponent: 2.0,
            min_distance_m: 0.1,
        }
    }

    /// A deterministic ring layout: `n` links whose transmitters sit on a
    /// circle of radius `ring_radius_m` and whose receivers sit
    /// `link_distance_m` radially outward from their transmitter. Adjacent
    /// pairs are therefore geometric neighbours — a worst-ish case for
    /// co-channel interference without any randomness.
    pub fn ring(n: usize, ring_radius_m: f64, link_distance_m: f64) -> Topology {
        let links = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
                let (s, c) = theta.sin_cos();
                let tx = Position::new(ring_radius_m * c, ring_radius_m * s);
                let rx = Position::new(
                    (ring_radius_m + link_distance_m) * c,
                    (ring_radius_m + link_distance_m) * s,
                );
                LinkGeometry::new(tx, rx)
            })
            .collect();
        Topology::new(links)
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` if the topology has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Distance (m) from link `tx_link`'s transmitter to link `rx_link`'s
    /// receiver, clamped to `min_distance_m`.
    pub fn distance_m(&self, tx_link: usize, rx_link: usize) -> f64 {
        self.links[tx_link]
            .tx
            .distance_m(&self.links[rx_link].rx)
            .max(self.min_distance_m)
    }

    /// Path loss (dB) from link `tx_link`'s transmitter to link `rx_link`'s
    /// receiver at carrier frequency `f`.
    pub fn path_loss_db(&self, tx_link: usize, rx_link: usize, f: Hertz) -> f64 {
        log_distance_path_loss_db(self.distance_m(tx_link, rx_link), f, self.path_loss_exponent)
    }

    /// Relative gain (dB, usually ≤ 0) of the interfering path from link
    /// `tx_link`'s transmitter into link `rx_link`'s receiver, *referenced
    /// to the victim's own signal path*:
    ///
    /// `rel = PL(own tx → own rx) − PL(foreign tx → own rx)`
    ///
    /// evaluated at the victim's carrier `f` (path loss varies slowly over a
    /// channel separation compared to the selectivity terms layered on top).
    /// A foreign transmitter closer to the victim receiver than the victim's
    /// own transmitter yields a *positive* relative gain — the near–far
    /// problem of multi-user impulse radio.
    pub fn relative_gain_db(&self, tx_link: usize, rx_link: usize, f: Hertz) -> f64 {
        self.path_loss_db(rx_link, rx_link, f) - self.path_loss_db(tx_link, rx_link, f)
    }

    /// A clustered floor plan — the "city" layout: `clusters` piconet
    /// clusters arranged on a square grid with `cluster_spacing_m` pitch,
    /// each holding `per_cluster` links whose transmitters are placed
    /// uniformly inside a disc of `cluster_radius_m` and whose receivers sit
    /// `link_distance_m` away at a uniform angle. Deterministic: the layout
    /// is a pure function of `seed`.
    pub fn clustered(
        clusters: usize,
        per_cluster: usize,
        cluster_spacing_m: f64,
        cluster_radius_m: f64,
        link_distance_m: f64,
        seed: u64,
    ) -> Topology {
        let mut rng = Rand::new(seed ^ 0x70_70_6f_6c_6f_67_79); // "topology"
        let side = (clusters as f64).sqrt().ceil() as usize;
        let mut links = Vec::with_capacity(clusters * per_cluster);
        for c in 0..clusters {
            let cx = (c % side.max(1)) as f64 * cluster_spacing_m;
            let cy = (c / side.max(1)) as f64 * cluster_spacing_m;
            for _ in 0..per_cluster {
                // Uniform in the disc: sqrt-radius × uniform angle.
                let r = cluster_radius_m * rng.uniform().sqrt();
                let phi = rng.uniform_in(0.0, 2.0 * std::f64::consts::PI);
                let tx = Position::new(cx + r * phi.cos(), cy + r * phi.sin());
                let psi = rng.uniform_in(0.0, 2.0 * std::f64::consts::PI);
                let rx = Position::new(
                    tx.x + link_distance_m * psi.cos(),
                    tx.y + link_distance_m * psi.sin(),
                );
                links.push(LinkGeometry::new(tx, rx));
            }
        }
        Topology::new(links)
    }

    /// Builds a uniform [`SpatialGrid`] over all **transmitter** positions
    /// with the given cell size (metres).
    pub fn grid(&self, cell_size_m: f64) -> SpatialGrid {
        SpatialGrid::from_points(self.links.iter().map(|l| l.tx).enumerate(), cell_size_m)
    }
}

/// A uniform spatial hash over a set of indexed points, built once and
/// queried many times: the plan-time structure that lets the network
/// simulator enumerate candidate interferers in ~O(k) per receiver instead
/// of scanning all N transmitters.
///
/// Query results are **deterministic and build-order independent**:
/// `within_radius_into` returns ids in ascending order, `k_nearest_into` in
/// ascending `(distance, id)` order.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_size_m: f64,
    origin: Position,
    nx: usize,
    ny: usize,
    /// CSR layout: ids of cell `c` are `items[cell_start[c]..cell_start[c+1]]`,
    /// ascending within each cell.
    cell_start: Vec<u32>,
    items: Vec<(u32, Position)>,
}

impl SpatialGrid {
    /// Builds the grid from `(id, position)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size_m` is not a positive finite number or any
    /// position is non-finite.
    pub fn from_points(
        points: impl IntoIterator<Item = (usize, Position)>,
        cell_size_m: f64,
    ) -> SpatialGrid {
        assert!(
            cell_size_m.is_finite() && cell_size_m > 0.0,
            "cell size must be positive and finite"
        );
        let pts: Vec<(u32, Position)> = points
            .into_iter()
            .map(|(id, p)| {
                assert!(p.x.is_finite() && p.y.is_finite(), "non-finite position");
                (id as u32, p)
            })
            .collect();
        if pts.is_empty() {
            return SpatialGrid {
                cell_size_m,
                origin: Position::new(0.0, 0.0),
                nx: 0,
                ny: 0,
                cell_start: vec![0],
                items: Vec::new(),
            };
        }
        let min_x = pts.iter().map(|(_, p)| p.x).fold(f64::INFINITY, f64::min);
        let min_y = pts.iter().map(|(_, p)| p.y).fold(f64::INFINITY, f64::min);
        let max_x = pts.iter().map(|(_, p)| p.x).fold(f64::NEG_INFINITY, f64::max);
        let max_y = pts.iter().map(|(_, p)| p.y).fold(f64::NEG_INFINITY, f64::max);
        let origin = Position::new(min_x, min_y);
        let nx = ((max_x - min_x) / cell_size_m).floor() as usize + 1;
        let ny = ((max_y - min_y) / cell_size_m).floor() as usize + 1;

        // Counting sort into CSR, stable in id order: sorting the points by
        // id first makes every cell's slice ascending regardless of the
        // caller's iteration order.
        let mut sorted = pts;
        sorted.sort_unstable_by_key(|&(id, _)| id);
        let cell_of = |p: &Position| -> usize {
            let cx = (((p.x - origin.x) / cell_size_m).floor() as usize).min(nx - 1);
            let cy = (((p.y - origin.y) / cell_size_m).floor() as usize).min(ny - 1);
            cy * nx + cx
        };
        let mut counts = vec![0u32; nx * ny + 1];
        for (_, p) in &sorted {
            counts[cell_of(p) + 1] += 1;
        }
        for c in 0..nx * ny {
            counts[c + 1] += counts[c];
        }
        let cell_start = counts.clone();
        let mut cursor = counts;
        let mut items = vec![(0u32, Position::new(0.0, 0.0)); sorted.len()];
        for (id, p) in sorted {
            let c = cell_of(&p);
            items[cursor[c] as usize] = (id, p);
            cursor[c] += 1;
        }
        SpatialGrid {
            cell_size_m,
            origin,
            nx,
            ny,
            cell_start,
            items,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the grid indexes no points.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The cell-index range `[lo, hi]` covered by `[c - r, c + r]` along one
    /// axis, clamped to the grid. `r = inf` covers the whole axis.
    fn axis_range(&self, c: f64, o: f64, n: usize, r: f64) -> (usize, usize) {
        if n == 0 {
            return (1, 0); // empty range
        }
        let lo = ((c - r - o) / self.cell_size_m).floor().max(0.0);
        let hi = ((c + r - o) / self.cell_size_m).floor().min((n - 1) as f64);
        if hi < lo {
            return (1, 0);
        }
        (lo as usize, hi as usize)
    }

    /// Appends to `out` the ids of every indexed point within `radius_m`
    /// (inclusive) of `center`, in **ascending id** order. An infinite
    /// radius returns every point. `out` is cleared first; no allocation
    /// once it has warmed to capacity.
    pub fn within_radius_into(&self, center: Position, radius_m: f64, out: &mut Vec<u32>) {
        out.clear();
        if radius_m < 0.0 || self.items.is_empty() {
            return;
        }
        let (x0, x1) = self.axis_range(center.x, self.origin.x, self.nx, radius_m);
        let (y0, y1) = self.axis_range(center.y, self.origin.y, self.ny, radius_m);
        if x1 < x0 || y1 < y0 {
            return;
        }
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                let c = cy * self.nx + cx;
                let lo = self.cell_start[c] as usize;
                let hi = self.cell_start[c + 1] as usize;
                for &(id, p) in &self.items[lo..hi] {
                    if p.distance_m(&center) <= radius_m {
                        out.push(id);
                    }
                }
            }
        }
        // Cells were visited row-major, so the union is not id-sorted.
        out.sort_unstable();
    }

    /// Appends to `out` the `k` nearest indexed points to `center`, in
    /// ascending `(distance, id)` order (ties broken toward the lower id).
    /// Returns fewer than `k` when the grid holds fewer points. `out` is
    /// cleared first.
    pub fn k_nearest_into(&self, center: Position, k: usize, out: &mut Vec<u32>) {
        out.clear();
        if k == 0 || self.items.is_empty() {
            return;
        }
        // Expanding ring search: examine cells within ring `r`, keep the k
        // best; stop once the ring's inner boundary distance exceeds the
        // current k-th best (then nothing outside can improve the set).
        let mut best: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        let push = |best: &mut Vec<(f64, u32)>, d: f64, id: u32| {
            let key = (d, id);
            let pos = best
                .binary_search_by(|&(bd, bid)| (bd, bid).partial_cmp(&key).expect("finite"))
                .unwrap_or_else(|e| e);
            if pos < k {
                best.insert(pos, (d, id));
                best.truncate(k);
            }
        };
        let cx0 = ((center.x - self.origin.x) / self.cell_size_m).floor();
        let cy0 = ((center.y - self.origin.y) / self.cell_size_m).floor();
        let max_ring = self.nx.max(self.ny) + (cx0.abs() + cy0.abs()) as usize + 2;
        for ring in 0..=max_ring {
            // Inner boundary of ring r: any point in it is at least
            // (r-1)·cell away from the center cell's boundary.
            if best.len() == k {
                let bound = (ring as f64 - 1.0) * self.cell_size_m;
                if bound > best[k - 1].0 {
                    break;
                }
            }
            let r = ring as i64;
            for dy in -r..=r {
                for dx in -r..=r {
                    if dx.abs().max(dy.abs()) != r {
                        continue; // only the ring's border cells
                    }
                    let cx = cx0 + dx as f64;
                    let cy = cy0 + dy as f64;
                    if cx < 0.0 || cy < 0.0 || cx >= self.nx as f64 || cy >= self.ny as f64 {
                        continue;
                    }
                    let c = cy as usize * self.nx + cx as usize;
                    let lo = self.cell_start[c] as usize;
                    let hi = self.cell_start[c + 1] as usize;
                    for &(id, p) in &self.items[lo..hi] {
                        push(&mut best, p.distance_m(&center), id);
                    }
                }
            }
        }
        out.extend(best.iter().map(|&(_, id)| id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_m(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_m(&a), 0.0);
    }

    #[test]
    fn ring_layout_geometry() {
        let topo = Topology::ring(8, 4.0, 1.0);
        assert_eq!(topo.len(), 8);
        for link in &topo.links {
            assert!((link.distance_m() - 1.0).abs() < 1e-9);
        }
        // Own-link distance equals diag of the pair table.
        for i in 0..8 {
            assert!((topo.distance_m(i, i) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn own_path_relative_gain_is_zero() {
        let topo = Topology::ring(4, 3.0, 1.0);
        let f = Hertz::from_ghz(3.432);
        for i in 0..4 {
            assert!((topo.relative_gain_db(i, i, f)).abs() < 1e-12);
        }
    }

    #[test]
    fn farther_interferer_is_weaker() {
        let topo = Topology::ring(8, 4.0, 1.0);
        let f = Hertz::from_ghz(3.432);
        // Neighbour TX (1 step around the ring) is closer to RX 0 than the
        // TX 4 on the opposite side, so its relative gain is higher.
        let near = topo.relative_gain_db(1, 0, f);
        let far = topo.relative_gain_db(4, 0, f);
        assert!(near > far, "{near} vs {far}");
        // Both interferers are farther from rx0 than its own 1 m tx.
        assert!(near < 0.0);
    }

    #[test]
    fn near_far_problem_visible() {
        // Foreign TX right next to the victim RX → positive relative gain.
        let links = vec![
            LinkGeometry::new(Position::new(0.0, 0.0), Position::new(5.0, 0.0)),
            LinkGeometry::new(Position::new(5.2, 0.0), Position::new(9.0, 0.0)),
        ];
        let topo = Topology::new(links);
        let f = Hertz::from_ghz(5.016);
        assert!(topo.relative_gain_db(1, 0, f) > 0.0);
    }

    #[test]
    fn min_distance_clamp() {
        let links = vec![
            LinkGeometry::new(Position::new(0.0, 0.0), Position::new(1.0, 0.0)),
            LinkGeometry::new(Position::new(1.0, 0.0), Position::new(2.0, 0.0)),
        ];
        let topo = Topology::new(links);
        // TX 1 sits exactly on RX 0; the clamp keeps path loss finite.
        assert_eq!(topo.distance_m(1, 0), 0.1);
        assert!(topo.path_loss_db(1, 0, Hertz::from_ghz(4.0)).is_finite());
    }
}
