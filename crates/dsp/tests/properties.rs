//! Property-based tests for the DSP substrate invariants.

use proptest::prelude::*;
use uwb_dsp::complex::to_complex;
use uwb_dsp::correlation::{cross_correlate, cross_correlate_fft, normalized_correlation};
use uwb_dsp::fft::{fft_convolve_real, Fft};
use uwb_dsp::math::next_pow2;
use uwb_dsp::{Complex, FirFilter, Window};

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), len..=len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ifft(fft(x)) == x for arbitrary signals.
    #[test]
    fn fft_round_trip(x in complex_vec(64)) {
        let fft = Fft::new(64);
        let back = fft.inverse(&fft.forward(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).norm() < 1e-6 * (1.0 + a.norm()));
        }
    }

    /// Parseval: time-domain and frequency-domain energies agree.
    #[test]
    fn fft_parseval(x in complex_vec(128)) {
        let fft = Fft::new(128);
        let spec = fft.forward(&x);
        let et: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ef: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((et - ef).abs() <= 1e-6 * (1.0 + et));
    }

    /// FFT of a shifted impulse has unit magnitude in every bin.
    #[test]
    fn impulse_flat_spectrum(shift in 0usize..32) {
        let mut x = vec![Complex::ZERO; 32];
        x[shift] = Complex::ONE;
        let spec = Fft::new(32).forward(&x);
        for z in spec {
            prop_assert!((z.norm() - 1.0).abs() < 1e-9);
        }
    }

    /// Direct and FFT-based correlation agree for arbitrary signals.
    #[test]
    fn correlation_implementations_agree(
        sig in complex_vec(100),
        tpl in complex_vec(17),
    ) {
        let a = cross_correlate(&sig, &tpl);
        let b = cross_correlate_fft(&sig, &tpl);
        prop_assert_eq!(a.len(), b.len());
        let scale: f64 = 1.0 + sig.iter().map(|z| z.norm()).fold(0.0, f64::max)
            * tpl.iter().map(|z| z.norm()).fold(0.0, f64::max);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((*x - *y).norm() < 1e-6 * scale);
        }
    }

    /// Normalized correlation is bounded by 1 (Cauchy–Schwarz).
    #[test]
    fn normalized_correlation_bounded(
        sig in complex_vec(80),
        tpl in complex_vec(9),
    ) {
        for v in normalized_correlation(&sig, &tpl) {
            prop_assert!(v <= 1.0 + 1e-9);
            prop_assert!(v >= 0.0);
        }
    }

    /// FFT convolution matches direct convolution.
    #[test]
    fn convolution_matches_direct(
        a in prop::collection::vec(-10.0f64..10.0, 1..40),
        b in prop::collection::vec(-10.0f64..10.0, 1..20),
    ) {
        let got = fft_convolve_real(&a, &b);
        let mut want = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                want[i + j] += x * y;
            }
        }
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-6 * (1.0 + w.abs()));
        }
    }

    /// FIR filtering is linear: filter(a*x + y) == a*filter(x) + filter(y).
    #[test]
    fn fir_linearity(
        x in prop::collection::vec(-10.0f64..10.0, 50..=50),
        y in prop::collection::vec(-10.0f64..10.0, 50..=50),
        a in -5.0f64..5.0,
    ) {
        let fir = FirFilter::lowpass(15, 0.2, Window::Hamming);
        let lhs_input: Vec<f64> = x.iter().zip(&y).map(|(&p, &q)| a * p + q).collect();
        let lhs = fir.filter_real(&lhs_input);
        let fx = fir.filter_real(&x);
        let fy = fir.filter_real(&y);
        for i in 0..50 {
            let rhs = a * fx[i] + fy[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-9 * (1.0 + rhs.abs()));
        }
    }

    /// FIR filtering is time-invariant: delaying input delays output.
    #[test]
    fn fir_time_invariance(
        x in prop::collection::vec(-10.0f64..10.0, 30..=30),
        d in 1usize..8,
    ) {
        let fir = FirFilter::lowpass(9, 0.3, Window::Hann);
        let y = fir.filter_real(&x);
        let mut delayed = vec![0.0; d];
        delayed.extend_from_slice(&x);
        let yd = fir.filter_real(&delayed);
        for i in 0..x.len() {
            prop_assert!((y[i] - yd[i + d]).abs() < 1e-12);
        }
    }

    /// next_pow2 returns the smallest power of two >= n.
    #[test]
    fn next_pow2_minimal(n in 1usize..100_000) {
        let p = next_pow2(n);
        prop_assert!(p.is_power_of_two());
        prop_assert!(p >= n);
        prop_assert!(p / 2 < n);
    }

    /// Window coefficients stay within [0, 1] and are symmetric.
    #[test]
    fn window_bounds(n in 2usize..200, beta in 0.0f64..12.0) {
        for win in [Window::Hann, Window::Hamming, Window::Blackman, Window::Kaiser(beta)] {
            let w = win.generate(n);
            for k in 0..n {
                prop_assert!(w[k] >= -1e-9 && w[k] <= 1.0 + 1e-9);
                prop_assert!((w[k] - w[n - 1 - k]).abs() < 1e-9);
            }
        }
    }

    /// Complex division inverts multiplication.
    #[test]
    fn complex_field_axioms(
        re1 in -100.0f64..100.0, im1 in -100.0f64..100.0,
        re2 in 0.1f64..100.0, im2 in 0.1f64..100.0,
    ) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        let c = a * b / b;
        prop_assert!((c - a).norm() < 1e-9 * (1.0 + a.norm()));
        // |ab| = |a||b|
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs()
            < 1e-9 * (1.0 + a.norm() * b.norm()));
    }

    /// to_complex/to_real round trip.
    #[test]
    fn real_complex_round_trip(x in prop::collection::vec(-1e6f64..1e6, 0..50)) {
        let c = to_complex(&x);
        let back = uwb_dsp::complex::to_real(&c);
        prop_assert_eq!(x, back);
    }
}
