//! Parity tests for the zero-allocation FFT layer.
//!
//! Every `_into` / `_in_place` variant added by the kernel-layer rework must
//! reproduce its allocating counterpart *bit for bit* — they share the same
//! butterfly schedule, so even the rounding errors must line up. The one
//! documented exception is the packed real-FFT convolution path
//! (`fft_convolve_real_into`), which reorders floating-point operations and
//! is therefore held to a 1e-12-relative tolerance instead (see
//! `fft_convolve_real_into` docs).
//!
//! The proptest section drives `forward_into`/`inverse_into` round trips on
//! every power-of-two size up to 4096 with arbitrary signals.

use proptest::prelude::*;
use uwb_dsp::correlation::{
    circular_autocorrelation, cross_correlate_fft, cross_correlate_fft_into,
};
use uwb_dsp::fft::{
    cached_plan, fft_convolve, fft_convolve_into, fft_convolve_real, fft_convolve_real_into,
    fft_plans_built, Fft,
};
use uwb_dsp::{Complex, DspScratch};

/// Deterministic pseudo-signal (no RNG dependency needed for the fixed tests).
fn signal(n: usize, phase: f64) -> Vec<Complex> {
    (0..n)
        .map(|k| {
            let t = k as f64 * 0.37 + phase;
            Complex::new((1.3 * t).sin() + 0.2 * (7.1 * t).cos(), (2.9 * t).cos())
        })
        .collect()
}

fn real_signal(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|k| (k as f64 * 0.61 + phase).sin()).collect()
}

fn assert_bits_eq(a: &[Complex], b: &[Complex], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re differs at {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im differs at {i}");
    }
}

/// `forward_into` must be bit-identical to the allocating `forward` on every
/// power-of-two size the repo uses (the in-place bit-reversal is an
/// involution, so the butterfly order is unchanged).
#[test]
fn forward_into_bitwise_matches_forward() {
    for shift in 0..=12 {
        let n = 1usize << shift;
        let fft = Fft::new(n);
        let x = signal(n, 0.123);
        let reference = fft.forward(&x);
        let mut out = vec![Complex::ZERO; n];
        fft.forward_into(&x, &mut out);
        assert_bits_eq(&reference, &out, &format!("forward n={n}"));
    }
}

/// Same for `inverse_into` vs `inverse`.
#[test]
fn inverse_into_bitwise_matches_inverse() {
    for shift in 0..=12 {
        let n = 1usize << shift;
        let fft = Fft::new(n);
        let x = signal(n, 4.56);
        let reference = fft.inverse(&x);
        let mut out = vec![Complex::ZERO; n];
        fft.inverse_into(&x, &mut out);
        assert_bits_eq(&reference, &out, &format!("inverse n={n}"));
    }
}

/// `forward_in_place` / `inverse_in_place` are the same butterflies again.
#[test]
fn in_place_bitwise_matches_out_of_place() {
    for &n in &[1usize, 2, 8, 64, 512, 4096] {
        let fft = Fft::new(n);
        let x = signal(n, 9.87);

        let mut buf = x.clone();
        fft.forward_in_place(&mut buf);
        assert_bits_eq(&fft.forward(&x), &buf, &format!("fwd in place n={n}"));

        let mut buf = x.clone();
        fft.inverse_in_place(&mut buf);
        assert_bits_eq(&fft.inverse(&x), &buf, &format!("inv in place n={n}"));
    }
}

/// The thread-local plan cache must hand back transforms identical to a
/// freshly built plan, and must not rebuild plans for sizes it has seen.
#[test]
fn cached_plan_matches_fresh_plan_and_is_reused() {
    let n = 256;
    let x = signal(n, 2.2);
    let plan = cached_plan(n);
    assert_bits_eq(
        &Fft::new(n).forward(&x),
        &plan.forward(&x),
        "cached vs fresh",
    );
    let before = fft_plans_built();
    for _ in 0..100 {
        let again = cached_plan(n);
        let _ = again.forward(&x);
    }
    assert_eq!(
        fft_plans_built(),
        before,
        "cached_plan must not rebuild a plan for a cached size"
    );
}

/// Complex convolution: the scratch variant is the same transform chain.
#[test]
fn fft_convolve_into_bitwise_matches() {
    let a = signal(300, 0.5);
    let b = signal(77, 1.5);
    let reference = fft_convolve(&a, &b);
    let mut scratch = DspScratch::new();
    let mut out = Vec::new();
    fft_convolve_into(&a, &b, &mut scratch, &mut out);
    assert_bits_eq(&reference, &out, "fft_convolve");
    // Steady state: a second call reuses the pooled buffers and still agrees.
    fft_convolve_into(&a, &b, &mut scratch, &mut out);
    assert_bits_eq(&reference, &out, "fft_convolve (warm)");
}

/// Packed real convolution: two real sequences ride one complex transform,
/// which reorders float ops — documented ≤1e-12-relative parity, not bitwise.
#[test]
fn fft_convolve_real_into_parity() {
    for &(na, nb) in &[(2000usize, 257usize), (64, 64), (513, 31), (1, 1)] {
        let a = real_signal(na, 0.3);
        let b = real_signal(nb, 5.1);
        let reference = fft_convolve_real(&a, &b);
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        fft_convolve_real_into(&a, &b, &mut scratch, &mut out);
        assert_eq!(reference.len(), out.len());
        let scale: f64 = a.iter().map(|v| v.abs()).sum::<f64>()
            * b.iter().map(|v| v.abs()).sum::<f64>()
            / (na.max(nb) as f64)
            + 1.0;
        for (i, (x, y)) in reference.iter().zip(&out).enumerate() {
            assert!(
                (x - y).abs() <= 1e-12 * scale,
                "real convolve ({na}x{nb}) at {i}: {x} vs {y}"
            );
        }
    }
}

/// FFT cross-correlation: scratch variant is bit-identical (same chain), and
/// the small-n direct fallback agrees with the direct correlator by
/// construction.
#[test]
fn cross_correlate_fft_into_bitwise_matches() {
    for &(ns, nt) in &[(2555usize, 1277usize), (40, 13), (8, 8)] {
        let sig = signal(ns, 1.1);
        let tpl = signal(nt, 3.3);
        let reference = cross_correlate_fft(&sig, &tpl);
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        cross_correlate_fft_into(&sig, &tpl, &mut scratch, &mut out);
        assert_bits_eq(&reference, &out, &format!("xcorr {ns}x{nt}"));
        cross_correlate_fft_into(&sig, &tpl, &mut scratch, &mut out);
        assert_bits_eq(&reference, &out, &format!("xcorr {ns}x{nt} (warm)"));
    }
}

/// The FFT-folded circular autocorrelation must agree with the O(n²)
/// definition to floating-point accuracy on a non-pow-2 length (exercises
/// the padded cyclic embedding).
#[test]
fn circular_autocorrelation_matches_direct_definition() {
    for &n in &[3usize, 37, 100, 1024] {
        let x = real_signal(n, 0.9);
        let got = circular_autocorrelation(&x);
        let energy: f64 = x.iter().map(|v| v * v).sum::<f64>() + 1.0;
        for (lag, g) in got.iter().enumerate() {
            let direct: f64 = (0..n).map(|i| x[i] * x[(i + lag) % n]).sum::<f64>();
            assert!(
                (g - direct).abs() <= 1e-9 * energy,
                "autocorr n={n} lag={lag}: {g} vs {direct}"
            );
        }
    }
}

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), len..=len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `inverse_into(forward_into(x)) == x` on random power-of-two sizes up
    /// to 4096 with arbitrary signals — the buffered pair must round-trip
    /// exactly like the allocating pair always has.
    #[test]
    fn into_round_trip(shift in 0usize..=12, full in complex_vec(4096)) {
        let n = 1usize << shift;
        let x = &full[..n];
        let fft = Fft::new(n);
        let mut spec = vec![Complex::ZERO; n];
        let mut back = vec![Complex::ZERO; n];
        fft.forward_into(x, &mut spec);
        fft.inverse_into(&spec, &mut back);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).norm() < 1e-6 * (1.0 + a.norm()));
        }
    }

    /// Bitwise parity between `forward_into` and `forward` holds for
    /// arbitrary signals, not just the fixed probe above.
    #[test]
    fn into_parity_random_signals(x in complex_vec(1024)) {
        let fft = Fft::new(1024);
        let reference = fft.forward(&x);
        let mut out = vec![Complex::ZERO; 1024];
        fft.forward_into(&x, &mut out);
        for (a, b) in reference.iter().zip(&out) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// f32 SoA transforms stay within f32 rounding of the f64 reference for
    /// arbitrary signals, across sizes and directions.
    #[test]
    fn fft32_matches_f64_within_f32_tolerance(
        log2n in 0u32..12,
        phase in 0.0f64..10.0,
        invert in any::<bool>(),
    ) {
        let n = 1usize << log2n;
        let x = signal(n, phase);
        let reference = if invert {
            Fft::new(n).inverse(&x)
        } else {
            Fft::new(n).forward(&x)
        };
        let mut re: Vec<f32> = x.iter().map(|z| z.re as f32).collect();
        let mut im: Vec<f32> = x.iter().map(|z| z.im as f32).collect();
        let plan = uwb_dsp::fft32::cached_plan32(n);
        if invert {
            plan.inverse_in_place(&mut re, &mut im);
        } else {
            plan.forward_in_place(&mut re, &mut im);
        }
        let scale = reference.iter().map(|z| z.norm()).fold(1.0f64, f64::max);
        for ((r, i), want) in re.iter().zip(&im).zip(&reference) {
            let err = (Complex::new(*r as f64, *i as f64) - *want).norm();
            prop_assert!(err <= 1e-5 * scale, "err {} at scale {}", err, scale);
        }
    }

    /// f32 forward/inverse round trip recovers the input at f32 tolerance.
    #[test]
    fn fft32_round_trip(log2n in 0u32..12, phase in 0.0f64..10.0) {
        let n = 1usize << log2n;
        let x = signal(n, phase);
        let re0: Vec<f32> = x.iter().map(|z| z.re as f32).collect();
        let im0: Vec<f32> = x.iter().map(|z| z.im as f32).collect();
        let (mut re, mut im) = (re0.clone(), im0.clone());
        let plan = uwb_dsp::fft32::cached_plan32(n);
        plan.forward_in_place(&mut re, &mut im);
        plan.inverse_in_place(&mut re, &mut im);
        let scale = re0.iter().zip(&im0).map(|(r, i)| (r * r + i * i).sqrt()).fold(1.0f32, f32::max);
        for ((a, b), (c, d)) in re.iter().zip(&im).zip(re0.iter().zip(&im0)) {
            prop_assert!((a - c).abs() <= 2e-4 * scale);
            prop_assert!((b - d).abs() <= 2e-4 * scale);
        }
    }
}
