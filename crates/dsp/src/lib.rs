//! # uwb-dsp — DSP substrate for the pulsed-UWB transceiver reproduction
//!
//! Dependency-free digital signal processing primitives used by every other
//! crate in the workspace:
//!
//! * [`Complex`] arithmetic for equivalent-baseband processing
//! * [`Fft`] — radix-2 FFT with convolution/correlation helpers, in-place /
//!   into-buffer transforms, a thread-local plan cache ([`fft::cached_plan`])
//!   and a packed real-input convolution path
//! * [`DspScratch`] — reusable buffer arena for allocation-free steady-state
//!   kernels
//! * [`batch::BatchArena`] — flat structure-of-arrays lane storage for the
//!   batched stage-sweep trial runtime
//! * [`Goertzel`] — O(N) single-bin DFT for cheap narrowband watching
//! * [`FirFilter`] — windowed-sinc FIR design (lowpass/highpass/bandpass)
//! * [`Biquad`]/[`BiquadCascade`] — IIR sections including the tunable notch
//! * [`Window`] functions (Hann, Hamming, Blackman, Kaiser)
//! * [`Nco`] — phase-continuous oscillator for frequency translation
//! * [`correlation`] — sliding and normalized correlation (the back-end's
//!   work-horse)
//! * [`resample`] — up/down-sampling and fractional delay (retiming block)
//! * [`psd`] — periodogram and Welch PSD estimation (spectral monitoring,
//!   FCC-mask checks)
//! * [`math`] — dB conversions, `erfc`/Q-function, Bessel I0, statistics
//!
//! # Example: matched-filter detection of a pulse
//!
//! ```
//! use uwb_dsp::{correlation::cross_correlate, Complex};
//!
//! // A simple 8-sample template embedded in a longer record.
//! let template: Vec<Complex> = (0..8)
//!     .map(|i| Complex::cis(0.3 * i as f64))
//!     .collect();
//! let mut record = vec![Complex::ZERO; 64];
//! for (i, &t) in template.iter().enumerate() {
//!     record[20 + i] = t;
//! }
//! let corr = cross_correlate(&record, &template);
//! let (peak_idx, _) = uwb_dsp::correlation::peak(&corr).unwrap();
//! assert_eq!(peak_idx, 20);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod complex;
pub mod correlation;
pub mod fft;
pub mod fft32;
pub mod scratch;
pub mod goertzel;
pub mod fir;
pub mod iir;
pub mod math;
pub mod nco;
pub mod psd;
pub mod resample;
pub mod simd;
pub mod stream;
pub mod window;

pub use complex::Complex;
pub use fft::{Fft, FftPlanner};
pub use scratch::DspScratch;
pub use goertzel::Goertzel;
pub use fir::{FirFilter, StreamingFir};
pub use iir::{Biquad, BiquadCascade};
pub use nco::Nco;
pub use stream::{BlockProcessor, Chain};
pub use psd::Psd;
pub use window::Window;
