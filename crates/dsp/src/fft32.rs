//! Single-precision SoA radix-2 FFT for the acquisition correlator bank.
//!
//! The coarse-acquisition sweep is the only FFT consumer on the per-trial
//! hot path that tolerates reduced precision: its output feeds a
//! *normalized threshold comparison and an argmax*, both of which are
//! insensitive to relative errors at the f32 level (~1e-7, versus a
//! detection threshold margin of order 1e-1). Running that one consumer in
//! f32 doubles the samples per vector lane and halves memory traffic.
//!
//! Layout is structure-of-arrays: the real and imaginary rails live in two
//! separate `f32` slices, so every butterfly lowers to pure vector
//! arithmetic with no interleaved shuffles. The twiddle tables are computed
//! in f64 and rounded once, making transforms deterministic across targets
//! (strict IEEE f32 arithmetic, fixed evaluation order).
//!
//! This module mirrors [`crate::fft`]'s plan caching: [`cached_plan32`] is
//! the thread-local memoized front end, and constructions are recorded in
//! the same [`crate::fft::fft_plans_built`] counter the plan-cache
//! regression tests watch.
//!
//! Accuracy versus the f64 path is bounded by max-ulp parity tests in
//! `uwb-phy` (the consumer), not here — this module only guarantees the
//! transform identities (round trip, linearity, known spectra) at f32
//! tolerance.

use std::cell::RefCell;
use std::rc::Rc;

use crate::fft::note_plan_built;

/// Planned single-precision FFT of a fixed power-of-two size, operating on
/// split re/im `f32` lanes.
#[derive(Debug, Clone)]
pub struct Fft32 {
    n: usize,
    rev: Vec<usize>,
    /// Stage-major forward twiddles: for the stage with butterfly length
    /// `len`, the `len/2` values `e^{-i 2π k / len}` stored contiguously
    /// (total `n − 1` entries). Contiguity is what lets each stage's inner
    /// loop run at unit stride over data *and* twiddles.
    tw_re: Vec<f32>,
    /// Imaginary parts of the stage-major forward twiddles.
    tw_im: Vec<f32>,
}

impl Fft32 {
    /// Plans an f32 FFT of size `n`.
    ///
    /// Prefer [`cached_plan32`] in per-trial code.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n.is_power_of_two(), "FFT size must be a power of two");
        note_plan_built();
        let bits = n.trailing_zeros();
        let mut rev = vec![0usize; n];
        if bits > 0 {
            for (i, r) in rev.iter_mut().enumerate() {
                *r = i.reverse_bits() >> (usize::BITS - bits);
            }
        }
        let mut tw_re = Vec::with_capacity(n.saturating_sub(1));
        let mut tw_im = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2usize;
        while len <= n {
            for k in 0..len / 2 {
                let theta = -std::f64::consts::TAU * k as f64 / len as f64;
                tw_re.push(theta.cos() as f32);
                tw_im.push(theta.sin() as f32);
            }
            len <<= 1;
        }
        Fft32 { n, rev, tw_re, tw_im }
    }

    /// The transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: a plan has size ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Butterfly passes over already bit-reverse-permuted lanes (no `1/N`
    /// scaling — the scaled entry points apply it). Each stage's inner loop walks the
    /// lower/upper block halves and the stage-major twiddle table at unit
    /// stride, with the halves split via `split_at_mut` so the
    /// autovectorizer can prove non-aliasing and emit packed f32 FMAs.
    fn butterflies(&self, re: &mut [f32], im: &mut [f32], invert: bool) {
        let n = self.n;
        let sign = if invert { -1.0f32 } else { 1.0 };
        let mut len = 2usize;
        let mut tw_off = 0usize;
        if n >= 4 {
            // Fused radix-4 first pass replacing the `len = 2` and `len = 4`
            // stages. Those two stages have 1- and 2-wide inner loops — pure
            // scalar work that would otherwise cost two full passes over the
            // lanes; fusing them halves that memory traffic and uses the
            // exact twiddles 1 and ∓i instead of their rounded table entries.
            for start in (0..n).step_by(4) {
                let (x0r, x1r, x2r, x3r) = (re[start], re[start + 1], re[start + 2], re[start + 3]);
                let (x0i, x1i, x2i, x3i) = (im[start], im[start + 1], im[start + 2], im[start + 3]);
                let (a0r, a0i) = (x0r + x1r, x0i + x1i);
                let (a1r, a1i) = (x0r - x1r, x0i - x1i);
                let (a2r, a2i) = (x2r + x3r, x2i + x3i);
                let (a3r, a3i) = (x2r - x3r, x2i - x3i);
                // (∓i)·a3: forward multiplies by −i, inverse by +i.
                let (b3r, b3i) = (sign * a3i, -sign * a3r);
                re[start] = a0r + a2r;
                im[start] = a0i + a2i;
                re[start + 2] = a0r - a2r;
                im[start + 2] = a0i - a2i;
                re[start + 1] = a1r + b3r;
                im[start + 1] = a1i + b3i;
                re[start + 3] = a1r - b3r;
                im[start + 3] = a1i - b3i;
            }
            len = 8;
            tw_off = 3; // skip the len=2 (1-entry) and len=4 (2-entry) tables
        }
        while len <= n {
            let half = len / 2;
            let twr = &self.tw_re[tw_off..tw_off + half];
            let twi = &self.tw_im[tw_off..tw_off + half];
            for start in (0..n).step_by(len) {
                let (r_lo, r_hi) = re[start..start + len].split_at_mut(half);
                let (i_lo, i_hi) = im[start..start + len].split_at_mut(half);
                for k in 0..half {
                    let wr = twr[k];
                    let wi = sign * twi[k];
                    let vr = r_hi[k] * wr - i_hi[k] * wi;
                    let vi = r_hi[k] * wi + i_hi[k] * wr;
                    let (ur, ui) = (r_lo[k], i_lo[k]);
                    r_lo[k] = ur + vr;
                    i_lo[k] = ui + vi;
                    r_hi[k] = ur - vr;
                    i_hi[k] = ui - vi;
                }
            }
            tw_off += half;
            len <<= 1;
        }
    }

    /// Transforms the lanes in place (forward when `invert` is false,
    /// inverse — including the `1/N` normalization — when true). No
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if either lane's length differs from the transform size.
    pub fn process_in_place(&self, re: &mut [f32], im: &mut [f32], invert: bool) {
        assert_eq!(re.len(), self.n, "re lane length must equal FFT size");
        assert_eq!(im.len(), self.n, "im lane length must equal FFT size");
        for i in 0..self.n {
            let r = self.rev[i];
            if i < r {
                re.swap(i, r);
                im.swap(i, r);
            }
        }
        self.butterflies(re, im, invert);
        if invert {
            let inv_n = 1.0 / self.n as f32;
            for x in re.iter_mut() {
                *x *= inv_n;
            }
            for x in im.iter_mut() {
                *x *= inv_n;
            }
        }
    }

    /// Forward DFT in place on split lanes.
    ///
    /// # Panics
    ///
    /// Panics if either lane's length differs from the transform size.
    pub fn forward_in_place(&self, re: &mut [f32], im: &mut [f32]) {
        self.process_in_place(re, im, false);
    }

    /// Inverse DFT in place on split lanes (includes the `1/N`
    /// normalization).
    ///
    /// # Panics
    ///
    /// Panics if either lane's length differs from the transform size.
    pub fn inverse_in_place(&self, re: &mut [f32], im: &mut [f32]) {
        self.process_in_place(re, im, true);
    }

    /// Inverse DFT *without* the `1/N` normalization, for callers that fold
    /// the scale into an earlier stage (e.g. a pre-scaled cached spectrum in
    /// a convolution) and would otherwise pay a full extra pass over the
    /// lanes.
    ///
    /// # Panics
    ///
    /// Panics if either lane's length differs from the transform size.
    pub fn inverse_in_place_unscaled(&self, re: &mut [f32], im: &mut [f32]) {
        assert_eq!(re.len(), self.n, "re lane length must equal FFT size");
        assert_eq!(im.len(), self.n, "im lane length must equal FFT size");
        for i in 0..self.n {
            let r = self.rev[i];
            if i < r {
                re.swap(i, r);
                im.swap(i, r);
            }
        }
        self.butterflies(re, im, true);
    }
}

/// Per-thread memoized f32 FFT plans keyed by transform size (the
/// single-precision sibling of [`crate::fft::FftPlanner`]).
#[derive(Debug, Default)]
pub struct Fft32Planner {
    /// `plans[log2(n)]` holds the plan for size `n`.
    plans: Vec<Option<Rc<Fft32>>>,
}

impl Fft32Planner {
    /// An empty planner; plans are built lazily on first request.
    pub fn new() -> Self {
        Fft32Planner::default()
    }

    /// Returns the plan for size `n`, building and caching it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn plan(&mut self, n: usize) -> Rc<Fft32> {
        assert!(n > 0 && n.is_power_of_two(), "FFT size must be a power of two");
        let idx = n.trailing_zeros() as usize;
        if idx >= self.plans.len() {
            self.plans.resize(idx + 1, None);
        }
        self.plans[idx]
            .get_or_insert_with(|| Rc::new(Fft32::new(n)))
            .clone()
    }

    /// Number of distinct sizes currently planned (diagnostics).
    pub fn planned_sizes(&self) -> usize {
        self.plans.iter().filter(|p| p.is_some()).count()
    }
}

thread_local! {
    static THREAD_PLANNER32: RefCell<Fft32Planner> = RefCell::new(Fft32Planner::new());
}

/// This thread's cached f32 FFT plan of size `n`, built on first use (the
/// single-precision sibling of [`crate::fft::cached_plan`]).
///
/// # Panics
///
/// Panics if `n` is zero or not a power of two.
pub fn cached_plan32(n: usize) -> Rc<Fft32> {
    THREAD_PLANNER32.with(|p| p.borrow_mut().plan(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex;

    fn reference(n: usize, re: &[f32], im: &[f32], invert: bool) -> Vec<Complex> {
        let fft = crate::Fft::new(n);
        let x: Vec<Complex> = re
            .iter()
            .zip(im)
            .map(|(&r, &i)| Complex::new(r as f64, i as f64))
            .collect();
        if invert {
            fft.inverse(&x)
        } else {
            fft.forward(&x)
        }
    }

    #[test]
    fn matches_f64_reference_within_f32_tolerance() {
        for n in [1usize, 2, 8, 256, 2048] {
            let re: Vec<f32> = (0..n).map(|i| (0.37 * i as f32).sin()).collect();
            let im: Vec<f32> = (0..n).map(|i| (0.11 * i as f32).cos() - 0.3).collect();
            for invert in [false, true] {
                let want = reference(n, &re, &im, invert);
                let (mut r, mut i) = (re.clone(), im.clone());
                Fft32::new(n).process_in_place(&mut r, &mut i, invert);
                let scale = want.iter().map(|z| z.norm()).fold(1.0, f64::max);
                for ((got_r, got_i), w) in r.iter().zip(&i).zip(&want) {
                    let err = (Complex::new(*got_r as f64, *got_i as f64) - *w).norm();
                    assert!(
                        err <= 1e-5 * scale,
                        "n={n} invert={invert}: err {err} vs scale {scale}"
                    );
                }
            }
        }
    }

    #[test]
    fn round_trip() {
        let n = 512;
        let fft = Fft32::new(n);
        let re0: Vec<f32> = (0..n).map(|i| (0.61 * i as f32).sin()).collect();
        let im0: Vec<f32> = (0..n).map(|i| (0.23 * i as f32).cos()).collect();
        let (mut re, mut im) = (re0.clone(), im0.clone());
        fft.forward_in_place(&mut re, &mut im);
        fft.inverse_in_place(&mut re, &mut im);
        for ((a, b), (c, d)) in re.iter().zip(&im).zip(re0.iter().zip(&im0)) {
            assert!((a - c).abs() < 1e-4 && (b - d).abs() < 1e-4);
        }
    }

    #[test]
    fn unscaled_inverse_is_scaled_inverse_times_n() {
        let n = 256;
        let fft = Fft32::new(n);
        let re0: Vec<f32> = (0..n).map(|i| (0.91 * i as f32).sin()).collect();
        let im0: Vec<f32> = (0..n).map(|i| (0.13 * i as f32).cos()).collect();
        let (mut ru, mut iu) = (re0.clone(), im0.clone());
        let (mut rs, mut is) = (re0, im0);
        fft.inverse_in_place_unscaled(&mut ru, &mut iu);
        fft.inverse_in_place(&mut rs, &mut is);
        for ((u, s), (v, t)) in ru.iter().zip(&rs).zip(iu.iter().zip(&is)) {
            assert!((u - s * n as f32).abs() <= 1e-3 * u.abs().max(1.0));
            assert!((v - t * n as f32).abs() <= 1e-3 * v.abs().max(1.0));
        }
    }

    #[test]
    fn transforms_are_deterministic() {
        let n = 1024;
        let fft = Fft32::new(n);
        let re0: Vec<f32> = (0..n).map(|i| 1.0 / (i + 1) as f32).collect();
        let im0: Vec<f32> = (0..n).map(|i| -(i as f32) * 1e-3).collect();
        let (mut r1, mut i1) = (re0.clone(), im0.clone());
        let (mut r2, mut i2) = (re0, im0);
        fft.forward_in_place(&mut r1, &mut i1);
        fft.forward_in_place(&mut r2, &mut i2);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&r1), bits(&r2));
        assert_eq!(bits(&i1), bits(&i2));
    }

    #[test]
    fn planner_caches_plans_per_size() {
        let mut planner = Fft32Planner::new();
        let before = crate::fft::fft_plans_built();
        let p1 = planner.plan(256);
        let p2 = planner.plan(256);
        assert!(Rc::ptr_eq(&p1, &p2), "same size must share one plan");
        assert_eq!(crate::fft::fft_plans_built() - before, 1);
        assert_eq!(planner.planned_sizes(), 1);
    }

    #[test]
    fn cached_plan32_reuses_thread_local_plan() {
        let a = cached_plan32(4096);
        let before = crate::fft::fft_plans_built();
        let b = cached_plan32(4096);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(crate::fft::fft_plans_built(), before);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_panics() {
        Fft32::new(12);
    }

    #[test]
    #[should_panic(expected = "lane length")]
    fn wrong_lane_length_panics() {
        let mut re = vec![0.0f32; 4];
        let mut im = vec![0.0f32; 8];
        Fft32::new(8).forward_in_place(&mut re, &mut im);
    }
}
