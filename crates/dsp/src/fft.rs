//! Radix-2 decimation-in-time FFT.
//!
//! A dependency-free iterative Cooley–Tukey implementation with precomputed
//! twiddle factors, plus helpers for real-input transforms, zero-padded
//! transforms of arbitrary length, and `fftshift`.
//!
//! The forward transform computes `X[k] = Σ x[n] e^{-i 2π nk/N}`; the inverse
//! applies the conjugate kernel and divides by `N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex;
use crate::math::next_pow2;

/// Planned FFT of a fixed power-of-two size.
///
/// Construction precomputes the bit-reversal permutation and twiddle factors;
/// [`Fft::forward`] and [`Fft::inverse`] then run without allocation beyond
/// the output buffer.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{Complex, Fft};
///
/// let fft = Fft::new(8);
/// let x: Vec<Complex> = (0..8).map(|n| Complex::new(n as f64, 0.0)).collect();
/// let spec = fft.forward(&x);
/// let back = fft.inverse(&spec);
/// for (a, b) in x.iter().zip(&back) {
///     assert!((*a - *b).norm() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    rev: Vec<usize>,
    /// Twiddles for the forward transform, one per butterfly stride level.
    twiddles: Vec<Complex>,
}

impl Fft {
    /// Plans an FFT of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n.is_power_of_two(), "FFT size must be a power of two");
        let bits = n.trailing_zeros();
        let mut rev = vec![0usize; n];
        if bits > 0 {
            for (i, r) in rev.iter_mut().enumerate() {
                *r = i.reverse_bits() >> (usize::BITS - bits);
            }
        }
        // Half-size table of e^{-i 2π k / n}.
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-std::f64::consts::TAU * k as f64 / n as f64))
            .collect();
        Fft { n, rev, twiddles }
    }

    /// The transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: a plan has size ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn transform(&self, input: &[Complex], invert: bool) -> Vec<Complex> {
        assert_eq!(input.len(), self.n, "input length must equal FFT size");
        let n = self.n;
        let mut a: Vec<Complex> = (0..n).map(|i| input[self.rev[i]]).collect();
        let mut len = 2usize;
        while len <= n {
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..len / 2 {
                    let mut w = self.twiddles[k * stride];
                    if invert {
                        w = w.conj();
                    }
                    let u = a[start + k];
                    let v = a[start + k + len / 2] * w;
                    a[start + k] = u + v;
                    a[start + k + len / 2] = u - v;
                }
            }
            len <<= 1;
        }
        if invert {
            let inv_n = 1.0 / n as f64;
            for z in &mut a {
                *z = z.scale(inv_n);
            }
        }
        a
    }

    /// Forward DFT.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn forward(&self, input: &[Complex]) -> Vec<Complex> {
        self.transform(input, false)
    }

    /// Inverse DFT (includes the `1/N` normalization).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn inverse(&self, input: &[Complex]) -> Vec<Complex> {
        self.transform(input, true)
    }
}

/// One-shot forward FFT of a complex signal, zero-padded to the next power of
/// two.
///
/// Returns the spectrum and the transform size actually used.
pub fn fft_padded(signal: &[Complex]) -> (Vec<Complex>, usize) {
    let n = next_pow2(signal.len().max(1));
    let mut buf = signal.to_vec();
    buf.resize(n, Complex::ZERO);
    (Fft::new(n).forward(&buf), n)
}

/// One-shot forward FFT of a real signal, zero-padded to the next power of
/// two. Returns the full complex spectrum.
pub fn rfft_padded(signal: &[f64]) -> (Vec<Complex>, usize) {
    let n = next_pow2(signal.len().max(1));
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    buf.resize(n, Complex::ZERO);
    (Fft::new(n).forward(&buf), n)
}

/// Swaps the halves of a spectrum so that DC sits in the middle
/// (matplotlib-style `fftshift`). For odd lengths the extra element goes to
/// the front half, matching NumPy.
pub fn fftshift<T: Clone>(spectrum: &[T]) -> Vec<T> {
    let n = spectrum.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&spectrum[half..]);
    out.extend_from_slice(&spectrum[..half]);
    out
}

/// The frequency in hertz of FFT bin `k` for an `n`-point transform at sample
/// rate `fs`, mapped into `(-fs/2, fs/2]`.
pub fn bin_frequency(k: usize, n: usize, fs: f64) -> f64 {
    let k = k % n;
    let f = k as f64 * fs / n as f64;
    if f > fs / 2.0 {
        f - fs
    } else {
        f
    }
}

/// Circular (cyclic) convolution of two equal-length signals via FFT.
///
/// # Panics
///
/// Panics if lengths differ or are not a power of two.
pub fn circular_convolve(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    assert_eq!(a.len(), b.len(), "circular convolution needs equal lengths");
    let fft = Fft::new(a.len());
    let fa = fft.forward(a);
    let fb = fft.forward(b);
    let prod: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    fft.inverse(&prod)
}

/// Linear convolution of two complex signals via zero-padded FFT.
///
/// Output length is `a.len() + b.len() - 1` (empty if either input is empty).
pub fn fft_convolve(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let fft = Fft::new(n);
    let mut pa = a.to_vec();
    pa.resize(n, Complex::ZERO);
    let mut pb = b.to_vec();
    pb.resize(n, Complex::ZERO);
    let fa = fft.forward(&pa);
    let fb = fft.forward(&pb);
    let prod: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    let mut out = fft.inverse(&prod);
    out.truncate(out_len);
    out
}

/// Linear convolution of two real signals via FFT.
pub fn fft_convolve_real(a: &[f64], b: &[f64]) -> Vec<f64> {
    let ca: Vec<Complex> = a.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let cb: Vec<Complex> = b.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft_convolve(&ca, &cb).iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).norm() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn dc_signal_transforms_to_impulse() {
        let fft = Fft::new(16);
        let x = vec![Complex::ONE; 16];
        let spec = fft.forward(&x);
        assert!((spec[0] - Complex::new(16.0, 0.0)).norm() < 1e-9);
        for z in &spec[1..] {
            assert!(z.norm() < 1e-9);
        }
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let fft = Fft::new(8);
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let spec = fft.forward(&x);
        for z in &spec {
            assert!((*z - Complex::ONE).norm() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_correct_bin() {
        let n = 64;
        let fft = Fft::new(n);
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(std::f64::consts::TAU * k0 as f64 * t as f64 / n as f64))
            .collect();
        let spec = fft.forward(&x);
        for (k, z) in spec.iter().enumerate() {
            if k == k0 {
                assert!((z.norm() - n as f64).abs() < 1e-6);
            } else {
                assert!(z.norm() < 1e-6, "leak at bin {k}");
            }
        }
    }

    #[test]
    fn round_trip() {
        let n = 128;
        let fft = Fft::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let back = fft.inverse(&fft.forward(&x));
        assert_close(&x, &back, 1e-9);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 256;
        let fft = Fft::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let spec = fft.forward(&x);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() / e_time < 1e-10);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let fft = Fft::new(n);
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.5)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, -(i as f64))).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft.forward(&a);
        let fb = fft.forward(&b);
        let fsum = fft.forward(&sum);
        let expect: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&fsum, &expect, 1e-8);
    }

    #[test]
    fn padded_transforms() {
        let (spec, n) = rfft_padded(&[1.0, 1.0, 1.0]);
        assert_eq!(n, 4);
        assert_eq!(spec.len(), 4);
        assert!((spec[0].re - 3.0).abs() < 1e-12);
        let (spec_c, n_c) = fft_padded(&[Complex::ONE; 5]);
        assert_eq!(n_c, 8);
        assert_eq!(spec_c.len(), 8);
    }

    #[test]
    fn fftshift_even_and_odd() {
        assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fftshift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn bin_frequency_mapping() {
        let fs = 1000.0;
        assert_eq!(bin_frequency(0, 8, fs), 0.0);
        assert_eq!(bin_frequency(1, 8, fs), 125.0);
        assert_eq!(bin_frequency(4, 8, fs), 500.0); // Nyquist maps positive
        assert_eq!(bin_frequency(7, 8, fs), -125.0);
    }

    #[test]
    fn convolution_matches_direct() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -1.0];
        let got = fft_convolve_real(&a, &b);
        let want = [0.5, 0.0, -0.5, -3.0];
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn circular_convolution_identity() {
        let n = 8;
        let mut delta = vec![Complex::ZERO; n];
        delta[0] = Complex::ONE;
        let x: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -0.5)).collect();
        let y = circular_convolve(&x, &delta);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn empty_convolution() {
        assert!(fft_convolve(&[], &[Complex::ONE]).is_empty());
    }

    #[test]
    fn size_one_fft() {
        let fft = Fft::new(1);
        let x = [Complex::new(2.5, -1.0)];
        assert_eq!(fft.forward(&x), x.to_vec());
        assert_eq!(fft.inverse(&x), x.to_vec());
        // Single-sample convolution exercises the n = 1 plan.
        let y = fft_convolve(&[Complex::new(3.0, 0.0)], &[Complex::new(0.0, 2.0)]);
        assert_eq!(y.len(), 1);
        assert!((y[0] - Complex::new(0.0, 6.0)).norm() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_panics() {
        Fft::new(12);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_length_panics() {
        Fft::new(8).forward(&[Complex::ZERO; 4]);
    }
}
