//! Radix-2 decimation-in-time FFT.
//!
//! A dependency-free iterative Cooley–Tukey implementation with precomputed
//! twiddle factors, plus helpers for real-input transforms, zero-padded
//! transforms of arbitrary length, and `fftshift`.
//!
//! The forward transform computes `X[k] = Σ x[n] e^{-i 2π nk/N}`; the inverse
//! applies the conjugate kernel and divides by `N`, so
//! `ifft(fft(x)) == x`.
//!
//! # Allocation-free steady state
//!
//! Three layers keep the per-trial DSP path allocation-free:
//!
//! * **In-place / into-buffer transforms** — [`Fft::process_in_place`],
//!   [`Fft::forward_in_place`], [`Fft::inverse_in_place`],
//!   [`Fft::forward_into`], [`Fft::inverse_into`] operate on caller-provided
//!   buffers. The in-place bit-reversal permutation is an involution, so the
//!   outputs are **bit-identical** to the allocating [`Fft::forward`] /
//!   [`Fft::inverse`].
//! * **A thread-local plan cache** — [`cached_plan`] returns this thread's
//!   memoized [`Fft`] for a given size, so twiddle and bit-reversal tables are
//!   computed once per (worker thread, size) instead of per call.
//!   [`fft_plans_built`] exposes a process-wide construction counter that
//!   tests use to assert the cache is effective.
//! * **Packed real transforms** — [`fft_convolve_real`] packs both real
//!   inputs into one complex signal (`z = a + i·b`), so a real×real linear
//!   convolution costs two transforms instead of three. The unpacking
//!   reorders float operations, so results match the complex reference to
//!   ≤ 1e-12 relative error rather than bitwise (tolerance documented and
//!   parity-tested in `tests/fft_parity.rs`).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::complex::Complex;
use crate::math::next_pow2;
use crate::scratch::DspScratch;

/// Process-wide count of [`Fft`] plan constructions (see [`fft_plans_built`]).
static PLANS_BUILT: AtomicU64 = AtomicU64::new(0);

/// Number of [`Fft`] plans constructed process-wide since program start.
///
/// Diagnostics only: the allocation/plan-cache regression tests snapshot this
/// counter before and after a batch of steady-state trials to prove plans are
/// built at most once per (worker thread, size).
pub fn fft_plans_built() -> u64 {
    PLANS_BUILT.load(Ordering::Relaxed)
}

/// Records a plan construction in the shared counters (used by the f32
/// acquisition FFT in [`crate::fft32`] so the plan-cache regression tests
/// cover both precisions).
pub(crate) fn note_plan_built() {
    PLANS_BUILT.fetch_add(1, Ordering::Relaxed);
    uwb_obs::counter!("fft_plans_built").inc();
}

/// Planned FFT of a fixed power-of-two size.
///
/// Construction precomputes the bit-reversal permutation and twiddle factors;
/// [`Fft::forward_in_place`] and [`Fft::inverse_in_place`] then run without
/// any allocation, and [`Fft::forward`] / [`Fft::inverse`] allocate only
/// their output buffer.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{Complex, Fft};
///
/// let fft = Fft::new(8);
/// let x: Vec<Complex> = (0..8).map(|n| Complex::new(n as f64, 0.0)).collect();
/// let spec = fft.forward(&x);
/// let back = fft.inverse(&spec);
/// for (a, b) in x.iter().zip(&back) {
///     assert!((*a - *b).norm() < 1e-9);
/// }
/// // The in-place form produces bit-identical results on a caller buffer.
/// let mut buf = x.clone();
/// fft.forward_in_place(&mut buf);
/// assert_eq!(buf, spec);
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    rev: Vec<usize>,
    /// Twiddles for the forward transform, one per butterfly stride level.
    twiddles: Vec<Complex>,
}

impl Fft {
    /// Plans an FFT of size `n`.
    ///
    /// Prefer [`cached_plan`] in per-trial code: it memoizes plans per thread
    /// so the tables below are built once per (worker, size).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n.is_power_of_two(), "FFT size must be a power of two");
        PLANS_BUILT.fetch_add(1, Ordering::Relaxed);
        uwb_obs::counter!("fft_plans_built").inc();
        let bits = n.trailing_zeros();
        let mut rev = vec![0usize; n];
        if bits > 0 {
            for (i, r) in rev.iter_mut().enumerate() {
                *r = i.reverse_bits() >> (usize::BITS - bits);
            }
        }
        // Half-size table of e^{-i 2π k / n}.
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-std::f64::consts::TAU * k as f64 / n as f64))
            .collect();
        Fft { n, rev, twiddles }
    }

    /// The transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: a plan has size ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Butterfly passes over an already bit-reverse-permuted buffer, plus the
    /// `1/N` scaling for the inverse. Shared by every transform entry point so
    /// all of them produce bit-identical values.
    fn butterflies(&self, a: &mut [Complex], invert: bool) {
        let n = self.n;
        let mut len = 2usize;
        while len <= n {
            let stride = n / len;
            let half = len / 2;
            // k outermost so the twiddle load + conditional conjugate are
            // hoisted out of the hot loop. Butterflies within a stage touch
            // disjoint index pairs and each output is the same arithmetic
            // expression as before, so this reordering is bit-identical.
            for k in 0..half {
                let mut w = self.twiddles[k * stride];
                if invert {
                    w = w.conj();
                }
                for start in (0..n).step_by(len) {
                    let u = a[start + k];
                    let v = a[start + k + half] * w;
                    a[start + k] = u + v;
                    a[start + k + half] = u - v;
                }
            }
            len <<= 1;
        }
        if invert {
            let inv_n = 1.0 / n as f64;
            for z in a.iter_mut() {
                *z = z.scale(inv_n);
            }
        }
    }

    /// Transforms `a` in place (forward when `invert` is false, inverse —
    /// including the `1/N` normalization — when true).
    ///
    /// The bit-reversal permutation is an involution, so applying it by
    /// pairwise swaps yields exactly the array the out-of-place gather
    /// produces; outputs are **bit-identical** to [`Fft::forward`] /
    /// [`Fft::inverse`]. No allocation.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.len()`.
    pub fn process_in_place(&self, a: &mut [Complex], invert: bool) {
        assert_eq!(a.len(), self.n, "input length must equal FFT size");
        for i in 0..self.n {
            let r = self.rev[i];
            if i < r {
                a.swap(i, r);
            }
        }
        self.butterflies(a, invert);
    }

    /// Forward DFT in place. Bit-identical to [`Fft::forward`], allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.len()`.
    pub fn forward_in_place(&self, a: &mut [Complex]) {
        self.process_in_place(a, false);
    }

    /// Inverse DFT in place (includes the `1/N` normalization). Bit-identical
    /// to [`Fft::inverse`], allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.len()`.
    pub fn inverse_in_place(&self, a: &mut [Complex]) {
        self.process_in_place(a, true);
    }

    /// Gather-permute `input` into `out`, then run the butterflies there.
    fn transform_into(&self, input: &[Complex], out: &mut [Complex], invert: bool) {
        assert_eq!(input.len(), self.n, "input length must equal FFT size");
        assert_eq!(out.len(), self.n, "output length must equal FFT size");
        for (i, o) in out.iter_mut().enumerate() {
            *o = input[self.rev[i]];
        }
        self.butterflies(out, invert);
    }

    /// Forward DFT of `input` written into the caller-provided `out`.
    /// Bit-identical to [`Fft::forward`], allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()` or `out.len() != self.len()`.
    pub fn forward_into(&self, input: &[Complex], out: &mut [Complex]) {
        self.transform_into(input, out, false);
    }

    /// Inverse DFT of `input` (with `1/N` normalization) written into the
    /// caller-provided `out`. Bit-identical to [`Fft::inverse`],
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()` or `out.len() != self.len()`.
    pub fn inverse_into(&self, input: &[Complex], out: &mut [Complex]) {
        self.transform_into(input, out, true);
    }

    /// Forward DFT.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn forward(&self, input: &[Complex]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.n];
        self.transform_into(input, &mut out, false);
        out
    }

    /// Inverse DFT (includes the `1/N` normalization).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn inverse(&self, input: &[Complex]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.n];
        self.transform_into(input, &mut out, true);
        out
    }
}

/// Per-thread memoized FFT plans keyed by transform size.
///
/// Plans are stored by `log2(n)` and shared out as [`Rc`] clones, so a
/// worker thread builds each size's twiddle/bit-reversal tables exactly once
/// no matter how many kernels request it. Most callers should use the
/// thread-local front end [`cached_plan`] instead of owning a planner.
#[derive(Debug, Default)]
pub struct FftPlanner {
    /// `plans[log2(n)]` holds the plan for size `n`.
    plans: Vec<Option<Rc<Fft>>>,
}

impl FftPlanner {
    /// An empty planner; plans are built lazily on first request.
    pub fn new() -> Self {
        FftPlanner::default()
    }

    /// Returns the plan for size `n`, building and caching it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn plan(&mut self, n: usize) -> Rc<Fft> {
        assert!(n > 0 && n.is_power_of_two(), "FFT size must be a power of two");
        let idx = n.trailing_zeros() as usize;
        if idx >= self.plans.len() {
            self.plans.resize(idx + 1, None);
        }
        self.plans[idx]
            .get_or_insert_with(|| Rc::new(Fft::new(n)))
            .clone()
    }

    /// Number of distinct sizes currently planned (diagnostics).
    pub fn planned_sizes(&self) -> usize {
        self.plans.iter().filter(|p| p.is_some()).count()
    }
}

thread_local! {
    static THREAD_PLANNER: RefCell<FftPlanner> = RefCell::new(FftPlanner::new());
}

/// This thread's cached FFT plan of size `n`, built on first use.
///
/// Every FFT-based kernel in the crate routes through this cache, so a
/// Monte-Carlo worker computes twiddle/bit-reversal tables once per size for
/// its whole lifetime ([`fft_plans_built`] lets tests verify that).
///
/// # Panics
///
/// Panics if `n` is zero or not a power of two.
pub fn cached_plan(n: usize) -> Rc<Fft> {
    THREAD_PLANNER.with(|p| p.borrow_mut().plan(n))
}

/// One-shot forward FFT of a complex signal, zero-padded to the next power of
/// two.
///
/// Returns the spectrum and the transform size actually used.
pub fn fft_padded(signal: &[Complex]) -> (Vec<Complex>, usize) {
    let n = next_pow2(signal.len().max(1));
    let mut buf = signal.to_vec();
    buf.resize(n, Complex::ZERO);
    cached_plan(n).forward_in_place(&mut buf);
    (buf, n)
}

/// One-shot forward FFT of a real signal, zero-padded to the next power of
/// two. Returns the full complex spectrum.
pub fn rfft_padded(signal: &[f64]) -> (Vec<Complex>, usize) {
    let n = next_pow2(signal.len().max(1));
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    buf.resize(n, Complex::ZERO);
    cached_plan(n).forward_in_place(&mut buf);
    (buf, n)
}

/// Swaps the halves of a spectrum so that DC sits in the middle
/// (matplotlib-style `fftshift`). For odd lengths the extra element goes to
/// the front half, matching NumPy.
pub fn fftshift<T: Clone>(spectrum: &[T]) -> Vec<T> {
    let n = spectrum.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&spectrum[half..]);
    out.extend_from_slice(&spectrum[..half]);
    out
}

/// The frequency in hertz of FFT bin `k` for an `n`-point transform at sample
/// rate `fs`, mapped into `(-fs/2, fs/2]`.
pub fn bin_frequency(k: usize, n: usize, fs: f64) -> f64 {
    let k = k % n;
    let f = k as f64 * fs / n as f64;
    if f > fs / 2.0 {
        f - fs
    } else {
        f
    }
}

/// Circular (cyclic) convolution of two equal-length signals via FFT.
///
/// # Panics
///
/// Panics if lengths differ or are not a power of two.
pub fn circular_convolve(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    assert_eq!(a.len(), b.len(), "circular convolution needs equal lengths");
    let fft = cached_plan(a.len());
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    fft.forward_in_place(&mut fa);
    fft.forward_in_place(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    fft.inverse_in_place(&mut fa);
    fa
}

/// Linear convolution of two complex signals via zero-padded FFT.
///
/// Output length is `a.len() + b.len() - 1` (empty if either input is empty).
/// Uses the thread-local plan cache; see [`fft_convolve_into`] for the
/// allocation-free form.
pub fn fft_convolve(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let fft = cached_plan(n);
    let mut pa = a.to_vec();
    pa.resize(n, Complex::ZERO);
    let mut pb = b.to_vec();
    pb.resize(n, Complex::ZERO);
    fft.forward_in_place(&mut pa);
    fft.forward_in_place(&mut pb);
    for (x, y) in pa.iter_mut().zip(&pb) {
        *x *= *y;
    }
    fft.inverse_in_place(&mut pa);
    pa.truncate(out_len);
    pa
}

/// [`fft_convolve`] computing into caller-owned storage.
///
/// `out` is cleared and filled with the `a.len() + b.len() - 1` convolution
/// samples; one intermediate buffer comes from `scratch`. After warm-up
/// (capacities at their high-water marks) the call performs **zero heap
/// allocation**. Values are bit-identical to [`fft_convolve`].
pub fn fft_convolve_into(
    a: &[Complex],
    b: &[Complex],
    scratch: &mut DspScratch,
    out: &mut Vec<Complex>,
) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let fft = cached_plan(n);
    out.extend_from_slice(a);
    out.resize(n, Complex::ZERO);
    let mut pb = scratch.take_complex(n);
    pb[..b.len()].copy_from_slice(b);
    fft.forward_in_place(out);
    fft.forward_in_place(&mut pb);
    for (x, y) in out.iter_mut().zip(&pb) {
        *x *= *y;
    }
    fft.inverse_in_place(out);
    out.truncate(out_len);
    scratch.put_complex(pb);
}

/// Linear convolution of two real signals via one **packed** complex FFT.
///
/// Both inputs ride a single transform (`z = a + i·b`): the spectra are
/// unpacked with the Hermitian-symmetry identities
/// `A[k] = (Z[k] + conj(Z[n-k]))/2`, `B[k] = -i/2 · (Z[k] - conj(Z[n-k]))`,
/// multiplied, and inverse-transformed once — two FFTs instead of the three a
/// complex-path convolution needs. The reordering of float operations means
/// results match the complex reference to **≤ 1e-12** relative error (not
/// bitwise); the parity is locked down in `tests/fft_parity.rs`.
pub fn fft_convolve_real(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut scratch = DspScratch::new();
    let mut out = Vec::new();
    fft_convolve_real_into(a, b, &mut scratch, &mut out);
    out
}

/// [`fft_convolve_real`] computing into caller-owned storage.
///
/// `out` is cleared and filled with the `a.len() + b.len() - 1` samples; the
/// packed complex work buffer comes from `scratch`, so the steady state is
/// allocation-free.
pub fn fft_convolve_real_into(
    a: &[f64],
    b: &[f64],
    scratch: &mut DspScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let fft = cached_plan(n);
    let mut z = scratch.take_complex(n);
    for (zi, &x) in z.iter_mut().zip(a) {
        zi.re = x;
    }
    for (zi, &x) in z.iter_mut().zip(b) {
        zi.im = x;
    }
    fft.forward_in_place(&mut z);
    // Unpack A[k], B[k] from Z[k] and Z[n-k], multiply, and write the product
    // spectrum back in place. The product of two real-signal spectra is
    // Hermitian, so P[n-k] = conj(P[k]) and one half-spectrum pass suffices.
    let half = n / 2;
    for k in 0..=half {
        let zk = z[k];
        let zmk = z[if k == 0 { 0 } else { n - k }].conj();
        let ak = (zk + zmk).scale(0.5);
        let bk = (zk - zmk) * Complex::new(0.0, -0.5);
        let p = ak * bk;
        z[k] = p;
        if k != 0 && k != n - k {
            z[n - k] = p.conj();
        }
    }
    fft.inverse_in_place(&mut z);
    out.extend(z[..out_len].iter().map(|c| c.re));
    scratch.put_complex(z);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).norm() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn dc_signal_transforms_to_impulse() {
        let fft = Fft::new(16);
        let x = vec![Complex::ONE; 16];
        let spec = fft.forward(&x);
        assert!((spec[0] - Complex::new(16.0, 0.0)).norm() < 1e-9);
        for z in &spec[1..] {
            assert!(z.norm() < 1e-9);
        }
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let fft = Fft::new(8);
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let spec = fft.forward(&x);
        for z in &spec {
            assert!((*z - Complex::ONE).norm() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_correct_bin() {
        let n = 64;
        let fft = Fft::new(n);
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(std::f64::consts::TAU * k0 as f64 * t as f64 / n as f64))
            .collect();
        let spec = fft.forward(&x);
        for (k, z) in spec.iter().enumerate() {
            if k == k0 {
                assert!((z.norm() - n as f64).abs() < 1e-6);
            } else {
                assert!(z.norm() < 1e-6, "leak at bin {k}");
            }
        }
    }

    #[test]
    fn round_trip() {
        let n = 128;
        let fft = Fft::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let back = fft.inverse(&fft.forward(&x));
        assert_close(&x, &back, 1e-9);
    }

    #[test]
    fn in_place_is_bit_identical_to_out_of_place() {
        let n = 256;
        let fft = Fft::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.61).sin(), (i as f64 * 0.23).cos()))
            .collect();
        let spec = fft.forward(&x);
        let mut buf = x.clone();
        fft.forward_in_place(&mut buf);
        assert_eq!(buf, spec, "forward_in_place must be bit-identical");
        let back = fft.inverse(&spec);
        fft.inverse_in_place(&mut buf);
        assert_eq!(buf, back, "inverse_in_place must be bit-identical");
    }

    #[test]
    fn into_buffer_is_bit_identical() {
        let n = 64;
        let fft = Fft::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64 * 0.1 - 3.0, (i as f64 * 0.7).cos()))
            .collect();
        let mut out = vec![Complex::ZERO; n];
        fft.forward_into(&x, &mut out);
        assert_eq!(out, fft.forward(&x));
        let mut back = vec![Complex::ZERO; n];
        fft.inverse_into(&out, &mut back);
        assert_eq!(back, fft.inverse(&out));
    }

    #[test]
    fn planner_caches_plans_per_size() {
        let mut planner = FftPlanner::new();
        let before = fft_plans_built();
        let p1 = planner.plan(512);
        let p2 = planner.plan(512);
        assert!(Rc::ptr_eq(&p1, &p2), "same size must share one plan");
        assert_eq!(fft_plans_built() - before, 1);
        let _p3 = planner.plan(1024);
        assert_eq!(fft_plans_built() - before, 2);
        assert_eq!(planner.planned_sizes(), 2);
    }

    #[test]
    fn cached_plan_reuses_thread_local_plan() {
        // Warm the cache, then verify repeat requests build nothing new.
        let a = cached_plan(2048);
        let before = fft_plans_built();
        let b = cached_plan(2048);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(fft_plans_built(), before);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 256;
        let fft = Fft::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let spec = fft.forward(&x);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() / e_time < 1e-10);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let fft = Fft::new(n);
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.5)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, -(i as f64))).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft.forward(&a);
        let fb = fft.forward(&b);
        let fsum = fft.forward(&sum);
        let expect: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&fsum, &expect, 1e-8);
    }

    #[test]
    fn padded_transforms() {
        let (spec, n) = rfft_padded(&[1.0, 1.0, 1.0]);
        assert_eq!(n, 4);
        assert_eq!(spec.len(), 4);
        assert!((spec[0].re - 3.0).abs() < 1e-12);
        let (spec_c, n_c) = fft_padded(&[Complex::ONE; 5]);
        assert_eq!(n_c, 8);
        assert_eq!(spec_c.len(), 8);
    }

    #[test]
    fn fftshift_even_and_odd() {
        assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fftshift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn bin_frequency_mapping() {
        let fs = 1000.0;
        assert_eq!(bin_frequency(0, 8, fs), 0.0);
        assert_eq!(bin_frequency(1, 8, fs), 125.0);
        assert_eq!(bin_frequency(4, 8, fs), 500.0); // Nyquist maps positive
        assert_eq!(bin_frequency(7, 8, fs), -125.0);
    }

    #[test]
    fn convolution_matches_direct() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -1.0];
        let got = fft_convolve_real(&a, &b);
        let want = [0.5, 0.0, -0.5, -3.0];
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn packed_real_convolution_matches_complex_path() {
        // The packed path reorders float ops; parity must hold to 1e-12.
        let a: Vec<f64> = (0..200).map(|i| (0.13 * i as f64).sin() * 2.0).collect();
        let b: Vec<f64> = (0..37).map(|i| (0.41 * i as f64).cos() - 0.2).collect();
        let packed = fft_convolve_real(&a, &b);
        let ca: Vec<Complex> = a.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let cb: Vec<Complex> = b.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let reference = fft_convolve(&ca, &cb);
        assert_eq!(packed.len(), reference.len());
        let scale: f64 = a.iter().map(|x| x.abs()).sum::<f64>()
            * b.iter().map(|x| x.abs()).fold(0.0, f64::max);
        for (p, r) in packed.iter().zip(&reference) {
            assert!((p - r.re).abs() <= 1e-12 * scale.max(1.0), "{p} vs {}", r.re);
        }
    }

    #[test]
    fn convolve_into_is_bit_identical_and_reuses_storage() {
        let a: Vec<Complex> = (0..120).map(|i| Complex::cis(0.3 * i as f64)).collect();
        let b: Vec<Complex> = (0..30).map(|i| Complex::new(0.1 * i as f64, -0.5)).collect();
        let want = fft_convolve(&a, &b);
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        fft_convolve_into(&a, &b, &mut scratch, &mut out);
        assert_eq!(out, want);
        // Second call must reuse both the output and scratch storage.
        let cap = out.capacity();
        fft_convolve_into(&a, &b, &mut scratch, &mut out);
        assert_eq!(out, want);
        assert_eq!(out.capacity(), cap);
        assert_eq!(scratch.pooled(), 1);
    }

    #[test]
    fn circular_convolution_identity() {
        let n = 8;
        let mut delta = vec![Complex::ZERO; n];
        delta[0] = Complex::ONE;
        let x: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -0.5)).collect();
        let y = circular_convolve(&x, &delta);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn empty_convolution() {
        assert!(fft_convolve(&[], &[Complex::ONE]).is_empty());
        assert!(fft_convolve_real(&[], &[1.0]).is_empty());
        let mut scratch = DspScratch::new();
        let mut out = vec![Complex::ONE];
        fft_convolve_into(&[], &[Complex::ONE], &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn size_one_fft() {
        let fft = Fft::new(1);
        let x = [Complex::new(2.5, -1.0)];
        assert_eq!(fft.forward(&x), x.to_vec());
        assert_eq!(fft.inverse(&x), x.to_vec());
        // Single-sample convolution exercises the n = 1 plan.
        let y = fft_convolve(&[Complex::new(3.0, 0.0)], &[Complex::new(0.0, 2.0)]);
        assert_eq!(y.len(), 1);
        assert!((y[0] - Complex::new(0.0, 6.0)).norm() < 1e-12);
        // And the packed real path at n = 1.
        let r = fft_convolve_real(&[3.0], &[-2.0]);
        assert_eq!(r.len(), 1);
        assert!((r[0] + 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_panics() {
        Fft::new(12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn planner_non_pow2_panics() {
        FftPlanner::new().plan(12);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_length_panics() {
        Fft::new(8).forward(&[Complex::ZERO; 4]);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn wrong_output_length_panics() {
        let mut out = vec![Complex::ZERO; 4];
        Fft::new(8).forward_into(&[Complex::ZERO; 8], &mut out);
    }
}
