//! Window functions for FIR design and spectral estimation.

use crate::math::bessel_i0;

/// Window function selector.
///
/// All windows are *symmetric* (filter-design convention) of length `n`:
/// `w[k]` for `k = 0..n`, with `w[0] == w[n-1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Window {
    /// Rectangular (boxcar) window: all ones.
    Rectangular,
    /// Hann window (raised cosine), −31 dB first sidelobe.
    Hann,
    /// Hamming window, −41 dB first sidelobe.
    Hamming,
    /// Blackman window, −58 dB first sidelobe.
    Blackman,
    /// Kaiser window with shape parameter β. β≈0 is rectangular; larger β
    /// trades main-lobe width for sidelobe suppression.
    Kaiser(f64),
}

impl Window {
    /// Evaluates the window at tap `k` of an `n`-tap window.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n` or `n == 0`.
    pub fn coefficient(self, k: usize, n: usize) -> f64 {
        assert!(n > 0, "window length must be positive");
        assert!(k < n, "window index out of range");
        if n == 1 {
            return 1.0;
        }
        let x = k as f64 / (n - 1) as f64; // in [0, 1]
        let two_pi = std::f64::consts::TAU;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (two_pi * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (two_pi * x).cos(),
            Window::Blackman => {
                0.42 - 0.5 * (two_pi * x).cos() + 0.08 * (2.0 * two_pi * x).cos()
            }
            Window::Kaiser(beta) => {
                let t = 2.0 * x - 1.0; // in [-1, 1]
                bessel_i0(beta * (1.0 - t * t).max(0.0).sqrt()) / bessel_i0(beta)
            }
        }
    }

    /// Generates the full window of length `n`.
    ///
    /// ```
    /// use uwb_dsp::Window;
    /// let w = Window::Hann.generate(8);
    /// assert_eq!(w.len(), 8);
    /// assert!(w[0].abs() < 1e-12); // Hann endpoints are zero
    /// ```
    pub fn generate(self, n: usize) -> Vec<f64> {
        (0..n).map(|k| self.coefficient(k, n)).collect()
    }

    /// Coherent gain: mean of the window coefficients (1.0 for rectangular).
    pub fn coherent_gain(self, n: usize) -> f64 {
        let w = self.generate(n);
        w.iter().sum::<f64>() / n as f64
    }

    /// Equivalent noise bandwidth in bins:
    /// `n * sum(w²) / (sum w)²`. 1.0 for rectangular, 1.5 for Hann.
    pub fn enbw(self, n: usize) -> f64 {
        let w = self.generate(n);
        let s1: f64 = w.iter().sum();
        let s2: f64 = w.iter().map(|x| x * x).sum();
        n as f64 * s2 / (s1 * s1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_symmetry() {
        for win in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::Kaiser(6.0),
        ] {
            let n = 33;
            let w = win.generate(n);
            assert_eq!(w.len(), n);
            for k in 0..n {
                assert!(
                    (w[k] - w[n - 1 - k]).abs() < 1e-12,
                    "{win:?} not symmetric at {k}"
                );
                assert!(w[k] >= -1e-12 && w[k] <= 1.0 + 1e-12);
            }
            // Peak at the center.
            assert!((w[n / 2] - 1.0).abs() < 1e-9, "{win:?} center not 1");
        }
    }

    #[test]
    fn hann_endpoints_zero() {
        let w = Window::Hann.generate(16);
        assert!(w[0].abs() < 1e-12);
        assert!(w[15].abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = Window::Hamming.generate(16);
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn kaiser_beta_zero_is_rectangular() {
        let w = Window::Kaiser(0.0).generate(9);
        for x in w {
            assert!((x - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn enbw_reference_values() {
        // Large n limits: rectangular 1.0, Hann 1.5, Hamming ~1.363.
        let n = 4096;
        assert!((Window::Rectangular.enbw(n) - 1.0).abs() < 1e-9);
        assert!((Window::Hann.enbw(n) - 1.5).abs() < 0.01);
        assert!((Window::Hamming.enbw(n) - 1.363).abs() < 0.01);
    }

    #[test]
    fn coherent_gain_rectangular() {
        assert!((Window::Rectangular.coherent_gain(64) - 1.0).abs() < 1e-12);
        assert!((Window::Hann.coherent_gain(4096) - 0.5).abs() < 0.01);
    }

    #[test]
    fn single_tap_window() {
        for win in [Window::Hann, Window::Kaiser(4.0)] {
            assert_eq!(win.generate(1), vec![1.0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Window::Hann.coefficient(8, 8);
    }
}
