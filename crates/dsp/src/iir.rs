//! IIR biquad sections and cascades.
//!
//! Provides RBJ-cookbook second-order sections (lowpass, highpass, notch,
//! peaking) and a Butterworth lowpass cascade. The tunable notch is the
//! digital stand-in for the paper's front-end notch filter that is steered by
//! the spectral-monitoring block.

use crate::complex::Complex;

/// A single direct-form-I biquad section:
/// `y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] − a1 y[n-1] − a2 y[n-2]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    /// Feed-forward coefficients.
    pub b: [f64; 3],
    /// Feedback coefficients (a0 normalized to 1, stored as `[a1, a2]`).
    pub a: [f64; 2],
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
    // Separate state for the complex path so real/complex use don't mix.
    cx1: Complex,
    cx2: Complex,
    cy1: Complex,
    cy2: Complex,
}

impl Biquad {
    /// Creates a biquad from normalized coefficients (`a0 == 1`).
    pub fn from_coefficients(b: [f64; 3], a: [f64; 2]) -> Self {
        Biquad {
            b,
            a,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
            cx1: Complex::ZERO,
            cx2: Complex::ZERO,
            cy1: Complex::ZERO,
            cy2: Complex::ZERO,
        }
    }

    /// RBJ lowpass with cutoff `f0` (fraction of sample rate) and quality
    /// factor `q`.
    ///
    /// # Panics
    ///
    /// Panics if `f0` is outside `(0, 0.5)` or `q <= 0`.
    pub fn lowpass(f0: f64, q: f64) -> Self {
        assert!(f0 > 0.0 && f0 < 0.5, "f0 must be in (0, 0.5)");
        assert!(q > 0.0, "q must be positive");
        let w0 = std::f64::consts::TAU * f0;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad::from_coefficients(
            [
                (1.0 - cw) / 2.0 / a0,
                (1.0 - cw) / a0,
                (1.0 - cw) / 2.0 / a0,
            ],
            [-2.0 * cw / a0, (1.0 - alpha) / a0],
        )
    }

    /// RBJ highpass with cutoff `f0` and quality factor `q`.
    ///
    /// # Panics
    ///
    /// Panics if `f0` is outside `(0, 0.5)` or `q <= 0`.
    pub fn highpass(f0: f64, q: f64) -> Self {
        assert!(f0 > 0.0 && f0 < 0.5, "f0 must be in (0, 0.5)");
        assert!(q > 0.0, "q must be positive");
        let w0 = std::f64::consts::TAU * f0;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad::from_coefficients(
            [
                (1.0 + cw) / 2.0 / a0,
                -(1.0 + cw) / a0,
                (1.0 + cw) / 2.0 / a0,
            ],
            [-2.0 * cw / a0, (1.0 - alpha) / a0],
        )
    }

    /// RBJ notch centered at `f0` with quality factor `q` (higher `q` ⇒
    /// narrower notch). Unity gain away from the notch.
    ///
    /// # Panics
    ///
    /// Panics if `f0` is outside `(0, 0.5)` or `q <= 0`.
    pub fn notch(f0: f64, q: f64) -> Self {
        assert!(f0 > 0.0 && f0 < 0.5, "f0 must be in (0, 0.5)");
        assert!(q > 0.0, "q must be positive");
        let w0 = std::f64::consts::TAU * f0;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad::from_coefficients(
            [1.0 / a0, -2.0 * cw / a0, 1.0 / a0],
            [-2.0 * cw / a0, (1.0 - alpha) / a0],
        )
    }

    /// Processes one real sample.
    pub fn push(&mut self, x: f64) -> f64 {
        let y = self.b[0] * x + self.b[1] * self.x1 + self.b[2] * self.x2
            - self.a[0] * self.y1
            - self.a[1] * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Processes one complex sample (same real coefficients on both rails).
    pub fn push_complex(&mut self, x: Complex) -> Complex {
        let y = x * self.b[0] + self.cx1 * self.b[1] + self.cx2 * self.b[2]
            - self.cy1 * self.a[0]
            - self.cy2 * self.a[1];
        self.cx2 = self.cx1;
        self.cx1 = x;
        self.cy2 = self.cy1;
        self.cy1 = y;
        y
    }

    /// Filters a real block.
    pub fn process(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.push(x)).collect()
    }

    /// Filters a complex block.
    pub fn process_complex(&mut self, input: &[Complex]) -> Vec<Complex> {
        input.iter().map(|&x| self.push_complex(x)).collect()
    }

    /// Clears filter state.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
        self.cx1 = Complex::ZERO;
        self.cx2 = Complex::ZERO;
        self.cy1 = Complex::ZERO;
        self.cy2 = Complex::ZERO;
    }

    /// Frequency response at normalized frequency `f` (cycles/sample).
    pub fn response_at(&self, f: f64) -> Complex {
        let z1 = Complex::cis(-std::f64::consts::TAU * f);
        let z2 = z1 * z1;
        let num = Complex::from(self.b[0]) + z1 * self.b[1] + z2 * self.b[2];
        let den = Complex::ONE + z1 * self.a[0] + z2 * self.a[1];
        num / den
    }

    /// Magnitude response in dB at normalized frequency `f`.
    pub fn magnitude_db(&self, f: f64) -> f64 {
        20.0 * self.response_at(f).norm().log10()
    }

    /// `true` if both poles are strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury criterion for 2nd order: |a2| < 1 and |a1| < 1 + a2.
        let (a1, a2) = (self.a[0], self.a[1]);
        a2.abs() < 1.0 && a1.abs() < 1.0 + a2
    }
}

/// A cascade of biquad sections applied in series.
#[derive(Debug, Clone)]
pub struct BiquadCascade {
    sections: Vec<Biquad>,
}

impl BiquadCascade {
    /// Builds a cascade from individual sections.
    ///
    /// # Panics
    ///
    /// Panics if `sections` is empty.
    pub fn new(sections: Vec<Biquad>) -> Self {
        assert!(!sections.is_empty(), "cascade needs at least one section");
        BiquadCascade { sections }
    }

    /// Butterworth lowpass of even order `2 * n_sections` with cutoff `f0`
    /// (fraction of the sample rate), realized as `n_sections` RBJ lowpass
    /// biquads with the standard Butterworth pole-pair Q values.
    ///
    /// # Panics
    ///
    /// Panics if `n_sections == 0` or `f0` outside `(0, 0.5)`.
    pub fn butterworth_lowpass(n_sections: usize, f0: f64) -> Self {
        assert!(n_sections > 0, "need at least one section");
        let order = 2 * n_sections;
        let sections = (0..n_sections)
            .map(|k| {
                let theta = std::f64::consts::PI * (2.0 * k as f64 + 1.0) / (2.0 * order as f64);
                let q = 1.0 / (2.0 * theta.sin());
                Biquad::lowpass(f0, q)
            })
            .collect();
        BiquadCascade { sections }
    }

    /// Number of biquad sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Always `false`; construction requires at least one section.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Processes one real sample through every section.
    pub fn push(&mut self, x: f64) -> f64 {
        self.sections.iter_mut().fold(x, |acc, s| s.push(acc))
    }

    /// Processes one complex sample through every section.
    pub fn push_complex(&mut self, x: Complex) -> Complex {
        self.sections
            .iter_mut()
            .fold(x, |acc, s| s.push_complex(acc))
    }

    /// Filters a real block.
    pub fn process(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.push(x)).collect()
    }

    /// Filters a complex block.
    pub fn process_complex(&mut self, input: &[Complex]) -> Vec<Complex> {
        input.iter().map(|&x| self.push_complex(x)).collect()
    }

    /// Clears the state of every section.
    pub fn reset(&mut self) {
        self.sections.iter_mut().for_each(Biquad::reset);
    }

    /// Combined frequency response (product of section responses).
    pub fn response_at(&self, f: f64) -> Complex {
        self.sections
            .iter()
            .fold(Complex::ONE, |acc, s| acc * s.response_at(f))
    }

    /// Combined magnitude response in dB.
    pub fn magnitude_db(&self, f: f64) -> f64 {
        20.0 * self.response_at(f).norm().log10()
    }

    /// `true` if every section is stable.
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(Biquad::is_stable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_dc_and_nyquist() {
        let bq = Biquad::lowpass(0.1, std::f64::consts::FRAC_1_SQRT_2);
        assert!(bq.magnitude_db(0.001).abs() < 0.1);
        assert!(bq.magnitude_db(0.49) < -20.0);
        assert!(bq.is_stable());
    }

    #[test]
    fn highpass_dc_and_nyquist() {
        let bq = Biquad::highpass(0.1, std::f64::consts::FRAC_1_SQRT_2);
        assert!(bq.magnitude_db(0.001) < -40.0);
        assert!(bq.magnitude_db(0.45).abs() < 0.5);
    }

    #[test]
    fn notch_kills_center_passes_elsewhere() {
        let bq = Biquad::notch(0.2, 30.0);
        assert!(bq.magnitude_db(0.2) < -50.0);
        assert!(bq.magnitude_db(0.05).abs() < 0.5);
        assert!(bq.magnitude_db(0.4).abs() < 0.5);
        assert!(bq.is_stable());
    }

    #[test]
    fn notch_time_domain_removes_tone() {
        let f0 = 0.15;
        let mut bq = Biquad::notch(f0, 20.0);
        let n = 4096;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f0 * i as f64).sin())
            .collect();
        let y = bq.process(&x);
        let tail_rms = crate::math::rms(&y[n / 2..]);
        assert!(tail_rms < 0.02, "tone survived the notch: {tail_rms}");
    }

    #[test]
    fn response_matches_time_domain_gain() {
        let mut bq = Biquad::lowpass(0.2, 1.0);
        let f = 0.05;
        let n = 8192;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f * i as f64).sin())
            .collect();
        let y = bq.process(&x);
        let gain_td = crate::math::rms(&y[n / 2..]) / crate::math::rms(&x[n / 2..]);
        let gain_fd = bq.response_at(f).norm();
        assert!((gain_td - gain_fd).abs() < 0.01, "{gain_td} vs {gain_fd}");
    }

    #[test]
    fn complex_path_matches_real_path() {
        let mut a = Biquad::lowpass(0.1, 0.9);
        let mut b = Biquad::lowpass(0.1, 0.9);
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let yr = a.process(&x);
        let yc = b.process_complex(&crate::complex::to_complex(&x));
        for (r, c) in yr.iter().zip(&yc) {
            assert!((r - c.re).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn butterworth_cascade_rolloff() {
        let cas = BiquadCascade::butterworth_lowpass(2, 0.1); // 4th order
        assert!(cas.magnitude_db(0.001).abs() < 0.05);
        // -3 dB at cutoff for Butterworth.
        let at_fc = cas.magnitude_db(0.1);
        assert!((at_fc + 3.0).abs() < 0.5, "{at_fc}");
        // 4th order: ~ -24 dB/octave => at 2*fc about -24 dB.
        let at_2fc = cas.magnitude_db(0.2);
        assert!(at_2fc < -20.0 && at_2fc > -32.0, "{at_2fc}");
        assert!(cas.is_stable());
    }

    #[test]
    fn cascade_reset_reproducibility() {
        let mut cas = BiquadCascade::butterworth_lowpass(3, 0.15);
        let x: Vec<f64> = (0..64).map(|i| ((i * 13) % 7) as f64).collect();
        let y1 = cas.process(&x);
        cas.reset();
        let y2 = cas.process(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn unstable_coefficients_detected() {
        let bad = Biquad::from_coefficients([1.0, 0.0, 0.0], [0.0, 1.5]);
        assert!(!bad.is_stable());
    }

    #[test]
    #[should_panic(expected = "f0 must be in")]
    fn bad_f0_panics() {
        Biquad::notch(0.6, 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn empty_cascade_panics() {
        BiquadCascade::new(Vec::new());
    }
}
