//! Numeric utilities shared across the workspace: dB conversions, special
//! functions (erfc, Q-function, modified Bessel I0), and small statistics
//! helpers.

/// Converts a power ratio to decibels: `10 * log10(ratio)`.
///
/// ```
/// use uwb_dsp::math::pow_to_db;
/// assert!((pow_to_db(100.0) - 20.0).abs() < 1e-12);
/// ```
#[inline]
pub fn pow_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to a power ratio: `10^(db/10)`.
#[inline]
pub fn db_to_pow(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts an amplitude ratio to decibels: `20 * log10(ratio)`.
#[inline]
pub fn amp_to_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Converts decibels to an amplitude ratio: `10^(db/20)`.
#[inline]
pub fn db_to_amp(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts milliwatts to dBm.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Complementary error function, via the rational approximation of
/// Abramowitz & Stegun 7.1.26 refined with the standard `erfcx`-style
/// continued form. Maximum absolute error below `1.2e-7`, which is far below
/// the Monte-Carlo noise floor of any BER estimate in this workspace.
///
/// ```
/// use uwb_dsp::math::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-7);
/// assert!(erfc(3.0) < 1e-4);
/// ```
pub fn erfc(x: f64) -> f64 {
    // Numerical Recipes "erfcc": fractional error everywhere < 1.2e-7.
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x) = 1 - erfc(x)`.
#[inline]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Gaussian Q-function: tail probability of a standard normal,
/// `Q(x) = P(N(0,1) > x)`.
///
/// The theoretical BER of coherent BPSK in AWGN is `Q(sqrt(2 Eb/N0))`.
///
/// ```
/// use uwb_dsp::math::q_function;
/// assert!((q_function(0.0) - 0.5).abs() < 1e-7);
/// ```
#[inline]
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Modified Bessel function of the first kind, order zero, `I0(x)`.
///
/// Polynomial approximations from Abramowitz & Stegun 9.8.1/9.8.2; used by
/// the Kaiser window. Accurate to better than `2e-7` relative error.
pub fn bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = (x / 3.75) * (x / 3.75);
        1.0 + t
            * (3.5156229
                + t * (3.0899424
                    + t * (1.2067492 + t * (0.2659732 + t * (0.0360768 + t * 0.0045813)))))
    } else {
        let t = 3.75 / ax;
        (ax.exp() / ax.sqrt())
            * (0.39894228
                + t * (0.01328592
                    + t * (0.00225319
                        + t * (-0.00157565
                            + t * (0.00916281
                                + t * (-0.02057706
                                    + t * (0.02635537 + t * (-0.01647633 + t * 0.00392377))))))))
    }
}

/// Normalized sinc: `sin(πx) / (πx)`, with `sinc(0) = 1`.
///
/// ```
/// use uwb_dsp::math::sinc;
/// assert_eq!(sinc(0.0), 1.0);
/// assert!(sinc(1.0).abs() < 1e-12);
/// ```
#[inline]
pub fn sinc(x: f64) -> f64 {
    if x == 0.0 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance of a slice. Returns `0.0` for slices shorter than 2.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Standard deviation (square root of [`variance`]).
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Root-mean-square value of a slice.
pub fn rms(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    (data.iter().map(|x| x * x).sum::<f64>() / data.len() as f64).sqrt()
}

/// Maximum absolute value in a slice. Returns `0.0` for an empty slice.
pub fn max_abs(data: &[f64]) -> f64 {
    data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Index of the maximum element (ties resolve to the first occurrence).
/// Returns `None` for an empty slice.
pub fn argmax(data: &[f64]) -> Option<usize> {
    if data.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (i, &x) in data.iter().enumerate() {
        if x > data[best] {
            best = i;
        }
    }
    Some(best)
}

/// Next power of two greater than or equal to `n` (minimum 1).
pub fn next_pow2(n: usize) -> usize {
    let mut p = 1usize;
    while p < n {
        p <<= 1;
    }
    p
}

/// Linear interpolation between `a` and `b` with parameter `t` in `[0,1]`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Clamps `x` into `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "clamp: lo must not exceed hi");
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trips() {
        for &v in &[0.001, 0.5, 1.0, 42.0, 1e6] {
            assert!((db_to_pow(pow_to_db(v)) - v).abs() / v < 1e-12);
            assert!((db_to_amp(amp_to_db(v)) - v).abs() / v < 1e-12);
            assert!((dbm_to_mw(mw_to_dbm(v)) - v).abs() / v < 1e-12);
        }
        assert!((pow_to_db(2.0) - 3.0103).abs() < 1e-3);
        assert!((amp_to_db(2.0) - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn erfc_reference_values() {
        // Reference values from tables.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(0.5) - 0.4795001).abs() < 1e-6);
        assert!((erfc(1.0) - 0.1572992).abs() < 1e-6);
        assert!((erfc(2.0) - 0.0046777).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.8427008).abs() < 1e-6);
    }

    #[test]
    fn erf_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.2] {
            assert!((erf(x) + erf(-x)).abs() < 1e-7);
        }
    }

    #[test]
    fn q_function_reference() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158655).abs() < 1e-5);
        assert!((q_function(3.0) - 0.00134990).abs() < 1e-6);
        // BPSK at Eb/N0 = 9.6 dB should give ~1e-5.
        let ebn0 = db_to_pow(9.6);
        let ber = q_function((2.0 * ebn0).sqrt());
        assert!(ber > 0.5e-5 && ber < 2e-5, "ber = {ber}");
    }

    #[test]
    fn bessel_i0_reference() {
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-7);
        assert!((bessel_i0(1.0) - 1.2660658).abs() < 1e-5);
        assert!((bessel_i0(5.0) - 27.239871).abs() / 27.24 < 1e-5);
        assert!((bessel_i0(-5.0) - bessel_i0(5.0)).abs() < 1e-9);
    }

    #[test]
    fn sinc_zeros_at_integers() {
        for k in 1..=10 {
            assert!(sinc(k as f64).abs() < 1e-12);
            assert!(sinc(-k as f64).abs() < 1e-12);
        }
        assert_eq!(sinc(0.0), 1.0);
    }

    #[test]
    fn stats_helpers() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&d), 2.5);
        assert!((variance(&d) - 1.25).abs() < 1e-12);
        assert!((std_dev(&d) - 1.25f64.sqrt()).abs() < 1e-12);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn pow2_and_lerp() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(lerp(0.0, 10.0, 0.25), 2.5);
        assert_eq!(clamp(5.0, 0.0, 2.0), 2.0);
        assert_eq!(clamp(-5.0, 0.0, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "clamp")]
    fn clamp_bad_range_panics() {
        clamp(0.0, 2.0, 1.0);
    }
}
