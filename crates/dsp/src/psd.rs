//! Power spectral density estimation.
//!
//! Periodogram and Welch estimators, used for the FCC mask checker, Fig. 4
//! spectrum reproduction, and the receiver's spectral-monitoring block.

use crate::complex::Complex;
use crate::fft::{bin_frequency, Fft};
use crate::math::next_pow2;
use crate::window::Window;

/// A one-sided or two-sided PSD estimate with its frequency axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Psd {
    /// Frequency of each bin in hertz (two-sided: `(-fs/2, fs/2]` unshifted
    /// order; use [`Psd::sorted`] for a monotonic axis).
    pub freqs: Vec<f64>,
    /// Power spectral density in linear units per hertz (V²/Hz for a voltage
    /// signal across 1 Ω).
    pub values: Vec<f64>,
    /// Sample rate used for the estimate.
    pub fs: f64,
}

impl Psd {
    /// Returns `(freqs, values)` sorted by ascending frequency.
    pub fn sorted(&self) -> (Vec<f64>, Vec<f64>) {
        let mut idx: Vec<usize> = (0..self.freqs.len()).collect();
        idx.sort_by(|&a, &b| self.freqs[a].total_cmp(&self.freqs[b]));
        (
            idx.iter().map(|&i| self.freqs[i]).collect(),
            idx.iter().map(|&i| self.values[i]).collect(),
        )
    }

    /// PSD value (linear) at the bin nearest to `freq_hz`.
    pub fn value_at(&self, freq_hz: f64) -> f64 {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &f) in self.freqs.iter().enumerate() {
            let d = (f - freq_hz).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        self.values[best]
    }

    /// Total power: integral of the PSD over frequency.
    pub fn total_power(&self) -> f64 {
        let df = self.fs / self.freqs.len() as f64;
        self.values.iter().sum::<f64>() * df
    }

    /// Frequency of the strongest bin.
    pub fn peak_frequency(&self) -> f64 {
        let k = crate::math::argmax(&self.values).unwrap_or(0);
        self.freqs[k]
    }

    /// Occupied bandwidth: width of the smallest contiguous band around the
    /// peak containing `fraction` (e.g. `0.99`) of the total power.
    /// Returns 0 for degenerate inputs.
    pub fn occupied_bandwidth(&self, fraction: f64) -> f64 {
        let (freqs, vals) = self.sorted();
        let total: f64 = vals.iter().sum();
        if total <= 0.0 || freqs.len() < 2 {
            return 0.0;
        }
        let peak = crate::math::argmax(&vals).unwrap_or(0);
        let mut lo = peak;
        let mut hi = peak;
        let mut acc = vals[peak];
        while acc < fraction * total && (lo > 0 || hi + 1 < vals.len()) {
            let left = if lo > 0 { vals[lo - 1] } else { -1.0 };
            let right = if hi + 1 < vals.len() { vals[hi + 1] } else { -1.0 };
            if left >= right {
                lo -= 1;
                acc += vals[lo];
            } else {
                hi += 1;
                acc += vals[hi];
            }
        }
        freqs[hi] - freqs[lo]
    }

    /// −`db` bandwidth around the peak: distance between the first
    /// frequencies on either side of the peak where the PSD falls `db`
    /// decibels below the peak value.
    pub fn bandwidth_below_peak(&self, db: f64) -> f64 {
        let (freqs, vals) = self.sorted();
        if vals.is_empty() {
            return 0.0;
        }
        let peak = crate::math::argmax(&vals).unwrap_or(0);
        let threshold = vals[peak] * crate::math::db_to_pow(-db);
        let mut lo = peak;
        while lo > 0 && vals[lo] > threshold {
            lo -= 1;
        }
        let mut hi = peak;
        while hi + 1 < vals.len() && vals[hi] > threshold {
            hi += 1;
        }
        freqs[hi] - freqs[lo]
    }
}

/// Single periodogram of a complex signal (zero-padded to a power of two).
///
/// # Panics
///
/// Panics if `signal` is empty or `fs <= 0`.
pub fn periodogram(signal: &[Complex], fs: f64, window: Window) -> Psd {
    assert!(!signal.is_empty(), "cannot estimate PSD of empty signal");
    assert!(fs > 0.0, "sample rate must be positive");
    let n = signal.len();
    let w = window.generate(n);
    let wpow: f64 = w.iter().map(|x| x * x).sum::<f64>() / n as f64;
    let mut buf: Vec<Complex> = signal
        .iter()
        .zip(&w)
        .map(|(&z, &wk)| z * wk)
        .collect();
    let nfft = next_pow2(n);
    buf.resize(nfft, Complex::ZERO);
    let spec = Fft::new(nfft).forward(&buf);
    let scale = 1.0 / (fs * n as f64 * wpow);
    let values: Vec<f64> = spec.iter().map(|z| z.norm_sqr() * scale).collect();
    let freqs: Vec<f64> = (0..nfft).map(|k| bin_frequency(k, nfft, fs)).collect();
    Psd { freqs, values, fs }
}

/// Periodogram of a real signal.
pub fn periodogram_real(signal: &[f64], fs: f64, window: Window) -> Psd {
    let c: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    periodogram(&c, fs, window)
}

/// Welch's averaged-periodogram PSD estimate with 50 % overlap.
///
/// `segment_len` is rounded up to a power of two. Falls back to a single
/// periodogram when the signal is shorter than one segment.
///
/// # Panics
///
/// Panics if `signal` is empty, `segment_len == 0`, or `fs <= 0`.
pub fn welch(signal: &[Complex], fs: f64, segment_len: usize, window: Window) -> Psd {
    assert!(!signal.is_empty(), "cannot estimate PSD of empty signal");
    assert!(segment_len > 0, "segment length must be positive");
    assert!(fs > 0.0, "sample rate must be positive");
    let seg = next_pow2(segment_len).min(next_pow2(signal.len()));
    if signal.len() < seg {
        return periodogram(signal, fs, window);
    }
    let hop = seg / 2;
    let w = window.generate(seg);
    let wpow: f64 = w.iter().map(|x| x * x).sum::<f64>() / seg as f64;
    let fft = Fft::new(seg);
    let mut acc = vec![0.0f64; seg];
    let mut count = 0usize;
    let mut start = 0usize;
    while start + seg <= signal.len() {
        let buf: Vec<Complex> = (0..seg).map(|i| signal[start + i] * w[i]).collect();
        let spec = fft.forward(&buf);
        for (a, z) in acc.iter_mut().zip(&spec) {
            *a += z.norm_sqr();
        }
        count += 1;
        start += hop;
    }
    let scale = 1.0 / (fs * seg as f64 * wpow * count as f64);
    let values: Vec<f64> = acc.iter().map(|&p| p * scale).collect();
    let freqs: Vec<f64> = (0..seg).map(|k| bin_frequency(k, seg, fs)).collect();
    Psd { freqs, values, fs }
}

/// Welch PSD of a real signal.
pub fn welch_real(signal: &[f64], fs: f64, segment_len: usize, window: Window) -> Psd {
    let c: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    welch(&c, fs, segment_len, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nco::Nco;

    #[test]
    fn white_noiseless_tone_peak_location() {
        let fs = 1.0e9;
        let f0 = 125.0e6;
        let sig = Nco::new(f0, fs).generate_complex(4096);
        let psd = welch(&sig, fs, 1024, Window::Hann);
        assert!((psd.peak_frequency() - f0).abs() < fs / 1024.0);
    }

    #[test]
    fn parseval_total_power() {
        // Unit-amplitude complex tone: power 1.0.
        let fs = 100.0e6;
        let sig = Nco::new(12.5e6, fs).generate_complex(8192);
        let psd = welch(&sig, fs, 2048, Window::Hann);
        let p = psd.total_power();
        assert!((p - 1.0).abs() < 0.05, "total power {p}");
        let pg = periodogram(&sig[..2048], fs, Window::Rectangular);
        assert!((pg.total_power() - 1.0).abs() < 0.05);
    }

    #[test]
    fn real_tone_splits_power() {
        let fs = 1.0e6;
        let f0 = 100e3;
        let sig: Vec<f64> = (0..8192)
            .map(|i| (std::f64::consts::TAU * f0 * i as f64 / fs).cos())
            .collect();
        let psd = welch_real(&sig, fs, 1024, Window::Hann);
        // Peak at ±f0, total power 0.5.
        assert!((psd.peak_frequency().abs() - f0).abs() < fs / 1024.0);
        assert!((psd.total_power() - 0.5).abs() < 0.05);
    }

    #[test]
    fn sorted_axis_monotonic() {
        let fs = 1.0;
        let sig = vec![Complex::ONE; 64];
        let psd = periodogram(&sig, fs, Window::Rectangular);
        let (f, _) = psd.sorted();
        for w in f.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn occupied_bandwidth_of_tone_is_narrow() {
        let fs = 1.0e9;
        let sig = Nco::new(100e6, fs).generate_complex(4096);
        let psd = welch(&sig, fs, 1024, Window::Hann);
        let obw = psd.occupied_bandwidth(0.99);
        assert!(obw < 10.0 * fs / 1024.0, "obw {obw}");
    }

    #[test]
    fn bandwidth_below_peak_wideband() {
        // White-ish signal (LCG noise phasors): bandwidth ~ full span.
        let fs = 1.0e6;
        let mut state = 0x2545F4914F6CDD1Du64;
        let sig: Vec<Complex> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                Complex::cis(std::f64::consts::TAU * u)
            })
            .collect();
        let psd = welch(&sig, fs, 256, Window::Hann);
        // A noise-like phasor has a roughly flat PSD; -20 dB bandwidth should
        // cover much of the span.
        assert!(psd.bandwidth_below_peak(20.0) > fs * 0.3);
    }

    #[test]
    fn value_at_nearest_bin() {
        let fs = 8.0;
        let sig = vec![Complex::ONE; 8];
        let psd = periodogram(&sig, fs, Window::Rectangular);
        // DC tone: value at 0 Hz dominates.
        assert!(psd.value_at(0.0) > psd.value_at(3.0) * 100.0);
    }

    #[test]
    fn short_signal_falls_back() {
        let fs = 1.0;
        let sig = vec![Complex::ONE; 10];
        let psd = welch(&sig, fs, 1024, Window::Hann);
        assert_eq!(psd.freqs.len(), 16); // next_pow2(10)
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_signal_panics() {
        periodogram(&[], 1.0, Window::Hann);
    }
}
