//! Complex number arithmetic for equivalent-baseband signal processing.
//!
//! A dependency-free `f64` complex type. Only the operations the rest of the
//! workspace needs are implemented, but those are implemented completely:
//! field arithmetic, conjugation, polar/rect conversion, exponentials and the
//! usual norms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use uwb_dsp::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z * Complex::I, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar form `r * exp(i * theta)`.
    ///
    /// ```
    /// use uwb_dsp::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `exp(i * theta)`: a unit phasor at angle `theta` radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²` (avoids the square root of [`norm`]).
    ///
    /// [`norm`]: Complex::norm
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Does not panic; `1/0` yields non-finite components, matching `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^self`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, &z| acc + z)
    }
}

/// Computes the average power (mean squared magnitude) of a complex signal.
///
/// Returns `0.0` for an empty slice.
///
/// ```
/// use uwb_dsp::{Complex, complex::mean_power};
/// let sig = vec![Complex::ONE, Complex::I];
/// assert_eq!(mean_power(&sig), 1.0);
/// ```
pub fn mean_power(signal: &[Complex]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    signal.iter().map(|z| z.norm_sqr()).sum::<f64>() / signal.len() as f64
}

/// Computes the average power of a real signal.
pub fn mean_power_real(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64
}

/// Converts a real signal into a complex one with zero imaginary part.
pub fn to_complex(signal: &[f64]) -> Vec<Complex> {
    signal.iter().map(|&x| Complex::new(x, 0.0)).collect()
}

/// Extracts the real parts of a complex signal.
pub fn to_real(signal: &[Complex]) -> Vec<f64> {
    signal.iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::new(-1.0, 2.0);
        let back = Complex::from_polar(z.norm(), z.arg());
        assert!((z - back).norm() < EPS);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.25, 3.0);
        assert!(((a + b) - (b + a)).norm() < EPS);
        assert!((a * b - b * a).norm() < EPS);
        assert!((a * b.inv() - a / b).norm() < EPS);
        assert!((a - a).norm() < EPS);
        assert!(((a / b) * b - a).norm() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z * z.conj()).im.abs() < EPS);
        assert!(((z * z.conj()).re - 25.0).abs() < EPS);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 0.7;
        let a = Complex::new(0.0, theta).exp();
        let b = Complex::cis(theta);
        assert!((a - b).norm() < EPS);
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::ONE;
        assert_eq!(z, Complex::new(2.0, 1.0));
        z -= Complex::I;
        assert_eq!(z, Complex::new(2.0, 0.0));
        z *= Complex::I;
        assert_eq!(z, Complex::new(0.0, 2.0));
        z /= Complex::new(0.0, 2.0);
        assert!((z - Complex::ONE).norm() < EPS);
    }

    #[test]
    fn sum_iterators() {
        let v = vec![Complex::ONE, Complex::I, Complex::new(1.0, 1.0)];
        let s: Complex = v.iter().sum();
        assert_eq!(s, Complex::new(2.0, 2.0));
        let s2: Complex = v.into_iter().sum();
        assert_eq!(s2, Complex::new(2.0, 2.0));
    }

    #[test]
    fn power_helpers() {
        assert_eq!(mean_power(&[]), 0.0);
        assert_eq!(mean_power_real(&[]), 0.0);
        let sig = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(mean_power_real(&sig), 1.0);
        let c = to_complex(&sig);
        assert_eq!(mean_power(&c), 1.0);
        assert_eq!(to_real(&c), sig.to_vec());
    }

    #[test]
    fn display_format() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
