//! FIR filter design (windowed-sinc) and filtering for real and complex
//! signals.

use crate::complex::Complex;
use crate::math::sinc;
use crate::window::Window;

/// A finite-impulse-response filter defined by its tap weights.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{FirFilter, Window};
///
/// // 500 MHz-wide lowpass at 2 GS/s (cutoff = fs/8).
/// let fir = FirFilter::lowpass(63, 0.125, Window::Hamming);
/// let dc: Vec<f64> = vec![1.0; 256];
/// let y = fir.filter_real(&dc);
/// // DC gain is 1 after the transient.
/// assert!((y[200] - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Creates a filter from explicit taps.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        FirFilter { taps }
    }

    /// Windowed-sinc lowpass. `cutoff` is the −6 dB edge as a fraction of the
    /// sample rate (`0 < cutoff < 0.5`). Taps are normalized for unit DC
    /// gain.
    ///
    /// # Panics
    ///
    /// Panics if `n_taps == 0` or `cutoff` is outside `(0, 0.5)`.
    pub fn lowpass(n_taps: usize, cutoff: f64, window: Window) -> Self {
        assert!(n_taps > 0, "FIR filter needs at least one tap");
        assert!(
            cutoff > 0.0 && cutoff < 0.5,
            "cutoff must be in (0, 0.5) of the sample rate"
        );
        let m = (n_taps - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..n_taps)
            .map(|k| {
                let t = k as f64 - m;
                2.0 * cutoff * sinc(2.0 * cutoff * t) * window.coefficient(k, n_taps)
            })
            .collect();
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        FirFilter { taps }
    }

    /// Windowed-sinc highpass via spectral inversion of a lowpass with the
    /// same cutoff. `n_taps` must be odd so the inversion has a center tap.
    ///
    /// # Panics
    ///
    /// Panics if `n_taps` is even or zero, or `cutoff` is outside `(0, 0.5)`.
    pub fn highpass(n_taps: usize, cutoff: f64, window: Window) -> Self {
        assert!(n_taps % 2 == 1, "highpass FIR needs an odd tap count");
        let lp = FirFilter::lowpass(n_taps, cutoff, window);
        let mut taps: Vec<f64> = lp.taps.iter().map(|t| -t).collect();
        taps[n_taps / 2] += 1.0;
        FirFilter { taps }
    }

    /// Windowed-sinc bandpass between `f_lo` and `f_hi` (fractions of the
    /// sample rate). Built by modulating a lowpass prototype of half the
    /// bandwidth up to the band center; gain at center is normalized to 1.
    ///
    /// # Panics
    ///
    /// Panics if the band edges are not `0 < f_lo < f_hi < 0.5` or
    /// `n_taps == 0`.
    pub fn bandpass(n_taps: usize, f_lo: f64, f_hi: f64, window: Window) -> Self {
        assert!(
            f_lo > 0.0 && f_lo < f_hi && f_hi < 0.5,
            "band edges must satisfy 0 < f_lo < f_hi < 0.5"
        );
        assert!(n_taps > 0, "FIR filter needs at least one tap");
        let half_bw = (f_hi - f_lo) / 2.0;
        let fc = (f_hi + f_lo) / 2.0;
        let m = (n_taps - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..n_taps)
            .map(|k| {
                let t = k as f64 - m;
                2.0 * half_bw
                    * sinc(2.0 * half_bw * t)
                    * (std::f64::consts::TAU * fc * t).cos()
                    * window.coefficient(k, n_taps)
            })
            .collect();
        // Normalize gain at band center.
        let gain: f64 = taps
            .iter()
            .enumerate()
            .map(|(k, &h)| {
                let t = k as f64 - m;
                h * (std::f64::consts::TAU * fc * t).cos()
            })
            .sum();
        for t in &mut taps {
            *t /= gain;
        }
        FirFilter { taps }
    }

    /// The tap weights.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Always `false`; construction requires at least one tap.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Group delay in samples (linear-phase symmetric filter assumption).
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Filters a real signal; output has the same length (transient included,
    /// i.e. "same" mode aligned to the start of the input).
    pub fn filter_real(&self, input: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; input.len()];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &h) in self.taps.iter().enumerate() {
                if i >= j {
                    acc += h * input[i - j];
                }
            }
            *o = acc;
        }
        out
    }

    /// Filters a complex signal (same convention as [`filter_real`]).
    ///
    /// [`filter_real`]: FirFilter::filter_real
    pub fn filter_complex(&self, input: &[Complex]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; input.len()];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for (j, &h) in self.taps.iter().enumerate() {
                if i >= j {
                    acc += input[i - j] * h;
                }
            }
            *o = acc;
        }
        out
    }

    /// Full linear convolution (output length `input + taps − 1`).
    pub fn convolve_real(&self, input: &[f64]) -> Vec<f64> {
        if input.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0.0; input.len() + self.taps.len() - 1];
        for (i, &x) in input.iter().enumerate() {
            for (j, &h) in self.taps.iter().enumerate() {
                out[i + j] += x * h;
            }
        }
        out
    }

    /// Complex frequency response at normalized frequency `f` (cycles per
    /// sample, `-0.5..0.5`).
    pub fn response_at(&self, f: f64) -> Complex {
        self.taps
            .iter()
            .enumerate()
            .map(|(k, &h)| Complex::cis(-std::f64::consts::TAU * f * k as f64) * h)
            .sum()
    }

    /// Magnitude response in dB at normalized frequency `f`.
    pub fn magnitude_db(&self, f: f64) -> f64 {
        20.0 * self.response_at(f).norm().log10()
    }
}

/// A streaming FIR filter retaining state across calls, for block-based
/// pipelines.
#[derive(Debug, Clone)]
pub struct StreamingFir {
    taps: Vec<f64>,
    history: Vec<Complex>,
    pos: usize,
}

impl StreamingFir {
    /// Wraps a [`FirFilter`] design for streaming use.
    pub fn new(filter: &FirFilter) -> Self {
        StreamingFir {
            taps: filter.taps().to_vec(),
            history: vec![Complex::ZERO; filter.len()],
            pos: 0,
        }
    }

    /// Processes one sample.
    pub fn push(&mut self, x: Complex) -> Complex {
        let n = self.taps.len();
        self.history[self.pos] = x;
        let mut acc = Complex::ZERO;
        for (j, &h) in self.taps.iter().enumerate() {
            let idx = (self.pos + n - j) % n;
            acc += self.history[idx] * h;
        }
        self.pos = (self.pos + 1) % n;
        acc
    }

    /// Processes a block of samples.
    pub fn process(&mut self, input: &[Complex]) -> Vec<Complex> {
        input.iter().map(|&x| self.push(x)).collect()
    }

    /// Resets the internal delay line to zeros.
    pub fn reset(&mut self) {
        self.history.iter_mut().for_each(|z| *z = Complex::ZERO);
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::to_complex;

    #[test]
    fn lowpass_passes_dc_rejects_nyquist() {
        let fir = FirFilter::lowpass(101, 0.1, Window::Hamming);
        assert!((fir.magnitude_db(0.0)).abs() < 0.01);
        assert!(fir.magnitude_db(0.45) < -40.0);
        // -6 dB point near the cutoff.
        let at_cut = fir.magnitude_db(0.1);
        assert!(at_cut > -8.0 && at_cut < -4.0, "{at_cut}");
    }

    #[test]
    fn highpass_rejects_dc_passes_nyquist() {
        let fir = FirFilter::highpass(101, 0.2, Window::Hamming);
        assert!(fir.magnitude_db(0.0) < -40.0);
        assert!(fir.magnitude_db(0.45).abs() < 0.1);
    }

    #[test]
    fn bandpass_shape() {
        let fir = FirFilter::bandpass(201, 0.15, 0.35, Window::Blackman);
        assert!(fir.magnitude_db(0.25).abs() < 0.05, "{}", fir.magnitude_db(0.25));
        assert!(fir.magnitude_db(0.02) < -50.0);
        assert!(fir.magnitude_db(0.48) < -50.0);
    }

    #[test]
    fn filter_real_sine_attenuation() {
        let fir = FirFilter::lowpass(63, 0.1, Window::Hamming);
        let n = 1024;
        // A 0.3-cycles/sample tone should be strongly attenuated.
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 0.3 * i as f64).sin())
            .collect();
        let y = fir.filter_real(&x);
        let in_rms = crate::math::rms(&x[100..]);
        let out_rms = crate::math::rms(&y[100..]);
        assert!(out_rms / in_rms < 0.01, "{}", out_rms / in_rms);
    }

    #[test]
    fn complex_and_real_agree() {
        let fir = FirFilter::lowpass(31, 0.2, Window::Hann);
        let x: Vec<f64> = (0..100).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let yr = fir.filter_real(&x);
        let yc = fir.filter_complex(&to_complex(&x));
        for (a, b) in yr.iter().zip(&yc) {
            assert!((a - b.re).abs() < 1e-12);
            assert!(b.im.abs() < 1e-12);
        }
    }

    #[test]
    fn convolve_full_length() {
        let fir = FirFilter::new(vec![1.0, -1.0]);
        let y = fir.convolve_real(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0, 1.0, 1.0, -3.0]);
        assert!(fir.convolve_real(&[]).is_empty());
    }

    #[test]
    fn streaming_matches_block() {
        let fir = FirFilter::lowpass(17, 0.25, Window::Hamming);
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let block = fir.filter_complex(&x);
        let mut s = StreamingFir::new(&fir);
        let streamed = s.process(&x);
        for (a, b) in block.iter().zip(&streamed) {
            assert!((*a - *b).norm() < 1e-12);
        }
        // Reset clears state.
        s.reset();
        let again = s.process(&x);
        for (a, b) in block.iter().zip(&again) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn group_delay_is_center() {
        let fir = FirFilter::lowpass(63, 0.1, Window::Hamming);
        assert_eq!(fir.group_delay(), 31.0);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn bad_cutoff_panics() {
        FirFilter::lowpass(11, 0.7, Window::Hann);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_highpass_panics() {
        FirFilter::highpass(10, 0.2, Window::Hann);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_panic() {
        FirFilter::new(Vec::new());
    }
}
