//! Streaming block abstraction for the sample-rate signal chain.
//!
//! The paper's receiver is a continuously running direct-conversion chain:
//! samples flow through AGC/ADC into a parallelized digital back end that
//! acquires, tracks and decodes packets on the fly (§1, §3). Batch
//! processing of one whole-record `Vec<Complex>` per trial makes peak
//! memory and first-decode latency scale with record length; this module is
//! the substrate that removes that coupling.
//!
//! A [`BlockProcessor`] is a *stateful, length-preserving, in-place*
//! operator on contiguous blocks of equivalent-baseband samples. Operators
//! that are intrinsically tail-extending (e.g. channel convolution with an
//! L-tap impulse response produces `n + L - 1` output samples for `n`
//! inputs) keep the pending tail in internal carried state and emit it on
//! [`BlockProcessor::flush_into`]. This keeps the hot path free of length
//! negotiation: every stage reads and writes the same `&mut [Complex]`.
//!
//! # The chunk-size invariance contract
//!
//! The defining property of a correct streaming operator is that the
//! *partition of the record into blocks is unobservable*: feeding one
//! whole-record block, or blocks of 64, or any random split, must produce
//! **bit-identical** output once the per-block outputs are concatenated
//! (plus the flushed tail). Operators therefore must not let block length
//! influence arithmetic — summation orders are fixed per output sample, and
//! any history needed across a boundary is carried in state rather than
//! recomputed from a window whose size depends on the split. The
//! [`assert_chunk_invariant`] helper enforces this in tests, and the
//! repo-level `tests/stream_parity.rs` gate proptests it end-to-end.
//!
//! # Composition
//!
//! [`Chain`] composes boxed processors in order. Flushing a chain drains
//! stage tails upstream-first, pushing each stage's tail through every
//! *downstream* stage so the concatenated output equals what the batch
//! pipeline would have produced on the full record.
//!
//! ```
//! use uwb_dsp::stream::{BlockProcessor, Chain, GainStage};
//! use uwb_dsp::{Complex, DspScratch};
//!
//! let mut chain = Chain::new();
//! chain.push(Box::new(GainStage::new(2.0)));
//! chain.push(Box::new(GainStage::new(0.5)));
//! let mut scratch = DspScratch::new();
//! let mut block = vec![Complex::ONE; 8];
//! chain.process_block(&mut block, &mut scratch);
//! assert_eq!(block, vec![Complex::ONE; 8]);
//! ```

use crate::complex::Complex;
use crate::scratch::DspScratch;

/// A stateful, in-place operator over contiguous sample blocks.
///
/// Implementations must satisfy the chunk-size invariance contract (module
/// docs): any partition of a record into blocks yields bit-identical
/// concatenated output. State carried across calls (filter history, channel
/// tails, oscillator phase) belongs to the processor; per-call workspace
/// comes from the caller's [`DspScratch`] so warm steady-state processing
/// allocates nothing.
pub trait BlockProcessor {
    /// Processes one block of samples in place.
    fn process_block(&mut self, block: &mut [Complex], scratch: &mut DspScratch);

    /// Appends any pending tail samples (beyond the input length) to `out`.
    ///
    /// Length-preserving operators keep the default no-op. Tail-extending
    /// operators (convolution) emit the carried `L - 1` tail here and reset
    /// it. After `flush_into` the processor is ready for a fresh record.
    fn flush_into(&mut self, _out: &mut Vec<Complex>, _scratch: &mut DspScratch) {}

    /// Resets all carried state, as if freshly constructed. Retains
    /// internal buffer capacities so a reset-and-rerun stays allocation
    /// free.
    fn reset(&mut self);

    /// Stable short name for telemetry spans and diagnostics.
    fn name(&self) -> &'static str;
}

/// A composable pipeline of boxed [`BlockProcessor`] stages.
///
/// `process_block` runs every stage over the same block in order.
/// `flush_into` drains tails upstream-first: stage `i`'s tail is processed
/// through stages `i+1..` before stage `i+1` flushes, so the concatenation
/// `processed blocks ++ flushed tail` equals the batch pipeline output.
#[derive(Default)]
pub struct Chain {
    stages: Vec<Box<dyn BlockProcessor>>,
}

impl Chain {
    /// An empty chain (identity operator).
    pub fn new() -> Self {
        Chain { stages: Vec::new() }
    }

    /// Appends a stage to the end of the chain.
    pub fn push(&mut self, stage: Box<dyn BlockProcessor>) {
        self.stages.push(stage);
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage names in order (diagnostics / telemetry).
    pub fn stage_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.stages.iter().map(|s| s.name())
    }
}

impl BlockProcessor for Chain {
    fn process_block(&mut self, block: &mut [Complex], scratch: &mut DspScratch) {
        for stage in &mut self.stages {
            stage.process_block(block, scratch);
        }
    }

    fn flush_into(&mut self, out: &mut Vec<Complex>, scratch: &mut DspScratch) {
        // Drain upstream-first. Stage i's tail must still pass through the
        // downstream stages, which happens *before* those stages flush their
        // own tails — exactly the order the batch pipeline would have
        // produced on the concatenated record.
        let n = self.stages.len();
        for i in 0..n {
            let mut tail = scratch.take_complex(0);
            self.stages[i].flush_into(&mut tail, scratch);
            if !tail.is_empty() {
                for stage in &mut self.stages[i + 1..] {
                    stage.process_block(&mut tail, scratch);
                }
                out.extend_from_slice(&tail);
            }
            scratch.put_complex(tail);
        }
    }

    fn reset(&mut self) {
        for stage in &mut self.stages {
            stage.reset();
        }
    }

    fn name(&self) -> &'static str {
        "chain"
    }
}

/// Runs `proc` over `record` split into `block_len`-sized blocks (the final
/// block may be shorter), then flushes, appending the tail to `record`.
///
/// This is the reference way to apply a streaming operator to a finite
/// record; with `block_len >= record.len()` it degenerates to one batch
/// call. Used heavily by the parity gates.
pub fn process_record(
    proc: &mut dyn BlockProcessor,
    record: &mut Vec<Complex>,
    block_len: usize,
    scratch: &mut DspScratch,
) {
    let block_len = block_len.max(1);
    let mut start = 0;
    while start < record.len() {
        let end = (start + block_len).min(record.len());
        proc.process_block(&mut record[start..end], scratch);
        start = end;
    }
    let mut tail = scratch.take_complex(0);
    proc.flush_into(&mut tail, scratch);
    record.extend_from_slice(&tail);
    scratch.put_complex(tail);
}

/// Asserts that processing `input` through fresh copies of a processor with
/// each of the given block lengths yields bit-identical output (including
/// the flushed tail). `make` must return an identically-seeded processor
/// each call.
///
/// Panics with the offending block length and sample index on mismatch —
/// the unit-level form of the chunk-size invariance contract.
pub fn assert_chunk_invariant<P, F>(input: &[Complex], block_lens: &[usize], mut make: F)
where
    P: BlockProcessor,
    F: FnMut() -> P,
{
    let mut scratch = DspScratch::new();
    let mut reference = input.to_vec();
    let mut proc = make();
    process_record(&mut proc, &mut reference, input.len().max(1), &mut scratch);
    for &bl in block_lens {
        let mut streamed = input.to_vec();
        let mut proc = make();
        process_record(&mut proc, &mut streamed, bl, &mut scratch);
        assert_eq!(
            streamed.len(),
            reference.len(),
            "block_len {bl}: streamed length {} != reference {}",
            streamed.len(),
            reference.len()
        );
        for (i, (s, r)) in streamed.iter().zip(reference.iter()).enumerate() {
            assert!(
                s.re.to_bits() == r.re.to_bits() && s.im.to_bits() == r.im.to_bits(),
                "block_len {bl}: sample {i} differs: streamed {s:?} != reference {r:?}"
            );
        }
    }
}

/// Multiplies every sample by a fixed complex gain. Stateless; exists as
/// the minimal [`BlockProcessor`] for chain plumbing and tests.
#[derive(Debug, Clone)]
pub struct GainStage {
    gain: Complex,
}

impl GainStage {
    /// A real-gain stage.
    pub fn new(gain: f64) -> Self {
        GainStage {
            gain: Complex::new(gain, 0.0),
        }
    }

    /// A complex-gain stage (gain and phase rotation).
    pub fn complex(gain: Complex) -> Self {
        GainStage { gain }
    }
}

impl BlockProcessor for GainStage {
    fn process_block(&mut self, block: &mut [Complex], _scratch: &mut DspScratch) {
        for z in block.iter_mut() {
            // `MulAssign` is defined as `*self = *self * rhs`, so this is
            // bit-identical to the batch `z * g` form.
            *z *= self.gain;
        }
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "gain"
    }
}

/// Delays the stream by `delay` samples, zero-padding the head and emitting
/// the last `delay` samples on flush. The simplest *stateful*,
/// tail-carrying processor — used by tests to exercise `Chain::flush_into`
/// ordering.
#[derive(Debug, Clone)]
pub struct DelayStage {
    delay: usize,
    history: Vec<Complex>,
}

impl DelayStage {
    /// A `delay`-sample delay line (initially zero-filled).
    pub fn new(delay: usize) -> Self {
        DelayStage {
            delay,
            history: vec![Complex::ZERO; delay],
        }
    }
}

impl BlockProcessor for DelayStage {
    fn process_block(&mut self, block: &mut [Complex], _scratch: &mut DspScratch) {
        // Swap sample-by-sample through the circular history. Order of
        // operations per sample is fixed, so any block partition yields the
        // same output.
        if self.delay == 0 {
            return;
        }
        for z in block.iter_mut() {
            self.history.rotate_left(1);
            let idx = self.delay - 1;
            std::mem::swap(&mut self.history[idx], z);
        }
    }

    fn flush_into(&mut self, out: &mut Vec<Complex>, _scratch: &mut DspScratch) {
        out.extend_from_slice(&self.history);
        for z in self.history.iter_mut() {
            *z = Complex::ZERO;
        }
    }

    fn reset(&mut self) {
        for z in self.history.iter_mut() {
            *z = Complex::ZERO;
        }
    }

    fn name(&self) -> &'static str {
        "delay"
    }
}

/// Accumulates `gain * src` into `dst` over the overlapping prefix
/// (`min(dst.len(), src.len())` samples), leaving any `dst` tail untouched.
///
/// This is the primitive of the multi-source block mixer: a receiver's
/// input record is its own signal plus scaled foreign records. The
/// per-sample operation is a single fused `dst += gain * src` with a fixed
/// source order chosen by the caller, so mixing whole records or mixing the
/// same records block-by-block produces **bit-identical** results (the
/// summation order per output sample never depends on the partition).
pub fn accumulate_scaled(dst: &mut [Complex], src: &[Complex], gain: f64) {
    let n = dst.len().min(src.len());
    for (d, s) in dst[..n].iter_mut().zip(&src[..n]) {
        d.re += gain * s.re;
        d.im += gain * s.im;
    }
}

/// [`accumulate_scaled`] with a sample offset: `src[i]` lands on
/// `dst[i + offset]` (negative offsets shift `src` earlier, so only its
/// tail overlaps `dst`'s head). Out-of-range samples on either side are
/// clipped; `dst` samples outside the overlap are untouched.
///
/// This is the mixing primitive for *asynchronous* transmissions: the MAC
/// layer's carrier-sense simulator starts packets on sense-slot boundaries,
/// so a victim's record overlaps an interferer's record at an arbitrary
/// relative sample offset rather than sample 0. The per-sample operation
/// and summation-order guarantees are identical to [`accumulate_scaled`]
/// (which this equals at `offset == 0`).
pub fn accumulate_scaled_offset(dst: &mut [Complex], src: &[Complex], offset: isize, gain: f64) {
    let (d0, s0) = if offset >= 0 {
        (offset as usize, 0usize)
    } else {
        (0usize, offset.unsigned_abs())
    };
    if d0 >= dst.len() || s0 >= src.len() {
        return;
    }
    let n = (dst.len() - d0).min(src.len() - s0);
    for (d, s) in dst[d0..d0 + n].iter_mut().zip(&src[s0..s0 + n]) {
        d.re += gain * s.re;
        d.im += gain * s.im;
    }
}

/// Mixes one victim record with a fixed-order set of scaled foreign
/// records: `out = own + Σ_k gain_k · src_k`, evaluated source-major so
/// each output sample's floating-point summation order is exactly the
/// order of `contributions`.
///
/// `out` is resized to `own.len()`; foreign records shorter than `own`
/// contribute only over their length, longer ones are truncated. Reuses
/// `out`'s capacity — zero allocations once warm.
pub fn mix_sources_into(out: &mut Vec<Complex>, own: &[Complex], contributions: &[(&[Complex], f64)]) {
    out.clear();
    out.extend_from_slice(own);
    for &(src, gain) in contributions {
        accumulate_scaled(out, src, gain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.25, -(i as f64) * 0.125))
            .collect()
    }

    #[test]
    fn gain_stage_scales() {
        let mut g = GainStage::new(3.0);
        let mut scratch = DspScratch::new();
        let mut block = vec![Complex::ONE; 4];
        g.process_block(&mut block, &mut scratch);
        assert_eq!(block, vec![Complex::new(3.0, 0.0); 4]);
    }

    #[test]
    fn delay_stage_is_chunk_invariant() {
        let input = ramp(97);
        assert_chunk_invariant(&input, &[1, 3, 7, 32, 64, 97, 200], || DelayStage::new(5));
    }

    #[test]
    fn delay_stage_output_is_shifted_input() {
        let input = ramp(20);
        let mut proc = DelayStage::new(4);
        let mut scratch = DspScratch::new();
        let mut rec = input.clone();
        process_record(&mut proc, &mut rec, 6, &mut scratch);
        assert_eq!(rec.len(), 24);
        assert!(rec[..4].iter().all(|z| *z == Complex::ZERO));
        assert_eq!(&rec[4..], &input[..]);
    }

    #[test]
    fn chain_flush_order_matches_batch() {
        // delay(3) → gain(2): the delayed tail must still be scaled by the
        // downstream gain when the chain flushes.
        let input = ramp(33);
        let make = || {
            let mut c = Chain::new();
            c.push(Box::new(DelayStage::new(3)));
            c.push(Box::new(GainStage::new(2.0)));
            c
        };
        let mut scratch = DspScratch::new();

        let mut batch: Vec<Complex> = vec![Complex::ZERO; 3];
        batch.extend_from_slice(&input);
        for z in batch.iter_mut() {
            *z *= Complex::new(2.0, 0.0);
        }

        let mut streamed = input.clone();
        let mut chain = make();
        process_record(&mut chain, &mut streamed, 8, &mut scratch);
        assert_eq!(streamed, batch);

        // And the chain itself is chunk invariant.
        assert_chunk_invariant(&input, &[1, 2, 5, 16, 33, 100], make);
    }

    #[test]
    fn chain_reset_clears_state() {
        let mut chain = Chain::new();
        chain.push(Box::new(DelayStage::new(2)));
        let mut scratch = DspScratch::new();
        let mut block = vec![Complex::ONE; 4];
        chain.process_block(&mut block, &mut scratch);
        chain.reset();
        let mut block2 = vec![Complex::ONE; 4];
        chain.process_block(&mut block2, &mut scratch);
        assert_eq!(block, block2, "reset must restore initial state");
    }

    #[test]
    fn stage_names_are_exposed() {
        let mut chain = Chain::new();
        chain.push(Box::new(GainStage::new(1.0)));
        chain.push(Box::new(DelayStage::new(1)));
        let names: Vec<_> = chain.stage_names().collect();
        assert_eq!(names, vec!["gain", "delay"]);
    }

    #[test]
    fn accumulate_scaled_overlapping_prefix() {
        let mut dst = ramp(6);
        let src = ramp(4);
        let before = dst.clone();
        accumulate_scaled(&mut dst, &src, 0.5);
        for i in 0..4 {
            assert_eq!(dst[i].re, before[i].re + 0.5 * src[i].re);
            assert_eq!(dst[i].im, before[i].im + 0.5 * src[i].im);
        }
        // Tail beyond the source untouched.
        assert_eq!(dst[4], before[4]);
        assert_eq!(dst[5], before[5]);
    }

    #[test]
    fn accumulate_scaled_offset_clips_both_sides() {
        let src = ramp(4);

        // Zero offset degenerates to accumulate_scaled.
        let mut dst = ramp(6);
        let mut reference = ramp(6);
        accumulate_scaled_offset(&mut dst, &src, 0, 0.5);
        accumulate_scaled(&mut reference, &src, 0.5);
        assert_eq!(dst, reference);

        // Positive offset: src[0] lands on dst[2]; dst head untouched.
        let mut dst = ramp(6);
        let before = dst.clone();
        accumulate_scaled_offset(&mut dst, &src, 2, 1.0);
        assert_eq!(dst[0], before[0]);
        assert_eq!(dst[1], before[1]);
        for i in 0..4 {
            assert_eq!(dst[2 + i].re, before[2 + i].re + src[i].re);
        }

        // Negative offset: only src's tail overlaps dst's head.
        let mut dst = ramp(6);
        let before = dst.clone();
        accumulate_scaled_offset(&mut dst, &src, -3, 1.0);
        assert_eq!(dst[0].re, before[0].re + src[3].re);
        for i in 1..6 {
            assert_eq!(dst[i], before[i]);
        }

        // Fully out of range either way: no-op.
        let mut dst = ramp(4);
        let before = dst.clone();
        accumulate_scaled_offset(&mut dst, &src, 10, 1.0);
        accumulate_scaled_offset(&mut dst, &src, -10, 1.0);
        assert_eq!(dst, before);
    }

    #[test]
    fn mix_sources_into_matches_manual_sum_and_reuses_buffer() {
        let own = ramp(16);
        let a = ramp(16);
        let b: Vec<Complex> = ramp(12).iter().map(|z| *z * Complex::new(0.0, 1.0)).collect();
        let mut out = Vec::new();
        mix_sources_into(&mut out, &own, &[(&a, 0.25), (&b, -0.5)]);
        let mut manual = own.clone();
        accumulate_scaled(&mut manual, &a, 0.25);
        accumulate_scaled(&mut manual, &b, -0.5);
        assert_eq!(out, manual);
        // Warm path: same-length remix does not reallocate.
        let cap = out.capacity();
        mix_sources_into(&mut out, &own, &[(&a, 1.0)]);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn mixing_is_block_partition_invariant() {
        // Mixing the whole record at once vs. mixing block-by-block must be
        // bit-identical: per-sample summation order is source order either
        // way.
        let own = ramp(64);
        let a = ramp(64);
        let b = ramp(64);
        let mut whole = Vec::new();
        mix_sources_into(&mut whole, &own, &[(&a, 0.3), (&b, 0.7)]);

        let mut blocked = own.clone();
        for start in (0..64).step_by(7) {
            let end = (start + 7).min(64);
            accumulate_scaled(&mut blocked[start..end], &a[start..end], 0.3);
            accumulate_scaled(&mut blocked[start..end], &b[start..end], 0.7);
        }
        for (w, bl) in whole.iter().zip(blocked.iter()) {
            assert_eq!(w.re.to_bits(), bl.re.to_bits());
            assert_eq!(w.im.to_bits(), bl.im.to_bits());
        }
    }

    #[test]
    fn process_record_zero_block_len_is_clamped() {
        let input = ramp(5);
        let mut proc = GainStage::new(2.0);
        let mut scratch = DspScratch::new();
        let mut rec = input.clone();
        process_record(&mut proc, &mut rec, 0, &mut scratch);
        for (r, i) in rec.iter().zip(input.iter()) {
            assert_eq!(*r, *i * Complex::new(2.0, 0.0));
        }
    }
}
