//! Goertzel single-bin DFT.
//!
//! Evaluates one DFT bin in `O(N)` with two multiplies per sample — the
//! cheap way to watch a handful of suspect frequencies (known narrowband
//! services) instead of running a full FFT, and therefore a lower-power
//! alternative implementation of the receiver's spectral monitor.

use crate::complex::Complex;

/// A Goertzel resonator for one normalized frequency (cycles/sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Goertzel {
    freq: f64,
    omega: f64,
    coeff: f64,
}

impl Goertzel {
    /// Creates a detector for normalized frequency `freq` in `[-0.5, 0.5]`.
    ///
    /// # Panics
    ///
    /// Panics if `freq` is outside `[-0.5, 0.5]`.
    pub fn new(freq: f64) -> Self {
        assert!(
            (-0.5..=0.5).contains(&freq),
            "frequency must be in [-0.5, 0.5] cycles/sample"
        );
        let omega = std::f64::consts::TAU * freq;
        Goertzel {
            freq,
            omega,
            coeff: 2.0 * omega.cos(),
        }
    }

    /// The normalized frequency this detector watches.
    pub fn frequency(&self) -> f64 {
        self.freq
    }

    /// Evaluates the DFT of a real block at this frequency
    /// (`Σ x[n] e^{-i 2π f n}`).
    pub fn dft_real(&self, block: &[f64]) -> Complex {
        if block.is_empty() {
            return Complex::ZERO;
        }
        let mut s1 = 0.0f64;
        let mut s2 = 0.0f64;
        for &x in block {
            let s0 = x + self.coeff * s1 - s2;
            s2 = s1;
            s1 = s0;
        }
        // X = W^(N-1) · (s1 − W·s2), with W = e^{-iω}.
        let w = Complex::cis(-self.omega);
        Complex::cis(-self.omega * (block.len() as f64 - 1.0)) * (Complex::from(s1) - w * s2)
    }

    /// Evaluates the DFT of a complex block at this frequency (runs the
    /// resonator on both rails).
    pub fn dft(&self, block: &[Complex]) -> Complex {
        let re: Vec<f64> = block.iter().map(|z| z.re).collect();
        let im: Vec<f64> = block.iter().map(|z| z.im).collect();
        let a = self.dft_real(&re);
        let b = self.dft_real(&im);
        a + b * Complex::I
    }

    /// Power of the block at this frequency, normalized so that a complex
    /// exponential of amplitude `A` at exactly `freq` yields `A²`.
    pub fn power(&self, block: &[Complex]) -> f64 {
        if block.is_empty() {
            return 0.0;
        }
        let z = self.dft(block);
        z.norm_sqr() / (block.len() as f64 * block.len() as f64)
    }
}

/// Scans a bank of suspect frequencies (hertz, at `fs_hz`) over a block and
/// returns `(freq_hz, power)` pairs — the Goertzel version of the spectral
/// monitor's sweep.
pub fn scan_frequencies(block: &[Complex], fs_hz: f64, freqs_hz: &[f64]) -> Vec<(f64, f64)> {
    freqs_hz
        .iter()
        .map(|&f| {
            let g = Goertzel::new(f / fs_hz);
            (f, g.power(block))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::Fft;

    #[test]
    fn matches_fft_bin() {
        let n = 256;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let spec = Fft::new(n).forward(&x);
        for k in [1usize, 17, 100, 200] {
            let g = Goertzel::new(k as f64 / n as f64 - if k > n / 2 { 1.0 } else { 0.0 });
            let z = g.dft(&x);
            assert!(
                (z - spec[k]).norm() < 1e-6 * (1.0 + spec[k].norm()),
                "bin {k}: {z} vs {}",
                spec[k]
            );
        }
    }

    #[test]
    fn tone_power_calibrated() {
        let n = 1000;
        let f = 0.123;
        let amp = 2.5;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::from_polar(amp, std::f64::consts::TAU * f * i as f64))
            .collect();
        let g = Goertzel::new(f);
        let p = g.power(&x);
        assert!((p - amp * amp).abs() / (amp * amp) < 1e-6, "{p}");
    }

    #[test]
    fn off_frequency_rejected() {
        let n = 1024;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(std::f64::consts::TAU * 0.25 * i as f64))
            .collect();
        // Probe far from the tone (integer-bin spacing away).
        let g = Goertzel::new(0.10);
        assert!(g.power(&x) < 1e-4, "{}", g.power(&x));
    }

    #[test]
    fn negative_frequency() {
        let n = 512;
        let f = -0.2;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(std::f64::consts::TAU * f * i as f64))
            .collect();
        let g = Goertzel::new(f);
        assert!((g.power(&x) - 1.0).abs() < 1e-6);
        let wrong = Goertzel::new(0.2);
        assert!(wrong.power(&x) < 1e-4);
    }

    #[test]
    fn scan_finds_the_interferer() {
        let fs = 1e9;
        let f0 = 150e6;
        let n = 4096;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::from_polar(3.0, std::f64::consts::TAU * f0 * i as f64 / fs))
            .collect();
        let suspects = [-200e6, -100e6, 100e6, 150e6, 250e6];
        let scan = scan_frequencies(&x, fs, &suspects);
        let best = scan
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best.0, 150e6);
        assert!((best.1 - 9.0).abs() < 0.1, "{}", best.1);
    }

    #[test]
    fn empty_block() {
        assert_eq!(Goertzel::new(0.1).power(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn out_of_range_panics() {
        Goertzel::new(0.7);
    }
}
