//! Flat structure-of-arrays storage for batched trial processing.
//!
//! The batched stage-sweep runtime pushes B Monte-Carlo trials through each
//! DSP stage in lockstep: stage k runs over all B waveforms before stage
//! k+1 starts. [`BatchArena`] is the storage layout that makes the sweep
//! cheap — one flat `Vec<Complex>` holding B back-to-back *lanes* (one per
//! trial), so a stage walks contiguous memory instead of hopping between B
//! separately allocated records, and the whole batch's working set is a
//! single capacity-ratcheting allocation.
//!
//! Lanes are variable-length (packet records differ only when scenario
//! parameters differ, but the layout does not assume otherwise) and are
//! rebuilt every batch: [`BatchArena::clear`] keeps the flat buffer's
//! capacity, so after the first batch warms the arena, appending lanes of
//! the same total size performs **zero heap allocation** — the property the
//! `alloc_regression` gate pins for the warm batched trial.
//!
//! # Example
//!
//! ```
//! use uwb_dsp::batch::BatchArena;
//! use uwb_dsp::Complex;
//!
//! let mut arena = BatchArena::new();
//! for t in 0..4u64 {
//!     let lane = arena.push_lane_with(|buf, base| {
//!         buf.resize(base + 8, Complex::new(t as f64, 0.0));
//!     });
//!     assert_eq!(arena.lane(lane).len(), 8);
//! }
//! assert_eq!(arena.lanes(), 4);
//! assert_eq!(arena.total_len(), 32);
//! arena.clear(); // next batch reuses the same 32-element allocation
//! assert_eq!(arena.lanes(), 0);
//! ```

use crate::complex::Complex;
use std::ops::Range;

/// A flat SoA arena of per-trial complex lanes (see the module docs).
#[derive(Debug, Default)]
pub struct BatchArena {
    buf: Vec<Complex>,
    lanes: Vec<Range<usize>>,
}

impl BatchArena {
    /// An empty arena; storage grows on first use and is retained across
    /// [`BatchArena::clear`].
    pub fn new() -> Self {
        BatchArena::default()
    }

    /// Drops every lane, keeping the flat buffer's capacity for the next
    /// batch (the warm path's zero-allocation contract).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.lanes.clear();
    }

    /// Pre-grows the flat buffer to at least `total` elements of capacity
    /// and the lane table to `lanes` entries, so a cold first batch can
    /// front-load its allocations.
    pub fn reserve(&mut self, lanes: usize, total: usize) {
        if self.buf.capacity() < total {
            self.buf.reserve(total - self.buf.len());
        }
        if self.lanes.capacity() < lanes {
            self.lanes.reserve(lanes - self.lanes.len());
        }
    }

    /// Appends a new lane by handing the builder the flat buffer and the
    /// lane's base offset; everything the builder appends past `base`
    /// becomes the lane. Returns the lane index.
    ///
    /// This inversion lets streaming producers (packet synthesis, channel
    /// application) write *directly* into the arena instead of filling a
    /// private record that would then be copied in.
    pub fn push_lane_with<F>(&mut self, build: F) -> usize
    where
        F: FnOnce(&mut Vec<Complex>, usize),
    {
        let base = self.buf.len();
        build(&mut self.buf, base);
        debug_assert!(self.buf.len() >= base, "lane builder shrank the arena");
        self.lanes.push(base..self.buf.len());
        self.lanes.len() - 1
    }

    /// Appends a zero-filled lane of exactly `len` elements and returns its
    /// index (used for derived per-trial products such as digitized
    /// records, whose length is known up front).
    pub fn push_lane_zeroed(&mut self, len: usize) -> usize {
        self.push_lane_with(|buf, base| buf.resize(base + len, Complex::ZERO))
    }

    /// Appends a lane cloned from `src`.
    pub fn push_lane_from_slice(&mut self, src: &[Complex]) -> usize {
        self.push_lane_with(|buf, _| buf.extend_from_slice(src))
    }

    /// Number of lanes currently in the arena.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Total elements across all lanes.
    pub fn total_len(&self) -> usize {
        self.buf.len()
    }

    /// Lane `i` as a shared slice.
    pub fn lane(&self, i: usize) -> &[Complex] {
        &self.buf[self.lanes[i].clone()]
    }

    /// Lane `i` as a mutable slice.
    pub fn lane_mut(&mut self, i: usize) -> &mut [Complex] {
        &mut self.buf[self.lanes[i].clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_contiguous_and_indexable() {
        let mut a = BatchArena::new();
        let l0 = a.push_lane_with(|buf, base| {
            assert_eq!(base, 0);
            buf.extend_from_slice(&[Complex::ONE; 3]);
        });
        let l1 = a.push_lane_zeroed(5);
        let l2 = a.push_lane_from_slice(&[Complex::new(2.0, -1.0); 2]);
        assert_eq!((l0, l1, l2), (0, 1, 2));
        assert_eq!(a.lanes(), 3);
        assert_eq!(a.total_len(), 10);
        assert_eq!(a.lane(0), &[Complex::ONE; 3]);
        assert!(a.lane(1).iter().all(|&z| z == Complex::ZERO));
        assert_eq!(a.lane(2)[1], Complex::new(2.0, -1.0));
        a.lane_mut(1)[4] = Complex::ONE;
        assert_eq!(a.lane(1)[4], Complex::ONE);
        // Lane 0 untouched by writes to lane 1.
        assert_eq!(a.lane(0), &[Complex::ONE; 3]);
    }

    #[test]
    fn clear_retains_capacity_for_zero_alloc_reuse() {
        let mut a = BatchArena::new();
        for _ in 0..4 {
            a.push_lane_zeroed(100);
        }
        let cap = 400;
        let ptr = a.lane(0).as_ptr();
        a.clear();
        assert_eq!(a.lanes(), 0);
        assert_eq!(a.total_len(), 0);
        // Refill to the same total: same storage, no reallocation.
        for _ in 0..4 {
            a.push_lane_zeroed(100);
        }
        assert_eq!(a.lane(0).as_ptr(), ptr);
        assert_eq!(a.total_len(), cap);
    }

    #[test]
    fn reserve_front_loads_capacity() {
        let mut a = BatchArena::new();
        a.reserve(8, 1000);
        let ptr = {
            let l = a.push_lane_zeroed(125);
            a.lane(l).as_ptr()
        };
        for _ in 1..8 {
            a.push_lane_zeroed(125);
        }
        // No reallocation happened while filling within the reservation.
        assert_eq!(a.lane(0).as_ptr(), ptr);
    }
}
