//! Sample-rate conversion and fractional delay.
//!
//! The retiming block of the paper's receiver (Fig. 3) must align the ADC
//! sample grid with the pulse grid; these helpers provide integer
//! up/downsampling with anti-alias filtering and sub-sample delay via
//! windowed-sinc interpolation.

use crate::complex::Complex;
use crate::fir::FirFilter;
use crate::math::sinc;
use crate::window::Window;

/// Inserts `factor - 1` zeros between samples (no filtering).
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn upsample_zero_stuff(signal: &[Complex], factor: usize) -> Vec<Complex> {
    assert!(factor > 0, "upsampling factor must be positive");
    let mut out = vec![Complex::ZERO; signal.len() * factor];
    for (i, &x) in signal.iter().enumerate() {
        out[i * factor] = x;
    }
    out
}

/// Upsamples by `factor` with a windowed-sinc anti-image filter.
///
/// The interpolation filter has `taps_per_phase * factor` taps and is scaled
/// by `factor` to preserve amplitude.
///
/// # Panics
///
/// Panics if `factor == 0` or `taps_per_phase == 0`.
pub fn upsample(signal: &[Complex], factor: usize, taps_per_phase: usize) -> Vec<Complex> {
    assert!(factor > 0 && taps_per_phase > 0);
    if factor == 1 {
        return signal.to_vec();
    }
    let stuffed = upsample_zero_stuff(signal, factor);
    let n_taps = taps_per_phase * factor + 1;
    let fir = FirFilter::lowpass(n_taps, 0.5 / factor as f64 * 0.9, Window::Kaiser(8.0));
    fir.filter_complex(&stuffed)
        .iter()
        .map(|&z| z * factor as f64)
        .collect()
}

/// Decimates by `factor` after a windowed-sinc anti-alias filter.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn decimate(signal: &[Complex], factor: usize) -> Vec<Complex> {
    assert!(factor > 0, "decimation factor must be positive");
    if factor == 1 {
        return signal.to_vec();
    }
    let n_taps = 8 * factor + 1;
    let fir = FirFilter::lowpass(n_taps, 0.5 / factor as f64 * 0.9, Window::Kaiser(8.0));
    let filtered = fir.filter_complex(signal);
    filtered.iter().step_by(factor).copied().collect()
}

/// Decimates without filtering (pure downsampling) — used when the signal is
/// already band-limited, e.g. taking every N-th correlator output.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn downsample(signal: &[Complex], factor: usize) -> Vec<Complex> {
    assert!(factor > 0, "downsampling factor must be positive");
    signal.iter().step_by(factor).copied().collect()
}

/// Applies a fractional delay of `delay` samples (may exceed 1) using a
/// windowed-sinc interpolator with `2 * half_taps` taps.
///
/// Output has the same length as the input; samples that would reference
/// beyond either end are computed from the available neighbourhood only.
///
/// # Panics
///
/// Panics if `half_taps == 0`.
pub fn fractional_delay(signal: &[Complex], delay: f64, half_taps: usize) -> Vec<Complex> {
    assert!(half_taps > 0, "need at least one tap per side");
    let n = signal.len();
    let int_part = delay.floor() as isize;
    let frac = delay - delay.floor();
    let mut out = vec![Complex::ZERO; n];
    for (i, o) in out.iter_mut().enumerate() {
        // y[i] = x(i - delay) interpolated.
        let center = i as isize - int_part;
        let mut acc = Complex::ZERO;
        for k in -(half_taps as isize)..=(half_taps as isize) {
            let idx = center + k;
            if idx < 0 || idx >= n as isize {
                continue;
            }
            let t = k as f64 + frac;
            let w = {
                // Hann-windowed sinc.
                let x = (k as f64 + frac) / (half_taps as f64 + 1.0);
                if x.abs() >= 1.0 {
                    0.0
                } else {
                    0.5 * (1.0 + (std::f64::consts::PI * x).cos())
                }
            };
            acc += signal[idx as usize] * (sinc(t) * w);
        }
        *o = acc;
    }
    out
}

/// Linear-interpolation resampler for arbitrary (even irrational) rate
/// ratios. `ratio` = output rate / input rate.
///
/// # Panics
///
/// Panics if `ratio <= 0`.
pub fn resample_linear(signal: &[Complex], ratio: f64) -> Vec<Complex> {
    assert!(ratio > 0.0, "resampling ratio must be positive");
    if signal.is_empty() {
        return Vec::new();
    }
    let n_out = ((signal.len() as f64 - 1.0) * ratio).floor() as usize + 1;
    let mut out = Vec::with_capacity(n_out);
    for i in 0..n_out {
        let pos = i as f64 / ratio;
        let i0 = pos.floor() as usize;
        let frac = pos - i0 as f64;
        let a = signal[i0.min(signal.len() - 1)];
        let b = signal[(i0 + 1).min(signal.len() - 1)];
        out.push(a + (b - a) * frac);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::to_complex;

    fn tone(n: usize, f: f64) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::cis(std::f64::consts::TAU * f * i as f64))
            .collect()
    }

    #[test]
    fn zero_stuffing_layout() {
        let x = to_complex(&[1.0, 2.0]);
        let y = upsample_zero_stuff(&x, 3);
        assert_eq!(y.len(), 6);
        assert_eq!(y[0].re, 1.0);
        assert_eq!(y[1], Complex::ZERO);
        assert_eq!(y[3].re, 2.0);
    }

    #[test]
    fn upsample_preserves_tone_frequency_and_amplitude() {
        let f = 0.05; // cycles/sample at the low rate
        let x = tone(256, f);
        let factor = 4;
        let y = upsample(&x, factor, 8);
        assert_eq!(y.len(), 256 * factor);
        // After the filter transient the upsampled tone sits at f/4 with ~unit amplitude.
        let tail = &y[y.len() / 2..];
        let mean_amp: f64 =
            tail.iter().map(|z| z.norm()).sum::<f64>() / tail.len() as f64;
        assert!((mean_amp - 1.0).abs() < 0.05, "{mean_amp}");
    }

    #[test]
    fn decimate_then_content_preserved() {
        let f = 0.02;
        let x = tone(1024, f);
        let y = decimate(&x, 4);
        assert_eq!(y.len(), 256);
        let tail = &y[128..];
        let mean_amp: f64 =
            tail.iter().map(|z| z.norm()).sum::<f64>() / tail.len() as f64;
        assert!((mean_amp - 1.0).abs() < 0.05, "{mean_amp}");
    }

    #[test]
    fn decimate_rejects_alias() {
        // Tone above the post-decimation Nyquist must be attenuated, not aliased.
        let f = 0.2; // would alias to 0.8 cycles at factor 4
        let x = tone(2048, f);
        let y = decimate(&x, 4);
        let tail = &y[256..];
        let mean_amp: f64 =
            tail.iter().map(|z| z.norm()).sum::<f64>() / tail.len() as f64;
        assert!(mean_amp < 0.02, "alias leaked: {mean_amp}");
    }

    #[test]
    fn factor_one_is_identity() {
        let x = tone(16, 0.1);
        assert_eq!(upsample(&x, 1, 4), x);
        assert_eq!(decimate(&x, 1), x);
    }

    #[test]
    fn downsample_takes_every_nth() {
        let x = to_complex(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let y = downsample(&x, 2);
        assert_eq!(y.len(), 3);
        assert_eq!(y[1].re, 2.0);
    }

    #[test]
    fn fractional_delay_integer_case() {
        let x = to_complex(&[0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let y = fractional_delay(&x, 2.0, 4);
        // Impulse moves from index 2 to index 4.
        let mags: Vec<f64> = y.iter().map(|z| z.norm()).collect();
        assert_eq!(crate::math::argmax(&mags), Some(4));
        assert!((mags[4] - 1.0).abs() < 0.01);
    }

    #[test]
    fn fractional_delay_half_sample_on_tone() {
        let f = 0.05;
        let n = 256;
        let x = tone(n, f);
        let y = fractional_delay(&x, 0.5, 8);
        // Mid-signal phase difference should be ~2*pi*f*0.5 radians.
        let expected = -std::f64::consts::TAU * f * 0.5;
        let measured = (y[128] * x[128].conj()).arg();
        assert!((measured - expected).abs() < 0.01, "{measured} vs {expected}");
    }

    #[test]
    fn linear_resample_lengths_and_identity() {
        let x = tone(100, 0.01);
        let y = resample_linear(&x, 1.0);
        assert_eq!(y.len(), 100);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm() < 1e-12);
        }
        let y2 = resample_linear(&x, 2.0);
        assert_eq!(y2.len(), 199);
        assert!(resample_linear(&[], 2.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        decimate(&[Complex::ONE], 0);
    }
}
