//! Flat, lane-parallel kernel sweeps for the per-trial hot loops.
//!
//! The three stages that dominate a full-path Monte-Carlo trial — AWGN
//! synthesis, AGC + ADC quantization, and acquisition — all reduce to
//! straight-line passes over contiguous sample blocks. The loops here are
//! written so LLVM's autovectorizer can lift them onto whatever SIMD lanes
//! the target provides (the workspace builds with `target-cpu=native`):
//!
//! * **reductions** split their accumulation across [`LANES`] independent
//!   partial sums (a serial `fold` pins every add onto one dependency
//!   chain, which the vectorizer must preserve under strict IEEE
//!   semantics);
//! * **maps** are branch-free — clamping uses `min`/`max`, quadrant logic
//!   uses arithmetic selects — so the whole body lowers to vector ops.
//!
//! Every kernel is deterministic and machine-independent: the lane split is
//! a *fixed* reassociation chosen here, not a fast-math license, so results
//! are bit-identical on every CPU (only the speed changes). The lane-split
//! sums **are** a different rounding order than the serial `fold` the
//! workspace used before; callers that switched (AGC, the receiver front
//! end) re-pinned their downstream fingerprints once, as documented in
//! EXPERIMENTS.md.

use crate::complex::Complex;

/// Number of independent accumulator lanes used by the split reductions.
///
/// Eight f64 lanes fill one AVX-512 register (two AVX2 registers); the
/// value is part of the deterministic contract — changing it changes the
/// reassociation and therefore the low-order bits of every reduction.
pub const LANES: usize = 8;

/// Sum of `|z|²` over the block, accumulated in [`LANES`] independent
/// lanes (lane `i` takes elements `i, i+LANES, …`), then combined in
/// ascending lane order. Deterministic on every target.
#[inline]
pub fn sum_power(signal: &[Complex]) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let mut chunks = signal.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (acc, z) in lanes.iter_mut().zip(chunk) {
            *acc += z.re * z.re + z.im * z.im;
        }
    }
    for (acc, z) in lanes.iter_mut().zip(chunks.remainder()) {
        *acc += z.re * z.re + z.im * z.im;
    }
    lanes.iter().sum()
}

/// Mean power `Σ|z|²/N` via [`sum_power`] (0 for an empty block).
#[inline]
pub fn mean_power(signal: &[Complex]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    sum_power(signal) / signal.len() as f64
}

/// Scales every sample by `gain` in place (`z * gain`, elementwise — the
/// same arithmetic as the scalar AGC loop, so this is bit-identical to it).
#[inline]
pub fn scale_in_place(signal: &mut [Complex], gain: f64) {
    for z in signal.iter_mut() {
        *z = *z * gain;
    }
}

/// Branch-free fused AGC + mid-rise quantizer sweep.
///
/// For each input sample, both rails are scaled by `gain`, quantized to the
/// code `k = clamp(floor(x·gain / step), lo, hi)` and reconstructed at the
/// code centre `(k + 0.5)·step` — exactly the arithmetic of
/// `Quantizer::quantize(z * gain)` (division by `step`, not multiplication
/// by a reciprocal), so the output is **bit-identical** to the scalar
/// per-sample path; the parity is locked down in `uwb-adc`'s tests. The
/// clamp lowers to `max`/`min` and the loop body is straight-line, so the
/// whole sweep autovectorizes.
pub fn quantize_scaled_into(
    input: &[Complex],
    gain: f64,
    step: f64,
    lo: f64,
    hi: f64,
    out: &mut Vec<Complex>,
) {
    out.clear();
    quantize_scaled_append(input, gain, step, lo, hi, out);
}

/// [`quantize_scaled_into`] that *appends* to `out` instead of replacing
/// it — the form used by the batched runtime to digitize one trial's lane
/// directly into a flat [`crate::batch::BatchArena`] buffer. Sample
/// arithmetic is identical.
pub fn quantize_scaled_append(
    input: &[Complex],
    gain: f64,
    step: f64,
    lo: f64,
    hi: f64,
    out: &mut Vec<Complex>,
) {
    out.reserve(input.len());
    out.extend(input.iter().map(|&z| {
        let kr = (z.re * gain / step).floor().max(lo).min(hi);
        let ki = (z.im * gain / step).floor().max(lo).min(hi);
        Complex::new((kr + 0.5) * step, (ki + 0.5) * step)
    }));
}

/// Correlation of `signal` against a purely real template (the channel
/// estimator's inner product): returns `Σ s[j]·t[j].re` for the I and Q
/// rails. Only the template's real parts are read — the caller guarantees
/// every `im` is zero (the pulse-shaped preamble template always is), which
/// is what makes the 2-MAC sweep equal to the full `s·conj(t)`.
///
/// Accumulates in [`LANES`] independent lanes combined in ascending order —
/// fixed reassociation, deterministic everywhere. The caller guarantees
/// `signal.len() >= template.len()`; extra signal samples are ignored.
#[inline]
pub fn dot_real_template(signal: &[Complex], template: &[Complex]) -> Complex {
    let n = template.len().min(signal.len());
    let (signal, template) = (&signal[..n], &template[..n]);
    let mut re = [0.0f64; LANES];
    let mut im = [0.0f64; LANES];
    let mut s_chunks = signal.chunks_exact(LANES);
    let mut t_chunks = template.chunks_exact(LANES);
    for (sc, tc) in (&mut s_chunks).zip(&mut t_chunks) {
        for i in 0..LANES {
            re[i] += sc[i].re * tc[i].re;
            im[i] += sc[i].im * tc[i].re;
        }
    }
    for (s, t) in s_chunks.remainder().iter().zip(t_chunks.remainder()) {
        re[0] += s.re * t.re;
        im[0] += s.im * t.re;
    }
    Complex::new(re.iter().sum(), im.iter().sum())
}

/// Natural logarithm over a block, `out[i] = ln(x[i])`, for strictly
/// positive finite inputs — the batched Box–Muller radius pass.
///
/// The scalar `f64::ln` is a libm call the vectorizer cannot touch; this
/// kernel is a branch-free polynomial the compiler can keep in vector
/// registers. Reduction: `x = 2^e · m` with `m ∈ [√½, √2)`, then
/// `ln m = 2·atanh(z)` with `z = (m−1)/(m+1)`, `|z| ≤ 0.1716`, via an
/// 11-term odd series; `ln x = ln m + e·ln2` with a hi/lo split of `ln 2`.
/// Accuracy ≈ 1 ulp over the Box–Muller input range `(0, 1]` — bit-exact
/// agreement with libm is *not* claimed (the batched generator is a
/// documented different stream; see `uwb_sim::rng`).
///
/// # Panics
///
/// Debug builds assert `x > 0` and finite; release builds produce garbage
/// (not UB) for non-positive input.
pub fn ln_block(x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), out.len(), "ln_block length mismatch");
    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    for (o, &v) in out.iter_mut().zip(x) {
        debug_assert!(v > 0.0 && v.is_finite(), "ln_block needs x > 0, got {v}");
        let bits = v.to_bits();
        // Shift the exponent window so the mantissa lands in [√½, √2):
        // adding 0x0018_... moves the split point from 1.0 down to ≈0.7071.
        let adj = bits.wrapping_add(0x0009_5F62_9999_9999);
        let e = (adj >> 52) as i64 - 1023;
        let m = f64::from_bits(bits.wrapping_sub((e as u64) << 52));
        let z = (m - 1.0) / (m + 1.0);
        let w = z * z;
        // atanh(z)/z = 1 + w/3 + w²/5 + …  (|z| ≤ 0.1716 ⇒ w ≤ 0.0295;
        // the w¹¹ term is below 2⁻⁶⁰ relative).
        let p = 1.0 / 21.0;
        let p = p * w + 1.0 / 19.0;
        let p = p * w + 1.0 / 17.0;
        let p = p * w + 1.0 / 15.0;
        let p = p * w + 1.0 / 13.0;
        let p = p * w + 1.0 / 11.0;
        let p = p * w + 1.0 / 9.0;
        let p = p * w + 1.0 / 7.0;
        let p = p * w + 1.0 / 5.0;
        let p = p * w + 1.0 / 3.0;
        let p = p * w + 1.0;
        let e = e as f64;
        *o = e * LN2_LO + (2.0 * z) * p + e * LN2_HI;
    }
}

/// Sine and cosine of `τ·u` over a block for `u ∈ [0, 1)` — the batched
/// Box–Muller angle pass (`u` in *turns*, which makes quadrant reduction
/// exact: no π-rounding error).
///
/// Quadrant `q = ⌊4u + ½⌋` is selected arithmetically (the selects lower
/// to vector blends), the residual `r = u − q/4 ∈ [−⅛, ⅛]` feeds Taylor
/// polynomials for `sin/cos(τr)` with `|τr| ≤ π/4` (error < 2⁻⁵⁰), and the
/// quadrant maps `(s, c)` onto the output pair. Accuracy ≈ 1–2 ulp —
/// again, libm agreement is not claimed.
pub fn sincos_tau_block(u: &[f64], sin_out: &mut [f64], cos_out: &mut [f64]) {
    assert_eq!(u.len(), sin_out.len(), "sincos_tau_block length mismatch");
    assert_eq!(u.len(), cos_out.len(), "sincos_tau_block length mismatch");
    use std::f64::consts::TAU;
    for ((s_o, c_o), &x) in sin_out.iter_mut().zip(cos_out.iter_mut()).zip(u) {
        debug_assert!((0.0..1.0).contains(&x), "sincos_tau_block needs u in [0,1)");
        let q = (4.0 * x + 0.5).floor(); // 0..=4; q=4 folds onto quadrant 0
        let r = TAU * (x - 0.25 * q); // |r| ≤ π/4, exact reduction
        let w = r * r;
        // sin(r)/r: Taylor through r¹⁴ (|r| ≤ π/4 ⇒ next term < 2⁻⁵⁷).
        let ps = -1.0 / 1_307_674_368_000.0; // −1/15!
        let ps = ps * w + 1.0 / 6_227_020_800.0; // 1/13!
        let ps = ps * w - 1.0 / 39_916_800.0; // −1/11!
        let ps = ps * w + 1.0 / 362_880.0; // 1/9!
        let ps = ps * w - 1.0 / 5_040.0; // −1/7!
        let ps = ps * w + 1.0 / 120.0; // 1/5!
        let ps = ps * w - 1.0 / 6.0; // −1/3!
        let ps = ps * w + 1.0;
        let s = ps * r;
        // cos(r): Taylor through r¹⁶.
        let pc = 1.0 / 20_922_789_888_000.0; // 1/16!
        let pc = pc * w - 1.0 / 87_178_291_200.0; // −1/14!
        let pc = pc * w + 1.0 / 479_001_600.0; // 1/12!
        let pc = pc * w - 1.0 / 3_628_800.0; // −1/10!
        let pc = pc * w + 1.0 / 40_320.0; // 1/8!
        let pc = pc * w - 1.0 / 720.0; // −1/6!
        let pc = pc * w + 1.0 / 24.0; // 1/4!
        let pc = pc * w - 0.5;
        let c = pc * w + 1.0;
        // Quadrant map: fold q=4 → 0, then
        //   q=0: ( s,  c)   q=1: ( c, −s)   q=2: (−s, −c)   q=3: (−c,  s)
        let q = if q >= 4.0 { 0.0 } else { q };
        let swap = q == 1.0 || q == 3.0; // odd quadrant: sin/cos exchange
        let s_base = if swap { c } else { s };
        let c_base = if swap { s } else { c };
        let s_neg = q >= 2.0; // quadrants 2, 3 negate sin
        let c_neg = q == 1.0 || q == 2.0; // quadrants 1, 2 negate cos
        *s_o = if s_neg { -s_base } else { s_base };
        *c_o = if c_neg { -c_base } else { c_base };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_power_matches_serial_closely() {
        let xs: Vec<Complex> = (0..1003)
            .map(|i| Complex::new((0.3 * i as f64).sin(), (0.7 * i as f64).cos()))
            .collect();
        let serial: f64 = xs.iter().map(|z| z.norm_sqr()).sum();
        let split = sum_power(&xs);
        assert!((split - serial).abs() <= 1e-12 * serial.max(1.0));
        assert_eq!(sum_power(&[]), 0.0);
        assert_eq!(mean_power(&[]), 0.0);
        // Short block (remainder-only path).
        let short = &xs[..5];
        let serial_short: f64 = short.iter().map(|z| z.norm_sqr()).sum();
        assert!((sum_power(short) - serial_short).abs() < 1e-15);
    }

    #[test]
    fn sum_power_is_deterministic() {
        let xs: Vec<Complex> = (0..777)
            .map(|i| Complex::new(1.0 / (i + 1) as f64, -(i as f64)))
            .collect();
        assert_eq!(sum_power(&xs).to_bits(), sum_power(&xs).to_bits());
    }

    #[test]
    fn quantize_scaled_matches_scalar_bitwise() {
        // Mirror Quantizer::new(5, 1.0): step = 2/32, codes -16..=15.
        let step = 2.0 / 32.0;
        let (lo, hi) = (-16.0, 15.0);
        let gain = 1.7378;
        let scalar_q = |x: f64| {
            let k = (x / step).floor().clamp(lo, hi);
            (k + 0.5) * step
        };
        let input: Vec<Complex> = (0..501)
            .map(|i| Complex::new((0.11 * i as f64).sin() * 2.0, (0.07 * i as f64).cos() * 0.3))
            .collect();
        let mut out = Vec::new();
        quantize_scaled_into(&input, gain, step, lo, hi, &mut out);
        for (z, o) in input.iter().zip(&out) {
            let want = Complex::new(scalar_q(z.re * gain), scalar_q(z.im * gain));
            assert_eq!(*o, want);
        }
    }

    #[test]
    fn dot_real_template_matches_serial_closely() {
        let sig: Vec<Complex> = (0..643)
            .map(|i| Complex::new((0.13 * i as f64).sin(), (0.29 * i as f64).cos()))
            .collect();
        let tpl: Vec<Complex> = (0..640)
            .map(|i| Complex::new(if i % 3 == 0 { 1.0 } else { -0.5 }, 0.0))
            .collect();
        let got = dot_real_template(&sig, &tpl);
        let mut want = Complex::ZERO;
        for (s, t) in sig.iter().zip(&tpl) {
            want.re += s.re * t.re;
            want.im += s.im * t.re;
        }
        assert!((got - want).norm() < 1e-10, "{got} vs {want}");
    }

    #[test]
    fn ln_block_accuracy() {
        let xs: Vec<f64> = (1..20_000u64)
            .map(|k| k as f64 / 20_000.0)
            .chain([f64::MIN_POSITIVE, 1e-300, 0.5, 1.0, 2.0_f64.powi(-53)])
            .collect();
        let mut out = vec![0.0; xs.len()];
        ln_block(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            let want = x.ln();
            let tol = 4.0 * f64::EPSILON * want.abs().max(1.0);
            assert!((got - want).abs() <= tol, "ln({x}): {got} vs {want}");
        }
    }

    #[test]
    fn sincos_accuracy() {
        let us: Vec<f64> = (0..40_000u64).map(|k| k as f64 / 40_000.0).collect();
        let mut s = vec![0.0; us.len()];
        let mut c = vec![0.0; us.len()];
        sincos_tau_block(&us, &mut s, &mut c);
        for ((&u, &sg), &cg) in us.iter().zip(&s).zip(&c) {
            let a = std::f64::consts::TAU * u;
            assert!((sg - a.sin()).abs() < 1e-15, "sin(τ·{u}): {sg} vs {}", a.sin());
            assert!((cg - a.cos()).abs() < 1e-15, "cos(τ·{u}): {cg} vs {}", a.cos());
            // The pair stays on the unit circle to high accuracy.
            assert!((sg * sg + cg * cg - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn scale_in_place_matches_scalar() {
        let mut a: Vec<Complex> = (0..33).map(|i| Complex::new(i as f64, -2.0)).collect();
        let want: Vec<Complex> = a.iter().map(|&z| z * 1.25).collect();
        scale_in_place(&mut a, 1.25);
        assert_eq!(a, want);
    }
}
