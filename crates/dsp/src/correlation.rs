//! Correlation primitives.
//!
//! Sliding cross-correlation is the work-horse of the pulsed-UWB digital back
//! end (template matching, acquisition, channel estimation), so both direct
//! and FFT-based implementations are provided, along with normalized
//! correlation for thresholding.

use crate::complex::Complex;
use crate::fft::{cached_plan, fft_convolve_real};
use crate::math::next_pow2;
use crate::scratch::DspScratch;

/// Sliding cross-correlation of `signal` against `template` (direct form).
///
/// Output element `k` is `Σ_j signal[k+j] * conj(template[j])`, for every `k`
/// where the template fits entirely ("valid" mode). Output length is
/// `signal.len() - template.len() + 1`; empty if the template is longer than
/// the signal or either is empty.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{Complex, correlation::cross_correlate};
/// let tpl = vec![Complex::ONE, -Complex::ONE];
/// let sig = vec![Complex::ZERO, Complex::ONE, -Complex::ONE, Complex::ZERO];
/// let c = cross_correlate(&sig, &tpl);
/// // Peak where the template aligns.
/// assert_eq!(c.len(), 3);
/// assert!((c[1].re - 2.0).abs() < 1e-12);
/// ```
pub fn cross_correlate(signal: &[Complex], template: &[Complex]) -> Vec<Complex> {
    if template.is_empty() || signal.len() < template.len() {
        return Vec::new();
    }
    let n_out = signal.len() - template.len() + 1;
    let mut out = Vec::with_capacity(n_out);
    for k in 0..n_out {
        let mut acc = Complex::ZERO;
        for (j, &t) in template.iter().enumerate() {
            acc += signal[k + j] * t.conj();
        }
        out.push(acc);
    }
    out
}

/// Sliding cross-correlation of real signals (direct form, "valid" mode).
pub fn cross_correlate_real(signal: &[f64], template: &[f64]) -> Vec<f64> {
    if template.is_empty() || signal.len() < template.len() {
        return Vec::new();
    }
    let n_out = signal.len() - template.len() + 1;
    let mut out = Vec::with_capacity(n_out);
    for k in 0..n_out {
        let mut acc = 0.0;
        for (j, &t) in template.iter().enumerate() {
            acc += signal[k + j] * t;
        }
        out.push(acc);
    }
    out
}

/// Below this many complex multiply-accumulates (`n_out × template_len`) the
/// direct form beats the FFT setup cost, so [`cross_correlate_fft`] routes
/// small inputs straight to [`cross_correlate`]'s loop. The crossover was
/// picked from the `dspbench` kernel timings: at 4096 MACs the direct loop and
/// the three cached transforms cost about the same, and the direct path has
/// the bonus of exact (not rounded) agreement with [`cross_correlate`].
pub const FFT_CORRELATE_CROSSOVER_MACS: usize = 1 << 12;

/// FFT-based sliding cross-correlation, identical in output to
/// [`cross_correlate`] up to floating-point rounding but `O(N log N)`.
/// Preferred for long signals; inputs below
/// [`FFT_CORRELATE_CROSSOVER_MACS`] automatically use the direct form (and
/// are then *exactly* equal to [`cross_correlate`]).
pub fn cross_correlate_fft(signal: &[Complex], template: &[Complex]) -> Vec<Complex> {
    let mut scratch = DspScratch::new();
    let mut out = Vec::new();
    cross_correlate_fft_into(signal, template, &mut scratch, &mut out);
    out
}

/// [`cross_correlate_fft`] computing into caller-owned storage.
///
/// `out` is cleared and filled with only the "valid" window — the full linear
/// convolution lives in a `scratch` buffer and the valid region is copied out
/// exactly once (the historical implementation materialized the full
/// convolution as a `Vec` and then copied the window a second time with
/// `.to_vec()`). After warm-up the call performs zero heap allocation.
pub fn cross_correlate_fft_into(
    signal: &[Complex],
    template: &[Complex],
    scratch: &mut DspScratch,
    out: &mut Vec<Complex>,
) {
    out.clear();
    if template.is_empty() || signal.len() < template.len() {
        return;
    }
    let m = template.len();
    let n_out = signal.len() - m + 1;
    if n_out.saturating_mul(m) < FFT_CORRELATE_CROSSOVER_MACS {
        // Direct form: cheaper below the crossover and bit-exact vs
        // `cross_correlate`.
        out.reserve(n_out);
        for k in 0..n_out {
            let mut acc = Complex::ZERO;
            for (j, &t) in template.iter().enumerate() {
                acc += signal[k + j] * t.conj();
            }
            out.push(acc);
        }
        return;
    }
    // Correlation = convolution with conjugated, time-reversed template.
    let full_len = signal.len() + m - 1;
    let n = next_pow2(full_len);
    let fft = cached_plan(n);
    let mut fa = scratch.take_complex(n);
    fa[..signal.len()].copy_from_slice(signal);
    let mut fb = scratch.take_complex(n);
    for (o, t) in fb.iter_mut().zip(template.iter().rev()) {
        *o = t.conj();
    }
    fft.forward_in_place(&mut fa);
    fft.forward_in_place(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    fft.inverse_in_place(&mut fa);
    // "valid" region starts at template.len()-1; copy it out exactly once.
    out.extend_from_slice(&fa[m - 1..m - 1 + n_out]);
    scratch.put_complex(fa);
    scratch.put_complex(fb);
}

/// Normalized cross-correlation magnitude in `[0, 1]`.
///
/// Element `k` is `|Σ signal[k+j] conj(tpl[j])| / (‖signal_k‖ ‖tpl‖)` where
/// `signal_k` is the window starting at `k`. Values near 1 mean the window is
/// a scaled copy of the template — this is the statistic thresholded by the
/// coarse-acquisition search.
pub fn normalized_correlation(signal: &[Complex], template: &[Complex]) -> Vec<f64> {
    if template.is_empty() || signal.len() < template.len() {
        return Vec::new();
    }
    let tpl_energy: f64 = template.iter().map(|z| z.norm_sqr()).sum();
    if tpl_energy == 0.0 {
        return vec![0.0; signal.len() - template.len() + 1];
    }
    let n_out = signal.len() - template.len() + 1;
    let m = template.len();
    // Rolling window energy.
    let mut win_energy: f64 = signal[..m].iter().map(|z| z.norm_sqr()).sum();
    let mut out = Vec::with_capacity(n_out);
    for k in 0..n_out {
        let mut acc = Complex::ZERO;
        for (j, &t) in template.iter().enumerate() {
            acc += signal[k + j] * t.conj();
        }
        let denom = (win_energy * tpl_energy).sqrt();
        out.push(if denom > 0.0 { acc.norm() / denom } else { 0.0 });
        if k + m < signal.len() {
            win_energy += signal[k + m].norm_sqr() - signal[k].norm_sqr();
            win_energy = win_energy.max(0.0);
        }
    }
    out
}

/// Circular autocorrelation of a real sequence at every lag.
///
/// `out[l] = Σ_n x[n] x[(n+l) mod N]`. For a maximal-length PN sequence in
/// ±1 form this is `N` at lag 0 and `-1` elsewhere — the property that makes
/// m-sequences good acquisition preambles.
///
/// Sequences shorter than [`CIRCULAR_AUTOCORR_DIRECT_MAX`] use the exact
/// `O(n²)` direct sum; longer ones are computed in `O(n log n)` by folding a
/// cached-plan FFT linear autocorrelation (`r_circ[l] = r_lin[l] + r_lin[l-n]`,
/// which works for any `n`, not just powers of two). The FFT fold agrees with
/// the direct sum to floating-point rounding (≤ 1e-9 relative, parity-tested).
pub fn circular_autocorrelation(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n < CIRCULAR_AUTOCORR_DIRECT_MAX {
        let mut out = vec![0.0; n];
        for (l, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in 0..n {
                acc += x[i] * x[(i + l) % n];
            }
            *o = acc;
        }
        return out;
    }
    // Linear autocorrelation via FFT convolution with the reversed sequence:
    // full[k] = Σ_j x[j]·x[n-1-k+j] = r_lin[n-1-k]. Fold the two linear lags
    // that alias onto each circular lag: r_circ[l] = r_lin[l] + r_lin[l-n],
    // i.e. full[n-1-l] + full[l-1] (r_lin is even). Lag 0 has no alias.
    let rev: Vec<f64> = x.iter().rev().copied().collect();
    let full = fft_convolve_real(x, &rev);
    let mut out = Vec::with_capacity(n);
    out.push(full[n - 1]);
    for l in 1..n {
        out.push(full[n - 1 - l] + full[l - 1]);
    }
    out
}

/// Sequence length below which [`circular_autocorrelation`] stays on the
/// exact direct sum (the FFT fold only wins past roughly this point, and the
/// direct path keeps short PN-sequence checks bit-exact).
pub const CIRCULAR_AUTOCORR_DIRECT_MAX: usize = 64;

/// Index and value of the peak magnitude of a complex correlation output.
/// Returns `None` on empty input.
pub fn peak(correlation: &[Complex]) -> Option<(usize, f64)> {
    correlation
        .iter()
        .enumerate()
        .map(|(i, z)| (i, z.norm()))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}

/// Peak-to-next-sidelobe ratio of a correlation magnitude sequence, excluding
/// `guard` samples on either side of the peak. Returns `None` if there is no
/// sidelobe region left.
pub fn peak_to_sidelobe(mags: &[f64], guard: usize) -> Option<f64> {
    if mags.is_empty() {
        return None;
    }
    let peak_idx = crate::math::argmax(mags)?;
    let peak_val = mags[peak_idx];
    let mut sidelobe = 0.0f64;
    let mut found = false;
    for (i, &v) in mags.iter().enumerate() {
        if i + guard < peak_idx || i > peak_idx + guard {
            sidelobe = sidelobe.max(v);
            found = true;
        }
    }
    if !found || sidelobe == 0.0 {
        return None;
    }
    Some(peak_val / sidelobe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::to_complex;

    fn chirp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::cis(0.001 * (i * i) as f64))
            .collect()
    }

    #[test]
    fn direct_and_fft_agree() {
        let sig = chirp(300);
        let tpl = sig[40..90].to_vec();
        let a = cross_correlate(&sig, &tpl);
        let b = cross_correlate_fft(&sig, &tpl);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).norm() < 1e-6);
        }
    }

    #[test]
    fn peak_at_embedded_offset() {
        let mut sig = vec![Complex::ZERO; 200];
        let tpl = chirp(32);
        for (i, &t) in tpl.iter().enumerate() {
            sig[77 + i] = t;
        }
        let c = cross_correlate(&sig, &tpl);
        let (idx, val) = peak(&c).unwrap();
        assert_eq!(idx, 77);
        assert!((val - 32.0).abs() < 1e-9); // unit-magnitude chirp: energy = len
    }

    #[test]
    fn normalized_peak_is_one_for_exact_copy() {
        let mut sig = vec![Complex::ZERO; 100];
        let tpl = chirp(16);
        for (i, &t) in tpl.iter().enumerate() {
            sig[30 + i] = t * 3.0; // scaled copy
        }
        // Add small energy elsewhere so windows aren't all zero.
        sig[0] = Complex::new(0.1, 0.0);
        let nc = normalized_correlation(&sig, &tpl);
        let k = crate::math::argmax(&nc).unwrap();
        assert_eq!(k, 30);
        assert!((nc[30] - 1.0).abs() < 1e-9, "{}", nc[30]);
        for &v in &nc {
            assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn real_correlation_matches_complex() {
        let sig: Vec<f64> = (0..100).map(|i| ((i * 17) % 11) as f64 - 5.0).collect();
        let tpl: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let r = cross_correlate_real(&sig, &tpl);
        let c = cross_correlate(&to_complex(&sig), &to_complex(&tpl));
        for (x, y) in r.iter().zip(&c) {
            assert!((x - y.re).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_short_inputs() {
        assert!(cross_correlate(&[], &[Complex::ONE]).is_empty());
        assert!(cross_correlate(&[Complex::ONE], &[]).is_empty());
        assert!(cross_correlate(&[Complex::ONE], &[Complex::ONE; 2]).is_empty());
        assert!(normalized_correlation(&[], &[Complex::ONE]).is_empty());
        assert!(peak(&[]).is_none());
    }

    #[test]
    fn zero_template_normalized_is_zero() {
        let sig = vec![Complex::ONE; 10];
        let tpl = vec![Complex::ZERO; 3];
        let nc = normalized_correlation(&sig, &tpl);
        assert!(nc.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn circular_autocorr_of_msequence_like() {
        // A 7-chip m-sequence in +-1 form.
        let seq = [1.0, 1.0, 1.0, -1.0, 1.0, -1.0, -1.0];
        let ac = circular_autocorrelation(&seq);
        assert!((ac[0] - 7.0).abs() < 1e-12);
        for &v in &ac[1..] {
            assert!((v + 1.0).abs() < 1e-12, "sidelobe {v}");
        }
    }

    #[test]
    fn circular_autocorr_fft_fold_matches_direct() {
        // 127 > CIRCULAR_AUTOCORR_DIRECT_MAX, and a non-power-of-two length,
        // so this exercises the linear-autocorrelation fold.
        let x: Vec<f64> = (0..127).map(|i| (0.37 * i as f64).sin() + 0.1).collect();
        let fast = circular_autocorrelation(&x);
        let n = x.len();
        let mut direct = vec![0.0; n];
        for (l, o) in direct.iter_mut().enumerate() {
            *o = (0..n).map(|i| x[i] * x[(i + l) % n]).sum();
        }
        let scale: f64 = x.iter().map(|v| v * v).sum();
        for (f, d) in fast.iter().zip(&direct) {
            assert!((f - d).abs() < 1e-9 * scale.max(1.0), "{f} vs {d}");
        }
    }

    #[test]
    fn small_inputs_take_direct_path_exactly() {
        // Below the MAC crossover the FFT entry point must agree *bitwise*
        // with the direct form.
        let sig = chirp(40);
        let tpl = sig[5..15].to_vec(); // 31 × 10 MACs < crossover
        assert_eq!(cross_correlate_fft(&sig, &tpl), cross_correlate(&sig, &tpl));
    }

    #[test]
    fn correlate_fft_into_reuses_storage() {
        let sig = chirp(500);
        let tpl = sig[100..200].to_vec(); // 401 × 100 MACs: FFT path
        let want = cross_correlate(&sig, &tpl);
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        cross_correlate_fft_into(&sig, &tpl, &mut scratch, &mut out);
        assert_eq!(out.len(), want.len());
        for (x, y) in out.iter().zip(&want) {
            assert!((*x - *y).norm() < 1e-6);
        }
        let first = out.clone();
        let cap = out.capacity();
        cross_correlate_fft_into(&sig, &tpl, &mut scratch, &mut out);
        assert_eq!(out, first, "repeat call must be deterministic");
        assert_eq!(out.capacity(), cap, "output storage must be reused");
        assert_eq!(scratch.pooled(), 2, "scratch buffers must be returned");
    }

    #[test]
    fn psl_of_clean_peak() {
        let mags = [0.1, 0.2, 5.0, 0.2, 0.1];
        // guard = 1 excludes the two samples adjacent to the peak, so the
        // strongest remaining sidelobe is 0.1.
        let r = peak_to_sidelobe(&mags, 1).unwrap();
        assert!((r - 50.0).abs() < 1e-9);
        assert!(peak_to_sidelobe(&mags, 10).is_none());
        assert!(peak_to_sidelobe(&[], 0).is_none());
    }
}
