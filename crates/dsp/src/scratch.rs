//! Reusable scratch-buffer arena for allocation-free steady-state DSP.
//!
//! The per-trial signal chain (channel apply → AWGN → matched filter →
//! correlator bank → channel estimation → RAKE) used to allocate a fresh
//! `Vec` for every intermediate. [`DspScratch`] is a small pool of complex
//! and real buffers that callers *take* for the duration of a kernel and
//! *put* back when done. After a few warm-up calls the pooled capacities
//! converge to the scenario's working-set sizes and every subsequent
//! `take_*` is allocation-free — the Monte-Carlo engine gives each worker
//! thread one `DspScratch` inside its per-worker state, so steady-state
//! trials perform **zero heap allocation** in the DSP path.
//!
//! Buffers returned by `take_*` are zero-filled and sized exactly to the
//! request, so kernels can treat them like `vec![0; n]`.
//!
//! # Examples
//!
//! ```
//! use uwb_dsp::scratch::DspScratch;
//! use uwb_dsp::Complex;
//!
//! let mut scratch = DspScratch::new();
//! let mut buf = scratch.take_complex(64);
//! assert_eq!(buf.len(), 64);
//! assert!(buf.iter().all(|z| *z == Complex::ZERO));
//! buf[0] = Complex::ONE;
//! scratch.put_complex(buf);
//! // The second take reuses the first buffer's storage (no allocation) and
//! // hands it back zeroed.
//! let again = scratch.take_complex(64);
//! assert_eq!(again[0], Complex::ZERO);
//! ```

use crate::complex::Complex;

/// A pool of reusable complex / real buffers (see the module docs).
#[derive(Debug, Default)]
pub struct DspScratch {
    complex: Vec<Vec<Complex>>,
    real: Vec<Vec<f64>>,
    /// Single-precision lanes for the f32 acquisition FFT
    /// ([`crate::fft32`]).
    f32: Vec<Vec<f32>>,
}

/// Pops the pooled buffer with the largest capacity so capacities converge
/// to the high-water mark instead of thrashing between sizes.
fn pop_largest<T>(pool: &mut Vec<Vec<T>>) -> Option<Vec<T>> {
    if pool.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, b) in pool.iter().enumerate() {
        if b.capacity() > pool[best].capacity() {
            best = i;
        }
    }
    Some(pool.swap_remove(best))
}

impl DspScratch {
    /// An empty pool. Buffers are created lazily on first use.
    pub fn new() -> Self {
        DspScratch::default()
    }

    /// Takes a zero-filled complex buffer of exactly `len` elements.
    /// Allocation-free once a pooled buffer with sufficient capacity exists.
    pub fn take_complex(&mut self, len: usize) -> Vec<Complex> {
        let mut buf = pop_largest(&mut self.complex).unwrap_or_default();
        buf.clear();
        buf.resize(len, Complex::ZERO);
        buf
    }

    /// Returns a complex buffer to the pool for reuse.
    pub fn put_complex(&mut self, buf: Vec<Complex>) {
        self.complex.push(buf);
    }

    /// Takes a zero-filled real buffer of exactly `len` elements.
    pub fn take_real(&mut self, len: usize) -> Vec<f64> {
        let mut buf = pop_largest(&mut self.real).unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a real buffer to the pool for reuse.
    pub fn put_real(&mut self, buf: Vec<f64>) {
        self.real.push(buf);
    }

    /// Takes a zero-filled `f32` buffer of exactly `len` elements (one SoA
    /// lane for the f32 acquisition FFT).
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        let mut buf = pop_largest(&mut self.f32).unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns an `f32` buffer to the pool for reuse.
    pub fn put_f32(&mut self, buf: Vec<f32>) {
        self.f32.push(buf);
    }

    /// Number of buffers currently parked in the pool (diagnostics).
    pub fn pooled(&self) -> usize {
        self.complex.len() + self.real.len() + self.f32.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_sized() {
        let mut s = DspScratch::new();
        let b = s.take_complex(17);
        assert_eq!(b.len(), 17);
        assert!(b.iter().all(|z| *z == Complex::ZERO));
        let r = s.take_real(5);
        assert_eq!(r.len(), 5);
        assert!(r.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn storage_is_reused() {
        let mut s = DspScratch::new();
        let b = s.take_complex(100);
        let ptr = b.as_ptr();
        s.put_complex(b);
        // Smaller request must reuse the same storage, not allocate.
        let b2 = s.take_complex(10);
        assert_eq!(b2.as_ptr(), ptr);
        assert!(b2.capacity() >= 100);
    }

    #[test]
    fn largest_capacity_preferred() {
        let mut s = DspScratch::new();
        s.put_complex(Vec::with_capacity(8));
        s.put_complex(Vec::with_capacity(256));
        s.put_complex(Vec::with_capacity(32));
        let b = s.take_complex(4);
        assert!(b.capacity() >= 256);
        assert_eq!(s.pooled(), 2);
    }

    #[test]
    fn capacities_converge_across_calls() {
        // Simulates a steady-state trial loop: after the first iteration no
        // reallocation happens (capacity high-water mark is retained).
        let mut s = DspScratch::new();
        for _ in 0..3 {
            let a = s.take_complex(64);
            let b = s.take_complex(32);
            s.put_complex(a);
            s.put_complex(b);
        }
        let a = s.take_complex(64);
        let b = s.take_complex(32);
        assert!(a.capacity() >= 64);
        assert!(b.capacity() >= 32);
    }
}
