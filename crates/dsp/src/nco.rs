//! Numerically controlled oscillator (NCO).
//!
//! Generates phase-continuous complex phasors or real sinusoids. Used for
//! the local oscillator models (up/downconversion) and for synthesizing test
//! tones and interferers.

use crate::complex::Complex;

/// A phase-accumulating oscillator.
///
/// # Examples
///
/// ```
/// use uwb_dsp::Nco;
///
/// // A 5 GHz tone sampled at 32 GS/s.
/// let mut nco = Nco::new(5.0e9, 32.0e9);
/// let samples: Vec<f64> = (0..64).map(|_| nco.next_real()).collect();
/// assert!(samples.iter().all(|x| x.abs() <= 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Nco {
    phase: f64,
    step: f64,
    fs: f64,
}

impl Nco {
    /// Creates an oscillator at `freq_hz` for sample rate `fs_hz`.
    ///
    /// Negative frequencies are allowed (useful for downconversion).
    ///
    /// # Panics
    ///
    /// Panics if `fs_hz <= 0`.
    pub fn new(freq_hz: f64, fs_hz: f64) -> Self {
        assert!(fs_hz > 0.0, "sample rate must be positive");
        Nco {
            phase: 0.0,
            step: std::f64::consts::TAU * freq_hz / fs_hz,
            fs: fs_hz,
        }
    }

    /// Creates an oscillator with an initial phase offset (radians).
    pub fn with_phase(freq_hz: f64, fs_hz: f64, phase: f64) -> Self {
        let mut nco = Nco::new(freq_hz, fs_hz);
        nco.phase = phase;
        nco
    }

    /// Current phase in radians (wrapped to `(-π, π]` lazily).
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Current frequency in hertz.
    pub fn frequency(&self) -> f64 {
        self.step * self.fs / std::f64::consts::TAU
    }

    /// Retunes the oscillator without a phase discontinuity.
    pub fn set_frequency(&mut self, freq_hz: f64) {
        self.step = std::f64::consts::TAU * freq_hz / self.fs;
    }

    /// Adds a phase offset (radians), e.g. from a tracking loop.
    pub fn advance_phase(&mut self, dphi: f64) {
        self.phase += dphi;
        self.wrap();
    }

    fn wrap(&mut self) {
        if self.phase > std::f64::consts::PI || self.phase < -std::f64::consts::PI {
            self.phase = self.phase.rem_euclid(std::f64::consts::TAU);
            if self.phase > std::f64::consts::PI {
                self.phase -= std::f64::consts::TAU;
            }
        }
    }

    /// Produces the next complex phasor `e^{iφ}` and advances the phase.
    pub fn next_complex(&mut self) -> Complex {
        let z = Complex::cis(self.phase);
        self.phase += self.step;
        self.wrap();
        z
    }

    /// Produces the next real cosine sample and advances the phase.
    pub fn next_real(&mut self) -> f64 {
        let x = self.phase.cos();
        self.phase += self.step;
        self.wrap();
        x
    }

    /// Generates `n` complex phasor samples.
    pub fn generate_complex(&mut self, n: usize) -> Vec<Complex> {
        (0..n).map(|_| self.next_complex()).collect()
    }

    /// Generates `n` real cosine samples.
    pub fn generate_real(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_real()).collect()
    }

    /// Mixes (multiplies) a complex signal with this oscillator, advancing the
    /// phase across the block. Used for frequency translation.
    pub fn mix(&mut self, signal: &[Complex]) -> Vec<Complex> {
        signal.iter().map(|&x| x * self.next_complex()).collect()
    }

    /// Mixes a real signal with the real oscillator output.
    pub fn mix_real(&mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| x * self.next_real()).collect()
    }
}

/// Frequency-translates a complex baseband signal by `shift_hz` (one-shot
/// convenience over [`Nco::mix`]).
pub fn frequency_shift(signal: &[Complex], shift_hz: f64, fs_hz: f64) -> Vec<Complex> {
    Nco::new(shift_hz, fs_hz).mix(signal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{bin_frequency, fft_padded};
    use crate::math::argmax;

    #[test]
    fn tone_frequency_is_correct() {
        let fs = 1000.0;
        let f = 125.0;
        let mut nco = Nco::new(f, fs);
        let sig = nco.generate_complex(256);
        let (spec, n) = fft_padded(&sig);
        let mags: Vec<f64> = spec.iter().map(|z| z.norm()).collect();
        let k = argmax(&mags).unwrap();
        assert_eq!(bin_frequency(k, n, fs), 125.0);
    }

    #[test]
    fn unit_magnitude_phasors() {
        let mut nco = Nco::new(333.0, 10_000.0);
        for _ in 0..1000 {
            let z = nco.next_complex();
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_continuity_across_retune() {
        let fs = 1000.0;
        let mut nco = Nco::new(100.0, fs);
        for _ in 0..10 {
            nco.next_complex();
        }
        let before = nco.phase();
        nco.set_frequency(200.0);
        assert_eq!(nco.phase(), before, "retune must not jump phase");
    }

    #[test]
    fn negative_frequency_conjugates() {
        let fs = 1000.0;
        let mut pos = Nco::new(100.0, fs);
        let mut neg = Nco::new(-100.0, fs);
        for _ in 0..100 {
            let p = pos.next_complex();
            let n = neg.next_complex();
            assert!((p.conj() - n).norm() < 1e-9);
        }
    }

    #[test]
    fn shift_then_unshift_is_identity() {
        let fs = 1.0e9;
        let sig: Vec<Complex> = (0..512)
            .map(|i| Complex::new((i as f64 * 0.01).sin(), (i as f64 * 0.02).cos()))
            .collect();
        let up = frequency_shift(&sig, 80e6, fs);
        let back = frequency_shift(&up, -80e6, fs);
        for (a, b) in sig.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn real_output_is_cosine() {
        let mut nco = Nco::new(0.0, 100.0);
        assert_eq!(nco.next_real(), 1.0); // cos(0)
    }

    #[test]
    fn with_phase_offset() {
        let mut nco = Nco::with_phase(0.0, 100.0, std::f64::consts::FRAC_PI_2);
        assert!(nco.next_real().abs() < 1e-12); // cos(pi/2)
    }

    #[test]
    fn advance_phase_wraps() {
        let mut nco = Nco::new(0.0, 100.0);
        nco.advance_phase(7.0 * std::f64::consts::PI);
        assert!(nco.phase().abs() <= std::f64::consts::PI + 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_fs_panics() {
        Nco::new(1.0, 0.0);
    }
}
