//! ASCII reporting for experiment binaries: aligned tables and log-scale
//! series, so every figure/table of the paper can be regenerated as text.

/// A simple aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:>w$} |", w = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders a [`uwb_obs::Telemetry`] snapshot as a per-stage profile table:
/// one row per pipeline stage (`stage | calls | total ms | ns/call | %`),
/// stages sorted by descending total time, followed by one row per event
/// count. Returns an empty table when the snapshot is empty (telemetry off).
pub fn stage_table(telemetry: &uwb_obs::Telemetry) -> Table {
    let mut t = Table::new(vec!["stage", "calls", "total ms", "ns/call", "%"]);
    let total_ns: u64 = telemetry.total_stage_ns().max(1);
    let mut stages: Vec<_> = telemetry.stages.iter().collect();
    stages.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.name.cmp(b.name)));
    for s in stages {
        let per_call = s.ns.checked_div(s.calls).unwrap_or(0);
        t.row(vec![
            s.name.to_string(),
            s.calls.to_string(),
            format!("{:.2}", s.ns as f64 / 1e6),
            per_call.to_string(),
            format!("{:.1}", 100.0 * s.ns as f64 / total_ns as f64),
        ]);
    }
    for e in &telemetry.events {
        t.row(vec![
            format!("event:{}", e.name),
            e.count.to_string(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    t
}

/// Formats a BER (or any small probability) compactly: `1.2e-4` or `<1e-7`
/// when zero errors were seen over `total` observations.
pub fn format_rate(errors: u64, total: u64) -> String {
    if total == 0 {
        return "n/a".into();
    }
    if errors == 0 {
        return format!("<{:.0e}", 1.0 / total as f64);
    }
    format!("{:.2e}", errors as f64 / total as f64)
}

/// Renders an (x, y) series as a log-y ASCII strip chart, one row per point:
/// `x | bar | y`. `y` values ≤ 0 render as an empty bar.
pub fn log_strip_chart(series: &[(f64, f64)], x_label: &str, y_label: &str) -> String {
    if series.is_empty() {
        return String::new();
    }
    let y_min_pos = series
        .iter()
        .filter(|(_, y)| *y > 0.0)
        .map(|(_, y)| *y)
        .fold(f64::INFINITY, f64::min);
    let y_max = series.iter().map(|(_, y)| *y).fold(0.0f64, f64::max);
    let mut out = format!("{x_label:>10} | {y_label}\n");
    if y_max <= 0.0 || !y_min_pos.is_finite() {
        for (x, _) in series {
            out.push_str(&format!("{x:>10.2} | (zero)\n"));
        }
        return out;
    }
    let lo = y_min_pos.log10().floor();
    let hi = y_max.log10().ceil().max(lo + 1.0);
    let width = 50.0;
    for (x, y) in series {
        let bar = if *y > 0.0 {
            let frac = ((y.log10() - lo) / (hi - lo)).clamp(0.0, 1.0);
            "#".repeat((frac * width).round() as usize)
        } else {
            String::new()
        };
        out.push_str(&format!("{x:>10.2} | {bar:<50} {y:.3e}\n"));
    }
    out
}

/// Renders a real waveform as a rough ASCII oscillogram (the Fig. 4 view):
/// `rows` lines of `cols` characters, amplitude mapped vertically.
pub fn oscillogram(samples: &[f64], rows: usize, cols: usize) -> String {
    if samples.is_empty() || rows < 3 || cols < 3 {
        return String::new();
    }
    let max = samples.iter().fold(0.0f64, |m, x| m.max(x.abs())).max(1e-30);
    let mut grid = vec![vec![' '; cols]; rows];
    for (c, _) in (0..cols).enumerate() {
        let idx = c * (samples.len() - 1) / (cols - 1);
        let v = samples[idx] / max; // -1..1
        let r = ((1.0 - v) / 2.0 * (rows - 1) as f64).round() as usize;
        grid[r.min(rows - 1)][c] = '*';
    }
    // Zero axis.
    let zero_row = (rows - 1) / 2;
    for cell in grid[zero_row].iter_mut() {
        if *cell == ' ' {
            *cell = '-';
        }
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders complex decision statistics as an ASCII constellation scatter:
/// I on the horizontal axis, Q vertical, axes drawn through zero, density
/// shown as `.`, `:`, `*`, `#`.
pub fn constellation(points: &[uwb_dsp::Complex], rows: usize, cols: usize) -> String {
    if points.is_empty() || rows < 5 || cols < 5 {
        return String::new();
    }
    let max = points
        .iter()
        .fold(0.0f64, |m, z| m.max(z.re.abs()).max(z.im.abs()))
        .max(1e-30)
        * 1.1;
    let mut counts = vec![vec![0usize; cols]; rows];
    for z in points {
        let c = (((z.re / max) + 1.0) / 2.0 * (cols - 1) as f64).round() as usize;
        let r = ((1.0 - z.im / max) / 2.0 * (rows - 1) as f64).round() as usize;
        counts[r.min(rows - 1)][c.min(cols - 1)] += 1;
    }
    let peak = counts
        .iter()
        .flat_map(|row| row.iter())
        .copied()
        .max()
        .unwrap_or(1)
        .max(1);
    let glyph = |n: usize| -> char {
        if n == 0 {
            ' '
        } else if n * 8 <= peak {
            '.'
        } else if n * 3 <= peak {
            ':'
        } else if n * 3 <= 2 * peak {
            '*'
        } else {
            '#'
        }
    };
    let (mid_r, mid_c) = ((rows - 1) / 2, (cols - 1) / 2);
    let mut out = String::new();
    for (r, row) in counts.iter().enumerate() {
        for (c, &n) in row.iter().enumerate() {
            let ch = if n > 0 {
                glyph(n)
            } else if r == mid_r && c == mid_c {
                '+'
            } else if r == mid_r {
                '-'
            } else if c == mid_c {
                '|'
            } else {
                ' '
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["Eb/N0", "BER"]);
        t.row(vec!["0", "1.2e-1"]);
        t.row(vec!["10", "3.4e-6"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        assert!(lines.iter().all(|l| l.chars().count() == lines[0].chars().count()));
        assert!(s.contains("Eb/N0"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn ragged_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn stage_table_sorts_by_time_and_lists_events() {
        use uwb_obs::{EventStat, StageStat, Telemetry};
        let telemetry = Telemetry {
            stages: vec![
                StageStat {
                    name: "cheap",
                    calls: 10,
                    ns: 1_000,
                },
                StageStat {
                    name: "hot",
                    calls: 10,
                    ns: 9_000_000,
                },
            ],
            events: vec![EventStat {
                name: "acq_miss",
                count: 3,
            }],
            hists: vec![],
            ..Default::default()
        };
        let t = stage_table(&telemetry);
        let s = t.render();
        let hot_line = s.lines().position(|l| l.contains("hot")).unwrap();
        let cheap_line = s.lines().position(|l| l.contains("cheap")).unwrap();
        assert!(hot_line < cheap_line, "{s}");
        assert!(s.contains("event:acq_miss"), "{s}");
        assert_eq!(t.len(), 3);
        // Empty snapshot -> header-only table.
        assert!(stage_table(&Telemetry::default()).is_empty());
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(format_rate(0, 0), "n/a");
        assert_eq!(format_rate(0, 100_000), "<1e-5");
        assert_eq!(format_rate(5, 1000), "5.00e-3");
    }

    #[test]
    fn strip_chart_shape() {
        let series = vec![(0.0, 1e-1), (5.0, 1e-3), (10.0, 1e-5)];
        let s = log_strip_chart(&series, "Eb/N0", "BER");
        assert_eq!(s.lines().count(), 4);
        // Bars shrink as BER falls.
        let bars: Vec<usize> = s
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&c| c == '#').count())
            .collect();
        assert!(bars[0] > bars[1] && bars[1] > bars[2], "{bars:?}");
        assert!(log_strip_chart(&[], "x", "y").is_empty());
    }

    #[test]
    fn strip_chart_all_zero() {
        let s = log_strip_chart(&[(1.0, 0.0)], "x", "y");
        assert!(s.contains("(zero)"));
    }

    #[test]
    fn constellation_renders_bpsk_clusters() {
        use uwb_dsp::Complex;
        // Two tight clusters at ±1.
        let mut points = Vec::new();
        for i in 0..200 {
            let jitter = (i % 7) as f64 * 0.01;
            points.push(Complex::new(1.0 + jitter, jitter - 0.03));
            points.push(Complex::new(-1.0 - jitter, 0.03 - jitter));
        }
        let s = constellation(&points, 15, 41);
        assert_eq!(s.lines().count(), 15);
        // Dense marks on both sides of the vertical axis, axes drawn.
        assert!(s.contains('#'));
        assert!(s.contains('|'));
        assert!(s.contains('-'));
        // Empty input renders nothing.
        assert!(constellation(&[], 15, 41).is_empty());
    }

    #[test]
    fn oscillogram_renders() {
        let wave: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.3).sin())
            .collect();
        let s = oscillogram(&wave, 11, 60);
        assert_eq!(s.lines().count(), 11);
        assert!(s.contains('*'));
        assert!(s.contains('-'));
        assert!(oscillogram(&[], 11, 60).is_empty());
    }
}
