//! FCC spectral-mask compliance checking.
//!
//! The FCC Part 15 indoor UWB mask limits EIRP density to −41.3 dBm/MHz in
//! 3.1–10.6 GHz, with much tighter limits outside (notably −75.3 dBm/MHz in
//! the 0.96–1.61 GHz GPS band). The checker measures a transmit waveform's
//! PSD and compares it against the mask segment by segment.

use uwb_dsp::psd::welch_real;
use uwb_dsp::Window;
use uwb_sim::time::SampleRate;

/// One segment of the regulatory mask.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskSegment {
    /// Segment start frequency (Hz).
    pub f_lo: f64,
    /// Segment end frequency (Hz).
    pub f_hi: f64,
    /// EIRP density limit in dBm/MHz.
    pub limit_dbm_per_mhz: f64,
}

/// The FCC Part 15 indoor UWB mask.
pub fn fcc_indoor_mask() -> Vec<MaskSegment> {
    vec![
        MaskSegment {
            f_lo: 0.0,
            f_hi: 0.96e9,
            limit_dbm_per_mhz: -41.3,
        },
        MaskSegment {
            f_lo: 0.96e9,
            f_hi: 1.61e9,
            limit_dbm_per_mhz: -75.3,
        },
        MaskSegment {
            f_lo: 1.61e9,
            f_hi: 1.99e9,
            limit_dbm_per_mhz: -53.3,
        },
        MaskSegment {
            f_lo: 1.99e9,
            f_hi: 3.1e9,
            limit_dbm_per_mhz: -51.3,
        },
        MaskSegment {
            f_lo: 3.1e9,
            f_hi: 10.6e9,
            limit_dbm_per_mhz: -41.3,
        },
        MaskSegment {
            f_lo: 10.6e9,
            f_hi: f64::INFINITY,
            limit_dbm_per_mhz: -51.3,
        },
    ]
}

/// The mask limit (dBm/MHz) at a frequency.
pub fn mask_limit_at(mask: &[MaskSegment], f_hz: f64) -> f64 {
    mask.iter()
        .find(|s| f_hz >= s.f_lo && f_hz < s.f_hi)
        .map(|s| s.limit_dbm_per_mhz)
        .unwrap_or(-51.3)
}

/// Result of a mask compliance check.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskReport {
    /// `true` if every measured bin is at or below the mask.
    pub compliant: bool,
    /// Worst margin in dB (positive = headroom, negative = violation).
    pub worst_margin_db: f64,
    /// Frequency of the worst margin (Hz).
    pub worst_frequency_hz: f64,
    /// Measured in-band (3.1–10.6 GHz) peak density in dBm/MHz.
    pub peak_density_dbm_per_mhz: f64,
    /// Per-bin `(freq_hz, density_dbm_per_mhz, limit_dbm_per_mhz)` rows for
    /// plotting.
    pub bins: Vec<(f64, f64, f64)>,
}

/// Checks a real passband waveform (volts across 50 Ω with `0 dBm ≙ power
/// 1.0` normalization) against a mask.
///
/// `duty` rescales the measured density for burst duty cycling: regulators
/// measure with a 1 ms averaging window, so a transmitter active `duty` of
/// the time has its average density reduced accordingly.
///
/// # Panics
///
/// Panics if the waveform is empty or `duty` is outside `(0, 1]`.
pub fn check_mask(
    waveform: &[f64],
    fs: SampleRate,
    mask: &[MaskSegment],
    duty: f64,
) -> MaskReport {
    assert!(!waveform.is_empty(), "cannot check an empty waveform");
    assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
    let psd = welch_real(waveform, fs.as_hz(), 4096, Window::Blackman);
    let (freqs, vals) = psd.sorted();

    let mut bins = Vec::new();
    let mut worst = f64::INFINITY;
    let mut worst_f = 0.0;
    let mut peak_inband = f64::NEG_INFINITY;
    for (&f, &v) in freqs.iter().zip(&vals) {
        if f <= 0.0 {
            continue; // one-sided view; real signal is symmetric
        }
        // Two-sided PSD -> one-sided density: x2. V^2/Hz with 1.0 == 0 dBm
        // -> dBm/MHz = 10 log10(2 * v * 1e6) scaled by duty.
        let density_mw_per_mhz = 2.0 * v * 1e6 * duty;
        let density_dbm = 10.0 * density_mw_per_mhz.max(1e-300).log10();
        let limit = mask_limit_at(mask, f);
        let margin = limit - density_dbm;
        if margin < worst {
            worst = margin;
            worst_f = f;
        }
        if (3.1e9..10.6e9).contains(&f) {
            peak_inband = peak_inband.max(density_dbm);
        }
        bins.push((f, density_dbm, limit));
    }
    MaskReport {
        compliant: worst >= 0.0,
        worst_margin_db: worst,
        worst_frequency_hz: worst_f,
        peak_density_dbm_per_mhz: peak_inband,
        bins,
    }
}

/// Scales a waveform so its in-band peak density just meets `target_dbm`
/// dBm/MHz (returns the scaled waveform and the applied power scale in dB).
pub fn scale_to_mask(
    waveform: &[f64],
    fs: SampleRate,
    mask: &[MaskSegment],
    duty: f64,
    target_dbm: f64,
) -> (Vec<f64>, f64) {
    let report = check_mask(waveform, fs, mask, duty);
    let delta_db = target_dbm - report.peak_density_dbm_per_mhz;
    let amp = uwb_dsp::math::db_to_amp(delta_db);
    (
        waveform.iter().map(|&x| x * amp).collect(),
        delta_db,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> SampleRate {
        SampleRate::new(32e9)
    }

    #[test]
    fn mask_lookup() {
        let mask = fcc_indoor_mask();
        assert_eq!(mask_limit_at(&mask, 5e9), -41.3);
        assert_eq!(mask_limit_at(&mask, 1.2e9), -75.3); // GPS band
        assert_eq!(mask_limit_at(&mask, 12e9), -51.3);
        assert_eq!(mask_limit_at(&mask, 2.5e9), -51.3);
    }

    #[test]
    fn quiet_signal_compliant() {
        // A very weak in-band tone passes.
        let n = 65_536;
        let x: Vec<f64> = (0..n)
            .map(|i| 1e-6 * (std::f64::consts::TAU * 5e9 * i as f64 / 32e9).sin())
            .collect();
        let report = check_mask(&x, fs(), &fcc_indoor_mask(), 1.0);
        assert!(report.compliant, "margin {}", report.worst_margin_db);
    }

    #[test]
    fn loud_signal_violates() {
        let n = 65_536;
        let x: Vec<f64> = (0..n)
            .map(|i| 1.0 * (std::f64::consts::TAU * 5e9 * i as f64 / 32e9).sin())
            .collect();
        let report = check_mask(&x, fs(), &fcc_indoor_mask(), 1.0);
        assert!(!report.compliant);
        assert!((report.worst_frequency_hz - 5e9).abs() < 0.2e9);
    }

    #[test]
    fn gps_band_is_the_tight_spot() {
        // Equal-power tones at 1.2 GHz and 5 GHz: the GPS one has 34 dB less
        // headroom.
        let n = 65_536;
        let tone = |f: f64| -> Vec<f64> {
            (0..n)
                .map(|i| 1e-5 * (std::f64::consts::TAU * f * i as f64 / 32e9).sin())
                .collect()
        };
        let r_gps = check_mask(&tone(1.2e9), fs(), &fcc_indoor_mask(), 1.0);
        let r_band = check_mask(&tone(5e9), fs(), &fcc_indoor_mask(), 1.0);
        let delta = r_band.worst_margin_db - r_gps.worst_margin_db;
        assert!((delta - 34.0).abs() < 2.0, "delta {delta}");
    }

    #[test]
    fn duty_cycling_buys_margin() {
        let n = 65_536;
        let x: Vec<f64> = (0..n)
            .map(|i| 0.01 * (std::f64::consts::TAU * 5e9 * i as f64 / 32e9).sin())
            .collect();
        let full = check_mask(&x, fs(), &fcc_indoor_mask(), 1.0);
        let tenth = check_mask(&x, fs(), &fcc_indoor_mask(), 0.1);
        assert!(
            (tenth.worst_margin_db - full.worst_margin_db - 10.0).abs() < 0.1,
            "{} vs {}",
            tenth.worst_margin_db,
            full.worst_margin_db
        );
    }

    #[test]
    fn scale_to_mask_hits_target() {
        let n = 65_536;
        let x: Vec<f64> = (0..n)
            .map(|i| 0.5 * (std::f64::consts::TAU * 6e9 * i as f64 / 32e9).sin())
            .collect();
        let (scaled, _) = scale_to_mask(&x, fs(), &fcc_indoor_mask(), 1.0, -41.3);
        let report = check_mask(&scaled, fs(), &fcc_indoor_mask(), 1.0);
        assert!(
            (report.peak_density_dbm_per_mhz + 41.3).abs() < 0.5,
            "peak {}",
            report.peak_density_dbm_per_mhz
        );
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn bad_duty_panics() {
        check_mask(&[1.0], fs(), &fcc_indoor_mask(), 0.0);
    }
}
