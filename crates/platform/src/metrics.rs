//! Link metrology: BER/PER counters with confidence intervals.

/// A bit-error counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorCounter {
    /// Bits (or packets) observed.
    pub total: u64,
    /// Errors observed.
    pub errors: u64,
}

impl ErrorCounter {
    /// An empty counter.
    pub fn new() -> Self {
        ErrorCounter::default()
    }

    /// Adds a comparison of two bit slices (counts positions that differ;
    /// a length mismatch counts the surplus as errors).
    pub fn add_bits(&mut self, reference: &[bool], received: &[bool]) {
        let n = reference.len().max(received.len());
        self.total += n as u64;
        let common = reference.len().min(received.len());
        let diff = reference[..common]
            .iter()
            .zip(&received[..common])
            .filter(|(a, b)| a != b)
            .count() as u64;
        self.errors += diff + (n - common) as u64;
    }

    /// Adds byte-level comparisons bitwise.
    pub fn add_bytes(&mut self, reference: &[u8], received: &[u8]) {
        let n = reference.len().max(received.len());
        self.total += 8 * n as u64;
        let common = reference.len().min(received.len());
        let diff: u32 = reference[..common]
            .iter()
            .zip(&received[..common])
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        self.errors += diff as u64 + 8 * (n - common) as u64;
    }

    /// Records `n` observations with `e` errors.
    pub fn add_raw(&mut self, n: u64, e: u64) {
        self.total += n;
        self.errors += e.min(n);
    }

    /// The error rate. `NaN` when nothing was observed — an empty counter is
    /// *not* evidence of an error-free link (the old `0.0` return made a
    /// zero-trial run indistinguishable from a perfect one). `f64::max`
    /// ignores NaN, so `c.rate().max(floor)` caller patterns keep working.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.errors as f64 / self.total as f64
        }
    }

    /// Wilson 95 % confidence interval for the error rate.
    pub fn wilson_ci(&self) -> (f64, f64) {
        if self.total == 0 {
            return (0.0, 1.0);
        }
        let n = self.total as f64;
        let p = self.rate();
        let z = 1.96f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// `true` once enough errors are collected for a ±50 % relative CI
    /// (rule of thumb: 100 errors).
    pub fn is_converged(&self) -> bool {
        self.errors >= 100
    }

    /// Merges another counter.
    pub fn merge(&mut self, other: &ErrorCounter) {
        self.total += other.total;
        self.errors += other.errors;
    }
}

/// Engine-side merge: lets `ErrorCounter` be the accumulator of a
/// [`uwb_sim::montecarlo::MonteCarlo`] run.
impl uwb_sim::montecarlo::Merge for ErrorCounter {
    fn merge(&mut self, other: &Self) {
        ErrorCounter::merge(self, other);
    }
}

impl std::fmt::Display for ErrorCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} = {:.3e}", self.errors, self.total, self.rate())
    }
}

/// Theoretical BPSK BER in AWGN at the given Eb/N0 (dB) — the reference
/// curve every waterfall is compared against.
pub fn bpsk_awgn_ber(ebn0_db: f64) -> f64 {
    let ebn0 = uwb_dsp::math::db_to_pow(ebn0_db);
    uwb_dsp::math::q_function((2.0 * ebn0).sqrt())
}

/// Theoretical OOK (coherent) BER: `Q(sqrt(Eb/N0))` — 3 dB worse than BPSK.
pub fn ook_awgn_ber(ebn0_db: f64) -> f64 {
    let ebn0 = uwb_dsp::math::db_to_pow(ebn0_db);
    uwb_dsp::math::q_function(ebn0.sqrt())
}

/// Theoretical coherent binary-PPM (orthogonal) BER: `Q(sqrt(Eb/N0))`.
pub fn ppm2_awgn_ber(ebn0_db: f64) -> f64 {
    ook_awgn_ber(ebn0_db)
}

/// Theoretical Gray-coded 4-PAM BER: `(3/4) Q(sqrt(4/5 · Eb/N0))`.
pub fn pam4_awgn_ber(ebn0_db: f64) -> f64 {
    let ebn0 = uwb_dsp::math::db_to_pow(ebn0_db);
    0.75 * uwb_dsp::math::q_function((0.8 * ebn0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_counting() {
        let mut c = ErrorCounter::new();
        c.add_bits(&[true, false, true], &[true, true, true]);
        assert_eq!(c.total, 3);
        assert_eq!(c.errors, 1);
        assert!((c.rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn byte_counting() {
        let mut c = ErrorCounter::new();
        c.add_bytes(&[0xFF, 0x00], &[0xFE, 0x01]);
        assert_eq!(c.total, 16);
        assert_eq!(c.errors, 2);
    }

    #[test]
    fn length_mismatch_counts_as_errors() {
        let mut c = ErrorCounter::new();
        c.add_bits(&[true; 5], &[true; 3]);
        assert_eq!(c.total, 5);
        assert_eq!(c.errors, 2);
        let mut c2 = ErrorCounter::new();
        c2.add_bytes(&[0u8; 4], &[0u8; 2]);
        assert_eq!(c2.errors, 16);
    }

    #[test]
    fn wilson_interval_brackets_rate() {
        let mut c = ErrorCounter::new();
        c.add_raw(10_000, 100);
        let (lo, hi) = c.wilson_ci();
        assert!(lo < 0.01 && 0.01 < hi);
        assert!(hi - lo < 0.005, "CI too wide: {lo}..{hi}");
        assert!(c.is_converged());
    }

    #[test]
    fn empty_counter_rate_is_nan_ci_is_unit() {
        let c = ErrorCounter::new();
        assert!(c.rate().is_nan(), "empty rate must be NaN, not 0");
        assert_eq!(c.wilson_ci(), (0.0, 1.0));
        assert!(!c.is_converged());
        // The `.rate().max(floor)` caller idiom stays safe: max ignores NaN.
        assert_eq!(c.rate().max(1e-6), 1e-6);
    }

    #[test]
    fn merge_adds() {
        let mut a = ErrorCounter::new();
        a.add_raw(100, 5);
        let mut b = ErrorCounter::new();
        b.add_raw(50, 2);
        a.merge(&b);
        assert_eq!(a.total, 150);
        assert_eq!(a.errors, 7);
    }

    #[test]
    fn theory_reference_points() {
        // BPSK: 9.6 dB -> ~1e-5; 6.8 dB -> ~1e-3.
        assert!((bpsk_awgn_ber(9.6).log10() + 5.0).abs() < 0.15);
        assert!((bpsk_awgn_ber(6.8).log10() + 3.0).abs() < 0.15);
        // OOK/PPM is 3 dB worse than BPSK.
        assert!((ook_awgn_ber(12.6) / bpsk_awgn_ber(9.6) - 1.0).abs() < 0.05);
        assert_eq!(ook_awgn_ber(8.0), ppm2_awgn_ber(8.0));
        // 4-PAM worse than BPSK at the same Eb/N0.
        assert!(pam4_awgn_ber(9.6) > bpsk_awgn_ber(9.6));
    }

    #[test]
    fn display_format() {
        let mut c = ErrorCounter::new();
        c.add_raw(1000, 3);
        assert!(c.to_string().contains("3/1000"));
    }
}
