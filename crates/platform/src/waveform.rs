//! Arbitrary waveform generation and modulation-scheme comparison.
//!
//! The discrete prototype is "flexible enough to generate all kinds of
//! signals within a bandwidth of 500 MHz, allowing the comparison between
//! different modulation schemes" (paper §3). [`ArbitraryWaveformGenerator`]
//! synthesizes any slot-amplitude stream with the 500 MHz pulse;
//! [`modulation_ber`] runs a slot-level Monte-Carlo BER for any
//! [`Modulation`].

use crate::metrics::ErrorCounter;
use uwb_dsp::Complex;
use uwb_phy::pulse::PulseShape;
use uwb_phy::Modulation;
use uwb_sim::time::{Hertz, SampleRate};
use uwb_sim::Rand;

/// Synthesizes pulse waveforms from arbitrary slot amplitudes.
#[derive(Debug, Clone)]
pub struct ArbitraryWaveformGenerator {
    pulse: Vec<f64>,
    samples_per_slot: usize,
    sample_rate: SampleRate,
}

impl ArbitraryWaveformGenerator {
    /// Creates a generator with the standard 500 MHz pulse.
    ///
    /// # Panics
    ///
    /// Panics if `slot_rate` does not divide `sample_rate` into at least
    /// two samples per slot.
    pub fn new(sample_rate: SampleRate, slot_rate: Hertz) -> Self {
        let sps = (sample_rate.as_hz() / slot_rate.as_hz()).round() as usize;
        assert!(sps >= 2, "need at least two samples per slot");
        ArbitraryWaveformGenerator {
            pulse: PulseShape::gen2_default().generate(sample_rate),
            samples_per_slot: sps,
            sample_rate,
        }
    }

    /// The sample rate.
    pub fn sample_rate(&self) -> SampleRate {
        self.sample_rate
    }

    /// Samples per slot.
    pub fn samples_per_slot(&self) -> usize {
        self.samples_per_slot
    }

    /// Synthesizes the complex baseband waveform for slot amplitudes.
    pub fn synthesize(&self, amps: &[f64]) -> Vec<Complex> {
        let sps = self.samples_per_slot;
        let guard = self.pulse.len();
        let n = amps.len() * sps + 2 * guard;
        let mut out = vec![Complex::ZERO; n];
        for (k, &a) in amps.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let start = guard + k * sps;
            for (j, &p) in self.pulse.iter().enumerate() {
                out[start + j].re += a * p;
            }
        }
        out
    }

    /// Measures the −10 dB occupied bandwidth of a synthesized waveform.
    pub fn occupied_bandwidth(&self, waveform: &[Complex]) -> Hertz {
        let psd = uwb_dsp::psd::welch(
            waveform,
            self.sample_rate.as_hz(),
            512,
            uwb_dsp::Window::Hann,
        );
        Hertz::new(psd.bandwidth_below_peak(10.0))
    }
}

/// Slot-level Monte-Carlo BER of a modulation format in AWGN at the given
/// Eb/N0 (dB). Coherent demodulation; runs until `target_errors` or
/// `max_bits`.
pub fn modulation_ber(
    modulation: Modulation,
    ebn0_db: f64,
    target_errors: u64,
    max_bits: u64,
    seed: u64,
) -> ErrorCounter {
    let mut rng = Rand::new(seed);
    let mut counter = ErrorCounter::new();
    let bps = modulation.bits_per_symbol();
    // Eb = mean symbol energy / bits per symbol; slot noise is complex with
    // total power N0 (matched-filter convention).
    let eb = modulation.mean_symbol_energy() / bps as f64;
    let n0 = eb / uwb_dsp::math::db_to_pow(ebn0_db);
    let sigma = (n0 / 2.0).sqrt();
    while counter.errors < target_errors && counter.total < max_bits {
        let bits: Vec<bool> = (0..bps).map(|_| rng.bit()).collect();
        let amps = modulation.map(&bits);
        let slots: Vec<Complex> = amps
            .iter()
            .map(|&a| Complex::new(a + sigma * rng.gaussian(), sigma * rng.gaussian()))
            .collect();
        let (decided, _) = modulation.demap(&slots);
        counter.add_bits(&bits, &decided);
    }
    counter
}

/// Non-coherent variant of [`modulation_ber`] (energy detection); returns
/// `None` for coherent-only formats.
pub fn modulation_ber_noncoherent(
    modulation: Modulation,
    ebn0_db: f64,
    target_errors: u64,
    max_bits: u64,
    seed: u64,
) -> Option<ErrorCounter> {
    if !modulation.supports_noncoherent() {
        return None;
    }
    let mut rng = Rand::new(seed);
    let mut counter = ErrorCounter::new();
    let bps = modulation.bits_per_symbol();
    let eb = modulation.mean_symbol_energy() / bps as f64;
    let n0 = eb / uwb_dsp::math::db_to_pow(ebn0_db);
    let sigma = (n0 / 2.0).sqrt();
    while counter.errors < target_errors && counter.total < max_bits {
        let bits: Vec<bool> = (0..bps).map(|_| rng.bit()).collect();
        let amps = modulation.map(&bits);
        let phase = rng.uniform_in(0.0, std::f64::consts::TAU); // unknown carrier
        let slots: Vec<Complex> = amps
            .iter()
            .map(|&a| {
                Complex::from_polar(a, phase)
                    + Complex::new(sigma * rng.gaussian(), sigma * rng.gaussian())
            })
            .collect();
        let (decided, _) = modulation.demap_noncoherent(&slots)?;
        counter.add_bits(&bits, &decided);
    }
    Some(counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{bpsk_awgn_ber, ook_awgn_ber, pam4_awgn_ber};

    #[test]
    fn synthesized_waveform_within_500mhz() {
        let awg = ArbitraryWaveformGenerator::new(
            SampleRate::from_gsps(1.0),
            Hertz::from_mhz(100.0),
        );
        let mut rng = Rand::new(1);
        let amps: Vec<f64> = (0..4096)
            .map(|_| if rng.bit() { 1.0 } else { -1.0 })
            .collect();
        let wf = awg.synthesize(&amps);
        let bw = awg.occupied_bandwidth(&wf);
        assert!(
            bw.as_mhz() < 650.0,
            "-10 dB bandwidth {} MHz exceeds the 500 MHz platform limit",
            bw.as_mhz()
        );
        assert!(bw.as_mhz() > 250.0, "{}", bw.as_mhz());
    }

    #[test]
    fn bpsk_monte_carlo_matches_theory() {
        let c = modulation_ber(Modulation::Bpsk, 5.0, 400, 4_000_000, 2);
        let theory = bpsk_awgn_ber(5.0);
        let ratio = c.rate() / theory;
        assert!(ratio > 0.8 && ratio < 1.25, "ratio {ratio}");
    }

    #[test]
    fn ook_monte_carlo_matches_theory() {
        let c = modulation_ber(Modulation::Ook, 8.0, 400, 4_000_000, 3);
        let theory = ook_awgn_ber(8.0);
        let ratio = c.rate() / theory;
        assert!(ratio > 0.75 && ratio < 1.35, "ratio {ratio}");
    }

    #[test]
    fn pam4_monte_carlo_matches_theory() {
        let c = modulation_ber(Modulation::Pam4, 8.0, 400, 4_000_000, 4);
        let theory = pam4_awgn_ber(8.0);
        let ratio = c.rate() / theory;
        assert!(ratio > 0.7 && ratio < 1.4, "ratio {ratio}");
    }

    #[test]
    fn modulation_ranking_at_fixed_ebn0() {
        // BPSK < PPM/OOK at the same Eb/N0 (3 dB antipodal advantage).
        let e = 7.0;
        let bpsk = modulation_ber(Modulation::Bpsk, e, 200, 2_000_000, 5).rate();
        let ook = modulation_ber(Modulation::Ook, e, 200, 2_000_000, 6).rate();
        let ppm = modulation_ber(Modulation::Ppm2, e, 200, 2_000_000, 7).rate();
        assert!(bpsk < ook, "bpsk {bpsk} vs ook {ook}");
        assert!(bpsk < ppm, "bpsk {bpsk} vs ppm {ppm}");
    }

    #[test]
    fn noncoherent_costs_extra() {
        let e = 9.0;
        let coh = modulation_ber(Modulation::Ppm2, e, 300, 3_000_000, 8).rate();
        let noncoh = modulation_ber_noncoherent(Modulation::Ppm2, e, 300, 3_000_000, 9)
            .unwrap()
            .rate();
        assert!(noncoh > coh, "noncoherent {noncoh} vs coherent {coh}");
        assert!(modulation_ber_noncoherent(Modulation::Bpsk, e, 10, 100, 10).is_none());
    }

    #[test]
    #[should_panic(expected = "samples per slot")]
    fn bad_rates_panic() {
        ArbitraryWaveformGenerator::new(SampleRate::from_msps(100.0), Hertz::from_mhz(100.0));
    }
}
