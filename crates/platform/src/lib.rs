//! # uwb-platform — the discrete-prototype platform, in software
//!
//! The paper's discrete prototype exists to test "the algorithms implemented
//! in the digital back end under realistic conditions" and to compare
//! "different modulation schemes" within a 500 MHz bandwidth. This crate is
//! that platform's software substitute:
//!
//! * [`link`] — end-to-end gen2 link runner over multipath / noise /
//!   interference with calibrated Eb/N0
//! * [`waveform`] — arbitrary waveform generation + slot-level modulation
//!   BER studies
//! * [`metrics`] — BER/PER counters, Wilson confidence intervals, and the
//!   closed-form AWGN reference curves
//! * [`mask`] — FCC −41.3 dBm/MHz spectral-mask compliance checking
//! * [`report`] — ASCII tables, log strip charts, and oscillograms for the
//!   experiment binaries
//!
//! # Example: one BER point
//!
//! ```
//! use uwb_platform::link::{run_ber_fast, LinkScenario};
//! use uwb_phy::Gen2Config;
//!
//! let scenario = LinkScenario::awgn(Gen2Config::nominal_100mbps(), 10.0, 42);
//! let counter = run_ber_fast(&scenario, 16, 5, 20_000);
//! assert!(counter.rate() < 1e-2);
//! ```

#![warn(missing_docs)]

pub mod link;
pub mod mask;
pub mod metrics;
pub mod report;
pub mod waveform;

pub use link::{
    ber_waterfall, run_ber, run_ber_budgeted, run_ber_fast, run_ber_fast_budgeted,
    run_ber_fast_streamed, run_ber_fast_streamed_budgeted, BerRun, CleanSynthesis, LinkOutcome,
    LinkRun, LinkScenario, LinkStopReason, LinkWorker, TrialBudget, DEFAULT_STREAM_BLOCK,
};
pub use mask::{check_mask, fcc_indoor_mask, MaskReport, MaskSegment};
pub use metrics::ErrorCounter;
pub use report::Table;
pub use waveform::{modulation_ber, ArbitraryWaveformGenerator};
