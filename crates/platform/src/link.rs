//! End-to-end link runner — the software stand-in for the paper's discrete
//! prototype platform.
//!
//! "A discrete prototype with the same specifications has been designed and
//! implemented, allowing … a complete testing of the algorithms implemented
//! in the digital back end under realistic conditions" (paper §3). The
//! runner builds packets, pushes them through multipath / noise /
//! interference, runs the gen2 receiver, and accumulates calibrated BER
//! statistics.
//!
//! Since the deterministic parallel Monte-Carlo port, both [`run_ber`] and
//! [`run_ber_fast`] execute on [`uwb_sim::montecarlo::MonteCarlo`]:
//!
//! * trial `t` draws its RNG from
//!   [`uwb_sim::rng::derive_trial_seed`]`(scenario.seed, t)` (a splitmix64
//!   mix — the former `seed ^ t * φ64` xor was linear in `t` and reused the
//!   master seed verbatim for trial 0);
//! * transmitters / receivers / spectral monitors / notch filters are built
//!   once per worker thread and reused across trials instead of being
//!   reconstructed per packet;
//! * runs that exhaust the trial budget report
//!   [`LinkStopReason::Truncated`] instead of silently returning a
//!   truncated estimate (the old runners broke out at 10 000 trials without
//!   telling anyone);
//! * results are bit-identical for any worker thread count (`UWB_THREADS`).

use crate::metrics::ErrorCounter;
use std::ops::Range;
use uwb_dsp::batch::BatchArena;
use uwb_dsp::stream::BlockProcessor;
use uwb_dsp::Complex;
use uwb_phy::packet::{decode_payload_bits_into, reference_payload_bits_into};
use uwb_phy::{
    AcquisitionResult, Burst, FrameScratch, FrameSlots, Gen2Config, Gen2Receiver, Gen2Transmitter,
    PhyError, RxState, SpectralMonitor,
};
use uwb_rf::TunableNotch;
use uwb_sim::awgn::add_awgn_complex_in_place;
use uwb_sim::montecarlo::{resolve_batch, Merge, MonteCarlo, RunStats, StopReason};
use uwb_sim::stream::{StreamingAwgn, StreamingChannel, StreamingInterferer};
use uwb_sim::sv_channel::{ChannelModel, ChannelRealization, Tap};
use uwb_sim::{Interferer, Rand};

/// Default block length (in samples) for the streamed synthesis path —
/// small enough that the working set stays cache-resident, large enough
/// that per-block dispatch is negligible against the per-sample work.
pub const DEFAULT_STREAM_BLOCK: usize = 4096;

/// A complete link scenario.
#[derive(Debug, Clone)]
pub struct LinkScenario {
    /// PHY configuration for both ends.
    pub config: Gen2Config,
    /// Multipath environment (a fresh realization is drawn per packet).
    pub channel: ChannelModel,
    /// Eb/N0 in dB (energy per *information* bit over noise density).
    pub ebn0_db: f64,
    /// Optional narrowband interferer.
    pub interferer: Option<Interferer>,
    /// Engage the spectral monitor + tunable notch against the interferer.
    pub notch_enabled: bool,
    /// Master seed (forked per packet via `derive_trial_seed`).
    pub seed: u64,
}

impl LinkScenario {
    /// An AWGN-only scenario at the given Eb/N0.
    pub fn awgn(config: Gen2Config, ebn0_db: f64, seed: u64) -> Self {
        LinkScenario {
            config,
            channel: ChannelModel::Awgn,
            ebn0_db,
            interferer: None,
            notch_enabled: false,
            seed,
        }
    }
}

/// Accumulated outcome of a BER run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkOutcome {
    /// Raw (pre-CRC) bit errors over the payload+FCS bits.
    pub ber: ErrorCounter,
    /// Packets attempted.
    pub packets: u64,
    /// Packets that fully decoded with a valid CRC.
    pub packets_ok: u64,
    /// Packets lost to acquisition failure.
    pub sync_failures: u64,
}

impl LinkOutcome {
    /// Packet error rate. `NaN` when no packets were attempted — an empty
    /// run is *not* an error-free run.
    pub fn per(&self) -> f64 {
        if self.packets == 0 {
            f64::NAN
        } else {
            1.0 - self.packets_ok as f64 / self.packets as f64
        }
    }
}

impl Merge for LinkOutcome {
    fn merge(&mut self, other: &Self) {
        self.ber.merge(&other.ber);
        self.packets += other.packets;
        self.packets_ok += other.packets_ok;
        self.sync_failures += other.sync_failures;
    }
}

/// Why a BER run ended — the old runners silently broke out of the loop at
/// 10 000 trials; now the condition is explicit and surfaced to callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkStopReason {
    /// Accumulated `target_errors` bit errors: the estimate has its design
    /// confidence.
    TargetErrors,
    /// Hit `max_bits` observed bits before the error target.
    BitBudget,
    /// Ran out of trials before either criterion — the estimate is
    /// truncated and should not be reported as a clean statistic.
    Truncated,
}

impl LinkStopReason {
    /// `true` when the run exhausted its trial budget.
    pub fn truncated(&self) -> bool {
        matches!(self, LinkStopReason::Truncated)
    }
}

impl std::fmt::Display for LinkStopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkStopReason::TargetErrors => write!(f, "target-errors"),
            LinkStopReason::BitBudget => write!(f, "bit-budget"),
            LinkStopReason::Truncated => write!(f, "truncated"),
        }
    }
}

/// Trial budget for a BER run (replaces the old hard-coded, silent 10 000
/// trial cap).
#[derive(Debug, Clone, Copy)]
pub struct TrialBudget {
    /// Maximum packets to simulate before declaring the run truncated.
    pub max_trials: u64,
}

impl Default for TrialBudget {
    fn default() -> Self {
        // 10x the old silent cap: with per-worker cached state and N
        // threads this is still far cheaper than the old serial loop.
        TrialBudget {
            max_trials: 100_000,
        }
    }
}

/// Result of [`run_ber_fast`]: the BER counter plus run metadata.
///
/// Derefs to [`ErrorCounter`] so existing call sites (`c.rate()`,
/// `c.errors`, `format!("{c}")`) keep working unchanged.
#[derive(Debug, Clone)]
pub struct BerRun {
    /// The accumulated bit-error counter.
    pub counter: ErrorCounter,
    /// Why the run ended.
    pub stop: LinkStopReason,
    /// Engine statistics (trials, wall time, threads, trials/sec).
    pub stats: RunStats,
}

impl std::ops::Deref for BerRun {
    type Target = ErrorCounter;
    fn deref(&self) -> &ErrorCounter {
        &self.counter
    }
}

impl std::fmt::Display for BerRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.counter, self.stop)
    }
}

/// Result of [`run_ber`]: the full link outcome plus run metadata.
///
/// Derefs to [`LinkOutcome`] so existing call sites keep working unchanged.
#[derive(Debug, Clone)]
pub struct LinkRun {
    /// The accumulated link outcome (BER + packet + sync counters).
    pub outcome: LinkOutcome,
    /// Why the run ended.
    pub stop: LinkStopReason,
    /// Engine statistics (trials, wall time, threads, trials/sec).
    pub stats: RunStats,
}

impl std::ops::Deref for LinkRun {
    type Target = LinkOutcome;
    fn deref(&self) -> &LinkOutcome {
        &self.outcome
    }
}

/// Energy per information bit carried by one frame's payload section, in
/// pulse-energy units (pulse templates are unit energy). Reads the slot
/// amplitudes off the already-built frame — the old runner rebuilt the
/// entire frame (CRC, FEC, spreading) a second time just to compute this.
fn energy_per_info_bit(slots: &uwb_phy::packet::FrameSlots, payload_len: usize) -> f64 {
    let slot_energy: f64 = slots.payload.iter().map(|a| a * a).sum();
    let info_bits = 8.0 * (payload_len + 4) as f64;
    slot_energy / info_bits
}

/// The outcome of [`LinkWorker::synthesize_clean_streamed`]: where the
/// frame starts in the record, and everything needed to apply the victim's
/// receiver noise *later* (after foreign records have been mixed in)
/// while staying bit-identical to the single-link streamed path.
#[derive(Debug, Clone)]
pub struct CleanSynthesis {
    /// Known slot-0 start index in the record (for the known-timing BER
    /// path).
    pub slot0_start: usize,
    /// Noise spectral density calibrated to the scenario's Eb/N0 on
    /// information bits.
    pub n0: f64,
    /// The RNG at exactly the state the single-link path starts drawing
    /// noise samples from.
    pub awgn_rng: Rand,
}

/// Structure-of-arrays scratch for one batch of stage-sweep trials.
///
/// The batched runtime holds all B in-flight waveforms in two flat
/// [`BatchArena`]s (impaired records, then digitized records) plus
/// per-trial sidecar vectors (synthesis metadata, payload snapshots,
/// acquisition results). One instance lives next to each [`LinkWorker`]
/// and is reused across batches: `reset` keeps every buffer's capacity, so
/// warm batches run allocation-free on the nominal path (enforced by the
/// umbrella crate's counting-allocator gate).
#[derive(Default)]
pub struct BatchScratch {
    /// Impaired waveform lanes, one per trial in the batch.
    records: BatchArena,
    /// Post-AGC/ADC digitized lanes, one per trial in the batch.
    digitized: BatchArena,
    /// Per-trial synthesis metadata (slot-0 start, calibrated N0, AWGN RNG).
    clean: Vec<CleanSynthesis>,
    /// Per-trial payload snapshots. The outer vector only ever grows (to
    /// the largest batch seen); inner buffers are cleared and refilled in
    /// place, so steady-state batches never allocate here.
    payloads: Vec<Vec<u8>>,
    /// Per-trial acquisition results (full-path batches only).
    acq: Vec<AcquisitionResult>,
}

impl BatchScratch {
    /// An empty scratch; buffers warm to their high-water marks over the
    /// first batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all per-batch state, keeping every buffer's capacity.
    fn reset(&mut self) {
        self.records.clear();
        self.digitized.clear();
        self.clean.clear();
        self.acq.clear();
    }
}

/// Per-worker cached state: everything that does not depend on the trial
/// index is built once per worker thread and reused across trials. The old
/// runners rebuilt the transmitter/receiver (and, per trial, the spectral
/// monitor and notch filter) for every packet.
///
/// Since the zero-allocation DSP port, the worker also owns every per-trial
/// buffer (burst, channel realization, impaired record, slot statistics,
/// decoded/reference bits, receiver state). After the first trial warms the
/// buffers to their high-water marks, steady-state trials on the nominal
/// BER path perform no heap allocation at all; this is enforced by a
/// counting-allocator regression test in the umbrella crate. The FEC,
/// MLSE, and notch paths are the documented exceptions.
///
/// Public so harnesses (benchmarks, allocation tests) can drive single
/// trials directly without going through the Monte-Carlo engine.
pub struct LinkWorker {
    tx: Gen2Transmitter,
    rx: Gen2Receiver,
    monitor: SpectralMonitor,
    notch: TunableNotch,
    stream_channel: StreamingChannel,
    // --- persistent per-trial buffers ---
    channel: ChannelRealization,
    rx_state: RxState,
    frame_scratch: FrameScratch,
    burst: Burst,
    payload: Vec<u8>,
    samples: Vec<Complex>,
    stats: Vec<Complex>,
    bits: Vec<bool>,
    ref_bits: Vec<bool>,
}

impl LinkWorker {
    /// Builds the worker for a scenario (one per Monte-Carlo thread).
    ///
    /// # Panics
    ///
    /// Panics if the scenario's PHY configuration fails validation.
    pub fn new(scenario: &LinkScenario) -> Self {
        let config = &scenario.config;
        LinkWorker {
            tx: Gen2Transmitter::new(config.clone()).expect("tx config"),
            rx: Gen2Receiver::new(config.clone()).expect("rx config"),
            monitor: SpectralMonitor::new(),
            notch: TunableNotch::new(config.sample_rate, 30.0),
            stream_channel: StreamingChannel::new(),
            channel: ChannelRealization::from_taps(vec![Tap {
                delay_ns: 0.0,
                gain: Complex::ONE,
            }]),
            rx_state: RxState::new(),
            frame_scratch: FrameScratch::new(),
            burst: Burst {
                samples: Vec::new(),
                sample_rate: config.sample_rate,
                slot0_center: 0,
                samples_per_slot: 0,
                slots: FrameSlots::default(),
            },
            payload: Vec::new(),
            samples: Vec::new(),
            stats: Vec::new(),
            bits: Vec::new(),
            ref_bits: Vec::new(),
        }
    }

    /// Synthesizes one impaired packet record into the worker's buffers
    /// (`self.payload`, `self.samples`) and returns the known slot-0 start
    /// — the shared front half of both the BER-only and the
    /// full-acquisition paths. Allocation-free in steady state except for
    /// the notch path.
    fn synthesize(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        rng: &mut Rand,
    ) -> usize {
        let config = &scenario.config;
        {
            let _t = uwb_obs::span!("tx");
            self.payload.clear();
            self.payload.resize(payload_len, 0);
            rng.fill_bytes(&mut self.payload);
            self.tx
                .transmit_packet_into(&self.payload, &mut self.burst, &mut self.frame_scratch)
                .expect("payload size");
        }

        // Channel (fresh realization per packet, taps regenerated in place).
        let fs = config.sample_rate;
        {
            let _t = uwb_obs::span!("channel");
            self.channel.regenerate(scenario.channel, rng);
            self.channel.apply_into(
                &self.burst.samples,
                fs,
                self.rx_state.scratch(),
                &mut self.samples,
            );
        }

        // Interference.
        if let Some(intf) = &scenario.interferer {
            let _t = uwb_obs::span!("interferer");
            intf.add_to_in_place(&mut self.samples, fs.as_hz(), rng);
        }

        // Noise calibrated to Eb/N0 on information bits.
        {
            let _t = uwb_obs::span!("awgn");
            let eb = energy_per_info_bit(&self.burst.slots, self.payload.len());
            let n0 = eb / uwb_dsp::math::db_to_pow(scenario.ebn0_db);
            uwb_obs::note!("ebn0_milli_db", (scenario.ebn0_db * 1000.0) as i64 as u64);
            add_awgn_complex_in_place(&mut self.samples, n0, rng);
        }

        // Optional spectral monitoring + notch (the paper's interferer
        // defense).
        if scenario.notch_enabled {
            self.apply_notch(fs);
        }

        self.burst.slot0_center - self.tx.pulse().len() / 2
    }

    /// Spectral monitoring + tunable notch over the assembled record. The
    /// monitor and filter live in the worker; only the centre frequency is
    /// re-tuned per record. The notch filter itself still allocates its
    /// output (outside the zero-allocation steady-state contract), and the
    /// monitor needs the whole record — both synthesis paths therefore run
    /// it as a batch pass after assembly.
    fn apply_notch(&mut self, fs: uwb_sim::time::SampleRate) {
        // `mem::take` detaches the record so the lane variant can borrow it
        // alongside `&mut self`; swap-restore, no allocation.
        let mut samples = std::mem::take(&mut self.samples);
        self.apply_notch_lane(fs, &mut samples);
        self.samples = samples;
    }

    /// [`apply_notch`](Self::apply_notch) over an externally owned record —
    /// one lane of the batched arena. Same monitor/tune/filter sequence; the
    /// filtered output is copied back in place (the record length never
    /// changes through the notch).
    fn apply_notch_lane(&mut self, fs: uwb_sim::time::SampleRate, record: &mut [Complex]) {
        let _t = uwb_obs::span!("notch");
        let report = self.monitor.analyze(record, fs.as_hz());
        if report.detected {
            uwb_obs::event!("notch_retune", report.frequency.as_hz() as u64);
            self.notch.tune(report.frequency);
            let filtered = self.notch.process(record);
            record.copy_from_slice(&filtered);
        }
    }

    /// Block-based form of [`synthesize`](Self::synthesize): the impaired
    /// record is built `block_len` samples at a time through the streaming
    /// channel/interferer/noise operators, so no stage ever materializes a
    /// whole-record intermediate of its own (the assembled record itself
    /// still accumulates in `self.samples` because the known-timing BER
    /// tail consumes a full record; the per-stage working set is O(block +
    /// channel tail)).
    ///
    /// RNG draw order matches the batch path exactly: payload bytes →
    /// channel realization → interferer starting phase → AWGN samples
    /// (I then Q, ascending index). For AWGN-only, CW- and swept-interferer
    /// scenarios the streamed record is therefore **bit-identical** to the
    /// batch record for any `block_len`; multipath records agree to
    /// numerical precision (direct-form vs FFT convolution) and modulated
    /// interferers fork their symbol stream (see `uwb_sim::stream`).
    ///
    /// Internally this is [`synthesize_clean_streamed`](Self::synthesize_clean_streamed)
    /// followed by one whole-record AWGN pass — by the chunk-size
    /// invariance contract of `StreamingAwgn`, bit-identical to the
    /// formerly interleaved per-block application.
    fn synthesize_streamed(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        block_len: usize,
        rng: &mut Rand,
    ) -> usize {
        let clean = self.synthesize_clean_streamed(scenario, payload_len, block_len, rng);
        self.apply_awgn_to_record(clean.n0, clean.awgn_rng);
        if scenario.notch_enabled {
            self.apply_notch(scenario.config.sample_rate);
        }
        clean.slot0_start
    }

    /// The noiseless front half of a streamed trial: payload → frame →
    /// multipath channel (→ optional local interferer), accumulated
    /// block-by-block in the worker's record buffer, but **without** the
    /// AWGN pass. The network simulator uses this to obtain each
    /// transmitter's clean at-the-victim waveform, mixes scaled foreign
    /// records on top, and only then applies the victim's receiver noise —
    /// which is why the returned [`CleanSynthesis`] carries the calibrated
    /// `n0` and a clone of the RNG at exactly the state the single-link
    /// path would start drawing noise from. A link with no coupled
    /// interferers therefore reproduces the single-link streamed trial
    /// **bit-for-bit**.
    ///
    /// Allocation-free in steady state; the record is available via
    /// [`clean_record`](Self::clean_record) until the next synthesis call.
    pub fn synthesize_clean_streamed(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        block_len: usize,
        rng: &mut Rand,
    ) -> CleanSynthesis {
        // `mem::take` detaches the record buffer so the `_record` variant can
        // borrow it alongside `&mut self`; swap-restore, no allocation.
        let mut samples = std::mem::take(&mut self.samples);
        let clean =
            self.synthesize_clean_streamed_record(scenario, payload_len, block_len, rng, &mut samples);
        self.samples = samples;
        clean
    }

    /// [`synthesize_clean_streamed`](Self::synthesize_clean_streamed) with
    /// the record written into an **externally owned** buffer instead of the
    /// worker's private one. This is what lets the network simulator share
    /// one worker across every link of a given configuration: the per-round
    /// waveforms live in the caller's arena while the worker only carries
    /// the configuration-shaped machinery (transmitter, streaming channel,
    /// scratch). Identical RNG schedule and sample values to the private-
    /// buffer variant; allocation-free once `record` has warmed to capacity.
    pub fn synthesize_clean_streamed_record(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        block_len: usize,
        rng: &mut Rand,
        record: &mut Vec<Complex>,
    ) -> CleanSynthesis {
        record.clear();
        self.synthesize_clean_streamed_append(scenario, payload_len, block_len, rng, record)
    }

    /// [`synthesize_clean_streamed_record`](Self::synthesize_clean_streamed_record)
    /// that *appends* the record after whatever `record` already holds
    /// instead of replacing it. This is the lane builder for the batched
    /// structure-of-arrays runtime: B trials' records live back-to-back in
    /// one flat arena buffer, each built by one call at its own base offset.
    /// The returned [`CleanSynthesis::slot0_start`] stays relative to this
    /// trial's own record (the lane), not the arena. Identical RNG schedule
    /// and sample values to the replacing variant.
    pub fn synthesize_clean_streamed_append(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        block_len: usize,
        rng: &mut Rand,
        record: &mut Vec<Complex>,
    ) -> CleanSynthesis {
        let config = &scenario.config;
        {
            let _t = uwb_obs::span!("tx");
            self.payload.clear();
            self.payload.resize(payload_len, 0);
            rng.fill_bytes(&mut self.payload);
            self.tx
                .transmit_packet_into(&self.payload, &mut self.burst, &mut self.frame_scratch)
                .expect("payload size");
        }

        let fs = config.sample_rate;
        {
            let _t = uwb_obs::span!("channel");
            self.channel.regenerate(scenario.channel, rng);
            self.stream_channel.configure(&self.channel, fs);
        }

        // The streaming interferer draws its starting phase here — the same
        // single draw, at the same RNG position, as the batch
        // `add_to_in_place` call.
        let mut interferer = scenario
            .interferer
            .as_ref()
            .map(|i| StreamingInterferer::new(i, fs.as_hz(), rng));

        // Noise calibrated to Eb/N0 on information bits; the clone captures
        // the RNG at exactly the state the batch path would start drawing
        // noise from.
        let n0 = {
            let eb = energy_per_info_bit(&self.burst.slots, self.payload.len());
            eb / uwb_dsp::math::db_to_pow(scenario.ebn0_db)
        };
        uwb_obs::note!("ebn0_milli_db", (scenario.ebn0_db * 1000.0) as i64 as u64);
        let awgn_rng = rng.clone();

        let block_len = block_len.max(1);
        let n = self.burst.samples.len();
        let base = record.len();
        record.reserve(n + self.stream_channel.tail_len());
        let scratch = self.rx_state.scratch();
        let mut start = 0;
        while start < n {
            let end = (start + block_len).min(n);
            record.extend_from_slice(&self.burst.samples[start..end]);
            let block = &mut record[base + start..base + end];
            {
                let _t = uwb_obs::span!("channel");
                self.stream_channel.process_block(block, scratch);
            }
            if let Some(src) = interferer.as_mut() {
                let _t = uwb_obs::span!("interferer");
                src.process_block(block, scratch);
            }
            start = end;
        }

        // Multipath tail: the channel flushes its carried L-1 samples, which
        // then pass through the downstream stages — the batch path's
        // interferer also covers the convolution tail.
        {
            let _t = uwb_obs::span!("channel");
            self.stream_channel.flush_into(record, scratch);
        }
        if record.len() > base + n {
            let tail = &mut record[base + n..];
            if let Some(src) = interferer.as_mut() {
                let _t = uwb_obs::span!("interferer");
                src.process_block(tail, scratch);
            }
        }

        CleanSynthesis {
            slot0_start: self.burst.slot0_center - self.tx.pulse().len() / 2,
            n0,
            awgn_rng,
        }
    }

    /// Applies calibrated receiver noise over the whole assembled record in
    /// one pass. One `StreamingAwgn` pass over the full record draws
    /// exactly the sample sequence the per-block interleaved application
    /// drew (chunk-size invariance), so the result is bit-identical.
    fn apply_awgn_to_record(&mut self, n0: f64, awgn_rng: Rand) {
        let _t = uwb_obs::span!("awgn");
        let mut awgn = StreamingAwgn::new(n0, awgn_rng);
        awgn.process_block(&mut self.samples, self.rx_state.scratch());
    }

    /// The clean (or, after [`synthesize_streamed`](Self::synthesize_streamed),
    /// impaired) record assembled by the most recent synthesis call. The
    /// network simulator reads every transmitter's clean record through
    /// this to build per-victim superpositions.
    pub fn clean_record(&self) -> &[Complex] {
        &self.samples
    }

    /// The payload bytes drawn by the most recent synthesis call. The
    /// network simulator snapshots these right after synthesizing a link's
    /// record so that a *shared* worker can later be handed back the right
    /// reference payload at decode time
    /// (see [`count_errors_in_record_with_payload`](Self::count_errors_in_record_with_payload)).
    pub fn payload_bytes(&self) -> &[u8] {
        &self.payload
    }

    /// Shared back half of the BER-only trials: known-timing statistics
    /// over `self.samples`, decode, and error accumulation.
    fn count_payload_errors(
        &mut self,
        scenario: &LinkScenario,
        slot0_start: usize,
        counter: &mut ErrorCounter,
    ) {
        // `mem::take` detaches the record so the external-record variant
        // can borrow it alongside `&mut self`; swap-restore, no allocation.
        let before = counter.errors;
        let samples = std::mem::take(&mut self.samples);
        self.count_errors_in_record(&scenario.config, &samples, slot0_start, counter);
        self.samples = samples;
        // BER-only trials never acquire; the flight recorder scores them on
        // bit errors alone (no-op unless the engine armed this trial).
        uwb_obs::recorder::observe(counter.errors - before, 0);
    }

    /// Known-timing BER back half over an *externally supplied* record —
    /// the network simulator hands each victim receiver its mixed
    /// (own + interference + noise) superposition rather than the worker's
    /// private buffer. Returns `true` if the decoded payload was
    /// error-free this trial (the network layer's per-round packet
    /// success proxy). Expects the worker to still hold the payload and
    /// frame produced by the matching synthesis call.
    pub fn count_errors_in_record(
        &mut self,
        config: &Gen2Config,
        record: &[Complex],
        slot0_start: usize,
        counter: &mut ErrorCounter,
    ) -> bool {
        self.rx.payload_statistics_known_timing_with(
            record,
            slot0_start,
            self.payload.len(),
            &mut self.rx_state,
            &mut self.stats,
        );
        let _t = uwb_obs::span!("rx_decode");
        if decode_payload_bits_into(
            &self.stats,
            self.payload.len(),
            config,
            &mut self.frame_scratch,
            &mut self.bits,
        )
        .is_ok()
        {
            let before = counter.errors;
            reference_payload_bits_into(&self.payload, &mut self.frame_scratch, &mut self.ref_bits);
            counter.add_bits(&self.ref_bits, &self.bits);
            uwb_obs::hist!("trial_bit_errors", counter.errors - before);
            uwb_obs::digest!("trial_bit_errors", counter.errors - before);
            counter.errors == before
        } else {
            false
        }
    }

    /// [`count_errors_in_record`](Self::count_errors_in_record) for a
    /// *pooled* worker that has synthesized other links' records since this
    /// link's: the caller supplies the payload snapshot taken at synthesis
    /// time and the worker restores it before decoding. The copy is a few
    /// dozen bytes into a warmed buffer — allocation-free in steady state.
    pub fn count_errors_in_record_with_payload(
        &mut self,
        config: &Gen2Config,
        record: &[Complex],
        slot0_start: usize,
        payload: &[u8],
        counter: &mut ErrorCounter,
    ) -> bool {
        self.payload.clear();
        self.payload.extend_from_slice(payload);
        self.count_errors_in_record(config, record, slot0_start, counter)
    }

    /// [`count_errors_in_record_with_payload`](Self::count_errors_in_record_with_payload)
    /// routed through the shared batched scratch: the AGC/ADC pass digitizes
    /// the record into a scratch lane, then the predigitized back half
    /// decodes from it. Same stage arithmetic and telemetry as the fused
    /// path — bit-identical counters — with the digitized buffer owned by
    /// the caller's [`BatchScratch`] instead of `RxState`, so a pooled
    /// worker (the network simulator's) shares one arena across every link
    /// it decodes for.
    pub fn count_errors_in_record_with_payload_batched(
        &mut self,
        config: &Gen2Config,
        record: &[Complex],
        slot0_start: usize,
        payload: &[u8],
        scratch: &mut BatchScratch,
        counter: &mut ErrorCounter,
    ) -> bool {
        self.payload.clear();
        self.payload.extend_from_slice(payload);
        scratch.digitized.clear();
        {
            let _t = uwb_obs::span!("rx_agc_adc");
            let rx = &self.rx;
            scratch
                .digitized
                .push_lane_with(|buf, _base| rx.digitize_append(record, buf));
        }
        self.count_errors_predigitized(config, scratch.digitized.lane(0), slot0_start, counter)
    }

    /// Known-timing BER back half over an already-digitized record (one
    /// lane of the batched arena): statistics → decode → error count. Same
    /// sequence as [`count_errors_in_record`](Self::count_errors_in_record)
    /// minus the AGC/ADC pass, which the batched runtime runs as its own
    /// stage sweep.
    fn count_errors_predigitized(
        &mut self,
        config: &Gen2Config,
        digitized: &[Complex],
        slot0_start: usize,
        counter: &mut ErrorCounter,
    ) -> bool {
        self.rx.payload_statistics_predigitized_with(
            digitized,
            slot0_start,
            self.payload.len(),
            &mut self.rx_state,
            &mut self.stats,
        );
        let _t = uwb_obs::span!("rx_decode");
        if decode_payload_bits_into(
            &self.stats,
            self.payload.len(),
            config,
            &mut self.frame_scratch,
            &mut self.bits,
        )
        .is_ok()
        {
            let before = counter.errors;
            reference_payload_bits_into(&self.payload, &mut self.frame_scratch, &mut self.ref_bits);
            counter.add_bits(&self.ref_bits, &self.bits);
            uwb_obs::hist!("trial_bit_errors", counter.errors - before);
            uwb_obs::digest!("trial_bit_errors", counter.errors - before);
            counter.errors == before
        } else {
            false
        }
    }

    /// BER-only trial: known-timing statistics path. Zero steady-state heap
    /// allocation on the nominal configuration.
    pub fn trial_ber(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        rng: &mut Rand,
        counter: &mut ErrorCounter,
    ) {
        let slot0_start = self.synthesize(scenario, payload_len, rng);
        self.count_payload_errors(scenario, slot0_start, counter);
    }

    /// BER-only trial on the streamed synthesis path: the impaired record
    /// is produced `block_len` samples at a time through the streaming
    /// channel/interferer/noise operators (see
    /// [`synthesize_streamed`](Self::synthesize_streamed) for the parity
    /// contract). Zero steady-state heap allocation on the nominal
    /// configuration, like [`trial_ber`](Self::trial_ber).
    pub fn trial_ber_streamed(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        block_len: usize,
        rng: &mut Rand,
        counter: &mut ErrorCounter,
    ) {
        let slot0_start = self.synthesize_streamed(scenario, payload_len, block_len, rng);
        self.count_payload_errors(scenario, slot0_start, counter);
    }

    /// Full trial: BER path plus full-acquisition packet path.
    pub fn trial_full(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        rng: &mut Rand,
        outcome: &mut LinkOutcome,
    ) {
        let slot0_start = self.synthesize(scenario, payload_len, rng);
        let ber_before = outcome.ber.errors;

        // --- BER path: known timing. ---
        self.rx.payload_statistics_known_timing_with(
            &self.samples,
            slot0_start,
            self.payload.len(),
            &mut self.rx_state,
            &mut self.stats,
        );
        {
            let _t = uwb_obs::span!("rx_decode");
            if decode_payload_bits_into(
                &self.stats,
                self.payload.len(),
                &scenario.config,
                &mut self.frame_scratch,
                &mut self.bits,
            )
            .is_ok()
            {
                let before = outcome.ber.errors;
                reference_payload_bits_into(
                    &self.payload,
                    &mut self.frame_scratch,
                    &mut self.ref_bits,
                );
                outcome.ber.add_bits(&self.ref_bits, &self.bits);
                uwb_obs::hist!("trial_bit_errors", outcome.ber.errors - before);
                uwb_obs::digest!("trial_bit_errors", outcome.ber.errors - before);
            }
        }

        // --- Packet path: full acquisition. ---
        // The BER path above just digitized this very record into
        // `rx_state.digitized`; re-digitizing would reproduce it
        // bit-for-bit, so start from the digitized record directly. When
        // acquisition locks at the true frame start, the channel-estimate
        // memo also skips the duplicate chanest pass (bit-exact, see
        // `RxState::chanest_memo`).
        outcome.packets += 1;
        let acq_metric_bits = match self.rx.receive_packet_predigitized(&mut self.rx_state) {
            Ok(pkt) => {
                if pkt.payload == self.payload {
                    outcome.packets_ok += 1;
                }
                pkt.acquisition.metric.to_bits()
            }
            Err(PhyError::SyncFailed) => {
                outcome.sync_failures += 1;
                0
            }
            Err(_) => 0,
        };
        // Finalize the flight-recorder snapshot for this trial (no-op unless
        // the engine armed it): bit errors first, then the acquisition
        // confidence as tiebreak.
        uwb_obs::recorder::observe(outcome.ber.errors - ber_before, acq_metric_bits);
    }

    /// The shared front half of both batched trial kinds, run as three
    /// stage sweeps over the whole batch: (1) payload → frame → channel →
    /// interferer, each trial's clean record appended to its own arena
    /// lane; (2) calibrated AWGN (and the optional notch defense) over
    /// every lane, replayed from each trial's captured RNG state; (3)
    /// AGC/ADC, digitizing each lane into the second arena.
    ///
    /// Every per-trial operation re-tags the telemetry trial index with
    /// `set_trial`, so spans, notes, and the flight recorder attribute work
    /// to the right trial even though the execution order interleaves
    /// stages across trials. Per-trial RNG streams are re-derived from the
    /// scenario seed exactly as the unbatched engine path derives them —
    /// each trial's draws are independent of batch width.
    fn sweep_synthesize(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        block_len: usize,
        trials: Range<u64>,
        scratch: &mut BatchScratch,
    ) {
        scratch.reset();

        // Stage sweep 1: clean synthesis into the record lanes.
        for t in trials.clone() {
            uwb_obs::set_trial(t);
            let mut rng = Rand::for_trial(scenario.seed, t);
            let mut clean = None;
            let (tx_self, records) = (&mut *self, &mut scratch.records);
            records.push_lane_with(|buf, _base| {
                clean = Some(tx_self.synthesize_clean_streamed_append(
                    scenario,
                    payload_len,
                    block_len,
                    &mut rng,
                    buf,
                ));
            });
            scratch.clean.push(clean.expect("lane builder ran"));
            let i = scratch.clean.len() - 1;
            if scratch.payloads.len() <= i {
                scratch.payloads.push(Vec::new());
            }
            scratch.payloads[i].clear();
            scratch.payloads[i].extend_from_slice(&self.payload);
        }

        // Stage sweep 2: receiver noise (and the optional notch defense),
        // replayed per lane from the RNG state captured at synthesis time —
        // bit-identical to the unbatched whole-record pass.
        let fs = scenario.config.sample_rate;
        for (i, t) in trials.clone().enumerate() {
            uwb_obs::set_trial(t);
            let n0 = scratch.clean[i].n0;
            let awgn_rng = scratch.clean[i].awgn_rng.clone();
            {
                let _t = uwb_obs::span!("awgn");
                let mut awgn = StreamingAwgn::new(n0, awgn_rng);
                awgn.process_block(scratch.records.lane_mut(i), self.rx_state.scratch());
            }
            if scenario.notch_enabled {
                self.apply_notch_lane(fs, scratch.records.lane_mut(i));
            }
        }

        // Stage sweep 3: AGC/ADC, each impaired lane digitized into the
        // second arena.
        for (i, t) in trials.enumerate() {
            uwb_obs::set_trial(t);
            let _t = uwb_obs::span!("rx_agc_adc");
            let BatchScratch {
                records, digitized, ..
            } = scratch;
            let rx = &self.rx;
            digitized.push_lane_with(|buf, _base| rx.digitize_append(records.lane(i), buf));
        }
    }

    /// BER-only batched trial: runs the stage sweeps of
    /// [`sweep_synthesize`](Self::sweep_synthesize) over `trials`, then a
    /// final known-timing statistics → decode → count sweep. Counters,
    /// telemetry fingerprint, and flight-recorder report are bit-identical
    /// to running [`trial_ber_streamed`](Self::trial_ber_streamed) once per
    /// trial — the batch width only changes execution order, never any
    /// arithmetic or RNG stream. Zero steady-state heap allocation once the
    /// scratch has warmed.
    pub fn trial_batch_ber_streamed(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        block_len: usize,
        trials: Range<u64>,
        scratch: &mut BatchScratch,
        counter: &mut ErrorCounter,
    ) {
        self.sweep_synthesize(scenario, payload_len, block_len, trials.clone(), scratch);

        // Stage sweep 4: chanest/rake/decode, one trial at a time (the
        // receiver state is inherently per-trial).
        for (i, t) in trials.enumerate() {
            uwb_obs::set_trial(t);
            let before = counter.errors;
            self.payload.clear();
            self.payload.extend_from_slice(&scratch.payloads[i]);
            self.count_errors_predigitized(
                &scenario.config,
                scratch.digitized.lane(i),
                scratch.clean[i].slot0_start,
                counter,
            );
            uwb_obs::recorder::observe(counter.errors - before, 0);
        }
    }

    /// Full batched trial (BER path plus full-acquisition packet path):
    /// the stage sweeps of [`sweep_synthesize`](Self::sweep_synthesize),
    /// then an acquisition sweep over every digitized lane — with the
    /// correlator bank's template spectrum warmed **once per batch** rather
    /// than looked up per trial — and finally the per-trial chanest/rake/
    /// decode + packet-decode back half. Bit-identical outcome to running
    /// [`trial_full`](Self::trial_full) on the streamed synthesis path once
    /// per trial.
    pub fn trial_batch_full_streamed(
        &mut self,
        scenario: &LinkScenario,
        payload_len: usize,
        block_len: usize,
        trials: Range<u64>,
        scratch: &mut BatchScratch,
        outcome: &mut LinkOutcome,
    ) {
        self.sweep_synthesize(scenario, payload_len, block_len, trials.clone(), scratch);

        // Stage sweep 4: coarse acquisition across every lane, over a
        // template spectrum built once for the whole batch.
        if scratch.digitized.lanes() > 0 {
            self.rx.warm_acquisition(scratch.digitized.lane(0).len());
        }
        for (i, t) in trials.clone().enumerate() {
            uwb_obs::set_trial(t);
            let acq = self
                .rx
                .acquire_record(scratch.digitized.lane(i), &mut self.rx_state);
            scratch.acq.push(acq);
        }

        // Stage sweep 5: known-timing BER path, then the packet decode from
        // the already-swept acquisition, per trial.
        for (i, t) in trials.enumerate() {
            uwb_obs::set_trial(t);
            let ber_before = outcome.ber.errors;
            self.payload.clear();
            self.payload.extend_from_slice(&scratch.payloads[i]);
            self.count_errors_predigitized(
                &scenario.config,
                scratch.digitized.lane(i),
                scratch.clean[i].slot0_start,
                &mut outcome.ber,
            );

            outcome.packets += 1;
            let acq_metric_bits = match self.rx.receive_packet_acquired(
                scratch.digitized.lane(i),
                &scratch.acq[i],
                &mut self.rx_state,
            ) {
                Ok(pkt) => {
                    if pkt.payload == self.payload {
                        outcome.packets_ok += 1;
                    }
                    pkt.acquisition.metric.to_bits()
                }
                Err(PhyError::SyncFailed) => {
                    outcome.sync_failures += 1;
                    0
                }
                Err(_) => 0,
            };
            uwb_obs::recorder::observe(outcome.ber.errors - ber_before, acq_metric_bits);
        }
    }
}

/// Maps the engine's stop reason onto the link-level one by inspecting the
/// counter that triggered the predicate.
fn classify_stop(reason: StopReason, c: &ErrorCounter, target_errors: u64) -> LinkStopReason {
    match reason {
        StopReason::TrialBudgetExhausted => LinkStopReason::Truncated,
        StopReason::TargetReached if c.errors >= target_errors => LinkStopReason::TargetErrors,
        StopReason::TargetReached => LinkStopReason::BitBudget,
    }
}

/// Runs one packet through the scenario, updating `outcome`.
///
/// Uses the *known-timing* statistics path for the BER counter (so every
/// payload bit contributes even when the CRC fails) and the full
/// acquisition path for the packet/sync counters. Trial `trial` runs on
/// `derive_trial_seed(scenario.seed, trial)` — identical to what the
/// parallel engine feeds the same trial index.
pub fn run_packet(
    scenario: &LinkScenario,
    payload_len: usize,
    trial: u64,
    outcome: &mut LinkOutcome,
) {
    let mut rng = Rand::for_trial(scenario.seed, trial);
    let mut worker = LinkWorker::new(scenario);
    worker.trial_full(scenario, payload_len, &mut rng, outcome);
}

/// Runs packets until `target_errors` bit errors accumulate or `max_bits`
/// bits are observed, in parallel on the deterministic Monte-Carlo engine
/// ([`TrialBudget::default`] caps the run; see [`run_ber_budgeted`]).
pub fn run_ber(
    scenario: &LinkScenario,
    payload_len: usize,
    target_errors: u64,
    max_bits: u64,
) -> LinkRun {
    run_ber_budgeted(
        scenario,
        payload_len,
        target_errors,
        max_bits,
        TrialBudget::default(),
    )
}

/// [`run_ber`] with an explicit trial budget.
pub fn run_ber_budgeted(
    scenario: &LinkScenario,
    payload_len: usize,
    target_errors: u64,
    max_bits: u64,
    budget: TrialBudget,
) -> LinkRun {
    let out = MonteCarlo::new(scenario.seed, budget.max_trials).run(
        || LinkWorker::new(scenario),
        |w, _trial, rng, acc: &mut LinkOutcome| w.trial_full(scenario, payload_len, rng, acc),
        |acc| acc.ber.errors >= target_errors || acc.ber.total >= max_bits,
    );
    let stop = classify_stop(out.stats.stop_reason, &out.value.ber, target_errors);
    LinkRun {
        outcome: out.value,
        stop,
        stats: out.stats,
    }
}

/// A lighter-weight BER-only runner that skips the full-acquisition packet
/// path (several times faster; used for wide parameter sweeps). Runs in
/// parallel on the deterministic Monte-Carlo engine: the returned counter
/// is bit-identical for any `UWB_THREADS`.
pub fn run_ber_fast(
    scenario: &LinkScenario,
    payload_len: usize,
    target_errors: u64,
    max_bits: u64,
) -> BerRun {
    run_ber_fast_budgeted(
        scenario,
        payload_len,
        target_errors,
        max_bits,
        TrialBudget::default(),
    )
}

/// [`run_ber_fast`] with an explicit trial budget.
pub fn run_ber_fast_budgeted(
    scenario: &LinkScenario,
    payload_len: usize,
    target_errors: u64,
    max_bits: u64,
    budget: TrialBudget,
) -> BerRun {
    let out = MonteCarlo::new(scenario.seed, budget.max_trials).run(
        || LinkWorker::new(scenario),
        |w, _trial, rng, acc: &mut ErrorCounter| w.trial_ber(scenario, payload_len, rng, acc),
        |acc| acc.errors >= target_errors || acc.total >= max_bits,
    );
    let stop = classify_stop(out.stats.stop_reason, &out.value, target_errors);
    BerRun {
        counter: out.value,
        stop,
        stats: out.stats,
    }
}

/// [`run_ber_fast`] on the streamed synthesis path: every trial builds its
/// impaired record [`DEFAULT_STREAM_BLOCK`] samples at a time instead of
/// whole-record stage-by-stage. For AWGN-only, CW- and swept-interferer
/// scenarios the returned counter is **bit-identical** to [`run_ber_fast`]
/// (and, like it, bit-identical for any `UWB_THREADS`).
pub fn run_ber_fast_streamed(
    scenario: &LinkScenario,
    payload_len: usize,
    target_errors: u64,
    max_bits: u64,
) -> BerRun {
    run_ber_fast_streamed_budgeted(
        scenario,
        payload_len,
        DEFAULT_STREAM_BLOCK,
        target_errors,
        max_bits,
        TrialBudget::default(),
    )
}

/// [`run_ber_fast_streamed`] with an explicit block length and trial
/// budget. Since the structure-of-arrays port this runs on the **batched**
/// engine path ([`MonteCarlo::run_batched`]): each worker sweeps every DSP
/// stage across `UWB_BATCH` consecutive trials (default
/// [`uwb_sim::montecarlo::DEFAULT_BATCH`]) before moving to the next
/// stage. Counters, telemetry fingerprint, and worst-trial report are
/// bit-identical for any batch width and any `UWB_THREADS`.
pub fn run_ber_fast_streamed_budgeted(
    scenario: &LinkScenario,
    payload_len: usize,
    block_len: usize,
    target_errors: u64,
    max_bits: u64,
    budget: TrialBudget,
) -> BerRun {
    run_ber_fast_streamed_tuned(
        scenario,
        payload_len,
        block_len,
        target_errors,
        max_bits,
        budget,
        None,
        None,
    )
}

/// [`run_ber_fast_streamed_budgeted`] with explicit batch width and worker
/// thread count overrides (`None` → `UWB_BATCH` / `UWB_THREADS`) — the
/// hook the batch-invariance tests and benchmarks drive.
#[allow(clippy::too_many_arguments)]
pub fn run_ber_fast_streamed_tuned(
    scenario: &LinkScenario,
    payload_len: usize,
    block_len: usize,
    target_errors: u64,
    max_bits: u64,
    budget: TrialBudget,
    batch: Option<u64>,
    threads: Option<usize>,
) -> BerRun {
    let batch = resolve_batch(batch);
    let mut mc = MonteCarlo::new(scenario.seed, budget.max_trials);
    if threads.is_some() {
        mc.threads = threads;
    }
    let out = mc.run_batched(
        batch,
        || (LinkWorker::new(scenario), BatchScratch::new()),
        |(w, scratch): &mut (LinkWorker, BatchScratch), trials, acc: &mut ErrorCounter| {
            w.trial_batch_ber_streamed(scenario, payload_len, block_len, trials, scratch, acc)
        },
        |acc| acc.errors >= target_errors || acc.total >= max_bits,
    );
    let stop = classify_stop(out.stats.stop_reason, &out.value, target_errors);
    BerRun {
        counter: out.value,
        stop,
        stats: out.stats,
    }
}

/// Convenience: sweep Eb/N0 and return `(ebn0_db, measured_ber)` rows.
pub fn ber_waterfall(
    base: &LinkScenario,
    payload_len: usize,
    ebn0_grid_db: &[f64],
    target_errors: u64,
    max_bits: u64,
) -> Vec<(f64, f64)> {
    ebn0_grid_db
        .iter()
        .map(|&ebn0| {
            let scenario = LinkScenario {
                ebn0_db: ebn0,
                ..base.clone()
            };
            let c = run_ber_fast(&scenario, payload_len, target_errors, max_bits);
            (ebn0, c.rate())
        })
        .collect()
}

/// Ground-truth channel statistics used by experiment harnesses (not part
/// of any receiver path).
pub fn channel_rms_delay_ns(model: ChannelModel, realizations: usize, seed: u64) -> f64 {
    let mut rng = Rand::new(seed);
    (0..realizations)
        .map(|_| ChannelRealization::generate(model, &mut rng).rms_delay_spread_ns())
        .sum::<f64>()
        / realizations.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::bpsk_awgn_ber;

    fn small_config() -> Gen2Config {
        Gen2Config {
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        }
    }

    #[test]
    fn high_snr_is_error_free() {
        let sc = LinkScenario::awgn(small_config(), 15.0, 1);
        let c = run_ber_fast(&sc, 32, 10, 2_000);
        assert_eq!(c.errors, 0, "{c}");
        assert!(c.total > 0);
        assert_eq!(c.stop, LinkStopReason::BitBudget);
    }

    #[test]
    fn awgn_ber_matches_theory_at_4db() {
        // At Eb/N0 = 4 dB, BPSK theory gives 1.25e-2; our receiver has a
        // small implementation loss (ADC + estimated channel), so accept
        // theory x [0.6, 4].
        let sc = LinkScenario::awgn(small_config(), 4.0, 2);
        let c = run_ber_fast(&sc, 64, 150, 2_000_000);
        let theory = bpsk_awgn_ber(4.0);
        let ratio = c.rate() / theory;
        assert!(
            ratio > 0.6 && ratio < 4.0,
            "measured {} vs theory {theory} (ratio {ratio})",
            c.rate()
        );
        assert_eq!(c.stop, LinkStopReason::TargetErrors);
        assert!(!c.stop.truncated());
    }

    #[test]
    fn ber_monotonic_in_ebn0() {
        let base = LinkScenario::awgn(small_config(), 0.0, 3);
        let rows = ber_waterfall(&base, 32, &[0.0, 4.0, 8.0], 80, 400_000);
        assert!(rows[0].1 > rows[1].1);
        assert!(rows[1].1 >= rows[2].1);
    }

    #[test]
    fn full_packet_path_counts() {
        let sc = LinkScenario::awgn(small_config(), 12.0, 4);
        let mut outcome = LinkOutcome::default();
        for t in 0..3 {
            run_packet(&sc, 24, t, &mut outcome);
        }
        assert_eq!(outcome.packets, 3);
        assert_eq!(outcome.packets_ok, 3);
        assert_eq!(outcome.sync_failures, 0);
        assert_eq!(outcome.per(), 0.0);
    }

    #[test]
    fn empty_run_per_is_nan_not_zero() {
        // The old per() returned 0.0 for zero packets — indistinguishable
        // from a perfect run.
        let outcome = LinkOutcome::default();
        assert!(outcome.per().is_nan());
    }

    #[test]
    fn truncated_run_is_flagged() {
        // Error-free scenario with an unreachable error target and a bit
        // budget larger than the trial budget can supply.
        let sc = LinkScenario::awgn(small_config(), 15.0, 8);
        let c = run_ber_fast_budgeted(&sc, 32, 1_000, u64::MAX, TrialBudget { max_trials: 4 });
        assert_eq!(c.stop, LinkStopReason::Truncated);
        assert!(c.stop.truncated());
        assert!(c.stats.truncated());
        assert_eq!(c.stats.trials, 4);
        assert!(format!("{c}").contains("truncated"), "{c}");
    }

    #[test]
    fn run_ber_matches_run_ber_fast_counters() {
        // Both runners execute the same per-trial front half on the same
        // derived seeds; their BER counters must agree bit-for-bit.
        let sc = LinkScenario::awgn(small_config(), 6.0, 9);
        let fast = run_ber_fast(&sc, 24, 40, 40_000);
        let full = run_ber(&sc, 24, 40, 40_000);
        assert_eq!(full.ber, fast.counter);
        assert_eq!(full.stop, fast.stop);
        assert!(full.packets > 0);
    }

    #[test]
    fn run_packet_matches_engine_trial() {
        // The compat single-packet entry point must agree with what the
        // engine produces for the same trial index.
        let sc = LinkScenario::awgn(small_config(), 8.0, 11);
        let mut serial = LinkOutcome::default();
        for t in 0..4 {
            run_packet(&sc, 16, t, &mut serial);
        }
        let engine = run_ber_budgeted(&sc, 16, u64::MAX, u64::MAX, TrialBudget { max_trials: 4 });
        assert_eq!(engine.outcome, serial);
    }

    #[test]
    fn multipath_degrades_vs_awgn() {
        let awgn = LinkScenario::awgn(small_config(), 6.0, 5);
        let cm3 = LinkScenario {
            channel: ChannelModel::Cm3,
            ..awgn.clone()
        };
        let b_awgn = run_ber_fast(&awgn, 32, 60, 200_000).rate();
        let b_cm3 = run_ber_fast(&cm3, 32, 60, 200_000).rate();
        assert!(
            b_cm3 > b_awgn * 0.8,
            "CM3 {b_cm3} should not beat AWGN {b_awgn}"
        );
    }

    #[test]
    fn interferer_hurts_and_notch_recovers() {
        let mut cfg = small_config();
        cfg.adc_bits = 5;
        let base = LinkScenario::awgn(cfg, 10.0, 6);
        // Strong CW interferer at +150 MHz, 20 dB above signal.
        let sig_power = 0.1; // pulse power is diluted over slots
        let hostile = LinkScenario {
            interferer: Some(Interferer::cw(150e6, sig_power * 100.0)),
            ..base.clone()
        };
        let defended = LinkScenario {
            notch_enabled: true,
            ..hostile.clone()
        };
        let b_clean = run_ber_fast(&base, 32, 50, 150_000).rate();
        let b_hostile = run_ber_fast(&hostile, 32, 50, 150_000).rate();
        let b_defended = run_ber_fast(&defended, 32, 50, 150_000).rate();
        assert!(
            b_hostile > 10.0 * b_clean.max(1e-6),
            "interferer had no effect: {b_hostile} vs {b_clean}"
        );
        assert!(
            b_defended < b_hostile / 3.0,
            "notch did not help: {b_defended} vs {b_hostile}"
        );
    }

    #[test]
    fn streamed_trial_matches_batch_awgn_bitwise() {
        // AWGN-only: the streamed record is bit-identical to the batch
        // record for every block partition, so the counters must agree
        // exactly — and be independent of the block length.
        let sc = LinkScenario::awgn(small_config(), 4.0, 31);
        let batch = run_ber_fast(&sc, 32, 60, 120_000);
        for block_len in [64usize, 1024, DEFAULT_STREAM_BLOCK, usize::MAX / 2] {
            let streamed = run_ber_fast_streamed_budgeted(
                &sc,
                32,
                block_len,
                60,
                120_000,
                TrialBudget::default(),
            );
            assert_eq!(streamed.counter, batch.counter, "block {block_len}");
            assert_eq!(streamed.stop, batch.stop, "block {block_len}");
        }
    }

    #[test]
    fn streamed_trial_matches_batch_with_cw_interferer() {
        // The CW interferer draws one phase at the same RNG position in
        // both paths; the streamed counter must match bit-for-bit.
        let base = LinkScenario::awgn(small_config(), 8.0, 33);
        let sc = LinkScenario {
            interferer: Some(Interferer::cw(150e6, 2.0)),
            ..base
        };
        let batch = run_ber_fast(&sc, 24, 50, 80_000);
        let streamed = run_ber_fast_streamed(&sc, 24, 50, 80_000);
        assert_eq!(streamed.counter, batch.counter);
    }

    #[test]
    fn streamed_trial_matches_batch_with_notch() {
        // Notch path: both paths assemble the record first, then run the
        // same monitor + filter over it.
        let mut cfg = small_config();
        cfg.adc_bits = 5;
        let sc = LinkScenario {
            interferer: Some(Interferer::cw(150e6, 10.0)),
            notch_enabled: true,
            ..LinkScenario::awgn(cfg, 10.0, 35)
        };
        let batch = run_ber_fast(&sc, 24, 40, 60_000);
        let streamed = run_ber_fast_streamed(&sc, 24, 40, 60_000);
        assert_eq!(streamed.counter, batch.counter);
    }

    #[test]
    fn streamed_multipath_matches_batch_decisions() {
        // Multipath records agree only to numerical precision (direct-form
        // vs FFT convolution), so the contract is decision-level: both
        // paths observe the same number of bits and (allowing the odd
        // borderline decision to flip either way) the same errors.
        let sc = LinkScenario {
            channel: ChannelModel::Cm1,
            ..LinkScenario::awgn(small_config(), 15.0, 37)
        };
        let batch = run_ber_fast(&sc, 32, 10, 3_000);
        let streamed = run_ber_fast_streamed(&sc, 32, 10, 3_000);
        assert_eq!(streamed.total, batch.total);
        assert!(
            streamed.errors.abs_diff(batch.errors) <= 2,
            "streamed {streamed} vs batch {batch}"
        );
    }

    #[test]
    fn streamed_single_trial_is_block_invariant_multipath() {
        // Even where the batch path differs numerically, the streamed path
        // must be invariant to its own block partition, per trial.
        let sc = LinkScenario {
            channel: ChannelModel::Cm3,
            ..LinkScenario::awgn(small_config(), 6.0, 39)
        };
        let run = |block_len: usize| {
            let mut w = LinkWorker::new(&sc);
            let mut c = ErrorCounter::default();
            for t in 0..3 {
                let mut rng = Rand::for_trial(sc.seed, t);
                w.trial_ber_streamed(&sc, 48, block_len, &mut rng, &mut c);
            }
            c
        };
        let reference = run(usize::MAX / 2);
        for block_len in [17usize, 64, 1000, DEFAULT_STREAM_BLOCK] {
            assert_eq!(run(block_len), reference, "block {block_len}");
        }
    }

    #[test]
    fn channel_stats_helper() {
        let rms = channel_rms_delay_ns(ChannelModel::Cm3, 20, 7);
        assert!(rms > 5.0 && rms < 30.0, "{rms}");
    }

    #[test]
    fn batched_ber_trials_match_unbatched_bitwise() {
        // The stage-sweep path re-derives every trial's RNG stream and runs
        // the exact same arithmetic as the one-trial-at-a-time streamed
        // path, so the counter must agree bit-for-bit for every batch
        // width — including on multipath, where both paths share the
        // streamed convolution.
        for sc in [
            LinkScenario::awgn(small_config(), 4.0, 41),
            LinkScenario {
                channel: ChannelModel::Cm1,
                ..LinkScenario::awgn(small_config(), 8.0, 43)
            },
        ] {
            let trials = 8u64;
            let mut reference = ErrorCounter::default();
            let mut w = LinkWorker::new(&sc);
            for t in 0..trials {
                let mut rng = Rand::for_trial(sc.seed, t);
                w.trial_ber_streamed(&sc, 32, DEFAULT_STREAM_BLOCK, &mut rng, &mut reference);
            }
            for batch in [1u64, 2, 4, 8] {
                let mut w = LinkWorker::new(&sc);
                let mut scratch = BatchScratch::new();
                let mut c = ErrorCounter::default();
                let mut lo = 0;
                while lo < trials {
                    let hi = (lo + batch).min(trials);
                    w.trial_batch_ber_streamed(
                        &sc,
                        32,
                        DEFAULT_STREAM_BLOCK,
                        lo..hi,
                        &mut scratch,
                        &mut c,
                    );
                    lo = hi;
                }
                assert_eq!(c, reference, "batch {batch} ({:?})", sc.channel);
            }
        }
    }

    #[test]
    fn batched_full_trials_match_trial_full_awgn() {
        // On AWGN the streamed record is bit-identical to the batch record,
        // so the batched full path (stage-swept acquisition + packet
        // decode) must reproduce `trial_full`'s outcome exactly.
        let sc = LinkScenario::awgn(small_config(), 6.0, 45);
        let trials = 6u64;
        let mut reference = LinkOutcome::default();
        let mut w = LinkWorker::new(&sc);
        for t in 0..trials {
            let mut rng = Rand::for_trial(sc.seed, t);
            w.trial_full(&sc, 24, &mut rng, &mut reference);
        }
        for batch in [1u64, 3, 8] {
            let mut w = LinkWorker::new(&sc);
            let mut scratch = BatchScratch::new();
            let mut outcome = LinkOutcome::default();
            let mut lo = 0;
            while lo < trials {
                let hi = (lo + batch).min(trials);
                w.trial_batch_full_streamed(
                    &sc,
                    24,
                    DEFAULT_STREAM_BLOCK,
                    lo..hi,
                    &mut scratch,
                    &mut outcome,
                );
                lo = hi;
            }
            assert_eq!(outcome, reference, "batch {batch}");
        }
    }

    #[test]
    fn streamed_runner_is_batch_width_invariant() {
        // The engine-level contract: the tuned runner returns the same
        // counter and stop reason for every batch width (and matches the
        // unbatched fast runner on AWGN).
        let sc = LinkScenario::awgn(small_config(), 5.0, 47);
        let unbatched = run_ber_fast(&sc, 32, 40, 60_000);
        for batch in [1u64, 2, 4, 8] {
            let run = run_ber_fast_streamed_tuned(
                &sc,
                32,
                DEFAULT_STREAM_BLOCK,
                40,
                60_000,
                TrialBudget::default(),
                Some(batch),
                None,
            );
            assert_eq!(run.counter, unbatched.counter, "batch {batch}");
            assert_eq!(run.stop, unbatched.stop, "batch {batch}");
        }
    }

    #[test]
    fn batched_decode_with_payload_matches_fused() {
        // The network simulator's batched decode entry point must agree
        // bit-for-bit with the fused record path it replaces.
        let sc = LinkScenario::awgn(small_config(), 5.0, 49);
        let mut w = LinkWorker::new(&sc);
        let mut rng = Rand::for_trial(sc.seed, 0);
        let clean = w.synthesize_clean_streamed(&sc, 32, DEFAULT_STREAM_BLOCK, &mut rng);
        w.apply_awgn_to_record(clean.n0, clean.awgn_rng.clone());
        let record = w.clean_record().to_vec();
        let payload = w.payload_bytes().to_vec();

        let mut fused = ErrorCounter::default();
        let ok_fused = w.count_errors_in_record_with_payload(
            &sc.config,
            &record,
            clean.slot0_start,
            &payload,
            &mut fused,
        );

        let mut scratch = BatchScratch::new();
        let mut batched = ErrorCounter::default();
        let ok_batched = w.count_errors_in_record_with_payload_batched(
            &sc.config,
            &record,
            clean.slot0_start,
            &payload,
            &mut scratch,
            &mut batched,
        );
        assert_eq!(ok_fused, ok_batched);
        assert_eq!(fused, batched);
    }
}
