//! End-to-end link runner — the software stand-in for the paper's discrete
//! prototype platform.
//!
//! "A discrete prototype with the same specifications has been designed and
//! implemented, allowing … a complete testing of the algorithms implemented
//! in the digital back end under realistic conditions" (paper §3). The
//! runner builds packets, pushes them through multipath / noise /
//! interference, runs the gen2 receiver, and accumulates calibrated BER
//! statistics.

use crate::metrics::ErrorCounter;
use uwb_phy::packet::{decode_payload_bits, reference_payload_bits};
use uwb_phy::{Gen2Config, Gen2Receiver, Gen2Transmitter, PhyError, SpectralMonitor};
use uwb_rf::TunableNotch;
use uwb_sim::awgn::add_awgn_complex;
use uwb_sim::sv_channel::{ChannelModel, ChannelRealization};
use uwb_sim::{Interferer, Rand};

/// A complete link scenario.
#[derive(Debug, Clone)]
pub struct LinkScenario {
    /// PHY configuration for both ends.
    pub config: Gen2Config,
    /// Multipath environment (a fresh realization is drawn per packet).
    pub channel: ChannelModel,
    /// Eb/N0 in dB (energy per *information* bit over noise density).
    pub ebn0_db: f64,
    /// Optional narrowband interferer.
    pub interferer: Option<Interferer>,
    /// Engage the spectral monitor + tunable notch against the interferer.
    pub notch_enabled: bool,
    /// Master seed (forked per packet for reproducibility).
    pub seed: u64,
}

impl LinkScenario {
    /// An AWGN-only scenario at the given Eb/N0.
    pub fn awgn(config: Gen2Config, ebn0_db: f64, seed: u64) -> Self {
        LinkScenario {
            config,
            channel: ChannelModel::Awgn,
            ebn0_db,
            interferer: None,
            notch_enabled: false,
            seed,
        }
    }
}

/// Accumulated outcome of a BER run.
#[derive(Debug, Clone, Default)]
pub struct LinkOutcome {
    /// Raw (pre-CRC) bit errors over the payload+FCS bits.
    pub ber: ErrorCounter,
    /// Packets attempted.
    pub packets: u64,
    /// Packets that fully decoded with a valid CRC.
    pub packets_ok: u64,
    /// Packets lost to acquisition failure.
    pub sync_failures: u64,
}

impl LinkOutcome {
    /// Packet error rate.
    pub fn per(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            1.0 - self.packets_ok as f64 / self.packets as f64
        }
    }
}

/// Energy per information bit carried by one frame's payload section,
/// in pulse-energy units (pulse templates are unit energy).
fn energy_per_info_bit(payload: &[u8], config: &Gen2Config) -> f64 {
    let frame = uwb_phy::packet::build_frame(payload, config).expect("frame");
    let slot_energy: f64 = frame.payload.iter().map(|a| a * a).sum();
    let info_bits = 8.0 * (payload.len() + 4) as f64;
    slot_energy / info_bits
}

/// Runs one packet through the scenario, updating `outcome`.
///
/// Uses the *known-timing* statistics path for the BER counter (so every
/// payload bit contributes even when the CRC fails) and the full
/// acquisition path for the packet/sync counters.
pub fn run_packet(
    scenario: &LinkScenario,
    payload_len: usize,
    trial: u64,
    outcome: &mut LinkOutcome,
) {
    let mut rng = Rand::new(scenario.seed ^ trial.wrapping_mul(0x9E3779B97F4A7C15));
    let config = &scenario.config;
    let tx = Gen2Transmitter::new(config.clone()).expect("tx config");
    let rx = Gen2Receiver::new(config.clone()).expect("rx config");

    let mut payload = vec![0u8; payload_len];
    rng.fill_bytes(&mut payload);
    let burst = tx.transmit_packet(&payload).expect("payload size");

    // Channel.
    let fs = config.sample_rate;
    let ch = ChannelRealization::generate(scenario.channel, &mut rng);
    let mut samples = ch.apply(&burst.samples, fs);

    // Interference.
    if let Some(intf) = &scenario.interferer {
        samples = intf.add_to(&samples, fs.as_hz(), &mut rng);
    }

    // Noise calibrated to Eb/N0 on information bits.
    let eb = energy_per_info_bit(&payload, config);
    let n0 = eb / uwb_dsp::math::db_to_pow(scenario.ebn0_db);
    samples = add_awgn_complex(&samples, n0, &mut rng);

    // Optional spectral monitoring + notch (the paper's interferer defense).
    if scenario.notch_enabled {
        let report = SpectralMonitor::new().analyze(&samples, fs.as_hz());
        if report.detected {
            let mut notch = TunableNotch::new(fs, 30.0);
            notch.tune(report.frequency);
            samples = notch.process(&samples);
        }
    }

    // --- BER path: known timing. ---
    let slot0_start = burst.slot0_center - tx.pulse().len() / 2;
    let stats = rx.payload_statistics_known_timing(&samples, slot0_start, payload.len());
    if let Ok(bits) = decode_payload_bits(&stats, payload.len(), config) {
        outcome.ber.add_bits(&reference_payload_bits(&payload), &bits);
    }

    // --- Packet path: full acquisition. ---
    outcome.packets += 1;
    match rx.receive_packet(&samples) {
        Ok(pkt) if pkt.payload == payload => outcome.packets_ok += 1,
        Ok(_) => {}
        Err(PhyError::SyncFailed) => outcome.sync_failures += 1,
        Err(_) => {}
    }
}

/// Runs packets until `target_errors` bit errors accumulate or `max_bits`
/// bits are observed. Returns the outcome.
pub fn run_ber(
    scenario: &LinkScenario,
    payload_len: usize,
    target_errors: u64,
    max_bits: u64,
) -> LinkOutcome {
    let mut outcome = LinkOutcome::default();
    let mut trial = 0u64;
    while outcome.ber.errors < target_errors && outcome.ber.total < max_bits {
        run_packet(scenario, payload_len, trial, &mut outcome);
        trial += 1;
        if trial > 10_000 {
            break; // hard stop
        }
    }
    outcome
}

/// A lighter-weight BER-only runner that skips the full-acquisition packet
/// path (several times faster; used for wide parameter sweeps).
pub fn run_ber_fast(
    scenario: &LinkScenario,
    payload_len: usize,
    target_errors: u64,
    max_bits: u64,
) -> ErrorCounter {
    let mut counter = ErrorCounter::new();
    let config = &scenario.config;
    let tx = Gen2Transmitter::new(config.clone()).expect("tx config");
    let rx = Gen2Receiver::new(config.clone()).expect("rx config");
    let mut trial = 0u64;
    while counter.errors < target_errors && counter.total < max_bits && trial <= 10_000 {
        let mut rng = Rand::new(scenario.seed ^ trial.wrapping_mul(0x9E3779B97F4A7C15));
        let mut payload = vec![0u8; payload_len];
        rng.fill_bytes(&mut payload);
        let burst = tx.transmit_packet(&payload).expect("payload size");
        let fs = config.sample_rate;
        let ch = ChannelRealization::generate(scenario.channel, &mut rng);
        let mut samples = ch.apply(&burst.samples, fs);
        if let Some(intf) = &scenario.interferer {
            samples = intf.add_to(&samples, fs.as_hz(), &mut rng);
        }
        let eb = energy_per_info_bit(&payload, config);
        let n0 = eb / uwb_dsp::math::db_to_pow(scenario.ebn0_db);
        samples = add_awgn_complex(&samples, n0, &mut rng);
        if scenario.notch_enabled {
            let report = SpectralMonitor::new().analyze(&samples, fs.as_hz());
            if report.detected {
                let mut notch = TunableNotch::new(fs, 30.0);
                notch.tune(report.frequency);
                samples = notch.process(&samples);
            }
        }
        let slot0_start = burst.slot0_center - tx.pulse().len() / 2;
        let stats = rx.payload_statistics_known_timing(&samples, slot0_start, payload.len());
        if let Ok(bits) = decode_payload_bits(&stats, payload.len(), config) {
            counter.add_bits(&reference_payload_bits(&payload), &bits);
        }
        trial += 1;
    }
    counter
}

/// Convenience: sweep Eb/N0 and return `(ebn0_db, measured_ber)` rows.
pub fn ber_waterfall(
    base: &LinkScenario,
    payload_len: usize,
    ebn0_grid_db: &[f64],
    target_errors: u64,
    max_bits: u64,
) -> Vec<(f64, f64)> {
    ebn0_grid_db
        .iter()
        .map(|&ebn0| {
            let scenario = LinkScenario {
                ebn0_db: ebn0,
                ..base.clone()
            };
            let c = run_ber_fast(&scenario, payload_len, target_errors, max_bits);
            (ebn0, c.rate())
        })
        .collect()
}

/// Ground-truth channel statistics used by experiment harnesses (not part
/// of any receiver path).
pub fn channel_rms_delay_ns(model: ChannelModel, realizations: usize, seed: u64) -> f64 {
    let mut rng = Rand::new(seed);
    (0..realizations)
        .map(|_| ChannelRealization::generate(model, &mut rng).rms_delay_spread_ns())
        .sum::<f64>()
        / realizations.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::bpsk_awgn_ber;

    fn small_config() -> Gen2Config {
        Gen2Config {
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        }
    }

    #[test]
    fn high_snr_is_error_free() {
        let sc = LinkScenario::awgn(small_config(), 15.0, 1);
        let c = run_ber_fast(&sc, 32, 10, 2_000);
        assert_eq!(c.errors, 0, "{c}");
        assert!(c.total > 0);
    }

    #[test]
    fn awgn_ber_matches_theory_at_4db() {
        // At Eb/N0 = 4 dB, BPSK theory gives 1.25e-2; our receiver has a
        // small implementation loss (ADC + estimated channel), so accept
        // theory x [0.6, 4].
        let sc = LinkScenario::awgn(small_config(), 4.0, 2);
        let c = run_ber_fast(&sc, 64, 150, 2_000_000);
        let theory = bpsk_awgn_ber(4.0);
        let ratio = c.rate() / theory;
        assert!(
            ratio > 0.6 && ratio < 4.0,
            "measured {} vs theory {theory} (ratio {ratio})",
            c.rate()
        );
    }

    #[test]
    fn ber_monotonic_in_ebn0() {
        let base = LinkScenario::awgn(small_config(), 0.0, 3);
        let rows = ber_waterfall(&base, 32, &[0.0, 4.0, 8.0], 80, 400_000);
        assert!(rows[0].1 > rows[1].1);
        assert!(rows[1].1 >= rows[2].1);
    }

    #[test]
    fn full_packet_path_counts() {
        let sc = LinkScenario::awgn(small_config(), 12.0, 4);
        let mut outcome = LinkOutcome::default();
        for t in 0..3 {
            run_packet(&sc, 24, t, &mut outcome);
        }
        assert_eq!(outcome.packets, 3);
        assert_eq!(outcome.packets_ok, 3);
        assert_eq!(outcome.sync_failures, 0);
        assert_eq!(outcome.per(), 0.0);
    }

    #[test]
    fn multipath_degrades_vs_awgn() {
        let awgn = LinkScenario::awgn(small_config(), 6.0, 5);
        let cm3 = LinkScenario {
            channel: ChannelModel::Cm3,
            ..awgn.clone()
        };
        let b_awgn = run_ber_fast(&awgn, 32, 60, 200_000).rate();
        let b_cm3 = run_ber_fast(&cm3, 32, 60, 200_000).rate();
        assert!(
            b_cm3 > b_awgn * 0.8,
            "CM3 {b_cm3} should not beat AWGN {b_awgn}"
        );
    }

    #[test]
    fn interferer_hurts_and_notch_recovers() {
        let mut cfg = small_config();
        cfg.adc_bits = 5;
        let base = LinkScenario::awgn(cfg, 10.0, 6);
        // Strong CW interferer at +150 MHz, 20 dB above signal.
        let sig_power = 0.1; // pulse power is diluted over slots
        let hostile = LinkScenario {
            interferer: Some(Interferer::cw(150e6, sig_power * 100.0)),
            ..base.clone()
        };
        let defended = LinkScenario {
            notch_enabled: true,
            ..hostile.clone()
        };
        let b_clean = run_ber_fast(&base, 32, 50, 150_000).rate();
        let b_hostile = run_ber_fast(&hostile, 32, 50, 150_000).rate();
        let b_defended = run_ber_fast(&defended, 32, 50, 150_000).rate();
        assert!(
            b_hostile > 10.0 * b_clean.max(1e-6),
            "interferer had no effect: {b_hostile} vs {b_clean}"
        );
        assert!(
            b_defended < b_hostile / 3.0,
            "notch did not help: {b_defended} vs {b_hostile}"
        );
    }

    #[test]
    fn channel_stats_helper() {
        let rms = channel_rms_delay_ns(ChannelModel::Cm3, 20, 7);
        assert!(rms > 5.0 && rms < 30.0, "{rms}");
    }
}
