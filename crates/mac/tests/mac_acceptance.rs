//! MAC acceptance criteria (ISSUE 10): light-load latency, saturation
//! plateau, forced-collision ARQ recovery, conservation, and thread-count
//! determinism.

use uwb_mac::{plan_mac, run_mac, run_mac_plan_threads, MacReport, MacScenario};
use uwb_net::ChannelPolicy;
use uwb_phy::bandplan::Channel;

/// Every counter that participates in the bit-exactness contract, per
/// link, flattened for comparison.
fn fingerprint(r: &MacReport) -> Vec<u64> {
    let mut v = Vec::new();
    for l in &r.links {
        let s = &l.stats;
        v.extend_from_slice(&[
            s.offered,
            s.delivered,
            s.dropped_queue,
            s.dropped_retry,
            s.tx_frames,
            s.defers,
            s.retries,
            s.decode_failures,
            s.ack_losses,
            s.delivered_info_bits,
            s.latency_slots_sum,
            s.latency_slots_max,
            s.queue_delay_slots_sum,
            s.ber.total,
            s.ber.errors,
        ]);
    }
    v
}

/// A co-channel pair: both links on channel 3 so they genuinely contend
/// for (and interfere on) the same spectrum.
fn co_channel_pair(ebn0_db: f64, load: f64, seed: u64) -> MacScenario {
    let mut sc = MacScenario::ring(2, ebn0_db, load, seed);
    sc.net.policy = ChannelPolicy::Static(vec![Channel::new(3).unwrap()]);
    sc
}

#[test]
fn conservation_offered_equals_delivered_plus_dropped() {
    let mut sc = co_channel_pair(9.0, 1.2, 2025);
    sc.horizon_slots = 300;
    sc.replications = 2;
    let r = run_mac(&sc);
    assert!(r.offered_total > 0, "traffic sources must generate packets");
    assert_eq!(
        r.offered_total,
        r.delivered_total + r.dropped_total,
        "queues drain after the horizon: every packet is delivered or dropped"
    );
}

#[test]
fn light_load_latency_is_service_time_and_no_retries() {
    // Clean high-SNR links at 10% load: nothing queues, nothing collides,
    // nothing retries — latency is essentially airtime + ACK.
    let mut sc = MacScenario::ring(2, 12.0, 0.1, 7);
    sc.horizon_slots = 1_500;
    sc.replications = 2;
    let r = run_mac(&sc);
    assert!(r.delivered_total > 10, "light load must still deliver");
    for (l, lr) in r.links.iter().enumerate() {
        assert_eq!(lr.stats.retries, 0, "link {l}: no retries at light load");
        assert_eq!(lr.dropped, 0, "link {l}: no drops at light load");
        let cycle = (lr.airtime_slots + sc.ack_slots) as f64;
        assert!(
            lr.mean_latency_slots >= cycle - 1e-9,
            "link {l}: latency {} cannot beat the service time {cycle}",
            lr.mean_latency_slots
        );
        assert!(
            lr.mean_latency_slots < cycle + 3.0,
            "link {l}: latency {} should be within a few slots of the service time {cycle}",
            lr.mean_latency_slots
        );
    }
}

#[test]
fn saturation_delivered_plateaus_at_channel_capacity() {
    // Two links share one channel. Ramping offered load from clearly
    // unsaturated to 2x saturated must show the knee: throughput rises,
    // then plateaus — more offered load does not deliver more.
    let delivered_at = |load: f64| {
        let mut sc = co_channel_pair(10.0, load, 515);
        sc.horizon_slots = 400;
        sc.replications = 2;
        run_mac(&sc).delivered_total
    };
    let light = delivered_at(0.3);
    let sat = delivered_at(1.5);
    let oversat = delivered_at(3.0);
    assert!(
        sat as f64 > light as f64 * 1.3,
        "delivered must grow below saturation ({light} -> {sat})"
    );
    assert!(
        (oversat as f64) < sat as f64 * 1.15,
        "delivered must plateau beyond saturation ({sat} -> {oversat})"
    );
    // The shared channel bounds combined delivery: delivered frames cannot
    // occupy more slot-time than the simulation had (horizon + drain tail).
    let mut sc = co_channel_pair(10.0, 3.0, 515);
    sc.horizon_slots = 400;
    sc.replications = 2;
    let plan = plan_mac(&sc);
    let cycle = plan.cycle_slots(0);
    let drain_tail = sc.queue_cap as u64 * cycle * (sc.max_retries as u64 + 1) * 2;
    assert!(
        oversat * cycle <= sc.replications * (sc.horizon_slots + drain_tail),
        "delivered {oversat} x cycle {cycle} exceeds available channel time"
    );
}

#[test]
fn hidden_terminals_collide_and_arq_recovers() {
    // Raise the sense threshold above every coupling gain: carrier sense
    // goes blind (pure ALOHA), so co-channel transmissions overlap in
    // time, genuinely mix at the victims' receivers, and fail to decode.
    // ARQ must then redeliver at least part of the traffic. The crossed
    // pair puts each interferer exactly as far from the victim receiver
    // as the victim's own transmitter (0 dB I/S), so a real overlap
    // reliably breaks the packet.
    use uwb_sim::topology::{LinkGeometry, Position, Topology};
    let tight = Topology::new(vec![
        LinkGeometry::new(Position::new(0.0, 0.0), Position::new(1.0, 0.0)),
        LinkGeometry::new(Position::new(1.0, 1.0), Position::new(0.0, 1.0)),
    ]);
    let mut sc = co_channel_pair(10.0, 0.9, 99);
    sc.net.topology = tight.clone();
    sc.sense_threshold_db = 200.0; // nothing is sensable
    sc.horizon_slots = 500;
    sc.replications = 2;
    let r = run_mac(&sc);
    let decode_failures: u64 = r.links.iter().map(|l| l.stats.decode_failures).sum();
    let retries: u64 = r.links.iter().map(|l| l.stats.retries).sum();
    assert!(
        decode_failures > 0,
        "blind carrier sense at 0.9 Erlang must produce real collisions"
    );
    assert!(retries > 0, "failed frames must be retransmitted");
    assert!(
        r.delivered_total > 0,
        "ARQ must recover some traffic despite collisions"
    );
    assert_eq!(r.offered_total, r.delivered_total + r.dropped_total);
    // Blind stations never defer — every collision above came from
    // genuinely un-sensable (hidden) transmitters.
    let blind_defers: u64 = r.links.iter().map(|l| l.stats.defers).sum();
    assert_eq!(blind_defers, 0, "a blind station cannot defer");
    // Same scenario with carrier sense enabled (default threshold): the
    // pair is mutually sensable at 0 dB coupling, so CSMA actively
    // defers and still delivers. (Decode-failure *counts* are not
    // compared: randomly-offset ALOHA overlaps decorrelate at the pulse
    // matched filter and are often survivable, while CSMA's residual
    // same-slot collisions are pulse-aligned and fatal — which failure
    // mode dominates is load- and PHY-dependent.)
    let mut csma = co_channel_pair(10.0, 0.9, 99);
    csma.net.topology = tight;
    csma.horizon_slots = 500;
    csma.replications = 2;
    let rc = run_mac(&csma);
    let csma_defers: u64 = rc.links.iter().map(|l| l.stats.defers).sum();
    assert!(
        csma_defers > 0,
        "mutually sensable saturated links must carrier-sense defer"
    );
    assert!(rc.delivered_total > 0, "CSMA must still deliver traffic");
    assert_eq!(rc.offered_total, rc.delivered_total + rc.dropped_total);
}

#[test]
fn reports_are_bit_identical_across_thread_counts() {
    let mut sc = MacScenario::ring(4, 9.0, 0.8, 31);
    sc.horizon_slots = 250;
    sc.replications = 4;
    let baseline = fingerprint(&run_mac_plan_threads(plan_mac(&sc), 1));
    assert!(baseline.iter().any(|&x| x > 0));
    for threads in [2, 4, 8] {
        let r = fingerprint(&run_mac_plan_threads(plan_mac(&sc), threads));
        assert_eq!(baseline, r, "thread count {threads} changed the counters");
    }
}

/// Larger thread-parity sweep for `scripts/check.sh mac` (slow: 8 users,
/// collisions, 4 replications x 4 thread counts).
#[test]
#[ignore]
fn eight_user_report_is_bit_identical_across_thread_counts() {
    let mut sc = MacScenario::ring(8, 9.0, 1.0, 77);
    sc.net.policy = ChannelPolicy::RoundRobin(
        (3..7).map(|i| Channel::new(i).unwrap()).collect(),
    );
    sc.horizon_slots = 400;
    sc.replications = 4;
    let baseline = fingerprint(&run_mac_plan_threads(plan_mac(&sc), 1));
    assert!(baseline.iter().any(|&x| x > 0));
    for threads in [2, 4, 8] {
        let r = fingerprint(&run_mac_plan_threads(plan_mac(&sc), threads));
        assert_eq!(baseline, r, "thread count {threads} changed the counters");
    }
}
