//! Deterministic per-link packet-arrival processes.
//!
//! Offered load is specified in **Erlangs per link**: load 1.0 means the
//! link's mean arrival rate equals its nominal isolated service rate (one
//! packet per `airtime + ack` cycle, ignoring backoff and retries). The
//! planner converts that into a packets-per-slot rate; the generator only
//! sees the rate plus its own forked [`uwb_sim::rng::Rand`] stream, so a
//! trial's arrival sequence is a pure function of `(seed, replication,
//! link)`.

use uwb_sim::rng::Rand;

/// The arrival-process family for every link in a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Memoryless Poisson arrivals at `load` Erlangs per link.
    Poisson {
        /// Offered load in Erlangs (1.0 = nominal link capacity).
        load: f64,
    },
    /// Two-state Markov-modulated (on/off) bursty arrivals. During ON
    /// periods packets arrive at an elevated rate chosen so the *long-run*
    /// average still equals `load`; OFF periods are silent. Dwell times
    /// are exponential with the given means (in sense slots).
    Bursty {
        /// Long-run offered load in Erlangs.
        load: f64,
        /// Mean ON-period dwell in slots.
        mean_on_slots: f64,
        /// Mean OFF-period dwell in slots.
        mean_off_slots: f64,
    },
}

impl TrafficModel {
    /// The long-run offered load in Erlangs per link.
    pub fn load(&self) -> f64 {
        match *self {
            TrafficModel::Poisson { load } => load,
            TrafficModel::Bursty { load, .. } => load,
        }
    }
}

/// Per-link arrival generator: owns the model state (on/off phase), not
/// the RNG — the caller passes the link's MAC RNG so all of a link's
/// randomness lives in one forkable stream.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    model: TrafficModel,
    /// Arrival rate in packets per sense slot (planner-converted).
    rate_pps: f64,
    /// Bursty state: are we inside an ON period?
    on: bool,
    /// Bursty state: absolute slot at which the current phase ends.
    phase_end: u64,
}

/// Exponential draws are continuous; slot time is integer. Round up and
/// clamp to 1 so arrivals always advance time (at most one packet per
/// slot per link).
fn step(x: f64) -> u64 {
    if x.is_finite() {
        x.ceil().max(1.0) as u64
    } else {
        u64::MAX / 4
    }
}

impl ArrivalGen {
    /// A generator for `model` with the link's planner-derived rate.
    pub fn new(model: TrafficModel, rate_pps: f64) -> ArrivalGen {
        ArrivalGen {
            model,
            rate_pps,
            on: false,
            phase_end: 0,
        }
    }

    /// Resets modulation state for a fresh trial.
    pub fn reset(&mut self) {
        self.on = false;
        self.phase_end = 0;
    }

    /// Draws the next absolute arrival slot strictly after `now`.
    pub fn next_arrival(&mut self, mut now: u64, rng: &mut Rand) -> u64 {
        if self.rate_pps <= 0.0 {
            return u64::MAX / 4;
        }
        match self.model {
            TrafficModel::Poisson { .. } => now + step(rng.exponential(self.rate_pps)),
            TrafficModel::Bursty {
                mean_on_slots,
                mean_off_slots,
                ..
            } => {
                // Elevated in-burst rate keeps the long-run average at
                // `rate_pps` over the on+off duty cycle.
                let on_rate =
                    self.rate_pps * (mean_on_slots + mean_off_slots) / mean_on_slots.max(1e-9);
                loop {
                    if !self.on {
                        // Skip the remainder of the OFF period, then open
                        // a fresh ON window.
                        now = now.max(self.phase_end);
                        self.on = true;
                        self.phase_end = now + step(rng.exponential(1.0 / mean_on_slots.max(1e-9)));
                    }
                    let t = now + step(rng.exponential(on_rate));
                    if t < self.phase_end {
                        return t;
                    }
                    // The draw fell past the ON window: dwell OFF.
                    now = self.phase_end;
                    self.on = false;
                    self.phase_end = now + step(rng.exponential(1.0 / mean_off_slots.max(1e-9)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_matches_long_run_average() {
        let mut gen = ArrivalGen::new(TrafficModel::Poisson { load: 1.0 }, 0.05);
        let mut rng = Rand::new(0xD1CE);
        let mut t = 0u64;
        let mut n = 0u64;
        while t < 200_000 {
            t = gen.next_arrival(t, &mut rng);
            n += 1;
        }
        let measured = n as f64 / t as f64;
        // Ceil-to-slot biases the rate slightly low; 10% tolerance.
        assert!(
            (measured - 0.05).abs() < 0.005,
            "measured {measured} vs 0.05"
        );
    }

    #[test]
    fn bursty_preserves_long_run_rate_and_clusters() {
        let mut gen = ArrivalGen::new(
            TrafficModel::Bursty {
                load: 1.0,
                mean_on_slots: 200.0,
                mean_off_slots: 600.0,
            },
            0.02,
        );
        let mut rng = Rand::new(0xB00);
        let mut t = 0u64;
        let mut gaps = Vec::new();
        let mut prev = 0u64;
        while t < 1_000_000 {
            t = gen.next_arrival(t, &mut rng);
            gaps.push(t - prev);
            prev = t;
        }
        let n = gaps.len() as f64;
        let measured = n / t as f64;
        assert!(
            (measured - 0.02).abs() < 0.004,
            "long-run rate {measured} vs 0.02"
        );
        // Burstiness: gap distribution is overdispersed vs Poisson
        // (coefficient of variation well above 1).
        let mean = gaps.iter().sum::<u64>() as f64 / n;
        let var = gaps
            .iter()
            .map(|&g| {
                let d = g as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 1.5, "bursty gaps should be overdispersed, cv^2={cv2}");
    }

    #[test]
    fn zero_rate_never_fires_within_horizon() {
        let mut gen = ArrivalGen::new(TrafficModel::Poisson { load: 0.0 }, 0.0);
        let mut rng = Rand::new(1);
        assert!(gen.next_arrival(0, &mut rng) > 1 << 60);
    }
}
