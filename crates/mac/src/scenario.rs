//! MAC-layer scenario specification.
//!
//! A [`MacScenario`] wraps a [`uwb_net::NetScenario`] (geometry, channel
//! policy, PHY config, interference coupling) with everything the MAC
//! layer adds on top: the traffic model, queueing, carrier-sense and
//! backoff parameters, and the stop-and-wait ARQ knobs. It is the input
//! to [`crate::plan::plan_mac`].

use crate::traffic::TrafficModel;
use uwb_net::NetScenario;

/// A complete MAC simulation scenario.
#[derive(Debug, Clone)]
pub struct MacScenario {
    /// The underlying piconet (links, channels, coupling, Eb/N0). The
    /// `rounds` field is ignored — the MAC layer measures over
    /// [`MacScenario::horizon_slots`] × [`MacScenario::replications`]
    /// instead.
    pub net: NetScenario,
    /// Per-link packet arrival process.
    pub traffic: TrafficModel,
    /// Bounded transmit FIFO depth per link; arrivals beyond this are
    /// dropped and counted (`dropped_queue`).
    pub queue_cap: usize,
    /// Carrier-sense granularity in samples. All airtimes are quantized
    /// to this; smaller slots sense (and collide) at finer resolution but
    /// cost more events.
    pub slot_samples: usize,
    /// Coupling-amplitude threshold (dB) above which a neighbor is
    /// *sensable*: edges in the interference graph at or above this gain
    /// defer to each other (CSMA); edges below it are hidden terminals
    /// whose transmissions still mix into the victim's record but cannot
    /// be sensed.
    pub sense_threshold_db: f64,
    /// Base contention window (slots): a deferred or failed attempt backs
    /// off uniformly in `[1, 1 + cw0 << be)`.
    pub cw0: u64,
    /// Binary-exponential-backoff cap: the backoff exponent `be`
    /// saturates here.
    pub bexp_max: u32,
    /// Stop-and-wait ARQ retry limit: a packet is dropped
    /// (`dropped_retry`) after `1 + max_retries` failed transmissions.
    pub max_retries: u32,
    /// ACK airtime in sense slots (the ACK occupies the channel for
    /// sensing but is modeled at event level — no ACK waveform is
    /// synthesized).
    pub ack_slots: u64,
    /// Slots after a data frame's end before the transmitter declares an
    /// ACK timeout. Must be ≥ `ack_slots`.
    pub ack_timeout_slots: u64,
    /// Probability that a correctly decoded frame's ACK is lost anyway
    /// (models the unsimulated reverse channel; forces ARQ retransmission
    /// of a delivered frame).
    pub ack_loss: f64,
    /// Arrival horizon in sense slots: no packet arrives at or after this
    /// time. Queues drain to completion afterwards, so at the end of a
    /// trial `offered == delivered + dropped` exactly.
    pub horizon_slots: u64,
    /// Independent trial replications (each is one Monte-Carlo trial on
    /// the deterministic ordered-merge engine).
    pub replications: u64,
}

impl MacScenario {
    /// An `n`-user ring piconet (see [`NetScenario::ring`]) carrying
    /// Poisson traffic at `load` Erlangs per link, with the repo's
    /// fast-test MAC defaults.
    pub fn ring(n: usize, ebn0_db: f64, load: f64, seed: u64) -> MacScenario {
        let mut net = NetScenario::ring(n, ebn0_db, seed);
        net.probe_spectral = false;
        MacScenario {
            net,
            traffic: TrafficModel::Poisson { load },
            queue_cap: 8,
            slot_samples: 512,
            sense_threshold_db: -30.0,
            cw0: 8,
            bexp_max: 5,
            max_retries: 6,
            ack_slots: 2,
            ack_timeout_slots: 4,
            ack_loss: 0.0,
            horizon_slots: 2_000,
            replications: 4,
        }
    }

    /// A clustered-city piconet (see [`NetScenario::clustered_city`]) for
    /// large-N offered-load sweeps: one replication, shorter horizon.
    pub fn clustered_city(
        clusters: usize,
        per_cluster: usize,
        ebn0_db: f64,
        load: f64,
        seed: u64,
    ) -> MacScenario {
        let mut sc = MacScenario::ring(1, ebn0_db, load, seed);
        sc.net = NetScenario::clustered_city(clusters, per_cluster, ebn0_db, seed);
        sc.net.probe_spectral = false;
        sc.horizon_slots = 600;
        sc.replications = 1;
        sc
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.net.len()
    }

    /// `true` when the scenario has no links.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_defaults_are_consistent() {
        let sc = MacScenario::ring(4, 9.0, 0.5, 7);
        assert_eq!(sc.len(), 4);
        assert!(!sc.is_empty());
        assert!(sc.ack_timeout_slots >= sc.ack_slots);
        assert!(sc.queue_cap > 0 && sc.slot_samples > 0 && sc.cw0 > 0);
        assert_eq!(sc.traffic.load(), 0.5);
    }
}
