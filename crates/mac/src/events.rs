//! The discrete-event scheduler: a binary min-heap of MAC events with a
//! **total** deterministic order.
//!
//! Determinism contract: events are ordered by `(time, link, seq)` where
//! `seq` is a per-trial monotone push counter. Two distinct events can
//! never compare equal (`seq` is unique), so the pop sequence — and with
//! it every queue, backoff, and collision outcome — is a pure function of
//! the pushed events, independent of hash state, thread count, or
//! insertion micro-order within a tool call. Ties at the same `(time,
//! link)` resolve in *schedule order*, which is itself deterministic.
//!
//! The heap's backing storage is preallocated by
//! [`EventQueue::with_capacity`] and reused across trials
//! ([`EventQueue::clear`] keeps capacity), so the warm steady-state loop
//! never touches the allocator: the number of outstanding events is
//! bounded by a small constant per link (one pending arrival, one pending
//! attempt/tx/ack chain, and a handful of record releases).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A packet arrives at the link's transmit queue (and the next arrival
    /// is drawn).
    Arrival,
    /// The link carrier-senses and either starts transmitting or defers.
    Attempt,
    /// The data frame's airtime ends: the victim receiver decodes the
    /// superposed record (`arg` = record-pool slot).
    TxEnd,
    /// The ARQ outcome reaches the transmitter (`arg` = 1 for an ACK,
    /// 0 for a timeout).
    AckDone,
    /// A retained waveform record can no longer overlap any future decode
    /// and is recycled (`arg` = record-pool slot).
    Release,
}

/// One scheduled MAC event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Fire time in sense slots.
    pub time: u64,
    /// The link this event belongs to.
    pub link: u32,
    /// Per-trial push counter — the total-order tiebreak.
    pub seq: u32,
    /// Event type.
    pub kind: EventKind,
    /// Kind-specific argument (pool slot or ACK flag).
    pub arg: u32,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.link, self.seq).cmp(&(other.time, other.link, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The preallocated min-heap event queue.
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    seq: u32,
}

impl EventQueue {
    /// A queue whose heap storage holds `cap` events without reallocating.
    pub fn with_capacity(cap: usize) -> EventQueue {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Empties the queue and resets the sequence counter for a fresh
    /// trial; the heap's capacity is retained.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// Schedules an event; the assigned `seq` makes the total order
    /// deterministic.
    pub fn push(&mut self, time: u64, link: u32, kind: EventKind, arg: u32) {
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        self.heap.push(Reverse(Event {
            time,
            link,
            seq,
            kind,
            arg,
        }));
    }

    /// Pops the earliest event in `(time, link, seq)` order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Outstanding events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current heap capacity (the allocation high-water mark).
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_link_seq_order() {
        let mut q = EventQueue::with_capacity(8);
        q.push(5, 1, EventKind::Arrival, 0); // seq 0
        q.push(3, 9, EventKind::Attempt, 0); // seq 1
        q.push(5, 0, EventKind::TxEnd, 7); // seq 2
        q.push(5, 1, EventKind::AckDone, 1); // seq 3
        let order: Vec<(u64, u32, u32)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.link, e.seq))
            .collect();
        assert_eq!(order, vec![(3, 9, 1), (5, 0, 2), (5, 1, 0), (5, 1, 3)]);
    }

    #[test]
    fn clear_retains_capacity_and_resets_seq() {
        let mut q = EventQueue::with_capacity(16);
        let cap = q.capacity();
        for t in 0..10 {
            q.push(t, 0, EventKind::Arrival, 0);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), cap);
        q.push(1, 0, EventKind::Arrival, 0);
        assert_eq!(q.pop().unwrap().seq, 0, "seq restarts per trial");
    }
}
