//! MAC measurement reports: per-link offered/delivered/dropped counters,
//! latency, and goodput, plus network aggregates and the latency
//! percentile digests.

use crate::plan::MacPlan;
use crate::runner::{MacAccumulator, MacLinkStats};
use uwb_phy::bandplan::Channel;
use uwb_platform::report::Table;
use uwb_sim::montecarlo::RunStats;

/// One link's MAC outcome over all replications.
#[derive(Debug, Clone)]
pub struct MacLinkReport {
    /// The link's assigned band-plan channel.
    pub channel: Channel,
    /// Raw merged counters.
    pub stats: MacLinkStats,
    /// Nominal data-frame airtime in sense slots.
    pub airtime_slots: u64,
    /// Offered load in packets (arrivals across all replications).
    pub offered: u64,
    /// Delivered (ACKed) packets.
    pub delivered: u64,
    /// Packets dropped at the full queue plus packets dropped by ARQ.
    pub dropped: u64,
    /// Delivered fraction (`NaN` when nothing was offered — same no-data
    /// contract as `ErrorCounter::rate`).
    pub delivery_ratio: f64,
    /// Mean arrival→ACK latency over delivered packets, in slots (`NaN`
    /// when nothing was delivered).
    pub mean_latency_slots: f64,
    /// Worst delivered-packet latency, in slots.
    pub max_latency_slots: u64,
    /// Mean arrival→first-transmission queueing delay, in slots (`NaN`
    /// when nothing was transmitted).
    pub mean_queue_delay_slots: f64,
    /// Retransmitted frames per delivered packet.
    pub retries_per_delivery: f64,
    /// Information goodput in bit/s, averaged over the arrival horizon.
    pub goodput_bps: f64,
}

impl MacLinkReport {
    fn new(plan: &MacPlan, l: usize, stats: &MacLinkStats) -> MacLinkReport {
        let dropped = stats.dropped_queue + stats.dropped_retry;
        let delivery_ratio = if stats.offered == 0 {
            f64::NAN
        } else {
            stats.delivered as f64 / stats.offered as f64
        };
        let mean_latency_slots = if stats.delivered == 0 {
            f64::NAN
        } else {
            stats.latency_slots_sum as f64 / stats.delivered as f64
        };
        let serviced = stats.delivered + stats.dropped_retry;
        let mean_queue_delay_slots = if serviced == 0 {
            f64::NAN
        } else {
            stats.queue_delay_slots_sum as f64 / serviced as f64
        };
        let retries_per_delivery = if stats.delivered == 0 {
            f64::NAN
        } else {
            stats.retries as f64 / stats.delivered as f64
        };
        // Wall time simulated per replication: the arrival horizon, in
        // seconds (slot = slot_samples / sample_rate).
        let slot_secs = plan.params.slot_samples as f64
            / plan.net.links[l].scenario.config.sample_rate.as_hz();
        let sim_secs =
            plan.params.horizon_slots as f64 * plan.params.replications as f64 * slot_secs;
        let goodput_bps = if sim_secs > 0.0 {
            stats.delivered_info_bits as f64 / sim_secs
        } else {
            0.0
        };
        MacLinkReport {
            channel: plan.net.links[l].channel,
            stats: stats.clone(),
            airtime_slots: plan.airtime_slots[l],
            offered: stats.offered,
            delivered: stats.delivered,
            dropped,
            delivery_ratio,
            mean_latency_slots,
            max_latency_slots: stats.latency_slots_max,
            mean_queue_delay_slots,
            retries_per_delivery,
            goodput_bps,
        }
    }
}

/// The complete MAC measurement report.
#[derive(Debug)]
pub struct MacReport {
    /// Per-link reports, indexed by link id.
    pub links: Vec<MacLinkReport>,
    /// Total packets offered across all links and replications.
    pub offered_total: u64,
    /// Total packets delivered.
    pub delivered_total: u64,
    /// Total packets dropped (queue + retry).
    pub dropped_total: u64,
    /// Sum of all links' information goodput (bit/s).
    pub aggregate_goodput_bps: f64,
    /// Engine execution statistics (trials = replications; includes the
    /// merged telemetry snapshot when `obs` is enabled).
    pub stats: RunStats,
    /// The frozen plan the measurement replayed.
    pub plan: MacPlan,
}

impl MacReport {
    /// Assembles the report from the frozen plan, the merged accumulator,
    /// and the engine statistics.
    pub fn new(plan: MacPlan, acc: MacAccumulator, stats: RunStats) -> MacReport {
        let links: Vec<MacLinkReport> = acc
            .links
            .iter()
            .enumerate()
            .map(|(l, s)| MacLinkReport::new(&plan, l, s))
            .collect();
        let offered_total = links.iter().map(|l| l.offered).sum();
        let delivered_total = links.iter().map(|l| l.delivered).sum();
        let dropped_total = links.iter().map(|l| l.dropped).sum();
        let aggregate_goodput_bps = links.iter().map(|l| l.goodput_bps).sum();
        MacReport {
            links,
            offered_total,
            delivered_total,
            dropped_total,
            aggregate_goodput_bps,
            stats,
            plan,
        }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when the report covers no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Network delivered fraction (`NaN` when nothing was offered).
    pub fn delivered_fraction(&self) -> f64 {
        if self.offered_total == 0 {
            f64::NAN
        } else {
            self.delivered_total as f64 / self.offered_total as f64
        }
    }

    /// A latency-digest quantile in slots (`None` when the digest is
    /// absent — `obs` off or nothing delivered). `name` is one of the MAC
    /// digests: `"mac_latency_slots"` or `"mac_queue_delay_slots"`.
    pub fn digest_quantile(&self, name: &str, q: f64) -> Option<u64> {
        self.stats
            .telemetry
            .digests
            .iter()
            .find(|d| d.name == name && d.count > 0)
            .map(|d| d.quantile(q))
    }

    /// Renders the per-link table used by the experiment binaries.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "link", "ch", "offered", "dlvd", "drop", "retx", "dlvd%", "lat", "kbit/s",
        ]);
        for (l, r) in self.links.iter().enumerate() {
            t.row(vec![
                l.to_string(),
                r.channel.index().to_string(),
                r.offered.to_string(),
                r.delivered.to_string(),
                r.dropped.to_string(),
                r.stats.retries.to_string(),
                if r.delivery_ratio.is_nan() {
                    "n/a".to_string()
                } else {
                    format!("{:.1}", 100.0 * r.delivery_ratio)
                },
                if r.mean_latency_slots.is_nan() {
                    "n/a".to_string()
                } else {
                    format!("{:.1}", r.mean_latency_slots)
                },
                format!("{:.0}", r.goodput_bps / 1e3),
            ]);
        }
        t
    }
}
