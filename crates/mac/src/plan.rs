//! The frozen MAC plan: everything the event loop needs, precomputed.
//!
//! [`plan_mac`] runs the network planner ([`uwb_net::plan_network`] —
//! channel allocation, coupling graph, per-link adapted configs), then
//! derives the MAC-specific statics:
//!
//! * **Airtimes** — one probe waveform is synthesized per *distinct*
//!   config (not per link) to measure the record length, which is
//!   quantized up to sense slots. Under multipath models the per-trial
//!   delay spread can jitter the record length a little; the airtime is
//!   the nominal probe value and the mixer clips any excess at buffer
//!   bounds.
//! * **Sense sets** — the symmetrized subgraph of the coupling graph at
//!   or above the carrier-sense threshold ([`uwb_net::sense_sets`]).
//!   Coupling edges *below* the threshold are the hidden terminals: they
//!   still mix into the victim's record but never cause a defer.
//! * **Arrival rates** — the scenario's Erlang load divided by each
//!   link's nominal service cycle (`airtime + ack`).

use crate::scenario::MacScenario;
use crate::traffic::TrafficModel;
use uwb_net::{plan_network, sense_sets, NetPlan, WorkerPool};
use uwb_sim::Rand;

/// Probe round id for MAC airtime measurement. Distinct from the network
/// planner's probe round (`u64::MAX`) and from any trial waveform uid.
const MAC_PROBE_ROUND: u64 = u64::MAX - 1;

/// The MAC knobs copied verbatim from the scenario (everything except the
/// wrapped [`uwb_net::NetScenario`]).
#[derive(Debug, Clone, Copy)]
pub struct MacParams {
    /// Per-link arrival process.
    pub traffic: TrafficModel,
    /// Bounded FIFO depth.
    pub queue_cap: usize,
    /// Sense-slot granularity in samples.
    pub slot_samples: usize,
    /// Carrier-sense coupling threshold in dB.
    pub sense_threshold_db: f64,
    /// Base contention window in slots.
    pub cw0: u64,
    /// Backoff-exponent cap.
    pub bexp_max: u32,
    /// ARQ retry limit.
    pub max_retries: u32,
    /// ACK airtime in slots.
    pub ack_slots: u64,
    /// ACK-timeout delay after data-frame end, in slots.
    pub ack_timeout_slots: u64,
    /// Forward-delivered-but-ACK-lost probability.
    pub ack_loss: f64,
    /// Arrival horizon in slots.
    pub horizon_slots: u64,
    /// Monte-Carlo replications.
    pub replications: u64,
}

/// The frozen, immutable input to the measurement phase.
#[derive(Debug)]
pub struct MacPlan {
    /// The underlying frozen network plan (links, configs, coupling).
    pub net: NetPlan,
    /// MAC parameters.
    pub params: MacParams,
    /// Nominal data-frame airtime per link, in sense slots (≥ 1).
    pub airtime_slots: Vec<u64>,
    /// Maximum airtime over all links — the record-retention window.
    pub max_airtime_slots: u64,
    /// Probe record length per link, in samples.
    pub record_len: Vec<usize>,
    /// Maximum probe record length — pre-sizing bound for record buffers.
    pub max_record_len: usize,
    /// Per-link sensable-neighbor sets (symmetrized, ascending, deduped).
    pub sense: Vec<Vec<usize>>,
    /// Out-degree of each link in the coupling graph: how many victims'
    /// rows reference this transmitter. Zero means nobody ever mixes this
    /// link's waveform, so its records recycle immediately after its own
    /// decode.
    pub out_deg: Vec<u32>,
    /// Per-link arrival rate in packets per sense slot.
    pub rate_pps: Vec<f64>,
}

impl MacPlan {
    /// Number of links.
    pub fn len(&self) -> usize {
        self.net.len()
    }

    /// `true` when the plan has no links.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }

    /// Master seed (the network master).
    pub fn seed(&self) -> u64 {
        self.net.seed
    }

    /// Nominal service cycle of link `l` in slots: data airtime plus ACK.
    pub fn cycle_slots(&self, l: usize) -> u64 {
        self.airtime_slots[l] + self.params.ack_slots
    }
}

/// Freezes a scenario into a [`MacPlan`]. Serial; allocation here is
/// fine — the measurement phase reuses everything.
pub fn plan_mac(sc: &MacScenario) -> MacPlan {
    assert!(sc.queue_cap >= 1, "queue_cap must be at least 1");
    assert!(sc.slot_samples >= 1, "slot_samples must be at least 1");
    assert!(sc.cw0 >= 1, "cw0 must be at least 1");
    assert!(
        sc.ack_timeout_slots >= sc.ack_slots,
        "ack_timeout_slots must be >= ack_slots"
    );
    assert!(
        (0.0..=1.0).contains(&sc.ack_loss),
        "ack_loss must be a probability"
    );

    let net = plan_network(&sc.net);
    let n = net.len();

    // One probe synthesis per distinct config measures the record length.
    let mut pool = WorkerPool::new(&net);
    let mut probe_len = vec![0usize; pool.worker_count()];
    let mut buf = Vec::new();
    for l in 0..n {
        let c = pool.config_index(l);
        if probe_len[c] == 0 {
            let scen = net.links[l].scenario.clone();
            let mut rng = Rand::for_trial(scen.seed, MAC_PROBE_ROUND);
            let _ = pool.worker_for(l).synthesize_clean_streamed_record(
                &scen,
                net.payload_len,
                net.block_len,
                &mut rng,
                &mut buf,
            );
            probe_len[c] = buf.len().max(1);
        }
    }

    let record_len: Vec<usize> = (0..n).map(|l| probe_len[pool.config_index(l)]).collect();
    let max_record_len = record_len.iter().copied().max().unwrap_or(1);
    let airtime_slots: Vec<u64> = record_len
        .iter()
        .map(|&len| (len.div_ceil(sc.slot_samples)).max(1) as u64)
        .collect();
    let max_airtime_slots = airtime_slots.iter().copied().max().unwrap_or(1);

    let sense = sense_sets(&net.coupling, sc.sense_threshold_db);
    let mut out_deg = vec![0u32; n];
    for row in &net.coupling {
        for &(u, _) in row {
            out_deg[u] += 1;
        }
    }

    let load = sc.traffic.load();
    let rate_pps: Vec<f64> = airtime_slots
        .iter()
        .map(|&a| load / (a + sc.ack_slots) as f64)
        .collect();

    MacPlan {
        net,
        params: MacParams {
            traffic: sc.traffic,
            queue_cap: sc.queue_cap,
            slot_samples: sc.slot_samples,
            sense_threshold_db: sc.sense_threshold_db,
            cw0: sc.cw0,
            bexp_max: sc.bexp_max,
            max_retries: sc.max_retries,
            ack_slots: sc.ack_slots,
            ack_timeout_slots: sc.ack_timeout_slots,
            ack_loss: sc.ack_loss,
            horizon_slots: sc.horizon_slots,
            replications: sc.replications,
        },
        airtime_slots,
        max_airtime_slots,
        record_len,
        max_record_len,
        sense,
        out_deg,
        rate_pps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::MacScenario;

    #[test]
    fn plan_derives_airtime_sense_and_rates() {
        let sc = MacScenario::ring(4, 9.0, 0.8, 11);
        let plan = plan_mac(&sc);
        assert_eq!(plan.len(), 4);
        assert!(plan.max_airtime_slots >= 1);
        for l in 0..4 {
            assert!(plan.airtime_slots[l] >= 1);
            assert_eq!(
                plan.airtime_slots[l],
                (plan.record_len[l].div_ceil(sc.slot_samples)).max(1) as u64
            );
            let expect = 0.8 / plan.cycle_slots(l) as f64;
            assert!((plan.rate_pps[l] - expect).abs() < 1e-12);
            // Sense sets are symmetric.
            for &u in &plan.sense[l] {
                assert!(plan.sense[u].contains(&l), "sense graph must be symmetric");
            }
        }
    }

    #[test]
    fn same_config_links_share_airtime() {
        // 2-user ring on round-robin channels: different channels, but the
        // waveform length is config-shaped, so airtimes still match the
        // per-config probe exactly (each config probed once).
        let sc = MacScenario::ring(2, 8.0, 0.5, 3);
        let plan = plan_mac(&sc);
        assert_eq!(plan.record_len.len(), 2);
        assert!(plan.record_len.iter().all(|&r| r > 0));
    }
}
