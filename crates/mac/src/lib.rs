//! # uwb-mac — deterministic traffic + CSMA + ARQ over the UWB piconet
//!
//! The layers below this crate answer "what BER does a link see at this
//! SNR, through this interference?". This crate answers the question the
//! paper's multi-piconet band plan exists for: **how much offered traffic
//! does the network actually deliver, and at what latency?**
//!
//! It is a discrete-event MAC simulator on top of `uwb-net`'s sparse
//! interference graph:
//!
//! * **Traffic** ([`traffic`]) — per-link Poisson or bursty on/off packet
//!   arrivals, in Erlangs of the link's nominal service cycle, feeding
//!   bounded FIFO queues.
//! * **Channel access** ([`runner`]) — CSMA with binary exponential
//!   backoff over the *sensable* subgraph of the coupling matrix: a
//!   neighbor coupled at or above the sense threshold defers us; one
//!   coupled below it is a hidden terminal whose waveform still mixes
//!   into our receiver. Collisions are not a coin flip — the overlapping
//!   waveforms are genuinely superposed at their slot offsets and the
//!   pooled PHY workers decode the result.
//! * **Delivery** — stop-and-wait ARQ with event-level ACKs, timeouts, a
//!   retry limit, and drop accounting.
//!
//! ## Determinism contract
//!
//! The event scheduler ([`events`]) is a binary heap totally ordered by
//! `(time, link, seq)`; every random draw comes from streams keyed on
//! `(seed, replication, link)`; one replication is one trial on the
//! ordered-merge Monte-Carlo engine. Reports are therefore bit-identical
//! for any `UWB_THREADS`. The warm steady-state loop allocates nothing
//! (see `tests/alloc_regression.rs` at the workspace root).
//!
//! # Example: a lightly loaded 2-user piconet
//!
//! ```
//! use uwb_mac::{run_mac, MacScenario};
//!
//! let mut sc = MacScenario::ring(2, 9.0, 0.2, 42);
//! sc.horizon_slots = 400;
//! sc.replications = 1;
//! let report = run_mac(&sc);
//! assert_eq!(report.len(), 2);
//! assert_eq!(
//!     report.offered_total,
//!     report.delivered_total + report.dropped_total,
//!     "queues drain to completion after the horizon"
//! );
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod plan;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod traffic;

pub use events::{Event, EventKind, EventQueue};
pub use plan::{plan_mac, MacParams, MacPlan};
pub use report::{MacLinkReport, MacReport};
pub use runner::{
    run_mac, run_mac_plan, run_mac_plan_threads, MacAccumulator, MacLinkStats, MacWorker,
};
pub use scenario::MacScenario;
pub use traffic::{ArrivalGen, TrafficModel};
